# Renders the paper-figure CSVs produced by the bench binaries into PNGs.
# Run the benches first (they write CSVs into the working directory), then:
#   gnuplot -c plots/plot_figures.gp
# Requires gnuplot >= 5.0.

set datafile separator ","
set terminal pngcairo size 900,520 font "Sans,11"
set key outside right
set grid

# ---- Fig. 2: CPI robustness to CPU-utilization noise ---------------------
set output "fig2_cpi_kpi.png"
set title "Fig. 2 - CPI vs cpu\\_user under a CPU-utilization disturbance"
set xlabel "tick (10 s)"
set ylabel "CPI"
set y2label "cpu\\_user %"
set y2tics
plot "fig2_cpi_kpi.csv" using 1:2 skip 1 with lines lw 2 title "CPI (normal)", \
     "" using 1:3 skip 1 with lines lw 2 title "CPI (disturbed)", \
     "" using 1:5 skip 1 axes x1y2 with lines dt 2 title "cpu\\_user (disturbed)"
unset y2label
unset y2tics

# ---- Fig. 4: CPI vs execution time ---------------------------------------
set output "fig4_cpi_exectime.png"
set title "Fig. 4 - normalized CPI vs normalized execution time (25 runs)"
set xlabel "CPI (normalized to min)"
set ylabel "execution time (normalized to min)"
plot "< awk -F, 'NR>1 && $1==\"wordcount\"' fig4_cpi_exectime.csv" \
       using 3:5 with points pt 7 title "wordcount", \
     "< awk -F, 'NR>1 && $1==\"sort\"' fig4_cpi_exectime.csv" \
       using 3:5 with points pt 5 title "sort"

# ---- Fig. 5: ARIMA residuals around the CPU hog ---------------------------
set output "fig5_residuals.png"
set title "Fig. 5 - CPI prediction residuals before/during a CPU hog"
set xlabel "tick (10 s)"
set ylabel "|residual|"
plot "< awk -F, 'NR>1 && $1==\"wordcount\"' fig5_residuals.csv" \
       using 2:4 with lines lw 2 title "wordcount", \
     "< awk -F, 'NR>1 && $1==\"tpcds\"' fig5_residuals.csv" \
       using 2:4 with lines lw 2 title "tpcds", \
     "< awk -F, 'NR>1 && $1==\"wordcount\" && $5==1' fig5_residuals.csv" \
       using 2:(0) with points pt 7 ps 0.4 title "hog active"

# ---- Figs. 9/10: system comparison ----------------------------------------
set output "fig9_precision_comparison.png"
set title "Fig. 9 - diagnosis precision per fault"
set style data histogram
set style histogram clustered gap 1
set style fill solid 0.8 border -1
set xtics rotate by -40
set ylabel "precision"
set yrange [0:1.05]
to_frac(s) = real(substr(s, 1, strlen(s) - 1)) / 100.0
plot "fig9_precision_comparison.csv" using (to_frac(strcol(2))):xtic(1) skip 1 title "InvarNet-X", \
     "" using (to_frac(strcol(3))) skip 1 title "ARX", \
     "" using (to_frac(strcol(4))) skip 1 title "no context"

set output "fig10_recall_comparison.png"
set title "Fig. 10 - diagnosis recall per fault"
set ylabel "recall"
plot "fig10_recall_comparison.csv" using (to_frac(strcol(2))):xtic(1) skip 1 title "InvarNet-X", \
     "" using (to_frac(strcol(3))) skip 1 title "ARX", \
     "" using (to_frac(strcol(4))) skip 1 title "no context"

print "wrote fig2/fig4/fig5/fig9/fig10 PNGs"
