// Developer tool: one-shot check of every headline "shape" the reproduction
// must preserve, at reduced campaign sizes. Use while tuning the simulator:
// any change should keep all of these in the green.
//
// Usage: shape_check [reps=8] [seed=42]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats.h"
#include "core/evaluate.h"

namespace {

using namespace invarnetx;
using core::EvalConfig;
using core::EvalResult;
using workload::WorkloadType;

int failures = 0;

void Check(bool ok, const char* what, double got, double want,
           const char* cmp) {
  std::printf("  [%s] %-52s got %6.3f (want %s %g)\n", ok ? "ok" : "!!",
              what, got, cmp, want);
  if (!ok) ++failures;
}

void CheckGe(double got, double want, const char* what) {
  Check(got >= want, what, got, want, ">=");
}
void CheckLe(double got, double want, const char* what) {
  Check(got <= want, what, got, want, "<=");
}

double Fig4Corr(WorkloadType type, uint64_t seed) {
  const faults::FaultType injected[] = {faults::FaultType::kNetDelay,
                                        faults::FaultType::kCpuHog,
                                        faults::FaultType::kDiskHog};
  std::vector<double> times, cpis;
  for (int rep = 0; rep < 25; ++rep) {
    telemetry::RunConfig config;
    config.workload = type;
    config.seed = seed + static_cast<uint64_t>(rep);
    if (rep % 4 != 0) {
      const faults::FaultType fault = injected[rep % 3];
      config.fault =
          telemetry::FaultRequest{fault, telemetry::DefaultFaultWindow(fault)};
    }
    const telemetry::RunTrace trace =
        telemetry::SimulateRun(config).value();
    times.push_back(trace.duration_seconds);
    cpis.push_back(Mean(trace.nodes[1].cpi));
  }
  return PearsonCorrelation(cpis, times).value();
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 8;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // --- campaigns ---------------------------------------------------------
  EvalConfig wc;
  wc.workload = WorkloadType::kWordCount;
  wc.seed = seed;
  wc.test_runs_per_fault = reps;
  const EvalResult wc_result = core::RunEvaluation(wc).value();

  EvalConfig td = wc;
  td.workload = WorkloadType::kTpcDs;
  const EvalResult td_result = core::RunEvaluation(td).value();

  EvalConfig arx = wc;
  arx.pipeline.engine = core::AssociationEngineType::kArx;
  const EvalResult arx_result = core::RunEvaluation(arx).value();

  EvalConfig nocontext = wc;
  nocontext.pipeline.use_operation_context = false;
  const EvalResult nc_result = core::RunEvaluation(nocontext).value();

  std::printf("campaign shapes (reps=%d seed=%llu):\n", reps,
              static_cast<unsigned long long>(seed));
  CheckGe(wc_result.avg_precision, 0.82, "wordcount precision (paper 91.2%)");
  CheckGe(wc_result.avg_recall, 0.74, "wordcount recall (paper 87.3%)");
  CheckGe(td_result.avg_precision, 0.75, "tpcds precision (paper 88.1%)");
  CheckGe(td_result.avg_recall, 0.66, "tpcds recall (paper 86%)");
  CheckGe(wc_result.avg_precision - td_result.avg_precision, -0.05,
          "batch >= interactive precision (roughly)");
  CheckGe(wc_result.avg_precision - arx_result.avg_precision, 0.04,
          "InvarNet-X precision above ARX (paper ~9%)");
  CheckGe(arx_result.avg_recall, 0.45, "ARX recall not degenerate");
  CheckLe(nc_result.avg_precision, wc_result.avg_precision - 0.25,
          "no-context precision collapses");
  CheckLe(nc_result.avg_recall, wc_result.avg_recall - 0.25,
          "no-context recall collapses");

  // Per-fault shapes under WordCount.
  double lockr_recall = 1.0, suspend_recall = 0.0;
  for (const core::FaultOutcome& o : wc_result.per_fault) {
    if (o.fault == faults::FaultType::kLockRace) lockr_recall = o.recall();
    if (o.fault == faults::FaultType::kSuspend) suspend_recall = o.recall();
  }
  CheckLe(lockr_recall, 0.75, "lock-r recall is the weak spot");
  CheckGe(suspend_recall, 0.8, "suspend recall near-perfect");

  // --- Fig. 4 correlations -----------------------------------------------
  std::printf("fig4 shapes:\n");
  CheckGe(Fig4Corr(WorkloadType::kWordCount, seed), 0.9,
          "wordcount CPI~time correlation (paper 0.97)");
  CheckGe(Fig4Corr(WorkloadType::kSort, seed + 1000), 0.9,
          "sort CPI~time correlation (paper 0.95)");

  // --- Fig. 2 robustness --------------------------------------------------
  {
    telemetry::RunConfig normal;
    normal.workload = WorkloadType::kWordCount;
    normal.seed = seed;
    telemetry::RunConfig noisy = normal;
    faults::FaultWindow window;
    window.start_tick = 15;
    window.duration_ticks = 30;
    noisy.fault =
        telemetry::FaultRequest{faults::FaultType::kCpuUtilNoise, window};
    const auto a = telemetry::SimulateRun(normal).value();
    const auto b = telemetry::SimulateRun(noisy).value();
    std::printf("fig2 shapes:\n");
    CheckLe(std::fabs(b.duration_seconds / a.duration_seconds - 1.0), 0.05,
            "cpu noise leaves execution time flat");
    const double cpi_ratio =
        Mean(b.nodes[1].cpi) / Mean(a.nodes[1].cpi);
    CheckLe(std::fabs(cpi_ratio - 1.0), 0.05, "cpu noise leaves CPI flat");
  }

  std::printf("\n%s (%d failing)\n",
              failures == 0 ? "ALL SHAPES HOLD" : "SHAPE REGRESSIONS",
              failures);
  return failures == 0 ? 0 : 1;
}
