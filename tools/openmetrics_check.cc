// CI checker: validates a Prometheus/OpenMetrics text exposition (as served
// by `invarnetx serve --http-port` at /metrics) read from a file or stdin.
// Exits 0 and prints the sample count when the document is well-formed;
// exits 1 with the validator's complaint otherwise.
//
// Usage: openmetrics_check [FILE]    (no FILE: read stdin)

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "openmetrics_check: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  size_t num_samples = 0;
  const invarnetx::Status status =
      invarnetx::obs::ValidateOpenMetrics(text, &num_samples);
  if (!status.ok()) {
    std::fprintf(stderr, "openmetrics_check: INVALID: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("openmetrics_check: OK, %zu samples\n", num_samples);
  return 0;
}
