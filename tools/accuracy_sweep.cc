// Developer tool: accuracy sweep over workloads and seeds to give a
// low-variance view of campaign precision/recall while tuning the
// simulator and pipeline. Not part of the bench suite.
//
// Usage: accuracy_sweep [reps=10] [seeds=3]

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "core/evaluate.h"
#include "obs/log.h"

int main(int argc, char** argv) {
  namespace core = invarnetx::core;
  const int reps = argc > 1 ? std::atoi(argv[1]) : 10;
  const int num_seeds = argc > 2 ? std::atoi(argv[2]) : 3;
  const uint64_t seeds[] = {42, 7, 1234, 99, 2026};

  invarnetx::TextTable table({"workload", "seed", "precision", "recall"});
  for (auto workload : {invarnetx::workload::WorkloadType::kWordCount,
                        invarnetx::workload::WorkloadType::kTpcDs}) {
    double psum = 0, rsum = 0;
    for (int s = 0; s < num_seeds && s < 5; ++s) {
      core::EvalConfig config;
      config.workload = workload;
      config.seed = seeds[s];
      config.test_runs_per_fault = reps;
      auto result = core::RunEvaluation(config);
      if (!result.ok()) {
        INVARNETX_OBS_LOG(
            invarnetx::obs::LogLevel::kError, "eval failed",
            {{"workload", invarnetx::workload::WorkloadName(workload)},
             {"seed", seeds[s]},
             {"error", result.status().ToString()}});
        return 1;
      }
      psum += result.value().avg_precision;
      rsum += result.value().avg_recall;
      table.AddRow({invarnetx::workload::WorkloadName(workload),
                    std::to_string(seeds[s]),
                    invarnetx::FormatPercent(result.value().avg_precision),
                    invarnetx::FormatPercent(result.value().avg_recall)});
    }
    table.AddRow({invarnetx::workload::WorkloadName(workload), "MEAN",
                  invarnetx::FormatPercent(psum / num_seeds),
                  invarnetx::FormatPercent(rsum / num_seeds)});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
