// Signature explorer: trains a context, builds the signature database for
// every applicable fault, persists everything to XML (the paper's storage
// format), reloads it into a fresh pipeline, and prints the database
// contents - the violated association pairs behind each problem signature.
//
// Usage: signature_explorer [directory] [seed]   (default: ./invarnetx_store)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/evaluate.h"
#include "core/pipeline.h"
#include "telemetry/metrics.h"

int main(int argc, char** argv) {
  namespace core = invarnetx::core;
  namespace faults = invarnetx::faults;
  using invarnetx::workload::WorkloadType;

  const std::string dir = argc > 1 ? argv[1] : "invarnetx_store";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  std::filesystem::create_directories(dir);

  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed);
  if (!normal.ok()) {
    std::fprintf(stderr, "%s\n", normal.status().ToString().c_str());
    return 1;
  }
  core::InvarNetX invarnet;
  const core::OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  if (invarnetx::Status st = invarnet.TrainContext(context, normal.value(), 1);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  for (faults::FaultType f : faults::AllFaults()) {
    if (!faults::AppliesTo(f, WorkloadType::kWordCount)) continue;
    auto run = core::SimulateFaultRun(WorkloadType::kWordCount, f, seed + 77);
    if (invarnetx::Status st = invarnet.AddSignature(
            context, faults::FaultName(f), run.value(), 1);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Persist and reload - the XML files are the paper's interchange format.
  if (invarnetx::Status st = invarnet.SaveToDirectory(dir); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  core::InvarNetX reloaded;
  if (invarnetx::Status st = reloaded.LoadFromDirectory(dir); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("persisted and reloaded store at %s/ "
              "(models.xml, invariants.xml, signatures.xml)\n\n",
              dir.c_str());

  const auto model_ptr = reloaded.GetContext(context).value();
  const core::ContextModel& model = *model_ptr;
  const std::vector<int> pairs = model.invariants.PairIndices();
  std::printf("context %s: %zu invariants, %zu signatures\n\n",
              context.ToString().c_str(), pairs.size(),
              model.sigdb.size());
  for (const core::Signature& sig : model.sigdb.signatures()) {
    int ones = 0;
    for (uint8_t b : sig.bits) ones += b;
    std::printf("%-10s %3d violations:", sig.problem.c_str(), ones);
    int shown = 0;
    for (size_t i = 0; i < sig.bits.size() && shown < 4; ++i) {
      if (!sig.bits[i]) continue;
      int a = 0, b = 0;
      invarnetx::telemetry::PairFromIndex(pairs[i], &a, &b);
      std::printf(" [%s ~ %s]",
                  invarnetx::telemetry::MetricName(a).c_str(),
                  invarnetx::telemetry::MetricName(b).c_str());
      ++shown;
    }
    if (ones > shown) std::printf(" ... +%d more", ones - shown);
    std::printf("\n");
  }
  return 0;
}
