// FIFO-queue monitoring: the closest thing to the paper's deployment story.
// A queue of batch jobs (grep -> wordcount -> grep) runs under Hadoop's
// FIFO mode; at every job arrival the OnlineMonitor "selects a performance
// model from the archived models instantly" (Sec. 3.2); a disk hog strikes
// during the middle job; the alarm fires, cause inference names the hog,
// and a cluster-wide scan localizes the culprit node (the paper's Fig. 1).
//
// Usage: fifo_monitor [seed]

#include <cstdio>
#include <cstdlib>

#include "core/cluster_diagnosis.h"
#include "core/evaluate.h"
#include "core/monitor.h"

int main(int argc, char** argv) {
  namespace core = invarnetx::core;
  namespace faults = invarnetx::faults;
  namespace telemetry = invarnetx::telemetry;
  using invarnetx::workload::WorkloadType;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const size_t victim = 1;  // 10.0.0.2

  // ---- offline: train contexts for both workload types on every slave ----
  core::InvarNetX invarnet;
  for (WorkloadType type : {WorkloadType::kGrep, WorkloadType::kWordCount}) {
    auto normal = core::SimulateNormalRuns(type, 10, seed);
    if (!normal.ok()) {
      std::fprintf(stderr, "%s\n", normal.status().ToString().c_str());
      return 1;
    }
    for (size_t node = 1; node <= 4; ++node) {
      const core::OperationContext context{
          type, "10.0.0." + std::to_string(node + 1)};
      if (auto st = invarnet.TrainContext(context, normal.value(), node);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    // Teach the victim-node signature base every applicable fault.
    uint64_t fi = 0;
    for (faults::FaultType f : faults::AllFaults()) {
      if (!faults::AppliesTo(f, type)) continue;
      for (uint64_t rep = 0; rep < 2; ++rep) {
        auto run = core::SimulateFaultRun(type, f,
                                          seed + 0x20000 + fi * 1000 + rep);
        (void)invarnet.AddSignature(
            core::OperationContext{type, "10.0.0.2"}, faults::FaultName(f),
            run.value(), victim);
      }
      ++fi;
    }
  }
  std::printf("trained grep+wordcount contexts on 4 slaves\n\n");

  // ---- the monitored trace: a FIFO queue with a mid-queue disk hog -------
  telemetry::SequenceConfig sequence;
  sequence.jobs = {WorkloadType::kGrep, WorkloadType::kWordCount,
                   WorkloadType::kGrep};
  sequence.seed = seed + 5;
  faults::FaultWindow window;
  window.start_tick = 45;  // lands inside the second job
  window.duration_ticks = 30;
  window.target_node = victim;
  sequence.fault = telemetry::FaultRequest{faults::FaultType::kDiskHog,
                                           window};
  auto trace = telemetry::SimulateJobSequence(sequence);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }

  // ---- online loop: switch context at each job arrival --------------------
  core::OnlineMonitor monitor(&invarnet);
  const auto& node = trace.value().nodes[victim];
  const auto& spans = trace.value().job_spans;
  size_t span_index = 0;
  bool alarm_announced = false;
  auto report_if_alarmed = [&](int tick) {
    if (!monitor.alarm_active()) return;
    auto report = monitor.Diagnose();
    if (!report.ok()) return;
    std::printf("t=%3d  cause inference for %s:\n", tick,
                monitor.context().ToString().c_str());
    for (size_t k = 0; k < report.value().causes.size() && k < 3; ++k) {
      std::printf("         %-10s %.2f\n",
                  report.value().causes[k].problem.c_str(),
                  report.value().causes[k].score);
    }
  };
  for (int t = 0; t < trace.value().ticks; ++t) {
    if (span_index < spans.size() && spans[span_index].start_tick == t) {
      // A finished job leaves; if its alarm latched, diagnose before the
      // monitor switches models.
      report_if_alarmed(t);
      const core::OperationContext context{spans[span_index].type,
                                           "10.0.0.2"};
      if (auto st = monitor.StartJob(context); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("t=%3d  job %zu arrives: switched to model for %s\n", t,
                  span_index,
                  invarnetx::workload::WorkloadName(spans[span_index].type)
                      .c_str());
      ++span_index;
    }
    if (!monitor.job_active()) continue;
    std::array<double, invarnetx::telemetry::kNumMetrics> metrics{};
    for (int m = 0; m < invarnetx::telemetry::kNumMetrics; ++m) {
      metrics[static_cast<size_t>(m)] =
          node.metrics[static_cast<size_t>(m)][static_cast<size_t>(t)];
    }
    auto verdict =
        monitor.Observe(node.cpi[static_cast<size_t>(t)], metrics);
    if (verdict.ok() && verdict.value().alarm && !alarm_announced) {
      alarm_announced = true;
      std::printf("t=%3d  *** ALARM in %s (residual %.3f)\n", t,
                  monitor.context().ToString().c_str(),
                  verdict.value().residual);
    }
  }
  report_if_alarmed(trace.value().ticks);

  // ---- cluster-wide localization (the paper's Fig. 1) ---------------------
  // Which node is the culprit? Scan every slave's wordcount context over
  // the middle job's span.
  if (spans.size() >= 2 && spans[1].end_tick > 0) {
    telemetry::RunTrace middle;
    middle.workload = spans[1].type;
    middle.ticks = spans[1].end_tick - spans[1].start_tick;
    for (const auto& n : trace.value().nodes) {
      telemetry::NodeTrace sliced;
      sliced.ip = n.ip;
      sliced.cpi.assign(n.cpi.begin() + spans[1].start_tick,
                        n.cpi.begin() + spans[1].end_tick);
      for (int m = 0; m < invarnetx::telemetry::kNumMetrics; ++m) {
        sliced.metrics[static_cast<size_t>(m)].assign(
            n.metrics[static_cast<size_t>(m)].begin() + spans[1].start_tick,
            n.metrics[static_cast<size_t>(m)].begin() + spans[1].end_tick);
      }
      middle.nodes.push_back(std::move(sliced));
    }
    auto scan = core::DiagnoseCluster(invarnet, middle);
    if (scan.ok()) {
      std::printf("\ncluster scan of the anomalous job:\n");
      for (const auto& entry : scan.value().nodes) {
        std::printf("  %-9s %s (%d violations)\n", entry.node_ip.c_str(),
                    entry.report.anomaly_detected ? "ANOMALOUS" : "healthy",
                    entry.report.num_violations);
      }
      if (scan.value().AnyAnomaly()) {
        const auto& culprit =
            scan.value().nodes[static_cast<size_t>(scan.value().culprit)];
        std::printf("culprit: %s", culprit.node_ip.c_str());
        if (!culprit.report.causes.empty()) {
          std::printf(" - most probable cause: %s (%.2f)",
                      culprit.report.causes[0].problem.c_str(),
                      culprit.report.causes[0].score);
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
