// Quickstart: the full InvarNet-X loop in ~60 lines of application code.
//
//  1. simulate 10 normal WordCount runs on the 5-node testbed,
//  2. train the operation context (ARIMA performance model on CPI +
//     MIC likely invariants, Algorithm 1),
//  3. teach the signature database two investigated problems,
//  4. hit the cluster with a memory hog and ask for a diagnosis.
//
// Usage: quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/evaluate.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  namespace core = invarnetx::core;
  namespace faults = invarnetx::faults;
  using invarnetx::workload::WorkloadType;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Ten fault-free runs provide the training baseline.
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed);
  if (!normal.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 normal.status().ToString().c_str());
    return 1;
  }

  // 2. Train the context (workload wordcount, node 10.0.0.2).
  core::InvarNetX invarnet;  // paper-default configuration
  const core::OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  const size_t node = 1;  // index of 10.0.0.2 on the testbed
  invarnetx::Status trained =
      invarnet.TrainContext(context, normal.value(), node);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  const auto model_ptr = invarnet.GetContext(context).value();
  const core::ContextModel& model = *model_ptr;
  std::printf("trained %s: ARIMA %s on CPI, %d likely invariants\n",
              context.ToString().c_str(),
              model.perf.arima().order().ToString().c_str(),
              model.invariants.NumInvariants());

  // 3. Two investigated problems go into the signature database.
  for (faults::FaultType known :
       {faults::FaultType::kMemHog, faults::FaultType::kCpuHog}) {
    for (int rep = 0; rep < 2; ++rep) {
      auto run = core::SimulateFaultRun(WorkloadType::kWordCount, known,
                                        seed + 100 + rep);
      invarnetx::Status added = invarnet.AddSignature(
          context, faults::FaultName(known), run.value(), node);
      if (!added.ok()) {
        std::fprintf(stderr, "AddSignature: %s\n", added.ToString().c_str());
        return 1;
      }
    }
  }

  // 4. A memory hog strikes; diagnose the run.
  auto incident =
      core::SimulateFaultRun(WorkloadType::kWordCount,
                             faults::FaultType::kMemHog, seed + 999);
  auto report = invarnet.Diagnose(context, incident.value(), node);
  if (!report.ok()) {
    std::fprintf(stderr, "diagnosis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (!report.value().anomaly_detected) {
    std::printf("no anomaly detected\n");
    return 0;
  }
  std::printf("anomaly detected at tick %d; %d invariant violations\n",
              report.value().first_alarm_tick, report.value().num_violations);
  std::printf("ranked causes:\n");
  for (const core::RankedCause& cause : report.value().causes) {
    std::printf("  %-10s similarity %.2f\n", cause.problem.c_str(),
                cause.score);
  }
  if (!report.value().known_problem) {
    std::printf("below similarity threshold - hints (violated pairs):\n");
    for (const std::string& hint : report.value().hints) {
      std::printf("  %s\n", hint.c_str());
    }
  }
  return 0;
}
