// Fault-signature study: trains InvarNet-X on normal WordCount runs, then
// injects every applicable fault once and prints (a) the anomaly-detection
// outcome, (b) the violation count, and (c) the pairwise similarity between
// fault signatures - the observable basis of signature-based diagnosis.
//
// Usage: fault_study [workload] [seed]   (default: wordcount 42)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "faults/fault.h"

namespace {

using invarnetx::FormatDouble;
using invarnetx::TextTable;

int Fail(const invarnetx::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  namespace core = invarnetx::core;
  namespace faults = invarnetx::faults;
  namespace workload = invarnetx::workload;

  workload::WorkloadType type = workload::WorkloadType::kWordCount;
  if (argc > 1) {
    invarnetx::Result<workload::WorkloadType> parsed =
        workload::WorkloadFromName(argv[1]);
    if (!parsed.ok()) return Fail(parsed.status());
    type = parsed.value();
  }
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("== InvarNet-X fault study: workload=%s seed=%llu ==\n\n",
              workload::WorkloadName(type).c_str(),
              static_cast<unsigned long long>(seed));

  core::EvalConfig config;
  config.workload = type;
  config.seed = seed;

  invarnetx::Result<std::vector<invarnetx::telemetry::RunTrace>> normal =
      core::SimulateNormalRuns(type, config.normal_runs, seed);
  if (!normal.ok()) return Fail(normal.status());
  std::printf("trained on %d normal runs (durations:", config.normal_runs);
  for (const auto& run : normal.value()) {
    std::printf(" %d", run.ticks);
  }
  std::printf(" ticks)\n");

  core::InvarNetX pipeline(config.pipeline);
  invarnetx::Status trained =
      core::TrainPipeline(&pipeline, config, normal.value());
  if (!trained.ok()) return Fail(trained);

  const core::OperationContext context = core::VictimContext(config);
  invarnetx::Result<std::shared_ptr<const core::ContextModel>> model =
      pipeline.GetContext(context);
  if (!model.ok()) return Fail(model.status());
  std::printf("likely invariants: %d of %d metric pairs\n\n",
              model.value()->invariants.NumInvariants(),
              invarnetx::telemetry::kNumMetricPairs);

  // One run per fault: detection outcome + violation tuple.
  std::vector<std::string> names;
  std::vector<std::vector<uint8_t>> tuples;
  TextTable table({"fault", "detected", "alarm_tick", "violations",
                   "run_ticks"});
  for (faults::FaultType fault : faults::AllFaults()) {
    if (!faults::AppliesTo(fault, type)) continue;
    invarnetx::Result<invarnetx::telemetry::RunTrace> run =
        core::SimulateFaultRun(type, fault, seed + 777);
    if (!run.ok()) return Fail(run.status());
    invarnetx::Result<core::DiagnosisReport> report =
        pipeline.Diagnose(context, run.value(), config.victim_node);
    if (!report.ok()) return Fail(report.status());
    table.AddRow({faults::FaultName(fault),
                  report.value().anomaly_detected ? "yes" : "NO",
                  std::to_string(report.value().first_alarm_tick),
                  std::to_string(report.value().num_violations),
                  std::to_string(run.value().ticks)});
    if (report.value().anomaly_detected) {
      // Recompute the tuple for the similarity table below.
      invarnetx::Result<core::DiagnosisReport> infer =
          pipeline.InferCause(context, run.value(), config.victim_node);
      if (!infer.ok()) return Fail(infer.status());
      names.push_back(faults::FaultName(fault));
      tuples.push_back(infer.value().violations);
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Pairwise Jaccard similarity between the fault signatures.
  std::vector<std::string> header = {"jaccard"};
  for (const std::string& n : names) header.push_back(n);
  TextTable sims(header);
  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row = {names[i]};
    for (size_t j = 0; j < names.size(); ++j) {
      invarnetx::Result<double> s = core::TupleSimilarity(
          tuples[i], tuples[j], core::SimilarityMetric::kJaccard);
      if (!s.ok()) return Fail(s.status());
      row.push_back(FormatDouble(s.value(), 2));
    }
    sims.AddRow(row);
  }
  std::printf("%s\n", sims.Render().c_str());
  std::printf(
      "reading guide: diagonal is 1; high off-diagonal pairs (e.g. net-drop\n"
      "vs net-delay) are the signature conflicts the paper discusses.\n");
  return 0;
}
