// Multi-fault diagnosis: the paper notes that although simultaneous faults
// on one node are rare, InvarNet-X "could be easily extended to multiple
// faults by listing multiple root causes whose signatures are most similar
// to the violation tuple". This example injects two faults at once and
// shows both surfacing in the ranked cause list.
//
// Usage: multi_fault [fault-a] [fault-b] [seed]   (default: cpu-hog mem-hog)

#include <cstdio>
#include <cstdlib>

#include "core/evaluate.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  namespace core = invarnetx::core;
  namespace faults = invarnetx::faults;
  namespace telemetry = invarnetx::telemetry;
  using invarnetx::workload::WorkloadType;

  auto fault_a = faults::FaultFromName(argc > 1 ? argv[1] : "cpu-hog");
  auto fault_b = faults::FaultFromName(argc > 2 ? argv[2] : "mem-hog");
  if (!fault_a.ok() || !fault_b.ok()) {
    std::fprintf(stderr, "unknown fault name\n");
    return 1;
  }
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  // Offline: context + full signature base.
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed);
  core::InvarNetX invarnet;
  const core::OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  if (auto st = invarnet.TrainContext(context, normal.value(), 1); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  uint64_t fi = 0;
  for (faults::FaultType f : faults::AllFaults()) {
    if (!faults::AppliesTo(f, WorkloadType::kWordCount)) continue;
    for (uint64_t rep = 0; rep < 2; ++rep) {
      auto run = core::SimulateFaultRun(WorkloadType::kWordCount, f,
                                        seed + 0x20000 + fi * 1000 + rep);
      (void)invarnet.AddSignature(context, faults::FaultName(f), run.value(),
                                  1);
    }
    ++fi;
  }

  // Online: both faults strike the victim node simultaneously.
  telemetry::RunConfig config;
  config.workload = WorkloadType::kWordCount;
  config.seed = seed + 999;
  config.fault = telemetry::FaultRequest{
      fault_a.value(), telemetry::DefaultFaultWindow(fault_a.value())};
  config.extra_faults.push_back(telemetry::FaultRequest{
      fault_b.value(), telemetry::DefaultFaultWindow(fault_b.value())});
  auto run = telemetry::SimulateRun(config);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  auto report = invarnet.Diagnose(context, run.value(), 1);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("injected: %s + %s\n", faults::FaultName(fault_a.value()).c_str(),
              faults::FaultName(fault_b.value()).c_str());
  if (!report.value().anomaly_detected) {
    std::printf("no anomaly detected\n");
    return 0;
  }
  std::printf("alarm at tick %d, %d violations; ranked causes:\n",
              report.value().first_alarm_tick, report.value().num_violations);
  for (const core::RankedCause& cause : report.value().causes) {
    const bool injected =
        cause.problem == faults::FaultName(fault_a.value()) ||
        cause.problem == faults::FaultName(fault_b.value());
    std::printf("  %-10s %.2f%s\n", cause.problem.c_str(), cause.score,
                injected ? "   << injected" : "");
  }

  // Also report the database's known signature conflicts - ambiguity the
  // operator should expect in ranked lists.
  const auto model = invarnet.GetContext(context).value();
  auto conflicts = model->sigdb.FindConflicts(0.55);
  if (conflicts.ok() && !conflicts.value().empty()) {
    std::printf("\nknown signature conflicts (similarity >= 0.55):\n");
    for (const auto& c : conflicts.value()) {
      std::printf("  %s ~ %s (%.2f)\n", c.problem_a.c_str(),
                  c.problem_b.c_str(), c.similarity);
    }
  }
  return 0;
}
