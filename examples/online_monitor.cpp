// Online monitoring demo: streams a run tick by tick through the
// AnomalyDetector exactly as a deployment would - one CPI sample every 10
// simulated seconds, one-step-ahead prediction, threshold check, 3-in-a-row
// debounce - and prints a live "dashboard" line per tick. When the alarm
// fires, cause inference runs once on the data collected so far.
//
// Usage: online_monitor [fault-name] [seed]
//   fault-name: any of the 15 faults (default disk-hog); "none" for a
//   clean run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/evaluate.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  namespace core = invarnetx::core;
  namespace faults = invarnetx::faults;
  namespace telemetry = invarnetx::telemetry;
  using invarnetx::workload::WorkloadType;

  std::string fault_name = argc > 1 ? argv[1] : "disk-hog";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Offline phase: train the context and the signature base.
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed);
  if (!normal.ok()) {
    std::fprintf(stderr, "%s\n", normal.status().ToString().c_str());
    return 1;
  }
  core::InvarNetX invarnet;
  const core::OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  const size_t node = 1;
  if (invarnetx::Status st =
          invarnet.TrainContext(context, normal.value(), node);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  for (faults::FaultType f : faults::AllFaults()) {
    if (!faults::AppliesTo(f, WorkloadType::kWordCount)) continue;
    for (int rep = 0; rep < 2; ++rep) {
      auto run = core::SimulateFaultRun(
          WorkloadType::kWordCount, f,
          seed + 1000 + static_cast<uint64_t>(rep));
      (void)invarnet.AddSignature(context, faults::FaultName(f), run.value(),
                                  node);
    }
  }

  // The run to monitor.
  invarnetx::Result<telemetry::RunTrace> run = [&] {
    if (fault_name == "none") {
      telemetry::RunConfig config;
      config.workload = WorkloadType::kWordCount;
      config.seed = seed + 5;
      return telemetry::SimulateRun(config);
    }
    auto type = faults::FaultFromName(fault_name);
    if (!type.ok()) {
      return invarnetx::Result<telemetry::RunTrace>(type.status());
    }
    return core::SimulateFaultRun(WorkloadType::kWordCount, type.value(),
                                  seed + 5);
  }();
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  const auto model_ptr = invarnet.GetContext(context).value();
  const core::ContextModel& model = *model_ptr;
  core::AnomalyDetector detector(model.perf, core::ThresholdRule::kBetaMax);
  const double threshold = model.perf.Threshold(core::ThresholdRule::kBetaMax);
  std::printf("monitoring %s on %s (threshold %.4f, 3-in-a-row debounce)\n\n",
              fault_name.c_str(), context.ToString().c_str(), threshold);

  int alarm_tick = -1;
  const auto& cpi = run.value().nodes[node].cpi;
  for (size_t t = 0; t < cpi.size(); ++t) {
    const bool alarm = detector.Observe(cpi[t]);
    // A coarse ASCII meter of the residual relative to the threshold.
    const int bars = std::min(
        30, static_cast<int>(detector.last_residual() / threshold * 10.0));
    std::printf("t=%3zu  cpi=%6.3f  residual=%7.4f  |%-30s|%s\n", t, cpi[t],
                detector.last_residual(), std::string(bars, '#').c_str(),
                alarm ? "  << ALARM" : "");
    if (alarm && alarm_tick < 0) alarm_tick = static_cast<int>(t);
  }
  if (alarm_tick < 0) {
    std::printf("\nrun completed with no alarm.\n");
    return 0;
  }
  std::printf("\nalarm first fired at tick %d; running cause inference...\n",
              alarm_tick);
  auto report = invarnet.InferCause(context, run.value(), node);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%d invariant violations; ranked causes:\n",
              report.value().num_violations);
  for (const core::RankedCause& cause : report.value().causes) {
    std::printf("  %-10s similarity %.2f\n", cause.problem.c_str(),
                cause.score);
  }
  return 0;
}
