#ifndef INVARNETX_CAMPAIGN_SCENARIO_H_
#define INVARNETX_CAMPAIGN_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "faults/fault.h"
#include "workload/spec.h"

namespace invarnetx::campaign {

// One fault-injection scenario: the simulated cluster, the workload run on
// it, the fault schedule, and the expected root cause - the ground truth an
// evaluation campaign scores diagnosis output against (the paper's Sec. 4.1
// methodology: inject a known fault, diagnose, compare).
//
// Scenarios are written as plain-text `key = value` files (see
// examples/scenarios/) so new fault studies need no recompilation:
//
//   # CPU hog on a wordcount slave.
//   name = cpu-hog-wordcount
//   workload = wordcount
//   fault = cpu-hog
//   seed = 42
//   slaves = 4
//   normal-runs = 5
//   signature-runs = 2
//   test-runs = 3
//   ticks = 60
//   fault-start = 8
//   fault-duration = 30
//   target-node = 1
//   expected-cause = cpu-hog
//   signatures = all
struct Scenario {
  std::string name;
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  faults::FaultType fault = faults::FaultType::kCpuHog;
  // Ground-truth root cause the ranked cause list is scored against;
  // defaults to the fault's name.
  std::string expected_cause;
  uint64_t seed = 42;
  // Cluster size: 1 master + `slaves` slaves (the paper's testbed is 4).
  int slaves = 4;
  // Fault-free runs used to train the context model.
  int normal_runs = 5;
  // Runs per problem used to teach the signature database.
  int signature_runs = 2;
  // Independently seeded faulty runs that are diagnosed and scored.
  int test_runs = 3;
  // Observation window for interactive workloads (batch jobs run to
  // completion).
  int interactive_ticks = 60;
  // Fault schedule. Defaults to telemetry::DefaultFaultWindow(fault).
  faults::FaultWindow window;
  // Problems taught to the signature database before diagnosis; empty means
  // every fault applicable to the workload (`signatures = all`).
  std::vector<faults::FaultType> signature_faults;
  // Unknown-fault study: `signatures = all-except-fault` teaches every
  // applicable fault EXCEPT the injected one, so the signature engine can
  // never name the culprit and only the causal-graph ranking can score.
  bool hold_out = false;
  // Ground-truth culprit metrics the causal suspect ranking is scored
  // against (telemetry::MetricId). Defaults to the injected fault's
  // footprint (DefaultCulpritMetrics); override with `expected-metrics =
  // cpu_user_pct, load_avg_1m`.
  std::vector<int> expected_metrics;
  // Where the scenario was loaded from (diagnostics only).
  std::string source_path;
};

// The metrics a fault's injector perturbs most directly - the default
// ranked-metric answer list unknown-fault scenarios score the causal
// engine against.
std::vector<int> DefaultCulpritMetrics(faults::FaultType fault);

// Parses one scenario from `key = value` text. `#` starts a comment; blank
// lines are ignored; unknown keys are errors (typos must not silently
// change a campaign). Required keys: name, workload, fault.
Result<Scenario> ParseScenario(const std::string& text,
                               const std::string& source_path = "");

// Reads and parses one `.scenario` file.
Result<Scenario> LoadScenarioFile(const std::string& path);

// Loads every `*.scenario` file in `dir`, sorted by filename so campaign
// order (and therefore every scoreboard) is stable across platforms.
// Fails if the directory has no scenario files or two share a name.
Result<std::vector<Scenario>> LoadScenarioDirectory(const std::string& dir);

}  // namespace invarnetx::campaign

#endif  // INVARNETX_CAMPAIGN_SCENARIO_H_
