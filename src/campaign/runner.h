#ifndef INVARNETX_CAMPAIGN_RUNNER_H_
#define INVARNETX_CAMPAIGN_RUNNER_H_

#include <string>
#include <vector>

#include "campaign/scenario.h"
#include "common/status.h"
#include "core/pipeline.h"

namespace invarnetx::campaign {

// Execution knobs of a campaign - runtime concerns only, never part of a
// scenario: results are bit-identical for every setting (the determinism
// property the tier-2 suite asserts).
struct CampaignOptions {
  // Workers for invariant mining and the per-scenario run fan-out
  // (<= 0: one per hardware thread; 1: serial).
  int threads = 0;
  bool use_assoc_cache = true;
  // Ranked causes retained per diagnosis; precision@k scores against it.
  size_t top_k = 5;
};

// Outcome of diagnosing one test run of a scenario.
struct RunOutcome {
  int rep = 0;
  bool detected = false;
  bool known_problem = false;
  int first_alarm_tick = -1;
  int num_violations = 0;
  // 1-based rank of the expected cause in the ranked list; 0 = absent.
  int expected_rank = 0;
  std::vector<core::RankedCause> causes;
};

// Diagnosis quality of one scenario, over its test runs.
struct ScenarioScore {
  std::string name;
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  faults::FaultType fault = faults::FaultType::kCpuHog;
  std::string expected_cause;
  faults::FaultWindow window;
  int test_runs = 0;
  int detected = 0;       // anomaly detection fired
  int top1_correct = 0;   // expected cause ranked first
  int topk_correct = 0;   // expected cause within top_k
  int found_any = 0;      // expected cause anywhere in the ranked list
  double precision_at_1 = 0.0;  // top1_correct / test_runs
  double precision_at_k = 0.0;  // topk_correct / test_runs
  double recall = 0.0;          // found_any / test_runs
  // Mean average precision: with one relevant cause per run, AP reduces to
  // the reciprocal rank (0 when undetected or absent).
  double map = 0.0;
  // Mean (first_alarm_tick - fault start) over detected runs; negative
  // values mean the alarm pre-dates the injection (a false alarm that the
  // fault then "confirms").
  double mean_detection_latency_ticks = 0.0;
  std::vector<RunOutcome> runs;
};

// A whole campaign: per-scenario scores plus cross-scenario means.
struct CampaignResult {
  std::vector<ScenarioScore> scores;
  int total_test_runs = 0;
  double mean_precision_at_1 = 0.0;
  double mean_precision_at_k = 0.0;
  double mean_recall = 0.0;
  double mean_map = 0.0;
  double mean_detection_latency_ticks = 0.0;  // over scenarios with alarms
};

// Executes one scenario end to end: simulate fault-free runs, train the
// victim context, teach the signature database the scenario's problem
// catalog, then diagnose `test_runs` independently seeded injections and
// score the ranked causes against the expected root cause. Deterministic
// for a given scenario regardless of `options.threads`.
Result<ScenarioScore> RunScenario(const Scenario& scenario,
                                  const CampaignOptions& options);

// Seed-stream helpers shared with the serve replay layer: rep `i` of the
// scenario's fault-free and faulty test populations, on exactly the seed
// streams RunScenario uses - a fleet replay therefore streams byte-identical
// traces to the ones the campaign diagnosed offline.
Result<telemetry::RunTrace> SimulateScenarioNormalRun(const Scenario& scenario,
                                                      int rep);
Result<telemetry::RunTrace> SimulateScenarioTestRun(const Scenario& scenario,
                                                    int rep);
// Rep `rep` of the signature-teaching population for
// scenario.signature_faults[fault_index] (the fault injected in its default
// window, retargeted at the victim node - see RunScenario step 3).
Result<telemetry::RunTrace> SimulateScenarioSignatureRun(
    const Scenario& scenario, size_t fault_index, int rep);

// The node whose operation context the campaign diagnoses, and that
// context itself (victim slave for slave faults; slave 1 for master faults).
size_t ScenarioVictimNode(const Scenario& scenario);
core::OperationContext ScenarioVictimContext(const Scenario& scenario);

// Runs every scenario in order and fills the cross-scenario means.
Result<CampaignResult> RunCampaign(const std::vector<Scenario>& scenarios,
                                   const CampaignOptions& options);

}  // namespace invarnetx::campaign

#endif  // INVARNETX_CAMPAIGN_RUNNER_H_
