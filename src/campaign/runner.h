#ifndef INVARNETX_CAMPAIGN_RUNNER_H_
#define INVARNETX_CAMPAIGN_RUNNER_H_

#include <string>
#include <vector>

#include "campaign/scenario.h"
#include "causal/ranking.h"
#include "common/status.h"
#include "core/pipeline.h"

namespace invarnetx::campaign {

// Execution knobs of a campaign - runtime concerns only, never part of a
// scenario: results are bit-identical for every setting (the determinism
// property the tier-2 suite asserts).
struct CampaignOptions {
  // Workers for invariant mining and the per-scenario run fan-out
  // (<= 0: one per hardware thread; 1: serial).
  int threads = 0;
  bool use_assoc_cache = true;
  // Ranked causes retained per diagnosis; precision@k scores against it.
  size_t top_k = 5;
};

// Outcome of diagnosing one test run of a scenario, carrying both engines'
// rankings: the signature engine's ranked causes and the causal-graph
// engine's ranked suspect metrics over the same violation evidence.
struct RunOutcome {
  int rep = 0;
  bool detected = false;
  bool known_problem = false;
  int first_alarm_tick = -1;
  int num_violations = 0;
  // 1-based rank of the expected cause in the ranked list; 0 = absent.
  int expected_rank = 0;
  std::vector<core::RankedCause> causes;
  // Causal engine: suspect metrics ranked over the broken-edge subgraph.
  std::vector<causal::RankedSuspect> suspects;
  // Best 1-based rank of any expected culprit metric among the suspects;
  // 0 = none ranked.
  int causal_rank = 0;
  // Whether the serving path would have fallen back (no signature cleared
  // the similarity threshold).
  bool used_causal_fallback = false;
  // Per-engine wall-clock diagnosis latency. NOT rendered by the
  // deterministic scoreboards - only by RenderEngineComparison.
  double signature_seconds = 0.0;
  double causal_seconds = 0.0;
};

// Diagnosis quality of one scenario, over its test runs.
struct ScenarioScore {
  std::string name;
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  faults::FaultType fault = faults::FaultType::kCpuHog;
  std::string expected_cause;
  faults::FaultWindow window;
  int test_runs = 0;
  int detected = 0;       // anomaly detection fired
  int top1_correct = 0;   // expected cause ranked first
  int topk_correct = 0;   // expected cause within top_k
  int found_any = 0;      // expected cause anywhere in the ranked list
  double precision_at_1 = 0.0;  // top1_correct / test_runs
  double precision_at_k = 0.0;  // topk_correct / test_runs
  double recall = 0.0;          // found_any / test_runs
  // Mean average precision: with one relevant cause per run, AP reduces to
  // the reciprocal rank (0 when undetected or absent).
  double map = 0.0;
  // Mean (first_alarm_tick - fault start) over detected runs; negative
  // values mean the alarm pre-dates the injection (a false alarm that the
  // fault then "confirms").
  double mean_detection_latency_ticks = 0.0;

  // --- Causal engine (ranked-metric answer list) ---------------------
  bool hold_out = false;             // injected fault absent from catalog
  std::vector<int> expected_metrics;  // ground-truth culprit MetricIds
  int causal_top1_correct = 0;  // an expected metric ranked first
  int causal_topk_correct = 0;  // within top_k
  int causal_top3_correct = 0;  // within top 3 (the CI recall@3 gate)
  int causal_found = 0;         // anywhere in the suspect list
  double causal_precision_at_1 = 0.0;
  double causal_precision_at_k = 0.0;
  double causal_recall = 0.0;
  double causal_recall_at_3 = 0.0;
  double causal_map = 0.0;  // reciprocal causal_rank, averaged
  // Per-engine mean wall-clock latency over detected runs. NOT part of any
  // deterministic rendering (see scoreboard.h).
  double mean_signature_seconds = 0.0;
  double mean_causal_seconds = 0.0;

  std::vector<RunOutcome> runs;
};

// A whole campaign: per-scenario scores plus cross-scenario means. The
// signature-engine means are additionally split into known-fault (catalog
// contains the culprit) and hold-out scenarios, because on hold-outs the
// signature engine scores zero by construction and only the causal engine
// can be graded.
struct CampaignResult {
  std::vector<ScenarioScore> scores;
  int total_test_runs = 0;
  int known_scenarios = 0;    // catalog includes the injected fault
  int holdout_scenarios = 0;  // unknown-fault scenarios
  double mean_precision_at_1 = 0.0;
  double mean_precision_at_k = 0.0;
  double mean_recall = 0.0;
  double mean_map = 0.0;
  double mean_detection_latency_ticks = 0.0;  // over scenarios with alarms
  // Signature engine over known-fault scenarios only (the CI precision
  // gate - hold-outs would dilute it to zero).
  double mean_known_precision_at_1 = 0.0;
  // Causal engine over every scenario...
  double mean_causal_precision_at_1 = 0.0;
  double mean_causal_precision_at_k = 0.0;
  double mean_causal_recall = 0.0;
  double mean_causal_map = 0.0;
  // ...and its recall@3 over the hold-out scenarios alone (the CI
  // unknown-fault gate).
  double mean_causal_recall_at_3 = 0.0;
};

// Executes one scenario end to end: simulate fault-free runs, train the
// victim context, teach the signature database the scenario's problem
// catalog, then diagnose `test_runs` independently seeded injections and
// score the ranked causes against the expected root cause. Deterministic
// for a given scenario regardless of `options.threads`.
Result<ScenarioScore> RunScenario(const Scenario& scenario,
                                  const CampaignOptions& options);

// Seed-stream helpers shared with the serve replay layer: rep `i` of the
// scenario's fault-free and faulty test populations, on exactly the seed
// streams RunScenario uses - a fleet replay therefore streams byte-identical
// traces to the ones the campaign diagnosed offline.
Result<telemetry::RunTrace> SimulateScenarioNormalRun(const Scenario& scenario,
                                                      int rep);
Result<telemetry::RunTrace> SimulateScenarioTestRun(const Scenario& scenario,
                                                    int rep);
// Rep `rep` of the signature-teaching population for
// scenario.signature_faults[fault_index] (the fault injected in its default
// window, retargeted at the victim node - see RunScenario step 3).
Result<telemetry::RunTrace> SimulateScenarioSignatureRun(
    const Scenario& scenario, size_t fault_index, int rep);

// The node whose operation context the campaign diagnoses, and that
// context itself (victim slave for slave faults; slave 1 for master faults).
size_t ScenarioVictimNode(const Scenario& scenario);
core::OperationContext ScenarioVictimContext(const Scenario& scenario);

// Runs every scenario in order and fills the cross-scenario means.
Result<CampaignResult> RunCampaign(const std::vector<Scenario>& scenarios,
                                   const CampaignOptions& options);

}  // namespace invarnetx::campaign

#endif  // INVARNETX_CAMPAIGN_RUNNER_H_
