#include "campaign/scoreboard.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/metrics.h"

namespace invarnetx::campaign {
namespace {

// Fixed-width decimal rendering: the one double format used in every
// scoreboard, so output is byte-stable across locales and platforms.
std::string Fixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string GoldenPath(const std::string& golden_dir,
                       const std::string& name) {
  return (std::filesystem::path(golden_dir) / (name + ".report.txt"))
      .string();
}

}  // namespace

std::string RenderCsv(const CampaignResult& result) {
  std::ostringstream out;
  out << "scenario,workload,fault,expected_cause,hold_out,test_runs,detected,"
         "top1_correct,topk_correct,precision_at_1,precision_at_k,recall,"
         "map,mean_detection_latency_ticks,causal_precision_at_1,"
         "causal_precision_at_k,causal_recall,causal_recall_at_3,causal_map\n";
  for (const ScenarioScore& s : result.scores) {
    out << s.name << ',' << workload::WorkloadName(s.workload) << ','
        << faults::FaultName(s.fault) << ',' << s.expected_cause << ','
        << (s.hold_out ? 1 : 0) << ','
        << s.test_runs << ',' << s.detected << ',' << s.top1_correct << ','
        << s.topk_correct << ',' << Fixed(s.precision_at_1) << ','
        << Fixed(s.precision_at_k) << ',' << Fixed(s.recall) << ','
        << Fixed(s.map) << ',' << Fixed(s.mean_detection_latency_ticks)
        << ',' << Fixed(s.causal_precision_at_1) << ','
        << Fixed(s.causal_precision_at_k) << ',' << Fixed(s.causal_recall)
        << ',' << Fixed(s.causal_recall_at_3) << ',' << Fixed(s.causal_map)
        << '\n';
  }
  return out.str();
}

std::string RenderJson(const CampaignResult& result) {
  std::ostringstream out;
  out << "{\n  \"scenarios\": [";
  for (size_t i = 0; i < result.scores.size(); ++i) {
    const ScenarioScore& s = result.scores[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << JsonEscape(s.name) << "\", \"workload\": \""
        << workload::WorkloadName(s.workload) << "\", \"fault\": \""
        << faults::FaultName(s.fault) << "\", \"expected_cause\": \""
        << JsonEscape(s.expected_cause) << "\", \"hold_out\": "
        << (s.hold_out ? "true" : "false")
        << ", \"test_runs\": " << s.test_runs
        << ", \"detected\": " << s.detected
        << ", \"top1_correct\": " << s.top1_correct
        << ", \"topk_correct\": " << s.topk_correct
        << ", \"precision_at_1\": " << Fixed(s.precision_at_1)
        << ", \"precision_at_k\": " << Fixed(s.precision_at_k)
        << ", \"recall\": " << Fixed(s.recall) << ", \"map\": "
        << Fixed(s.map) << ", \"mean_detection_latency_ticks\": "
        << Fixed(s.mean_detection_latency_ticks)
        << ", \"causal_precision_at_1\": " << Fixed(s.causal_precision_at_1)
        << ", \"causal_precision_at_k\": " << Fixed(s.causal_precision_at_k)
        << ", \"causal_recall\": " << Fixed(s.causal_recall)
        << ", \"causal_recall_at_3\": " << Fixed(s.causal_recall_at_3)
        << ", \"causal_map\": " << Fixed(s.causal_map) << ", \"runs\": [";
    for (size_t r = 0; r < s.runs.size(); ++r) {
      const RunOutcome& run = s.runs[r];
      out << (r == 0 ? "" : ", ") << "{\"rep\": " << run.rep
          << ", \"detected\": " << (run.detected ? "true" : "false")
          << ", \"first_alarm_tick\": " << run.first_alarm_tick
          << ", \"num_violations\": " << run.num_violations
          << ", \"expected_rank\": " << run.expected_rank
          << ", \"top_cause\": \""
          << JsonEscape(run.causes.empty() ? "" : run.causes[0].problem)
          << "\", \"causal_rank\": " << run.causal_rank
          << ", \"causal_fallback\": "
          << (run.used_causal_fallback ? "true" : "false")
          << ", \"top_suspect\": \""
          << (run.suspects.empty()
                  ? ""
                  : telemetry::MetricName(run.suspects[0].metric))
          << "\"}";
    }
    out << "]}";
  }
  out << "\n  ],\n  \"summary\": {\"scenarios\": " << result.scores.size()
      << ", \"test_runs\": " << result.total_test_runs
      << ", \"known_scenarios\": " << result.known_scenarios
      << ", \"holdout_scenarios\": " << result.holdout_scenarios
      << ", \"mean_precision_at_1\": " << Fixed(result.mean_precision_at_1)
      << ", \"mean_precision_at_k\": " << Fixed(result.mean_precision_at_k)
      << ", \"mean_recall\": " << Fixed(result.mean_recall)
      << ", \"mean_map\": " << Fixed(result.mean_map)
      << ", \"mean_detection_latency_ticks\": "
      << Fixed(result.mean_detection_latency_ticks)
      << ", \"mean_known_precision_at_1\": "
      << Fixed(result.mean_known_precision_at_1)
      << ", \"mean_causal_precision_at_1\": "
      << Fixed(result.mean_causal_precision_at_1)
      << ", \"mean_causal_precision_at_k\": "
      << Fixed(result.mean_causal_precision_at_k)
      << ", \"mean_causal_recall\": " << Fixed(result.mean_causal_recall)
      << ", \"mean_causal_map\": " << Fixed(result.mean_causal_map)
      << ", \"mean_causal_recall_at_3\": "
      << Fixed(result.mean_causal_recall_at_3) << "}\n}\n";
  return out.str();
}

std::string RenderText(const CampaignResult& result) {
  std::ostringstream out;
  out << "scenario                    p@1      p@k      recall   map      "
         "c@1      c@3      cmap     latency  detected\n";
  for (const ScenarioScore& s : result.scores) {
    std::string name = s.name;
    if (name.size() < 26) name.resize(26, ' ');
    out << name << "  " << Fixed(s.precision_at_1) << " "
        << Fixed(s.precision_at_k) << " " << Fixed(s.recall) << " "
        << Fixed(s.map) << " " << Fixed(s.causal_precision_at_1) << " "
        << Fixed(s.causal_recall_at_3) << " " << Fixed(s.causal_map) << " "
        << Fixed(s.mean_detection_latency_ticks) << " " << s.detected << "/"
        << s.test_runs << (s.hold_out ? " unseen" : "") << "\n";
  }
  out << "mean over " << result.scores.size()
      << " scenarios: p@1=" << Fixed(result.mean_precision_at_1)
      << " p@k=" << Fixed(result.mean_precision_at_k)
      << " recall=" << Fixed(result.mean_recall)
      << " map=" << Fixed(result.mean_map)
      << " latency_ticks=" << Fixed(result.mean_detection_latency_ticks)
      << "\n";
  out << "signature engine (known faults, " << result.known_scenarios
      << " scenario(s)): p@1=" << Fixed(result.mean_known_precision_at_1)
      << "\n";
  out << "causal engine (all scenarios): c@1="
      << Fixed(result.mean_causal_precision_at_1)
      << " c@k=" << Fixed(result.mean_causal_precision_at_k)
      << " recall=" << Fixed(result.mean_causal_recall)
      << " map=" << Fixed(result.mean_causal_map)
      << "; recall@3 over " << result.holdout_scenarios
      << " unseen-fault scenario(s)="
      << Fixed(result.mean_causal_recall_at_3) << "\n";
  return out.str();
}

std::string RenderEngineComparison(const CampaignResult& result) {
  std::ostringstream out;
  out << "engine comparison           signature engine            causal "
         "engine\n"
      << "scenario                    p@1      p@k      map      c@1      "
         "c@k      cmap     sig_ms   causal_ms\n";
  for (const ScenarioScore& s : result.scores) {
    std::string name = s.name;
    if (name.size() < 26) name.resize(26, ' ');
    out << name << "  " << Fixed(s.precision_at_1) << " "
        << Fixed(s.precision_at_k) << " " << Fixed(s.map) << " "
        << Fixed(s.causal_precision_at_1) << " "
        << Fixed(s.causal_precision_at_k) << " " << Fixed(s.causal_map)
        << " " << Fixed(s.mean_signature_seconds * 1e3) << " "
        << Fixed(s.mean_causal_seconds * 1e3)
        << (s.hold_out ? " unseen" : "") << "\n";
  }
  return out.str();
}

std::string RenderScenarioReport(const ScenarioScore& score) {
  std::ostringstream out;
  out << "# campaign report - " << score.name << "\n"
      << "workload = " << workload::WorkloadName(score.workload) << "\n"
      << "fault = " << faults::FaultName(score.fault) << " @ tick "
      << score.window.start_tick << " for " << score.window.duration_ticks
      << " ticks on node " << score.window.target_node << "\n"
      << "mechanism = " << faults::FaultDescription(score.fault) << "\n"
      << "expected = " << score.expected_cause
      << (score.hold_out ? " (held out of the signature catalog)" : "")
      << "\n";
  out << "expected-metrics =";
  for (int metric : score.expected_metrics) {
    out << " " << telemetry::MetricName(metric);
  }
  out << "\n";
  for (const RunOutcome& run : score.runs) {
    out << "run " << run.rep << ": detected=" << (run.detected ? 1 : 0)
        << " alarm_tick=" << run.first_alarm_tick
        << " violations=" << run.num_violations
        << " expected_rank=" << run.expected_rank
        << " causal_rank=" << run.causal_rank
        << " fallback=" << (run.used_causal_fallback ? 1 : 0) << "\n";
    for (size_t i = 0; i < run.causes.size(); ++i) {
      out << "  " << (i + 1) << ". " << run.causes[i].problem << " "
          << Fixed(run.causes[i].score) << "\n";
    }
    if (!run.suspects.empty()) {
      out << "  suspects:\n";
      for (size_t i = 0; i < run.suspects.size(); ++i) {
        out << "    " << (i + 1) << ". "
            << telemetry::MetricName(run.suspects[i].metric) << " "
            << Fixed(run.suspects[i].score) << "\n";
      }
    }
  }
  out << "score: p@1=" << Fixed(score.precision_at_1)
      << " p@k=" << Fixed(score.precision_at_k)
      << " recall=" << Fixed(score.recall) << " map=" << Fixed(score.map)
      << " latency_ticks=" << Fixed(score.mean_detection_latency_ticks)
      << "\n"
      << "causal: c@1=" << Fixed(score.causal_precision_at_1)
      << " c@k=" << Fixed(score.causal_precision_at_k)
      << " recall=" << Fixed(score.causal_recall)
      << " recall@3=" << Fixed(score.causal_recall_at_3)
      << " map=" << Fixed(score.causal_map) << "\n";
  return out.str();
}

Status CheckOrUpdateGolden(const CampaignResult& result,
                           const std::string& golden_dir, bool update,
                           std::string* message) {
  if (update) {
    std::error_code ec;
    std::filesystem::create_directories(golden_dir, ec);
    if (ec) {
      return Status::IoError("cannot create golden dir " + golden_dir + ": " +
                             ec.message());
    }
    for (const ScenarioScore& score : result.scores) {
      const std::string path = GoldenPath(golden_dir, score.name);
      std::ofstream file(path, std::ios::binary);
      if (!file) return Status::IoError("cannot write " + path);
      file << RenderScenarioReport(score);
    }
    *message += "updated " + std::to_string(result.scores.size()) +
                " golden report(s) in " + golden_dir + "\n";
    return Status::Ok();
  }

  std::string drifted;
  for (const ScenarioScore& score : result.scores) {
    const std::string path = GoldenPath(golden_dir, score.name);
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      drifted += "  " + score.name + ": golden file missing (" + path + ")\n";
      continue;
    }
    std::ostringstream stored;
    stored << file.rdbuf();
    if (stored.str() != RenderScenarioReport(score)) {
      drifted += "  " + score.name + ": report drifted from " + path + "\n";
    }
  }
  if (!drifted.empty()) {
    *message += "golden-report mismatches (re-run with --update-golden after "
                "verifying the change is intended):\n" + drifted;
    return Status::FailedPrecondition("diagnosis reports drifted from golden");
  }
  *message += "golden reports match (" + std::to_string(result.scores.size()) +
              " scenario(s))\n";
  return Status::Ok();
}

}  // namespace invarnetx::campaign
