#include "campaign/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "telemetry/metrics.h"
#include "telemetry/runner.h"

namespace invarnetx::campaign {

// Derived from the injectors' driver-state footprints (faults/injectors.cc
// via telemetry/collector.cc): the metrics each fault perturbs most
// directly, strongest first.
std::vector<int> DefaultCulpritMetrics(faults::FaultType fault) {
  using namespace telemetry;
  switch (fault) {
    case faults::FaultType::kCpuHog:
      return {kCpuUserPct, kCpuIdlePct, kLoadAvg1m, kCtxSwitchesPerSec,
              kProcsRunning};
    case faults::FaultType::kMemHog:
      return {kMemUsedMb, kMemFreeMb, kSwapUsedMb, kPageFaultsPerSec,
              kPagesOutPerSec};
    case faults::FaultType::kDiskHog:
      return {kDiskReadKbps, kDiskWriteKbps, kDiskUtilPct, kCpuIowaitPct,
              kDiskReadIops};
    case faults::FaultType::kNetDrop:
      return {kTcpRetransPerSec, kNetRxKbps, kNetTxKbps, kNetRxPktsPerSec,
              kNetTxPktsPerSec};
    case faults::FaultType::kNetDelay:
      return {kTcpRetransPerSec, kNetRxKbps, kNetTxKbps, kNetRxPktsPerSec,
              kNetTxPktsPerSec};
    case faults::FaultType::kBlockCorruption:
      return {kDiskReadKbps, kDiskReadIops, kDiskUtilPct, kNetRxKbps};
    case faults::FaultType::kMisconfig:
      return {kCtxSwitchesPerSec, kProcsRunning, kProcThreads,
              kPageFaultsPerSec};
    case faults::FaultType::kOverload:
      return {kCpuUserPct, kLoadAvg1m, kMemUsedMb, kCtxSwitchesPerSec};
    case faults::FaultType::kSuspend:
      return {kCpuUserPct, kCpuIdlePct, kNetRxKbps, kProcThreads};
    case faults::FaultType::kRpcHang:
      return {kNetRxKbps, kNetTxKbps, kTcpRetransPerSec, kCpuUserPct};
    case faults::FaultType::kThreadLeak:
      return {kProcThreads, kMemUsedMb, kCtxSwitchesPerSec, kLoadAvg1m};
    case faults::FaultType::kNpeRestart:
      return {kProcsRunning, kCtxSwitchesPerSec, kCpuUserPct, kProcThreads};
    case faults::FaultType::kLockRace:
      return {kCtxSwitchesPerSec, kLoadAvg1m, kCpuUserPct, kProcThreads};
    case faults::FaultType::kCommInterference:
      return {kNetRxKbps, kNetTxKbps, kNetRxPktsPerSec, kNetTxPktsPerSec};
    case faults::FaultType::kBlockReceiverException:
      return {kDiskWriteKbps, kDiskWriteIops, kNetRxKbps, kDiskUtilPct};
    default:
      return {kCpuUserPct, kLoadAvg1m};
  }
}

namespace {

// Trims leading/trailing spaces and tabs.
std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

Result<int> ParseInt(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("scenario key '" + key +
                                   "' wants an integer, got: " + value);
  }
  return static_cast<int>(v);
}

Result<uint64_t> ParseSeed(const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("scenario key 'seed' wants an integer, "
                                   "got: " + value);
  }
  return static_cast<uint64_t>(v);
}

// A positive count key (runs, ticks, ...).
Result<int> ParseCount(const std::string& key, const std::string& value,
                       int min_value) {
  Result<int> v = ParseInt(key, value);
  if (!v.ok()) return v.status();
  if (v.value() < min_value) {
    return Status::InvalidArgument("scenario key '" + key + "' must be >= " +
                                   std::to_string(min_value) + ", got: " +
                                   value);
  }
  return v;
}

}  // namespace

Result<Scenario> ParseScenario(const std::string& text,
                               const std::string& source_path) {
  Scenario scenario;
  scenario.source_path = source_path;
  const std::string where =
      source_path.empty() ? std::string("<inline scenario>") : source_path;

  bool have_workload = false, have_fault = false, have_window = false;
  faults::FaultWindow window;  // overrides collected before defaults apply
  bool have_start = false, have_duration = false, have_target = false;
  bool signatures_all = false;
  std::set<std::string> seen;

  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(where + ":" +
                                     std::to_string(line_number) +
                                     ": expected 'key = value', got: " + line);
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument(where + ":" +
                                     std::to_string(line_number) +
                                     ": empty key or value");
    }
    if (!seen.insert(key).second) {
      return Status::InvalidArgument(where + ": duplicate key '" + key + "'");
    }

    if (key == "name") {
      scenario.name = value;
    } else if (key == "workload") {
      Result<workload::WorkloadType> type = workload::WorkloadFromName(value);
      if (!type.ok()) {
        return Status::InvalidArgument(
            where + ": unknown workload '" + value +
            "' (known: " + workload::AllWorkloadNames() + ")");
      }
      scenario.workload = type.value();
      have_workload = true;
    } else if (key == "fault") {
      Result<faults::FaultType> fault = faults::FaultFromName(value);
      if (!fault.ok()) return fault.status();
      scenario.fault = fault.value();
      have_fault = true;
    } else if (key == "expected-cause") {
      scenario.expected_cause = value;
    } else if (key == "seed") {
      Result<uint64_t> seed = ParseSeed(value);
      if (!seed.ok()) return seed.status();
      scenario.seed = seed.value();
    } else if (key == "slaves") {
      Result<int> v = ParseCount(key, value, 1);
      if (!v.ok()) return v.status();
      scenario.slaves = v.value();
    } else if (key == "normal-runs") {
      Result<int> v = ParseCount(key, value, 2);
      if (!v.ok()) return v.status();
      scenario.normal_runs = v.value();
    } else if (key == "signature-runs") {
      Result<int> v = ParseCount(key, value, 1);
      if (!v.ok()) return v.status();
      scenario.signature_runs = v.value();
    } else if (key == "test-runs") {
      Result<int> v = ParseCount(key, value, 1);
      if (!v.ok()) return v.status();
      scenario.test_runs = v.value();
    } else if (key == "ticks") {
      Result<int> v = ParseCount(key, value, 10);
      if (!v.ok()) return v.status();
      scenario.interactive_ticks = v.value();
    } else if (key == "fault-start") {
      Result<int> v = ParseCount(key, value, 0);
      if (!v.ok()) return v.status();
      window.start_tick = v.value();
      have_start = true;
    } else if (key == "fault-duration") {
      Result<int> v = ParseCount(key, value, 1);
      if (!v.ok()) return v.status();
      window.duration_ticks = v.value();
      have_duration = true;
    } else if (key == "target-node") {
      Result<int> v = ParseCount(key, value, 0);
      if (!v.ok()) return v.status();
      window.target_node = static_cast<size_t>(v.value());
      have_target = true;
    } else if (key == "expected-metrics") {
      std::istringstream list(value);
      std::string token;
      while (std::getline(list, token, ',')) {
        Result<int> metric = telemetry::MetricFromName(Trim(token));
        if (!metric.ok()) return metric.status();
        scenario.expected_metrics.push_back(metric.value());
      }
      if (scenario.expected_metrics.empty()) {
        return Status::InvalidArgument(where +
                                       ": 'expected-metrics' lists no "
                                       "metrics");
      }
    } else if (key == "signatures") {
      if (value == "all") {
        signatures_all = true;
      } else if (value == "all-except-fault") {
        // Unknown-fault study: the catalog spans every applicable fault
        // but the injected one, so the culprit is genuinely unseen.
        signatures_all = true;
        scenario.hold_out = true;
      } else {
        std::istringstream list(value);
        std::string token;
        while (std::getline(list, token, ',')) {
          Result<faults::FaultType> fault = faults::FaultFromName(Trim(token));
          if (!fault.ok()) return fault.status();
          scenario.signature_faults.push_back(fault.value());
        }
        if (scenario.signature_faults.empty()) {
          return Status::InvalidArgument(where +
                                         ": 'signatures' lists no faults");
        }
      }
    } else {
      return Status::InvalidArgument(where + ": unknown scenario key '" + key +
                                     "'");
    }
    have_window = have_window || have_start || have_duration || have_target;
  }

  if (scenario.name.empty()) {
    return Status::InvalidArgument(where + ": scenario needs 'name'");
  }
  if (!have_workload) {
    return Status::InvalidArgument(where + ": scenario needs 'workload'");
  }
  if (!have_fault) {
    return Status::InvalidArgument(where + ": scenario needs 'fault'");
  }
  if (!faults::AppliesTo(scenario.fault, scenario.workload)) {
    return Status::InvalidArgument(
        where + ": fault " + faults::FaultName(scenario.fault) +
        " does not apply to workload " +
        workload::WorkloadName(scenario.workload));
  }
  if (scenario.expected_cause.empty()) {
    scenario.expected_cause = faults::FaultName(scenario.fault);
  }

  // Fault schedule: start from the paper's default window for this fault
  // type and apply any explicit overrides.
  scenario.window = telemetry::DefaultFaultWindow(scenario.fault);
  if (have_start) scenario.window.start_tick = window.start_tick;
  if (have_duration) scenario.window.duration_ticks = window.duration_ticks;
  if (have_target) scenario.window.target_node = window.target_node;
  if (scenario.window.target_node > static_cast<size_t>(scenario.slaves)) {
    return Status::InvalidArgument(
        where + ": target-node " +
        std::to_string(scenario.window.target_node) + " outside the 1+" +
        std::to_string(scenario.slaves) + "-node cluster");
  }

  // `signatures = all` (also the default): every fault the workload admits.
  // `all-except-fault` additionally drops the injected one (hold-out).
  if (signatures_all || scenario.signature_faults.empty()) {
    scenario.signature_faults.clear();
    for (faults::FaultType fault : faults::AllFaults()) {
      if (!faults::AppliesTo(fault, scenario.workload)) continue;
      if (scenario.hold_out && fault == scenario.fault) continue;
      scenario.signature_faults.push_back(fault);
    }
  }
  // Outside a hold-out study the expected cause must be learnable, or every
  // test run scores zero.
  if (!scenario.hold_out &&
      std::find(scenario.signature_faults.begin(),
                scenario.signature_faults.end(),
                scenario.fault) == scenario.signature_faults.end()) {
    return Status::InvalidArgument(where + ": 'signatures' must include the "
                                   "injected fault " +
                                   faults::FaultName(scenario.fault) +
                                   " (or use 'all-except-fault' for an "
                                   "unknown-fault study)");
  }
  if (scenario.expected_metrics.empty()) {
    scenario.expected_metrics = DefaultCulpritMetrics(scenario.fault);
  }
  return scenario;
}

Result<Scenario> LoadScenarioFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseScenario(buffer.str(), path);
}

Result<std::vector<Scenario>> LoadScenarioDirectory(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("not a scenario directory: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scenario") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());
  if (paths.empty()) {
    return Status::NotFound("no *.scenario files in " + dir);
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Scenario> scenarios;
  std::set<std::string> names;
  for (const std::string& path : paths) {
    Result<Scenario> scenario = LoadScenarioFile(path);
    if (!scenario.ok()) return scenario.status();
    if (!names.insert(scenario.value().name).second) {
      return Status::InvalidArgument("duplicate scenario name '" +
                                     scenario.value().name + "' in " + dir);
    }
    scenarios.push_back(std::move(scenario.value()));
  }
  return scenarios;
}

}  // namespace invarnetx::campaign
