#ifndef INVARNETX_CAMPAIGN_SCOREBOARD_H_
#define INVARNETX_CAMPAIGN_SCOREBOARD_H_

#include <string>

#include "campaign/runner.h"
#include "common/status.h"

namespace invarnetx::campaign {

// Scoreboard renderings. All three are deterministic functions of the
// CampaignResult - no wall-clock, hostnames, or paths - so byte-comparing
// two renderings is a valid equality check on the campaigns themselves
// (the property the determinism suite and the golden-report gate rely on).

// One CSV row per scenario, with a header line.
std::string RenderCsv(const CampaignResult& result);

// {"scenarios": [...], "summary": {...}} with per-run outcomes inlined.
std::string RenderJson(const CampaignResult& result);

// Human-readable console table plus the cross-scenario means, one line per
// scenario with both engines' quality columns (signature p@1/p@k/map and
// causal c@1/c@k/cmap; hold-out scenarios are marked `unseen`).
std::string RenderText(const CampaignResult& result);

// Head-to-head engine comparison: per-scenario precision@1/@k and MAP for
// the signature and causal engines side by side, plus each engine's mean
// wall-clock diagnosis latency. The ONE rendering that is NOT a
// deterministic function of the campaign (latency columns are measured),
// so it is never byte-compared, never a golden, and never part of the
// determinism suite.
std::string RenderEngineComparison(const CampaignResult& result);

// The per-scenario golden report: fault schedule, per-run ranked causes,
// and the score line. Stable formatting (fixed 6-decimal doubles).
std::string RenderScenarioReport(const ScenarioScore& score);

// Golden-report regression gate. In update mode, writes one
// `<name>.report.txt` per scenario into `golden_dir` (creating it).
// Otherwise byte-compares each rendered report against the stored file and
// fails with a kFailedPrecondition naming every drifted or missing
// scenario. `*message` receives a human-readable summary either way.
Status CheckOrUpdateGolden(const CampaignResult& result,
                           const std::string& golden_dir, bool update,
                           std::string* message);

}  // namespace invarnetx::campaign

#endif  // INVARNETX_CAMPAIGN_SCOREBOARD_H_
