#ifndef INVARNETX_CAMPAIGN_SCOREBOARD_H_
#define INVARNETX_CAMPAIGN_SCOREBOARD_H_

#include <string>

#include "campaign/runner.h"
#include "common/status.h"

namespace invarnetx::campaign {

// Scoreboard renderings. All three are deterministic functions of the
// CampaignResult - no wall-clock, hostnames, or paths - so byte-comparing
// two renderings is a valid equality check on the campaigns themselves
// (the property the determinism suite and the golden-report gate rely on).

// One CSV row per scenario, with a header line.
std::string RenderCsv(const CampaignResult& result);

// {"scenarios": [...], "summary": {...}} with per-run outcomes inlined.
std::string RenderJson(const CampaignResult& result);

// Human-readable console table plus the cross-scenario means.
std::string RenderText(const CampaignResult& result);

// The per-scenario golden report: fault schedule, per-run ranked causes,
// and the score line. Stable formatting (fixed 6-decimal doubles).
std::string RenderScenarioReport(const ScenarioScore& score);

// Golden-report regression gate. In update mode, writes one
// `<name>.report.txt` per scenario into `golden_dir` (creating it).
// Otherwise byte-compares each rendered report against the stored file and
// fails with a kFailedPrecondition naming every drifted or missing
// scenario. `*message` receives a human-readable summary either way.
Status CheckOrUpdateGolden(const CampaignResult& result,
                           const std::string& golden_dir, bool update,
                           std::string* message);

}  // namespace invarnetx::campaign

#endif  // INVARNETX_CAMPAIGN_SCOREBOARD_H_
