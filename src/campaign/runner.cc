#include "campaign/runner.h"

#include <algorithm>

#include "common/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "telemetry/runner.h"

namespace invarnetx::campaign {
namespace {

// Distinct seed streams per scenario stage, mirroring core/evaluate: the
// normal, signature and test run populations never share seeds, so changing
// one count does not reshuffle the others.
constexpr uint64_t kSignatureStream = 0x20000;
constexpr uint64_t kTestStream = 0x40000;

telemetry::RunConfig BaseRunConfig(const Scenario& scenario) {
  telemetry::RunConfig config;
  config.workload = scenario.workload;
  config.num_slaves = scenario.slaves;
  config.interactive_ticks = scenario.interactive_ticks;
  return config;
}

}  // namespace

// The node whose operation context the campaign diagnoses: the fault's
// target when it is a slave; otherwise (name-node faults, whose effects
// leak onto every node) slave 1, as in the paper's evaluation.
size_t ScenarioVictimNode(const Scenario& scenario) {
  return scenario.window.target_node >= 1
             ? static_cast<size_t>(scenario.window.target_node)
             : 1;
}

core::OperationContext ScenarioVictimContext(const Scenario& scenario) {
  return core::OperationContext{
      scenario.workload,
      "10.0.0." + std::to_string(ScenarioVictimNode(scenario) + 1)};
}

Result<telemetry::RunTrace> SimulateScenarioNormalRun(const Scenario& scenario,
                                                      int rep) {
  telemetry::RunConfig config = BaseRunConfig(scenario);
  config.seed = scenario.seed + static_cast<uint64_t>(rep);
  return telemetry::SimulateRun(config);
}

Result<telemetry::RunTrace> SimulateScenarioTestRun(const Scenario& scenario,
                                                    int rep) {
  telemetry::RunConfig config = BaseRunConfig(scenario);
  config.seed = scenario.seed + kTestStream + static_cast<uint64_t>(rep);
  config.fault = telemetry::FaultRequest{scenario.fault, scenario.window};
  return telemetry::SimulateRun(config);
}

Result<telemetry::RunTrace> SimulateScenarioSignatureRun(
    const Scenario& scenario, size_t fault_index, int rep) {
  if (fault_index >= scenario.signature_faults.size()) {
    return Status::InvalidArgument(
        "SimulateScenarioSignatureRun: fault index out of range");
  }
  const faults::FaultType fault = scenario.signature_faults[fault_index];
  faults::FaultWindow window = telemetry::DefaultFaultWindow(fault);
  if (window.target_node >= 1) {
    window.target_node = static_cast<int>(ScenarioVictimNode(scenario));
  }
  telemetry::RunConfig config = BaseRunConfig(scenario);
  config.seed = scenario.seed + kSignatureStream +
                static_cast<uint64_t>(fault_index) * 1000 +
                static_cast<uint64_t>(rep);
  config.fault = telemetry::FaultRequest{fault, window};
  return telemetry::SimulateRun(config);
}

Result<ScenarioScore> RunScenario(const Scenario& scenario,
                                  const CampaignOptions& options) {
  obs::Span span("campaign_scenario", {{"scenario", scenario.name}});
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetCounter("campaign.scenarios_run").Increment();

  // 1. Fault-free runs (seeds seed, seed+1, ...), simulated concurrently;
  // each run owns its Rng, so the fan-out is bit-identical to the serial
  // loop.
  std::vector<telemetry::RunTrace> normal(
      static_cast<size_t>(scenario.normal_runs));
  INVARNETX_RETURN_IF_ERROR(ParallelFor(
      normal.size(), options.threads, [&](size_t i) -> Status {
        Result<telemetry::RunTrace> trace =
            SimulateScenarioNormalRun(scenario, static_cast<int>(i));
        if (!trace.ok()) return trace.status();
        normal[i] = std::move(trace.value());
        return Status::Ok();
      }));

  // 2. Train the victim context.
  core::InvarNetXConfig pipeline_config;
  pipeline_config.num_threads = options.threads;
  pipeline_config.use_association_cache = options.use_assoc_cache;
  pipeline_config.top_k = options.top_k;
  core::InvarNetX pipeline(pipeline_config);
  const size_t victim = ScenarioVictimNode(scenario);
  const core::OperationContext context = ScenarioVictimContext(scenario);
  INVARNETX_RETURN_IF_ERROR(pipeline.TrainContext(context, normal, victim));

  // 3. Teach the signature database the scenario's problem catalog. Each
  // problem is learned from runs injected in its own default window (the
  // operator investigated those incidents under normal conditions); only
  // the test runs use the scenario's possibly unusual schedule. Slave
  // faults are retargeted at the victim node, since signatures are
  // violation patterns of the diagnosed context: an incident on another
  // slave would barely touch the victim's invariants.
  for (size_t fi = 0; fi < scenario.signature_faults.size(); ++fi) {
    const faults::FaultType fault = scenario.signature_faults[fi];
    std::vector<telemetry::RunTrace> runs(
        static_cast<size_t>(scenario.signature_runs));
    INVARNETX_RETURN_IF_ERROR(ParallelFor(
        runs.size(), options.threads, [&](size_t rep) -> Status {
          Result<telemetry::RunTrace> trace = SimulateScenarioSignatureRun(
              scenario, fi, static_cast<int>(rep));
          if (!trace.ok()) return trace.status();
          runs[rep] = std::move(trace.value());
          return Status::Ok();
        }));
    for (const telemetry::RunTrace& run : runs) {
      INVARNETX_RETURN_IF_ERROR(pipeline.AddSignature(
          context, faults::FaultName(fault), run, victim));
    }
  }

  // 4. Diagnose independently seeded injections of the scenario's fault in
  // its scheduled window. Diagnose is const and deterministic, and every
  // outcome lands in its own slot, so the fan-out preserves bit-identical
  // scoreboards for any thread count.
  ScenarioScore score;
  score.name = scenario.name;
  score.workload = scenario.workload;
  score.fault = scenario.fault;
  score.expected_cause = scenario.expected_cause;
  score.window = scenario.window;
  score.test_runs = scenario.test_runs;
  score.hold_out = scenario.hold_out;
  score.expected_metrics = scenario.expected_metrics;
  score.runs.resize(static_cast<size_t>(scenario.test_runs));

  // Both engines rank every detected run over the same violation evidence:
  // the signature query inside Diagnose, and the causal-graph ranking here
  // against the published model snapshot - the honest head-to-head even on
  // known faults, where serving would never fall back.
  Result<std::shared_ptr<const core::ContextModel>> model =
      pipeline.GetContext(context);
  if (!model.ok()) return model.status();
  causal::RankingOptions causal_options;
  causal_options.top_k = options.top_k;

  INVARNETX_RETURN_IF_ERROR(ParallelFor(
      score.runs.size(), options.threads, [&](size_t rep) -> Status {
        Result<telemetry::RunTrace> trace =
            SimulateScenarioTestRun(scenario, static_cast<int>(rep));
        if (!trace.ok()) return trace.status();
        Result<core::DiagnosisReport> report =
            pipeline.Diagnose(context, trace.value(), victim);
        if (!report.ok()) return report.status();

        RunOutcome& outcome = score.runs[rep];
        outcome.rep = static_cast<int>(rep);
        outcome.detected = report.value().anomaly_detected;
        outcome.known_problem = report.value().known_problem;
        outcome.first_alarm_tick = report.value().first_alarm_tick;
        outcome.num_violations = report.value().num_violations;
        outcome.causes = report.value().causes;
        outcome.used_causal_fallback = report.value().used_causal_fallback;
        outcome.signature_seconds = report.value().cost.infer_seconds;
        for (size_t i = 0; i < outcome.causes.size(); ++i) {
          if (outcome.causes[i].problem == scenario.expected_cause) {
            outcome.expected_rank = static_cast<int>(i) + 1;
            break;
          }
        }

        // Causal engine on the same evidence, whether or not serving would
        // have fallen back - the same deterministic ranking function the
        // pipeline's fallback runs, re-ranked with the campaign's top_k.
        if (outcome.detected && outcome.num_violations > 0) {
          const uint64_t causal_start_us = obs::UptimeMicros();
          Result<causal::InvariantGraph> graph = causal::BuildInvariantGraph(
              model.value()->invariants.present,
              model.value()->invariants.values, report.value().violations,
              report.value().deviations);
          if (!graph.ok()) return graph.status();
          outcome.suspects =
              causal::RankSuspects(graph.value(), causal_options);
          outcome.causal_seconds =
              static_cast<double>(obs::UptimeMicros() - causal_start_us) /
              1e6;
          for (size_t i = 0; i < outcome.suspects.size(); ++i) {
            const int metric = outcome.suspects[i].metric;
            if (std::find(scenario.expected_metrics.begin(),
                          scenario.expected_metrics.end(),
                          metric) != scenario.expected_metrics.end()) {
              outcome.causal_rank = static_cast<int>(i) + 1;
              break;
            }
          }
        }
        return Status::Ok();
      }));

  // 5. Score both engines.
  double latency_sum = 0.0;
  double ap_sum = 0.0;
  double causal_ap_sum = 0.0;
  double signature_seconds_sum = 0.0;
  double causal_seconds_sum = 0.0;
  for (const RunOutcome& outcome : score.runs) {
    if (!outcome.detected) continue;
    ++score.detected;
    latency_sum += outcome.first_alarm_tick - scenario.window.start_tick;
    signature_seconds_sum += outcome.signature_seconds;
    causal_seconds_sum += outcome.causal_seconds;
    if (outcome.causal_rank > 0) {
      ++score.causal_found;
      causal_ap_sum += 1.0 / outcome.causal_rank;
      if (outcome.causal_rank == 1) ++score.causal_top1_correct;
      if (outcome.causal_rank <= 3) ++score.causal_top3_correct;
      if (outcome.causal_rank <= static_cast<int>(options.top_k)) {
        ++score.causal_topk_correct;
      }
    }
    if (outcome.expected_rank == 0) continue;
    ++score.found_any;
    ap_sum += 1.0 / outcome.expected_rank;
    if (outcome.expected_rank == 1 && outcome.known_problem) {
      ++score.top1_correct;
    }
    if (outcome.expected_rank <= static_cast<int>(options.top_k)) {
      ++score.topk_correct;
    }
  }
  const double n = score.test_runs;
  score.precision_at_1 = score.top1_correct / n;
  score.precision_at_k = score.topk_correct / n;
  score.recall = score.found_any / n;
  score.map = ap_sum / n;
  score.mean_detection_latency_ticks =
      score.detected == 0 ? 0.0 : latency_sum / score.detected;
  score.causal_precision_at_1 = score.causal_top1_correct / n;
  score.causal_precision_at_k = score.causal_topk_correct / n;
  score.causal_recall = score.causal_found / n;
  score.causal_recall_at_3 = score.causal_top3_correct / n;
  score.causal_map = causal_ap_sum / n;
  score.mean_signature_seconds =
      score.detected == 0 ? 0.0 : signature_seconds_sum / score.detected;
  score.mean_causal_seconds =
      score.detected == 0 ? 0.0 : causal_seconds_sum / score.detected;

  registry.GetCounter("campaign.test_runs")
      .Increment(static_cast<uint64_t>(score.test_runs));
  registry.GetCounter("campaign.runs_detected")
      .Increment(static_cast<uint64_t>(score.detected));
  registry.GetCounter("campaign.runs_top1_correct")
      .Increment(static_cast<uint64_t>(score.top1_correct));
  INVARNETX_OBS_LOG(obs::LogLevel::kInfo, "campaign scenario scored",
                    {{"scenario", scenario.name},
                     {"precision_at_1", score.precision_at_1},
                     {"recall", score.recall},
                     {"detected", score.detected},
                     {"test_runs", score.test_runs}});
  return score;
}

Result<CampaignResult> RunCampaign(const std::vector<Scenario>& scenarios,
                                   const CampaignOptions& options) {
  if (scenarios.empty()) {
    return Status::InvalidArgument("campaign has no scenarios");
  }
  obs::Span span("campaign_run",
                 {{"scenarios", static_cast<int>(scenarios.size())}});
  CampaignResult result;
  int scenarios_with_alarms = 0;
  for (const Scenario& scenario : scenarios) {
    Result<ScenarioScore> score = RunScenario(scenario, options);
    if (!score.ok()) {
      return Status(score.status().code(),
                    "scenario '" + scenario.name +
                        "': " + score.status().message());
    }
    result.total_test_runs += score.value().test_runs;
    result.mean_precision_at_1 += score.value().precision_at_1;
    result.mean_precision_at_k += score.value().precision_at_k;
    result.mean_recall += score.value().recall;
    result.mean_map += score.value().map;
    result.mean_causal_precision_at_1 += score.value().causal_precision_at_1;
    result.mean_causal_precision_at_k += score.value().causal_precision_at_k;
    result.mean_causal_recall += score.value().causal_recall;
    result.mean_causal_map += score.value().causal_map;
    if (score.value().hold_out) {
      ++result.holdout_scenarios;
      result.mean_causal_recall_at_3 += score.value().causal_recall_at_3;
    } else {
      ++result.known_scenarios;
      result.mean_known_precision_at_1 += score.value().precision_at_1;
    }
    if (score.value().detected > 0) {
      result.mean_detection_latency_ticks +=
          score.value().mean_detection_latency_ticks;
      ++scenarios_with_alarms;
    }
    result.scores.push_back(std::move(score.value()));
  }
  const double n = static_cast<double>(result.scores.size());
  result.mean_precision_at_1 /= n;
  result.mean_precision_at_k /= n;
  result.mean_recall /= n;
  result.mean_map /= n;
  result.mean_causal_precision_at_1 /= n;
  result.mean_causal_precision_at_k /= n;
  result.mean_causal_recall /= n;
  result.mean_causal_map /= n;
  if (result.known_scenarios > 0) {
    result.mean_known_precision_at_1 /= result.known_scenarios;
  }
  if (result.holdout_scenarios > 0) {
    result.mean_causal_recall_at_3 /= result.holdout_scenarios;
  }
  if (scenarios_with_alarms > 0) {
    result.mean_detection_latency_ticks /= scenarios_with_alarms;
  }
  return result;
}

}  // namespace invarnetx::campaign
