#ifndef INVARNETX_CORE_EVALUATE_H_
#define INVARNETX_CORE_EVALUATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "faults/fault.h"
#include "telemetry/runner.h"

namespace invarnetx::core {

// Parameters of a fault-injection evaluation campaign (Sec. 4.1: each fault
// repeated 40 times for 5 minutes; 2 repetitions train the signature, the
// rest are diagnosed).
struct EvalConfig {
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  uint64_t seed = 42;
  int normal_runs = 10;
  // Interactive (TPC-DS) training observes longer windows than the 60-tick
  // diagnosis runs: normal data is abundant offline, and the longer window
  // stabilizes MIC enough for a rich invariant set.
  int interactive_train_ticks = 120;
  int signature_train_runs = 2;
  int test_runs_per_fault = 38;
  size_t victim_node = 1;  // the node whose context is diagnosed
  InvarNetXConfig pipeline;
  // Restricts the campaign to these faults; empty = all applicable faults.
  std::vector<faults::FaultType> faults;
};

// Diagnosis tallies for one fault type.
struct FaultOutcome {
  faults::FaultType fault = faults::FaultType::kCpuHog;
  int true_positives = 0;
  int false_positives = 0;  // runs of other faults misdiagnosed as this one
  int false_negatives = 0;
  int undetected = 0;  // anomaly detection never fired
  int unknown = 0;     // fired, but no signature cleared min_similarity

  double precision() const {
    const int denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    const int denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
};

// Outcome of a whole campaign.
struct EvalResult {
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  std::vector<FaultOutcome> per_fault;
  double avg_precision = 0.0;
  double avg_recall = 0.0;
  // confusion[truth][predicted] = count ("unknown" / "undetected" are
  // pseudo-predictions).
  std::map<std::string, std::map<std::string, int>> confusion;
};

// Simulates `count` fault-free runs of the workload (seeds seed, seed+1, ...).
// `interactive_ticks` sets the observation window for interactive mixes
// (ignored for batch jobs, which run to completion).
Result<std::vector<telemetry::RunTrace>> SimulateNormalRuns(
    workload::WorkloadType workload, int count, uint64_t seed,
    int interactive_ticks = 120);

// Simulates one run with the given fault injected in its default window.
Result<telemetry::RunTrace> SimulateFaultRun(workload::WorkloadType workload,
                                             faults::FaultType fault,
                                             uint64_t seed);

// Runs the full campaign: train, build signatures, diagnose, tally.
Result<EvalResult> RunEvaluation(const EvalConfig& config);

// Trains an InvarNetX pipeline (context or pooled-global per its config)
// from the given normal runs; exposed for benches that need the trained
// pipeline itself.
Status TrainPipeline(InvarNetX* pipeline, const EvalConfig& config,
                     const std::vector<telemetry::RunTrace>& normal_runs);

// The operation context a campaign diagnoses against.
OperationContext VictimContext(const EvalConfig& config);

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_EVALUATE_H_
