#ifndef INVARNETX_CORE_REPORT_H_
#define INVARNETX_CORE_REPORT_H_

#include <string>

#include "core/cluster_diagnosis.h"
#include "core/pipeline.h"

namespace invarnetx::core {

// Renders an operator-facing incident report (Markdown) for one diagnosis:
// detection summary, ranked causes with confidence, the violated invariant
// pairs grouped by metric family, and known signature conflicts involving
// the top cause (so the operator knows which alternatives to double-check).
//
// `model` must be the context model the diagnosis ran against (for the
// invariant pair names and the conflict scan); `run_ticks` sizes the
// timeline line (pass 0 if unknown). When `node` is provided, a
// "suspected origin metrics" section ranks the implicated metrics by
// temporal precedence (see causal_hints.h).
std::string RenderIncidentReport(const OperationContext& context,
                                 const DiagnosisReport& report,
                                 const ContextModel& model, int run_ticks,
                                 const telemetry::NodeTrace* node = nullptr);

// Renders a cluster-scan summary: one line per node plus the culprit's
// full incident report.
std::string RenderClusterReport(const InvarNetX& pipeline,
                                const ClusterDiagnosis& scan,
                                workload::WorkloadType workload,
                                int run_ticks);

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_REPORT_H_
