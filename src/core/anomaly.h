#ifndef INVARNETX_CORE_ANOMALY_H_
#define INVARNETX_CORE_ANOMALY_H_

#include <vector>

#include "core/perf_model.h"
#include "timeseries/arima.h"

namespace invarnetx::core {

// Result of scanning one CPI series for anomalies.
struct AnomalyScan {
  std::vector<double> residuals;     // |observed - predicted| per tick
  std::vector<bool> raw_flags;       // per-tick threshold exceedances
  std::vector<bool> alarms;          // debounced: 3 consecutive exceedances
  int first_alarm_tick = -1;         // -1 when no alarm fired
  bool triggered() const { return first_alarm_tick >= 0; }
};

// Online performance-anomaly detector: one-step-ahead ARIMA prediction on
// CPI, residual thresholding by the configured rule, and a three-consecutive
// debounce to resist system noise (Sec. 3.2).
class AnomalyDetector {
 public:
  AnomalyDetector(const PerformanceModel& model, ThresholdRule rule,
                  int consecutive_required = 3);

  // Feeds one CPI observation; returns true when the debounced alarm is
  // raised at this tick.
  bool Observe(double cpi);

  // Current residual of the last observation.
  double last_residual() const { return last_residual_; }
  int consecutive_count() const { return consecutive_; }

  // Clears streaming state (model and thresholds are kept).
  void Reset();

  // Scans a whole series at once.
  AnomalyScan Scan(const std::vector<double>& cpi_series);

 private:
  bool Exceeds(double residual) const;

  const PerformanceModel& model_;
  ThresholdRule rule_;
  int consecutive_required_;
  ts::ArimaPredictor predictor_;
  int consecutive_ = 0;
  double last_residual_ = 0.0;
  int warmup_left_ = 0;
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_ANOMALY_H_
