#ifndef INVARNETX_CORE_ASSOCIATION_H_
#define INVARNETX_CORE_ASSOCIATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// Flat upper-triangle matrix of pairwise association scores between the 26
// metrics; index with telemetry::PairIndex(a, b). Scores are in [0, 1];
// pairs whose association is undefined (constant series, fit failure) hold
// 0, as the paper specifies.
using AssociationMatrix = std::vector<double>;

// Which association discovery engine to use: MIC is the paper's choice;
// ARX is the Jiang et al. baseline it compares against; the ensemble
// follows the authors' earlier work (their reference [11], "An ensemble
// MIC-based approach...", IEEE BigData 2013) by blending MIC with rank
// correlation so that monotone couplings contribute even when the MIC
// grid estimate is noisy on short windows.
enum class AssociationEngineType { kMic, kArx, kEnsemble };

std::string AssociationEngineName(AssociationEngineType type);

// Strategy interface for scoring the association of two metric series.
class AssociationEngine {
 public:
  virtual ~AssociationEngine() = default;

  virtual std::string name() const = 0;
  // Score in [0, 1]. Implementations return errors only for structurally
  // invalid input (length mismatch / too short); statistical degeneracies
  // score 0.
  virtual Result<double> Score(const std::vector<double>& x,
                               const std::vector<double>& y) const = 0;

  static std::unique_ptr<AssociationEngine> Make(AssociationEngineType type);
};

// Computes the full pairwise association matrix of one node's metrics.
Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine);

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_ASSOCIATION_H_
