#ifndef INVARNETX_CORE_ASSOCIATION_H_
#define INVARNETX_CORE_ASSOCIATION_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/assoc_cache.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// Flat upper-triangle matrix of pairwise association scores between the 26
// metrics; index with telemetry::PairIndex(a, b). Scores are in [0, 1];
// pairs whose association is undefined (constant series, fit failure) hold
// 0, as the paper specifies.
using AssociationMatrix = std::vector<double>;

// Which association discovery engine to use: MIC is the paper's choice;
// ARX is the Jiang et al. baseline it compares against; the ensemble
// follows the authors' earlier work (their reference [11], "An ensemble
// MIC-based approach...", IEEE BigData 2013) by blending MIC with rank
// correlation so that monotone couplings contribute even when the MIC
// grid estimate is noisy on short windows.
enum class AssociationEngineType { kMic, kArx, kEnsemble };

std::string AssociationEngineName(AssociationEngineType type);

// Strategy interface for scoring the association of two metric series.
class AssociationEngine {
 public:
  virtual ~AssociationEngine() = default;

  virtual std::string name() const = 0;
  // Score in [0, 1]. Implementations return errors only for structurally
  // invalid input (length mismatch / too short); statistical degeneracies
  // score 0. Engines hold no per-call mutable state visible across threads:
  // Score must be safe to call concurrently from parallel mining workers
  // (scratch memory, if any, is per-thread).
  //
  // Computes the degeneracy of both inputs, then defers to ScoreHinted.
  Result<double> Score(const std::vector<double>& x,
                       const std::vector<double>& y) const;

  // Score with caller-precomputed degeneracy flags. `x_degenerate` /
  // `y_degenerate` MUST equal IsDegenerateSeries(x) / IsDegenerateSeries(y);
  // ComputeAssociationMatrix computes them once per metric instead of once
  // per pair (each metric participates in 25 pairs), then fans out through
  // this entry point. Results are identical to Score().
  virtual Result<double> ScoreHinted(const std::vector<double>& x,
                                     const std::vector<double>& y,
                                     bool x_degenerate,
                                     bool y_degenerate) const = 0;

  static std::unique_ptr<AssociationEngine> Make(AssociationEngineType type);
};

// True when a series carries no association information: exactly constant,
// or numerically near-constant (variance within float noise of zero
// relative to the series scale). Such series must short-circuit to score 0
// instead of paying the MIC grid search for an unstable answer.
bool IsDegenerateSeries(const std::vector<double>& v);

// Execution options for ComputeAssociationMatrix: how wide to fan the
// C(26,2) = 325 pair scores out, and whether to memoize per-pair scores in
// the shared AssociationScoreCache. Both knobs only change cost, never
// values: parallel output is bit-identical to the serial path, and a cache
// hit returns the exact double a cold compute produced.
struct AssociationOptions {
  // Workers for the pair fan-out. <= 0: one per hardware thread;
  // 1: plain serial loop in the caller.
  int num_threads = 0;
  bool use_cache = true;
  // Oracle for the incremental path: when a prior record is supplied, also
  // run the cold full recompute and fail with Internal if the two matrices
  // are not byte-identical. Costs the full compute - CI/debug only. The
  // INVARNETX_VERIFY_INCREMENTAL=1 environment variable forces this on
  // process-wide.
  bool verify_incremental = false;
};

// One matrix computation's provenance: the per-metric content digests of
// the series it was scored over, plus the scores themselves. A record from
// a previous computation is the "prior" of an incremental recompute: any
// pair whose two endpoint digests are unchanged must score identically
// (digest equality implies numerically identical inputs and the engines
// are deterministic), so its stored score is reused verbatim - the
// dirty-pair rule of incremental invariant maintenance.
struct MatrixMiningRecord {
  std::array<SeriesDigest, telemetry::kNumMetrics> digests{};
  AssociationMatrix matrix;
};

// What an incremental matrix computation did: `rescored` pairs had at least
// one dirty endpoint (or no usable prior) and went through the engine (or
// the shared score cache); `reused` pairs were copied from the prior
// record. rescored + reused == kNumMetricPairs on success.
struct IncrementalMatrixStats {
  int rescored = 0;
  int reused = 0;
};

// Computes the full pairwise association matrix of one node's metrics.
// Scores are written into a preallocated matrix slot per pair (no
// reduction-order dependence); on engine failure the Status of the lowest
// pair index is returned, matching the serial loop's first error.
Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine,
    const AssociationOptions& options);

// Default options: full hardware fan-out, cache enabled.
Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine);

// Incremental form. `prior` (nullable) is the record of a previous
// computation with the same engine and metric layout: pairs whose endpoint
// digests match the prior reuse its scores and skip the engine entirely.
// `record` (nullable) receives this computation's digests and matrix for
// use as the next prior. `stats` (nullable) receives the rescored/reused
// split. The result is byte-identical to a cold full recompute for every
// prior (enforced by tests, and at runtime when options.verify_incremental
// or INVARNETX_VERIFY_INCREMENTAL=1 is set); a stale or mismatched prior
// only reduces the reuse rate, never correctness.
Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine,
    const AssociationOptions& options, const MatrixMiningRecord* prior,
    MatrixMiningRecord* record, IncrementalMatrixStats* stats);

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_ASSOCIATION_H_
