#include "core/anomaly.h"

namespace invarnetx::core {

AnomalyDetector::AnomalyDetector(const PerformanceModel& model,
                                 ThresholdRule rule, int consecutive_required)
    : model_(model),
      rule_(rule),
      consecutive_required_(consecutive_required),
      predictor_(model.arima()) {}

bool AnomalyDetector::Exceeds(double residual) const {
  if (rule_ == ThresholdRule::kMaxMin) {
    // The paper's max-min rule brackets the training-time residual band
    // [min(R), max(R)]. Our residuals are absolute prediction errors, so a
    // value below min(R) means the one-step forecast fits *better* than it
    // ever did during calibration - not a performance degradation. Only the
    // upper bar raises the alarm (decision documented in DESIGN.md and
    // pinned by core_test MaxMinRuleIgnoresBetterThanTrainedResiduals).
    return residual > model_.residual_max();
  }
  return residual > model_.Threshold(rule_);
}

bool AnomalyDetector::Observe(double cpi) {
  const bool ready = predictor_.Ready();
  const double residual = predictor_.Observe(cpi);
  last_residual_ = ready ? residual : 0.0;
  const bool flag = ready && Exceeds(last_residual_);
  consecutive_ = flag ? consecutive_ + 1 : 0;
  return consecutive_ >= consecutive_required_;
}

void AnomalyDetector::Reset() {
  predictor_.Reset();
  consecutive_ = 0;
  last_residual_ = 0.0;
}

AnomalyScan AnomalyDetector::Scan(const std::vector<double>& cpi_series) {
  Reset();
  AnomalyScan scan;
  scan.residuals.reserve(cpi_series.size());
  scan.raw_flags.reserve(cpi_series.size());
  scan.alarms.reserve(cpi_series.size());
  for (size_t i = 0; i < cpi_series.size(); ++i) {
    const bool ready = predictor_.Ready();
    const bool alarm = Observe(cpi_series[i]);
    scan.residuals.push_back(last_residual_);
    scan.raw_flags.push_back(ready && Exceeds(last_residual_));
    scan.alarms.push_back(alarm);
    if (alarm && scan.first_alarm_tick < 0) {
      scan.first_alarm_tick = static_cast<int>(i);
    }
  }
  return scan;
}

}  // namespace invarnetx::core
