#include "core/association.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "arx/arx.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "core/assoc_cache.h"
#include "mic/mic.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace invarnetx::core {
namespace {

// Relative variance below which a series is treated as constant. Collector
// quantization and float round-off put O(eps^2) variance on a constant
// signal (~1e-30); a genuinely informative series sits many orders above
// this even at small amplitudes.
constexpr double kDegenerateRelativeVariance = 1e-18;

// Shared per-thread MIC scratch memory: each mining worker reuses one
// workspace across every pair it scores (pool workers are long-lived, see
// ThreadLocalInstance), so the kernel is allocation-free in steady state.
// The workspace never changes results - only where the scratch bytes live.
mic::MicWorkspace& WorkerMicWorkspace() {
  return ThreadLocalInstance<mic::MicWorkspace>();
}

// MIC needs at least 4 points to place a 2x2 grid. Shorter series (tiny
// analysis windows) carry no mineable association - "no association", not
// an error, matching how degenerate series and unfittable ARX pairs score.
constexpr size_t kMinScoreableTicks = 4;

class MicEngine : public AssociationEngine {
 public:
  std::string name() const override { return "mic"; }

  Result<double> ScoreHinted(const std::vector<double>& x,
                             const std::vector<double>& y, bool x_degenerate,
                             bool y_degenerate) const override {
    // Degenerate (constant) series carry no association information.
    if (x_degenerate || y_degenerate) return 0.0;
    if (x.size() < kMinScoreableTicks || y.size() < kMinScoreableTicks) {
      return 0.0;
    }
    return mic::MicScore(x, y, mic::MicOptions(), &WorkerMicWorkspace());
  }
};

// Blend of MIC and |Spearman| (their ensemble paper combines multiple
// association measures; rank correlation is the natural monotone partner
// for the grid-based MIC).
class EnsembleEngine : public AssociationEngine {
 public:
  std::string name() const override { return "ensemble"; }

  Result<double> ScoreHinted(const std::vector<double>& x,
                             const std::vector<double>& y, bool x_degenerate,
                             bool y_degenerate) const override {
    if (x_degenerate || y_degenerate) return 0.0;
    if (x.size() < kMinScoreableTicks || y.size() < kMinScoreableTicks) {
      return 0.0;
    }
    Result<double> mic_score =
        mic::MicScore(x, y, mic::MicOptions(), &WorkerMicWorkspace());
    if (!mic_score.ok()) return mic_score.status();
    Result<double> rank = SpearmanCorrelation(x, y);
    if (!rank.ok()) return rank.status();
    return 0.6 * mic_score.value() + 0.4 * std::fabs(rank.value());
  }
};

class ArxEngine : public AssociationEngine {
 public:
  std::string name() const override { return "arx"; }

  Result<double> ScoreHinted(const std::vector<double>& x,
                             const std::vector<double>& y, bool x_degenerate,
                             bool y_degenerate) const override {
    if (x.size() != y.size()) {
      return Status::InvalidArgument("ArxEngine: length mismatch");
    }
    if (x_degenerate || y_degenerate) return 0.0;
    Result<double> score = arx::ArxAssociationScore(x, y);
    // An unfittable pair is "no association", not an error (the paper
    // assigns 0 to pairs absent from a run).
    if (!score.ok()) return 0.0;
    return score.value();
  }
};

// Span tick count of one node trace: the CPI series length when present,
// otherwise the first non-empty metric series (a partially collected trace
// may leave leading series empty); 0 for a fully empty trace.
size_t TraceTicks(const telemetry::NodeTrace& node) {
  if (!node.cpi.empty()) return node.cpi.size();
  for (const std::vector<double>& series : node.metrics) {
    if (!series.empty()) return series.size();
  }
  return 0;
}

// Process-wide switch for the incremental byte-identity oracle, read once.
bool VerifyIncrementalEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("INVARNETX_VERIFY_INCREMENTAL");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return enabled;
}

}  // namespace

bool IsDegenerateSeries(const std::vector<double>& v) {
  const double variance = Variance(v);
  if (variance <= 0.0) return true;
  const double mean = Mean(v);
  return variance <= kDegenerateRelativeVariance * std::max(1.0, mean * mean);
}

Result<double> AssociationEngine::Score(const std::vector<double>& x,
                                        const std::vector<double>& y) const {
  return ScoreHinted(x, y, IsDegenerateSeries(x), IsDegenerateSeries(y));
}

std::string AssociationEngineName(AssociationEngineType type) {
  switch (type) {
    case AssociationEngineType::kMic: return "mic";
    case AssociationEngineType::kArx: return "arx";
    case AssociationEngineType::kEnsemble: return "ensemble";
  }
  return "unknown";
}

std::unique_ptr<AssociationEngine> AssociationEngine::Make(
    AssociationEngineType type) {
  switch (type) {
    case AssociationEngineType::kMic:
      return std::make_unique<MicEngine>();
    case AssociationEngineType::kArx:
      return std::make_unique<ArxEngine>();
    case AssociationEngineType::kEnsemble:
      return std::make_unique<EnsembleEngine>();
  }
  return nullptr;
}

Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine,
    const AssociationOptions& options, const MatrixMiningRecord* prior,
    MatrixMiningRecord* record, IncrementalMatrixStats* stats) {
  AssociationMatrix matrix(telemetry::kNumMetricPairs, 0.0);
  const std::string engine_name = engine.name();
  AssociationScoreCache& cache = AssociationScoreCache::Shared();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  // Handles bound outside the fan-out: inside the per-pair lambda they cost
  // relaxed atomics only, keeping the instrumented matrix bit-identical and
  // contention-free.
  obs::Counter& pairs_scored = registry.GetCounter("assoc.pairs_scored");
  obs::Histogram& pair_seconds = registry.GetHistogram("assoc.pair_score");
  obs::Span span("assoc_matrix",
                 {{"engine", engine_name}, {"ticks", TraceTicks(node)}});
  registry.GetCounter("assoc.matrices").Increment();

  // Per-metric state, computed once per matrix instead of once per pair:
  // every metric participates in 25 pairs, so without hoisting the
  // degeneracy scan runs up to 25x per series and the cache key rehashes
  // each full series on every lookup. Digests double as the dirty-pair
  // test against the prior record.
  const bool want_digests =
      options.use_cache || prior != nullptr || record != nullptr;
  std::array<bool, telemetry::kNumMetrics> degenerate;
  std::array<bool, telemetry::kNumMetrics> clean;  // digest matches prior
  std::array<SeriesDigest, telemetry::kNumMetrics> digest;
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    const std::vector<double>& series = node.metrics[static_cast<size_t>(m)];
    degenerate[static_cast<size_t>(m)] = IsDegenerateSeries(series);
    if (want_digests) digest[static_cast<size_t>(m)] = HashSeries(series);
    clean[static_cast<size_t>(m)] =
        prior != nullptr &&
        digest[static_cast<size_t>(m)] == prior->digests[static_cast<size_t>(m)];
  }

  // Each worker writes only its own preallocated slot, so the result is
  // identical for any thread count; the pair index doubles as the task
  // index, so error propagation follows the serial visitation order.
  std::atomic<int> reused{0};
  Status mined = ParallelFor(
      static_cast<size_t>(telemetry::kNumMetricPairs), options.num_threads,
      [&](size_t pair) -> Status {
        int a = 0, b = 0;
        telemetry::PairFromIndex(static_cast<int>(pair), &a, &b);
        // Dirty-pair rule: both endpoint digests unchanged since the prior
        // record means this score cannot have moved - copy it.
        if (clean[static_cast<size_t>(a)] && clean[static_cast<size_t>(b)]) {
          matrix[pair] = prior->matrix[pair];
          reused.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        }
        const std::vector<double>& x = node.metrics[static_cast<size_t>(a)];
        const std::vector<double>& y = node.metrics[static_cast<size_t>(b)];
        PairScoreKey key;
        if (options.use_cache) {
          key = CombinePairKey(engine_name, digest[static_cast<size_t>(a)],
                               digest[static_cast<size_t>(b)]);
          if (std::optional<double> hit = cache.Lookup(key)) {
            matrix[pair] = *hit;
            return Status::Ok();
          }
        }
        const uint64_t start_us = obs::UptimeMicros();
        Result<double> score = engine.ScoreHinted(
            x, y, degenerate[static_cast<size_t>(a)],
            degenerate[static_cast<size_t>(b)]);
        // Failed pairs record nothing: assoc.pair_score and
        // assoc.pairs_scored count successfully scored pairs only.
        if (!score.ok()) return score.status();
        pair_seconds.Record(
            static_cast<double>(obs::UptimeMicros() - start_us) / 1e6);
        pairs_scored.Increment();
        matrix[pair] = score.value();
        if (options.use_cache) cache.Insert(key, score.value());
        return Status::Ok();
      });
  if (!mined.ok()) return mined;

  const int num_reused = reused.load(std::memory_order_relaxed);
  if (prior != nullptr) {
    registry.GetCounter("assoc.pairs_reused")
        .Increment(static_cast<uint64_t>(num_reused));
    registry.GetCounter("assoc.pairs_rescored")
        .Increment(static_cast<uint64_t>(telemetry::kNumMetricPairs -
                                         num_reused));
  }
  if (stats != nullptr) {
    stats->reused = num_reused;
    stats->rescored = telemetry::kNumMetricPairs - num_reused;
  }
  if (record != nullptr) {
    record->digests = digest;
    record->matrix = matrix;
  }

  // Byte-identity oracle: a prior must never change the result, only the
  // cost. Recomputes cold (no prior, no cache - the exact fallback path)
  // and compares raw bytes.
  if (prior != nullptr &&
      (options.verify_incremental || VerifyIncrementalEnv())) {
    AssociationOptions cold_options = options;
    cold_options.use_cache = false;
    cold_options.verify_incremental = false;
    Result<AssociationMatrix> cold = ComputeAssociationMatrix(
        node, engine, cold_options, nullptr, nullptr, nullptr);
    if (!cold.ok()) return cold.status();
    if (std::memcmp(matrix.data(), cold.value().data(),
                    matrix.size() * sizeof(double)) != 0) {
      return Status::Internal(
          "incremental association matrix differs from cold recompute");
    }
  }
  return matrix;
}

Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine,
    const AssociationOptions& options) {
  return ComputeAssociationMatrix(node, engine, options, nullptr, nullptr,
                                  nullptr);
}

Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine) {
  return ComputeAssociationMatrix(node, engine, AssociationOptions());
}

}  // namespace invarnetx::core
