#include "core/association.h"

#include <cmath>

#include "arx/arx.h"
#include "common/stats.h"
#include "mic/mic.h"

namespace invarnetx::core {
namespace {

class MicEngine : public AssociationEngine {
 public:
  std::string name() const override { return "mic"; }

  Result<double> Score(const std::vector<double>& x,
                       const std::vector<double>& y) const override {
    // Degenerate (constant) series carry no association information.
    if (Variance(x) <= 0.0 || Variance(y) <= 0.0) return 0.0;
    return mic::MicScore(x, y);
  }
};

// Blend of MIC and |Spearman| (their ensemble paper combines multiple
// association measures; rank correlation is the natural monotone partner
// for the grid-based MIC).
class EnsembleEngine : public AssociationEngine {
 public:
  std::string name() const override { return "ensemble"; }

  Result<double> Score(const std::vector<double>& x,
                       const std::vector<double>& y) const override {
    if (Variance(x) <= 0.0 || Variance(y) <= 0.0) return 0.0;
    Result<double> mic_score = mic::MicScore(x, y);
    if (!mic_score.ok()) return mic_score.status();
    Result<double> rank = SpearmanCorrelation(x, y);
    if (!rank.ok()) return rank.status();
    return 0.6 * mic_score.value() + 0.4 * std::fabs(rank.value());
  }
};

class ArxEngine : public AssociationEngine {
 public:
  std::string name() const override { return "arx"; }

  Result<double> Score(const std::vector<double>& x,
                       const std::vector<double>& y) const override {
    if (x.size() != y.size()) {
      return Status::InvalidArgument("ArxEngine: length mismatch");
    }
    if (Variance(x) <= 0.0 || Variance(y) <= 0.0) return 0.0;
    Result<double> score = arx::ArxAssociationScore(x, y);
    // An unfittable pair is "no association", not an error (the paper
    // assigns 0 to pairs absent from a run).
    if (!score.ok()) return 0.0;
    return score.value();
  }
};

}  // namespace

std::string AssociationEngineName(AssociationEngineType type) {
  switch (type) {
    case AssociationEngineType::kMic: return "mic";
    case AssociationEngineType::kArx: return "arx";
    case AssociationEngineType::kEnsemble: return "ensemble";
  }
  return "unknown";
}

std::unique_ptr<AssociationEngine> AssociationEngine::Make(
    AssociationEngineType type) {
  switch (type) {
    case AssociationEngineType::kMic:
      return std::make_unique<MicEngine>();
    case AssociationEngineType::kArx:
      return std::make_unique<ArxEngine>();
    case AssociationEngineType::kEnsemble:
      return std::make_unique<EnsembleEngine>();
  }
  return nullptr;
}

Result<AssociationMatrix> ComputeAssociationMatrix(
    const telemetry::NodeTrace& node, const AssociationEngine& engine) {
  AssociationMatrix matrix(telemetry::kNumMetricPairs, 0.0);
  for (int a = 0; a < telemetry::kNumMetrics; ++a) {
    for (int b = a + 1; b < telemetry::kNumMetrics; ++b) {
      Result<double> score =
          engine.Score(node.metrics[static_cast<size_t>(a)],
                       node.metrics[static_cast<size_t>(b)]);
      if (!score.ok()) return score.status();
      matrix[static_cast<size_t>(telemetry::PairIndex(a, b))] = score.value();
    }
  }
  return matrix;
}

}  // namespace invarnetx::core
