#ifndef INVARNETX_CORE_CONTEXT_H_
#define INVARNETX_CORE_CONTEXT_H_

#include <string>
#include <tuple>

#include "workload/spec.h"

namespace invarnetx::core {

// The paper's "operation context": performance models, invariants and
// signatures are built per workload type per node, which is what lets
// InvarNet-X adapt to heterogeneous hardware and varying workloads.
struct OperationContext {
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  std::string node_ip;

  std::string ToString() const {
    return workload::WorkloadName(workload) + "@" + node_ip;
  }

  friend bool operator==(const OperationContext& a,
                         const OperationContext& b) {
    return a.workload == b.workload && a.node_ip == b.node_ip;
  }
  friend bool operator<(const OperationContext& a, const OperationContext& b) {
    return std::tie(a.workload, a.node_ip) < std::tie(b.workload, b.node_ip);
  }
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_CONTEXT_H_
