#include "core/causal_hints.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/stats.h"
#include "telemetry/metrics.h"

namespace invarnetx::core {
namespace {

// corr(a_t, b_{t+1}): how well a's present predicts b's next step.
Result<double> Lag1Correlation(const std::vector<double>& a,
                               const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 3) {
    return Status::InvalidArgument("Lag1Correlation: bad series");
  }
  const std::vector<double> present(a.begin(), a.end() - 1);
  const std::vector<double> next(b.begin() + 1, b.end());
  return PearsonCorrelation(present, next);
}

}  // namespace

Result<std::vector<CausalHint>> RankRootMetrics(
    const DiagnosisReport& report, const ContextModel& model,
    const telemetry::NodeTrace& node, double lead_margin) {
  // Implicated metrics: endpoints of the violated invariant pairs.
  const std::vector<int> pair_indices = model.invariants.PairIndices();
  if (report.violations.size() != pair_indices.size()) {
    return Status::InvalidArgument(
        "RankRootMetrics: report does not match the context's invariants");
  }
  std::set<int> implicated;
  for (size_t i = 0; i < report.violations.size(); ++i) {
    if (!report.violations[i]) continue;
    int a = 0, b = 0;
    telemetry::PairFromIndex(pair_indices[i], &a, &b);
    implicated.insert(a);
    implicated.insert(b);
  }
  std::vector<CausalHint> hints;
  if (implicated.empty()) return hints;

  const std::vector<int> metrics(implicated.begin(), implicated.end());
  hints.resize(metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    hints[i].metric = metrics[i];
    hints[i].metric_name = telemetry::MetricName(metrics[i]);
  }
  for (size_t i = 0; i < metrics.size(); ++i) {
    for (size_t j = i + 1; j < metrics.size(); ++j) {
      const std::vector<double>& a =
          node.metrics[static_cast<size_t>(metrics[i])];
      const std::vector<double>& b =
          node.metrics[static_cast<size_t>(metrics[j])];
      Result<double> forward = Lag1Correlation(a, b);
      Result<double> backward = Lag1Correlation(b, a);
      if (!forward.ok()) return forward.status();
      if (!backward.ok()) return backward.status();
      const double lead =
          std::fabs(forward.value()) - std::fabs(backward.value());
      if (lead > lead_margin) {
        ++hints[i].leads;
        ++hints[j].led_by;
      } else if (lead < -lead_margin) {
        ++hints[j].leads;
        ++hints[i].led_by;
      }
    }
  }
  std::stable_sort(hints.begin(), hints.end(),
                   [](const CausalHint& x, const CausalHint& y) {
                     if (x.score() != y.score()) return x.score() > y.score();
                     return x.metric < y.metric;
                   });
  return hints;
}

}  // namespace invarnetx::core
