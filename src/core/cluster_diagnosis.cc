#include "core/cluster_diagnosis.h"

#include <utility>

#include "common/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace invarnetx::core {

Result<ClusterDiagnosis> DiagnoseCluster(const InvarNetX& pipeline,
                                         const telemetry::RunTrace& run) {
  if (run.nodes.size() < 2) {
    return Status::InvalidArgument("DiagnoseCluster: run has no slave nodes");
  }
  obs::Span span("diagnose_cluster", {{"nodes", run.nodes.size() - 1}});
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetCounter("cluster.scans").Increment();
  registry.GetCounter("cluster.nodes_diagnosed")
      .Increment(run.nodes.size() - 1);
  // Each slave's diagnosis is independent (the pipeline is read-only during
  // Diagnose), so the scan fans out across workers; every worker fills its
  // own preallocated entry, and the culprit reduction below runs serially
  // in node order, so the result is identical to the serial scan.
  const size_t num_slaves = run.nodes.size() - 1;
  std::vector<NodeDiagnosis> entries(num_slaves);
  INVARNETX_RETURN_IF_ERROR(ParallelFor(
      num_slaves, pipeline.config().num_threads, [&](size_t i) -> Status {
        const size_t node = i + 1;
        NodeDiagnosis entry;
        entry.node_ip = run.nodes[node].ip;
        entry.node_index = node;
        const OperationContext context{run.workload, entry.node_ip};
        entry.context_trained = pipeline.HasContext(context);
        if (entry.context_trained) {
          Result<DiagnosisReport> report =
              pipeline.Diagnose(context, run, node);
          if (!report.ok()) return report.status();
          entry.report = std::move(report.value());
        }
        entries[i] = std::move(entry);
        return Status::Ok();
      }));

  ClusterDiagnosis result;
  result.nodes = std::move(entries);
  int best_violations = -1;
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    const NodeDiagnosis& entry = result.nodes[i];
    if (entry.context_trained && entry.report.anomaly_detected &&
        entry.report.num_violations > best_violations) {
      best_violations = entry.report.num_violations;
      result.culprit = static_cast<int>(i);
    }
  }
  span.End();
  INVARNETX_OBS_LOG(
      obs::LogLevel::kDebug, "cluster scan complete",
      {{"nodes", result.nodes.size()},
       {"culprit", result.culprit},
       {"total_s", span.Seconds()}});
  return result;
}

}  // namespace invarnetx::core
