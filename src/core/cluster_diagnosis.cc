#include "core/cluster_diagnosis.h"

namespace invarnetx::core {

Result<ClusterDiagnosis> DiagnoseCluster(const InvarNetX& pipeline,
                                         const telemetry::RunTrace& run) {
  if (run.nodes.size() < 2) {
    return Status::InvalidArgument("DiagnoseCluster: run has no slave nodes");
  }
  ClusterDiagnosis result;
  int best_violations = -1;
  for (size_t node = 1; node < run.nodes.size(); ++node) {
    NodeDiagnosis entry;
    entry.node_ip = run.nodes[node].ip;
    entry.node_index = node;
    const OperationContext context{run.workload, entry.node_ip};
    entry.context_trained = pipeline.HasContext(context);
    if (entry.context_trained) {
      Result<DiagnosisReport> report =
          pipeline.Diagnose(context, run, node);
      if (!report.ok()) return report.status();
      entry.report = std::move(report.value());
      if (entry.report.anomaly_detected &&
          entry.report.num_violations > best_violations) {
        best_violations = entry.report.num_violations;
        result.culprit = static_cast<int>(result.nodes.size());
      }
    }
    result.nodes.push_back(std::move(entry));
  }
  return result;
}

}  // namespace invarnetx::core
