#include "core/sigdb.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

namespace invarnetx::core {

std::string SimilarityMetricName(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kJaccard: return "jaccard";
    case SimilarityMetric::kDice: return "dice";
    case SimilarityMetric::kCosine: return "cosine";
    case SimilarityMetric::kHamming: return "hamming";
    case SimilarityMetric::kIdfJaccard: return "idf-jaccard";
  }
  return "unknown";
}

Result<double> TupleSimilarity(const std::vector<uint8_t>& a,
                               const std::vector<uint8_t>& b,
                               SimilarityMetric metric) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("TupleSimilarity: length mismatch");
  }
  if (a.empty()) {
    return Status::InvalidArgument("TupleSimilarity: empty tuples");
  }
  size_t both = 0, either = 0, ones_a = 0, ones_b = 0, equal = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const bool xa = a[i] != 0;
    const bool xb = b[i] != 0;
    both += xa && xb;
    either += xa || xb;
    ones_a += xa;
    ones_b += xb;
    equal += xa == xb;
  }
  switch (metric) {
    case SimilarityMetric::kJaccard:
      // Two all-zero tuples describe the same (empty) violation pattern.
      if (either == 0) return 1.0;
      return static_cast<double>(both) / static_cast<double>(either);
    case SimilarityMetric::kDice:
      if (ones_a + ones_b == 0) return 1.0;
      return 2.0 * static_cast<double>(both) /
             static_cast<double>(ones_a + ones_b);
    case SimilarityMetric::kCosine:
      if (ones_a == 0 || ones_b == 0) return ones_a == ones_b ? 1.0 : 0.0;
      return static_cast<double>(both) /
             std::sqrt(static_cast<double>(ones_a) *
                       static_cast<double>(ones_b));
    case SimilarityMetric::kHamming:
      return static_cast<double>(equal) / static_cast<double>(a.size());
    case SimilarityMetric::kIdfJaccard:
      // Weights need the whole database; plain Jaccard here.
      if (either == 0) return 1.0;
      return static_cast<double>(both) / static_cast<double>(either);
  }
  return Status::InvalidArgument("unknown similarity metric");
}

Status SignatureDatabase::Add(Signature signature) {
  if (signature.problem.empty()) {
    return Status::InvalidArgument("Signature: empty problem name");
  }
  if (!signatures_.empty() &&
      signatures_.front().bits.size() != signature.bits.size()) {
    return Status::InvalidArgument(
        "Signature: tuple length differs from existing signatures");
  }
  signatures_.push_back(std::move(signature));
  return Status::Ok();
}

Result<std::vector<SignatureConflict>> SignatureDatabase::FindConflicts(
    double min_similarity, SimilarityMetric metric) const {
  // Best similarity between any signature of problem a and any of b.
  std::map<std::pair<std::string, std::string>, double> best;
  for (size_t i = 0; i < signatures_.size(); ++i) {
    for (size_t j = i + 1; j < signatures_.size(); ++j) {
      const Signature& a = signatures_[i];
      const Signature& b = signatures_[j];
      if (a.problem == b.problem) continue;
      Result<double> score = TupleSimilarity(a.bits, b.bits, metric);
      if (!score.ok()) return score.status();
      auto key = a.problem < b.problem
                     ? std::make_pair(a.problem, b.problem)
                     : std::make_pair(b.problem, a.problem);
      auto [it, inserted] = best.emplace(key, score.value());
      if (!inserted) it->second = std::max(it->second, score.value());
    }
  }
  std::vector<SignatureConflict> conflicts;
  for (const auto& [key, score] : best) {
    if (score >= min_similarity) {
      conflicts.push_back(SignatureConflict{key.first, key.second, score});
    }
  }
  std::stable_sort(conflicts.begin(), conflicts.end(),
                   [](const SignatureConflict& x, const SignatureConflict& y) {
                     return x.similarity > y.similarity;
                   });
  return conflicts;
}

Result<std::vector<RankedCause>> SignatureDatabase::Query(
    const std::vector<uint8_t>& tuple, SimilarityMetric metric,
    size_t top_k) const {
  if (signatures_.empty()) {
    return Status::FailedPrecondition("signature database is empty");
  }
  // For the IDF-weighted metric, weight each bit by how rarely the stored
  // signatures violate it.
  std::vector<double> weights;
  if (metric == SimilarityMetric::kIdfJaccard && !signatures_.empty()) {
    const size_t len = signatures_.front().bits.size();
    std::vector<int> df(len, 0);
    for (const Signature& sig : signatures_) {
      for (size_t i = 0; i < len && i < sig.bits.size(); ++i) {
        df[i] += sig.bits[i] ? 1 : 0;
      }
    }
    weights.resize(len);
    const double total = static_cast<double>(signatures_.size());
    for (size_t i = 0; i < len; ++i) {
      weights[i] = std::log(1.0 + total / (1.0 + df[i]));
    }
  }
  auto weighted_jaccard = [&](const std::vector<uint8_t>& a,
                              const std::vector<uint8_t>& b) -> double {
    double both = 0.0, either = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double w = weights[i];
      both += (a[i] && b[i]) ? w : 0.0;
      either += (a[i] || b[i]) ? w : 0.0;
    }
    return either == 0.0 ? 1.0 : both / either;
  };
  std::map<std::string, double> best;
  for (const Signature& sig : signatures_) {
    double value = 0.0;
    if (metric == SimilarityMetric::kIdfJaccard) {
      // Structurally invalid tuples are an error here exactly as they are
      // for every other metric (TupleSimilarity rejects them); silently
      // degrading to a fallback score would hide a caller bug.
      if (tuple.size() != sig.bits.size()) {
        return Status::InvalidArgument(
            "Query: tuple length does not match stored signatures");
      }
      if (tuple.empty()) {
        return Status::InvalidArgument("Query: empty tuples");
      }
      value = weighted_jaccard(tuple, sig.bits);
    } else {
      Result<double> score = TupleSimilarity(tuple, sig.bits, metric);
      if (!score.ok()) return score.status();
      value = score.value();
    }
    auto [it, inserted] = best.emplace(sig.problem, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  std::vector<RankedCause> ranked;
  ranked.reserve(best.size());
  for (const auto& [problem, score] : best) {
    ranked.push_back(RankedCause{problem, score});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedCause& x, const RankedCause& y) {
                     return x.score > y.score;
                   });
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace invarnetx::core
