#include "core/perf_model.h"

#include <algorithm>

#include "common/stats.h"

namespace invarnetx::core {

std::string ThresholdRuleName(ThresholdRule rule) {
  switch (rule) {
    case ThresholdRule::kMaxMin: return "max-min";
    case ThresholdRule::k95Percentile: return "95-percentile";
    case ThresholdRule::kBetaMax: return "beta-max";
  }
  return "unknown";
}

Result<PerformanceModel> PerformanceModel::Train(
    const std::vector<std::vector<double>>& normal_cpi_traces, double beta) {
  if (normal_cpi_traces.empty()) {
    return Status::InvalidArgument("PerformanceModel::Train: no traces");
  }
  std::vector<double> concatenated;
  for (const std::vector<double>& trace : normal_cpi_traces) {
    concatenated.insert(concatenated.end(), trace.begin(), trace.end());
  }
  Result<ts::ArimaModel> arima = ts::FitArimaAuto(concatenated);
  if (!arima.ok()) return arima.status();
  return FromArima(std::move(arima.value()), normal_cpi_traces, beta);
}

Result<PerformanceModel> PerformanceModel::FromArima(
    ts::ArimaModel arima,
    const std::vector<std::vector<double>>& calibration_traces, double beta) {
  PerformanceModel model;
  model.arima_ = std::move(arima);
  model.beta_ = beta;
  INVARNETX_RETURN_IF_ERROR(model.Calibrate(calibration_traces));
  return model;
}

PerformanceModel PerformanceModel::FromParts(ts::ArimaModel arima,
                                             double residual_min,
                                             double residual_max,
                                             double residual_p95,
                                             double beta) {
  PerformanceModel model;
  model.arima_ = std::move(arima);
  model.residual_min_ = residual_min;
  model.residual_max_ = residual_max;
  model.residual_p95_ = residual_p95;
  model.beta_ = beta;
  return model;
}

Status PerformanceModel::Calibrate(
    const std::vector<std::vector<double>>& traces) {
  std::vector<double> pooled;
  for (const std::vector<double>& trace : traces) {
    Result<std::vector<double>> residuals = arima_.AbsResiduals(trace);
    if (!residuals.ok()) return residuals.status();
    // Warmup entries are exactly zero by construction; they would drag
    // min(R) to zero, so drop them.
    const size_t warmup = static_cast<size_t>(arima_.order().d +
                                              arima_.order().p + 1);
    for (size_t i = std::min(warmup, residuals.value().size());
         i < residuals.value().size(); ++i) {
      pooled.push_back(residuals.value()[i]);
    }
  }
  if (pooled.size() < 10) {
    return Status::InvalidArgument(
        "PerformanceModel: too few residuals to calibrate thresholds");
  }
  residual_max_ = Max(pooled);
  residual_min_ = Min(pooled);
  Result<double> p95 = Percentile(pooled, 95.0);
  if (!p95.ok()) return p95.status();
  residual_p95_ = p95.value();
  return Status::Ok();
}

double PerformanceModel::Threshold(ThresholdRule rule) const {
  switch (rule) {
    case ThresholdRule::kMaxMin: return residual_max_;
    case ThresholdRule::k95Percentile: return residual_p95_;
    case ThresholdRule::kBetaMax: return beta_ * residual_max_;
  }
  return residual_max_;
}

}  // namespace invarnetx::core
