#ifndef INVARNETX_CORE_CLUSTER_DIAGNOSIS_H_
#define INVARNETX_CORE_CLUSTER_DIAGNOSIS_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// Diagnosis of one node within a cluster-wide scan.
struct NodeDiagnosis {
  std::string node_ip;
  size_t node_index = 0;
  bool context_trained = false;
  DiagnosisReport report;
};

// Outcome of scanning every node of a run: the paper's Fig. 1 scenario -
// "the invariant associations ... on slave-3 are violated; by searching a
// similar signature ... the root cause is a CPU-hog" - requires finding
// WHICH node misbehaves before asking what is wrong with it.
struct ClusterDiagnosis {
  std::vector<NodeDiagnosis> nodes;
  // Index into `nodes` of the strongest-evidence node (anomaly detected,
  // most invariant violations); -1 when no node raised an alarm.
  int culprit = -1;

  bool AnyAnomaly() const { return culprit >= 0; }
};

// Runs detection (and, where it fires, cause inference) against every
// slave's operation context. Nodes whose context has not been trained are
// reported with context_trained = false and skipped. The master (node 0)
// is excluded: the paper builds contexts per worker.
Result<ClusterDiagnosis> DiagnoseCluster(const InvarNetX& pipeline,
                                         const telemetry::RunTrace& run);

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_CLUSTER_DIAGNOSIS_H_
