#include "core/report.h"

#include <array>
#include <map>
#include <sstream>

#include "core/causal_hints.h"
#include "telemetry/metrics.h"

namespace invarnetx::core {
namespace {

// Coarse grouping of the 26 metrics for readable violation summaries.
const char* MetricFamily(int metric) {
  switch (metric) {
    case telemetry::kCpuUserPct:
    case telemetry::kCpuSysPct:
    case telemetry::kCpuIdlePct:
    case telemetry::kCpuIowaitPct:
    case telemetry::kLoadAvg1m:
    case telemetry::kCtxSwitchesPerSec:
    case telemetry::kInterruptsPerSec:
    case telemetry::kProcsRunning:
      return "cpu/scheduling";
    case telemetry::kMemUsedMb:
    case telemetry::kMemFreeMb:
    case telemetry::kMemCachedMb:
    case telemetry::kSwapUsedMb:
    case telemetry::kPageFaultsPerSec:
    case telemetry::kPagesInPerSec:
    case telemetry::kPagesOutPerSec:
      return "memory";
    case telemetry::kDiskReadKbps:
    case telemetry::kDiskWriteKbps:
    case telemetry::kDiskReadIops:
    case telemetry::kDiskWriteIops:
    case telemetry::kDiskUtilPct:
      return "disk";
    case telemetry::kNetRxKbps:
    case telemetry::kNetTxKbps:
    case telemetry::kNetRxPktsPerSec:
    case telemetry::kNetTxPktsPerSec:
    case telemetry::kTcpRetransPerSec:
      return "network";
    default:
      return "process";
  }
}

}  // namespace

std::string RenderIncidentReport(const OperationContext& context,
                                 const DiagnosisReport& report,
                                 const ContextModel& model, int run_ticks,
                                 const telemetry::NodeTrace* node) {
  std::ostringstream out;
  out << "# Incident report - " << context.ToString() << "\n\n";
  if (!report.anomaly_detected) {
    out << "No performance anomaly detected";
    if (run_ticks > 0) out << " over " << run_ticks << " ticks";
    out << ".\n";
    return out.str();
  }
  out << "**Anomaly detected** at tick " << report.first_alarm_tick;
  if (run_ticks > 0) out << " of " << run_ticks;
  out << " (" << report.first_alarm_tick * 10 << " s into the window); "
      << report.num_violations << " of " << model.invariants.NumInvariants()
      << " likely invariants violated.\n\n";

  out << "## Ranked causes\n\n";
  if (report.causes.empty()) {
    out << "(signature database is empty)\n";
  }
  for (size_t i = 0; i < report.causes.size(); ++i) {
    out << (i + 1) << ". **" << report.causes[i].problem << "** (similarity "
        << report.causes[i].score << ")\n";
  }
  if (!report.known_problem) {
    out << "\nNo stored signature clears the similarity threshold - treat "
           "this as an *uninvestigated* problem and add its signature once "
           "resolved.\n";
  }
  if (report.used_causal_fallback && !report.suspects.empty()) {
    out << "\n## Causal suspects (invariant-graph ranking)\n\n";
    for (size_t i = 0; i < report.suspects.size(); ++i) {
      out << (i + 1) << ". **"
          << telemetry::MetricName(report.suspects[i].metric) << "** (blame "
          << report.suspects[i].score << ")\n";
    }
  }

  // Violations grouped by the metric families they touch.
  std::map<std::string, int> family_counts;
  const std::vector<int> pairs = model.invariants.PairIndices();
  for (size_t i = 0; i < report.violations.size() && i < pairs.size(); ++i) {
    if (!report.violations[i]) continue;
    int a = 0, b = 0;
    telemetry::PairFromIndex(pairs[i], &a, &b);
    const std::string fa = MetricFamily(a);
    const std::string fb = MetricFamily(b);
    ++family_counts[fa == fb ? fa : fa < fb ? fa + " ~ " + fb
                                            : fb + " ~ " + fa];
  }
  out << "\n## Violated associations by metric family\n\n";
  for (const auto& [family, count] : family_counts) {
    out << "- " << family << ": " << count << "\n";
  }
  if (!report.hints.empty()) {
    out << "\nExamples: ";
    for (size_t i = 0; i < report.hints.size() && i < 4; ++i) {
      out << (i > 0 ? "; " : "") << report.hints[i];
    }
    out << "\n";
  }

  // Suspected origin: temporal precedence among the implicated metrics.
  if (node != nullptr) {
    Result<std::vector<CausalHint>> hints =
        RankRootMetrics(report, model, *node);
    if (hints.ok() && !hints.value().empty()) {
      out << "\n## Suspected origin metrics (temporal precedence)\n\n";
      for (size_t i = 0; i < hints.value().size() && i < 5; ++i) {
        const CausalHint& hint = hints.value()[i];
        out << (i + 1) << ". " << hint.metric_name << " (leads "
            << hint.leads << ", led by " << hint.led_by << ")\n";
      }
    }
  }

  // Self-measured diagnosis cost (the Table 1 counterpart): rendered only
  // when the report carries timings, so synthetic reports stay clean.
  if (report.cost.total_seconds > 0.0) {
    out << "\n## Diagnosis cost\n\n" << report.cost.Summary() << "\n";
  }

  // Conflict warnings for the top cause.
  if (!report.causes.empty()) {
    Result<std::vector<SignatureConflict>> conflicts =
        model.sigdb.FindConflicts(0.55);
    if (conflicts.ok()) {
      bool header = false;
      for (const SignatureConflict& c : conflicts.value()) {
        if (c.problem_a != report.causes[0].problem &&
            c.problem_b != report.causes[0].problem) {
          continue;
        }
        if (!header) {
          out << "\n## Signature conflicts involving the top cause\n\n";
          header = true;
        }
        out << "- " << c.problem_a << " ~ " << c.problem_b << " (similarity "
            << c.similarity << "): these problems are hard to tell apart; "
            << "verify manually.\n";
      }
    }
  }
  return out.str();
}

std::string RenderClusterReport(const InvarNetX& pipeline,
                                const ClusterDiagnosis& scan,
                                workload::WorkloadType workload,
                                int run_ticks) {
  std::ostringstream out;
  out << "# Cluster scan - " << workload::WorkloadName(workload) << "\n\n";
  for (const NodeDiagnosis& entry : scan.nodes) {
    out << "- " << entry.node_ip << ": ";
    if (!entry.context_trained) {
      out << "context not trained\n";
    } else if (!entry.report.anomaly_detected) {
      out << "healthy\n";
    } else {
      out << "**ANOMALOUS** (" << entry.report.num_violations
          << " violations)\n";
    }
  }
  if (!scan.AnyAnomaly()) {
    out << "\nNo node raised an alarm.\n";
    return out.str();
  }
  const NodeDiagnosis& culprit =
      scan.nodes[static_cast<size_t>(scan.culprit)];
  out << "\nCulprit: **" << culprit.node_ip << "**\n\n---\n\n";
  const OperationContext context{workload, culprit.node_ip};
  Result<std::shared_ptr<const ContextModel>> model =
      pipeline.GetContext(context);
  if (model.ok()) {
    out << RenderIncidentReport(context, culprit.report, *model.value(),
                                run_ticks, nullptr);
  }
  return out.str();
}

}  // namespace invarnetx::core
