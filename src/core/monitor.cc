#include "core/monitor.h"

namespace invarnetx::core {

Status OnlineMonitor::StartJob(const OperationContext& context) {
  Result<std::shared_ptr<const ContextModel>> model =
      pipeline_->GetContext(context);
  if (!model.ok()) return model.status();
  context_ = context;
  // Pin the epoch snapshot first; the detector references the snapshot's
  // performance model, which the shared_ptr keeps alive across retrains.
  model_ = std::move(model.value());
  detector_.emplace(model_->perf,
                    pipeline_->config().threshold_rule,
                    pipeline_->config().consecutive_required);
  window_.Clear();
  alarm_ = false;
  first_alarm_tick_ = -1;
  return Status::Ok();
}

Result<OnlineMonitor::TickVerdict> OnlineMonitor::Observe(
    double cpi, const std::array<double, telemetry::kNumMetrics>& metrics) {
  if (!detector_.has_value()) {
    return Status::FailedPrecondition("Observe: no active job");
  }
  window_.Push(cpi, metrics);
  TickVerdict verdict;
  verdict.alarm = detector_->Observe(cpi);
  verdict.residual = detector_->last_residual();
  if (verdict.alarm && !alarm_) {
    // Latched in absolute job ticks, so the report still names the right
    // tick after the window has evicted it.
    first_alarm_tick_ = static_cast<int>(window_.total_pushed()) - 1;
  }
  alarm_ = alarm_ || verdict.alarm;
  return verdict;
}

Result<DiagnosisReport> OnlineMonitor::Diagnose() const {
  if (!detector_.has_value()) {
    return Status::FailedPrecondition("Diagnose: no active job");
  }
  if (window_.empty()) {
    return Status::FailedPrecondition("Diagnose: nothing observed yet");
  }
  Result<DiagnosisReport> report = pipeline_->InferCauseForModel(
      *model_, window_.Materialize(context_.node_ip));
  if (!report.ok()) return report.status();
  report.value().anomaly_detected = alarm_;
  report.value().first_alarm_tick = first_alarm_tick_;
  return report;
}

}  // namespace invarnetx::core
