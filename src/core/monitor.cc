#include "core/monitor.h"

namespace invarnetx::core {

Status OnlineMonitor::StartJob(const OperationContext& context) {
  Result<const ContextModel*> model = pipeline_->GetContext(context);
  if (!model.ok()) return model.status();
  context_ = context;
  detector_.emplace(model.value()->perf,
                    pipeline_->config().threshold_rule,
                    pipeline_->config().consecutive_required);
  buffer_ = telemetry::NodeTrace{};
  buffer_.ip = context.node_ip;
  alarm_ = false;
  first_alarm_tick_ = -1;
  return Status::Ok();
}

Result<OnlineMonitor::TickVerdict> OnlineMonitor::Observe(
    double cpi, const std::array<double, telemetry::kNumMetrics>& metrics) {
  if (!detector_.has_value()) {
    return Status::FailedPrecondition("Observe: no active job");
  }
  buffer_.cpi.push_back(cpi);
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    buffer_.metrics[static_cast<size_t>(m)].push_back(
        metrics[static_cast<size_t>(m)]);
  }
  TickVerdict verdict;
  verdict.alarm = detector_->Observe(cpi);
  verdict.residual = detector_->last_residual();
  if (verdict.alarm && !alarm_) {
    first_alarm_tick_ = static_cast<int>(buffer_.cpi.size()) - 1;
  }
  alarm_ = alarm_ || verdict.alarm;
  return verdict;
}

Result<DiagnosisReport> OnlineMonitor::Diagnose() const {
  if (!detector_.has_value()) {
    return Status::FailedPrecondition("Diagnose: no active job");
  }
  if (buffer_.cpi.empty()) {
    return Status::FailedPrecondition("Diagnose: nothing observed yet");
  }
  Result<DiagnosisReport> report =
      pipeline_->InferCauseForNode(context_, buffer_);
  if (!report.ok()) return report.status();
  report.value().anomaly_detected = alarm_;
  report.value().first_alarm_tick = first_alarm_tick_;
  return report;
}

}  // namespace invarnetx::core
