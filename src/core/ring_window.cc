#include "core/ring_window.h"

#include <algorithm>

namespace invarnetx::core {

RingWindow::RingWindow(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      slots_(capacity_ * (telemetry::kNumMetrics + 1), 0.0) {}

void RingWindow::Push(
    double cpi, const std::array<double, telemetry::kNumMetrics>& metrics) {
  double* row = Row(static_cast<size_t>(total_ % static_cast<int64_t>(
      capacity_)));
  row[0] = cpi;
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    row[m + 1] = metrics[static_cast<size_t>(m)];
  }
  ++total_;
  if (size_ < capacity_) ++size_;
}

void RingWindow::Clear() {
  size_ = 0;
  total_ = 0;
}

telemetry::NodeTrace RingWindow::Materialize(const std::string& ip) const {
  telemetry::NodeTrace out;
  out.ip = ip;
  out.cpi.reserve(size_);
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    out.metrics[static_cast<size_t>(m)].reserve(size_);
  }
  for (size_t i = 0; i < size_; ++i) {
    const size_t slot = static_cast<size_t>(
        (start_tick() + static_cast<int64_t>(i)) %
        static_cast<int64_t>(capacity_));
    const double* row = Row(slot);
    out.cpi.push_back(row[0]);
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      out.metrics[static_cast<size_t>(m)].push_back(row[m + 1]);
    }
  }
  return out;
}

}  // namespace invarnetx::core
