#ifndef INVARNETX_CORE_SIGDB_H_
#define INVARNETX_CORE_SIGDB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace invarnetx::core {

// Similarity between two binary violation tuples.
enum class SimilarityMetric {
  kJaccard,  // |a & b| / |a | b|  (1 when both are all-zero)
  kDice,     // 2|a & b| / (|a| + |b|)
  kCosine,   // |a & b| / sqrt(|a| |b|)
  kHamming,  // 1 - hamming_distance / length
  // Jaccard with per-bit inverse-document-frequency weights: bits violated
  // by many stored signatures (generic "the node is in trouble" bits) count
  // less than bits specific to a few problems. Computed by
  // SignatureDatabase::Query from the database contents; TupleSimilarity
  // falls back to unweighted Jaccard for this metric.
  kIdfJaccard,
};

std::string SimilarityMetricName(SimilarityMetric metric);

// Computes the similarity of two equal-length binary tuples in [0, 1].
Result<double> TupleSimilarity(const std::vector<uint8_t>& a,
                               const std::vector<uint8_t>& b,
                               SimilarityMetric metric);

// One stored problem signature.
struct Signature {
  std::string problem;
  std::vector<uint8_t> bits;
};

// A diagnosed cause candidate.
struct RankedCause {
  std::string problem;
  double score = 0.0;
};

// Two problems whose stored signatures are nearly identical - the paper's
// "signature conflict" (e.g. Net-drop vs Net-delay), flagged so operators
// know the ranked list may swap them.
struct SignatureConflict {
  std::string problem_a;
  std::string problem_b;
  double similarity = 0.0;
};

// The signature database of one operation context: violation tuples of
// investigated problems. Querying returns problems ranked by the best
// similarity any of their stored signatures achieves - the paper's ranked
// root-cause list with the most probable cause first.
class SignatureDatabase {
 public:
  Status Add(Signature signature);

  size_t size() const { return signatures_.size(); }
  const std::vector<Signature>& signatures() const { return signatures_; }

  // Ranked unique problems (ties broken by name for determinism).
  Result<std::vector<RankedCause>> Query(const std::vector<uint8_t>& tuple,
                                         SimilarityMetric metric,
                                         size_t top_k = 5) const;

  // Problem pairs whose best cross-signature similarity reaches
  // `min_similarity`, most similar first - the signature conflicts the
  // paper flags for future work. Deterministic order.
  Result<std::vector<SignatureConflict>> FindConflicts(
      double min_similarity = 0.6,
      SimilarityMetric metric = SimilarityMetric::kJaccard) const;

 private:
  std::vector<Signature> signatures_;
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_SIGDB_H_
