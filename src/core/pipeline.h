#ifndef INVARNETX_CORE_PIPELINE_H_
#define INVARNETX_CORE_PIPELINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "causal/ranking.h"
#include "common/status.h"
#include "core/anomaly.h"
#include "core/association.h"
#include "core/context.h"
#include "core/invariants.h"
#include "core/perf_model.h"
#include "core/sigdb.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// Tunable parameters of the InvarNet-X pipeline, defaulting to the paper's
// choices (tau = epsilon = 0.2, beta = 1.2, beta-max rule, 3-consecutive
// debounce, MIC associations, operation context on).
struct InvarNetXConfig {
  double tau = 0.2;
  double epsilon = 0.2;
  double beta = 1.2;
  ThresholdRule threshold_rule = ThresholdRule::kBetaMax;
  int consecutive_required = 3;
  AssociationEngineType engine = AssociationEngineType::kMic;
  // When false, a single global model/invariant set/signature base is used
  // for everything - the "InvarNet-X (no operation context)" baseline.
  bool use_operation_context = true;
  SimilarityMetric similarity = SimilarityMetric::kJaccard;
  // Below this similarity the problem is reported as unknown (the operator
  // gets hints - the violated association pairs - instead of a cause).
  double min_similarity = 0.25;
  size_t top_k = 5;
  // Length (in ticks) of the window association matrices are computed
  // over; 0 (the default, and the paper's formulation) uses the whole run.
  // A nonzero window slides across each normal run during training and
  // anchors on the most anomalous stretch of the CPI residuals during
  // diagnosis. Note that a window fully inside a fault shows consistent -
  // merely shifted - associations and therefore few violations; invariant
  // violations arise from runs that mix normal and faulty data, which is
  // why whole-run matrices diagnose better and are the default.
  int analysis_window = 0;
  // Workers for invariant mining and the cluster scan (<= 0: one per
  // hardware thread; 1: serial). A runtime knob, not persisted with the
  // store; results are bit-identical for every value.
  int num_threads = 0;
  // Memoize per-pair association scores in the shared score cache, so the
  // N-run stability filter and repeated diagnoses of the same traces skip
  // the MIC dynamic program.
  bool use_association_cache = true;
  // Run the incremental-mining byte-identity oracle on every retrain that
  // uses a prior (see AssociationOptions::verify_incremental). CI/debug
  // only - it costs the cold recompute the incremental path exists to skip.
  bool verify_incremental = false;
  // Causal-graph fallback engine: when no signature clears min_similarity
  // (or the signature base is empty), rank suspect metrics over the
  // broken-edge subgraph of the invariant network instead of reporting a
  // low-confidence match. Deterministic for every thread count.
  bool causal_fallback = true;
  // Power-iteration count and damping of the propagation walk
  // (causal::RankingOptions); suspects retained per report.
  int causal_iterations = 64;
  double causal_damping = 0.5;
  size_t causal_top_k = 5;
};

// Provenance of the invariant mining that produced a ContextModel: the
// per-slice association matrices together with the per-metric digests they
// were scored over. Carried inside the published snapshot so the next
// retrain of the same context can hand each slice its predecessor as an
// incremental prior (the dirty-pair rule: only pairs whose series content
// changed are rescored). Priors are matched positionally, which is only
// attempted when engine, window and slice count all agree; content safety
// comes from the digests themselves, so a stale or misaligned prior can
// reduce reuse but never change a score.
struct MiningSnapshot {
  std::string engine;          // AssociationEngine::name() records used
  size_t analysis_window = 0;  // config_.analysis_window at mining time
  std::vector<MatrixMiningRecord> records;  // one per slice, slice order
};

// Everything InvarNet-X learned about one operation context. Context models
// are published as immutable epochized snapshots: every TrainContext* /
// AddSignature / LoadFromDirectory builds a fresh ContextModel and swaps it
// in under the pipeline's lock, bumping `epoch`. Consumers that hold a
// snapshot (GetContext returns a shared_ptr) keep diagnosing against the
// epoch they started with even while the context is retrained - the online
// monitors' retrain-safety guarantee.
struct ContextModel {
  PerformanceModel perf;
  InvariantSet invariants;
  SignatureDatabase sigdb;
  // Mining provenance for incremental retraining. Empty on models restored
  // from disk (the XML stores persist invariants, not raw matrices), in
  // which case the first retrain runs cold and repopulates it.
  MiningSnapshot mining;
  // Publication sequence number of this snapshot within its context;
  // starts at 1 for the first trained/loaded model.
  uint64_t epoch = 0;
};

// What one diagnosis cost the analysis engine itself - the self-measured
// counterpart of the paper's Table 1 overhead numbers. Cache tallies are
// deltas of the shared score cache over this call, so they are approximate
// when diagnoses run concurrently.
struct DiagnosisCost {
  double detect_seconds = 0.0;  // CPI anomaly detection (Perf-D)
  double matrix_seconds = 0.0;  // association matrix of the abnormal run
  double infer_seconds = 0.0;   // violation tuple + signature query
  double causal_seconds = 0.0;  // causal fallback ranking (0 when skipped)
  double total_seconds = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // One-line `key=value` rendering for reports and logs.
  std::string Summary() const;
};

// The output of one diagnosis: detection outcome, the violation evidence,
// and the ranked causes (most probable first).
struct DiagnosisReport {
  bool anomaly_detected = false;
  int first_alarm_tick = -1;
  std::vector<uint8_t> violations;  // over the context's invariants
  int num_violations = 0;
  // |I - A| per invariant, same indexing as `violations` - the evidence
  // the hints are sorted by and the causal fallback weights edges with.
  std::vector<double> deviations;
  std::vector<RankedCause> causes;
  bool known_problem = false;  // top cause clears min_similarity
  // Causal-graph fallback ranking over the broken-edge subgraph of the
  // invariant network: filled when the signature engine found no cause
  // above min_similarity (unseen fault), most suspicious metric first.
  std::vector<causal::RankedSuspect> suspects;
  bool used_causal_fallback = false;
  // Human-readable violated pairs ("metric_a ~ metric_b"), capped at 10 -
  // the paper's hints for uninvestigated problems.
  std::vector<std::string> hints;
  // Self-observability summary appended by Diagnose / InferCause.
  DiagnosisCost cost;
};

// The InvarNet-X pipeline facade (Fig. 3): offline training (performance
// model building, invariant construction, signature base building) and
// online diagnosis (performance anomaly detection, cause inference).
class InvarNetX {
 public:
  explicit InvarNetX(InvarNetXConfig config = InvarNetXConfig());

  // ---- offline part -----------------------------------------------------

  // Trains the ARIMA performance model and the MIC likely invariants for a
  // context from >= 2 fault-free runs. `node_index` selects whose series in
  // the traces belong to this context.
  Status TrainContext(const OperationContext& context,
                      const std::vector<telemetry::RunTrace>& normal_runs,
                      size_t node_index);

  // One (run, node) pair used as a training example.
  struct TrainExample {
    const telemetry::RunTrace* run = nullptr;
    size_t node_index = 0;
  };

  // Generalized training entry point: pools the given examples into one
  // context model. Used directly by the no-operation-context baseline,
  // which pools every node's series under a single global key.
  Status TrainContextFromExamples(const OperationContext& context,
                                  const std::vector<TrainExample>& examples);

  // Adds the violation signature of an investigated problem from a run
  // recorded while the problem was active.
  Status AddSignature(const OperationContext& context,
                      const std::string& problem,
                      const telemetry::RunTrace& abnormal_run,
                      size_t node_index);

  // ---- online part ------------------------------------------------------

  // Full diagnosis of a run: anomaly detection on CPI first; cause
  // inference only when the alarm fires.
  Result<DiagnosisReport> Diagnose(const OperationContext& context,
                                   const telemetry::RunTrace& run,
                                   size_t node_index) const;

  // Cause inference alone (used when detection is handled elsewhere).
  Result<DiagnosisReport> InferCause(const OperationContext& context,
                                     const telemetry::RunTrace& run,
                                     size_t node_index) const;

  // Cause inference from a single node's series (streaming consumers that
  // buffer their own observations).
  Result<DiagnosisReport> InferCauseForNode(
      const OperationContext& context,
      const telemetry::NodeTrace& node) const;

  // Cause inference against an explicit model snapshot. This is the
  // retrain-safe entry point the online monitors use: the caller pins the
  // epoch it selected at job start and keeps diagnosing against it even if
  // the context has been retrained since.
  Result<DiagnosisReport> InferCauseForModel(
      const ContextModel& model, const telemetry::NodeTrace& node) const;

  // ---- introspection / persistence ---------------------------------------

  bool HasContext(const OperationContext& context) const;
  // Returns the current epoch snapshot of the context's model. The snapshot
  // is immutable and stays valid (and internally consistent) for as long as
  // the caller holds it, regardless of concurrent retraining.
  Result<std::shared_ptr<const ContextModel>> GetContext(
      const OperationContext& context) const;

  // Writes models.xml / invariants.xml / signatures.xml into `directory`
  // (which must exist), in the paper's tuple formats.
  Status SaveToDirectory(const std::string& directory) const;
  // Restores the offline state written by SaveToDirectory. Performance
  // models are restored exactly (coefficients + calibrated thresholds).
  Status LoadFromDirectory(const std::string& directory);

  const InvarNetXConfig& config() const { return config_; }

 private:
  // Applies the no-operation-context collapse when configured.
  OperationContext Key(const OperationContext& context) const;

  // The mining execution knobs (thread count, cache) from this config.
  AssociationOptions AssocOptions() const;

  // Association matrix of the configured analysis window with the largest
  // CPI residual mass (data "during the problem").
  Result<AssociationMatrix> AbnormalMatrix(
      const ContextModel& model, const telemetry::NodeTrace& node) const;

  // Current snapshot for an already-collapsed key; nullptr when untrained.
  std::shared_ptr<const ContextModel> Snapshot(
      const OperationContext& key) const;
  // Swaps `fresh` in as the key's new snapshot, assigning it the next epoch.
  void Publish(const OperationContext& key,
               std::shared_ptr<ContextModel> fresh);

  InvarNetXConfig config_;
  // Guards contexts_ (the map itself and slot pointer swaps); the pointed-to
  // ContextModels are immutable after publication and need no lock.
  mutable std::mutex contexts_mu_;
  std::map<OperationContext, std::shared_ptr<const ContextModel>> contexts_;
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_PIPELINE_H_
