#include "core/invariants.h"

#include <cmath>

#include "telemetry/metrics.h"

namespace invarnetx::core {

int InvariantSet::NumInvariants() const {
  int count = 0;
  for (uint8_t p : present) count += p;
  return count;
}

std::vector<int> InvariantSet::PairIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < present.size(); ++i) {
    if (present[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

Result<InvariantSet> BuildInvariants(
    const std::vector<AssociationMatrix>& normal_runs, double tau) {
  if (normal_runs.size() < 2) {
    return Status::InvalidArgument(
        "BuildInvariants: need >= 2 normal runs for a stability filter");
  }
  const size_t pairs = normal_runs[0].size();
  for (const AssociationMatrix& run : normal_runs) {
    if (run.size() != pairs) {
      return Status::InvalidArgument(
          "BuildInvariants: association matrices differ in size");
    }
  }
  InvariantSet set;
  set.present.assign(pairs, 0);
  set.values.assign(pairs, 0.0);
  for (size_t i = 0; i < pairs; ++i) {
    double lo = normal_runs[0][i];
    double hi = normal_runs[0][i];
    for (const AssociationMatrix& run : normal_runs) {
      lo = std::min(lo, run[i]);
      hi = std::max(hi, run[i]);
    }
    if (hi - lo < tau) {
      set.present[i] = 1;
      set.values[i] = hi;  // Algorithm 1 stores Max(V(m, n))
    }
  }
  return set;
}

Result<std::vector<uint8_t>> ComputeViolationTuple(
    const InvariantSet& invariants, const AssociationMatrix& abnormal,
    double epsilon, std::vector<double>* deviations) {
  if (invariants.present.size() != abnormal.size()) {
    return Status::InvalidArgument(
        "ComputeViolationTuple: matrix size mismatch with invariant set");
  }
  std::vector<uint8_t> bits;
  bits.reserve(invariants.present.size());
  if (deviations != nullptr) deviations->clear();
  for (size_t i = 0; i < invariants.present.size(); ++i) {
    if (!invariants.present[i]) continue;
    const double deviation = std::fabs(invariants.values[i] - abnormal[i]);
    bits.push_back(deviation >= epsilon ? 1 : 0);
    if (deviations != nullptr) deviations->push_back(deviation);
  }
  return bits;
}

}  // namespace invarnetx::core
