#ifndef INVARNETX_CORE_PERF_MODEL_H_
#define INVARNETX_CORE_PERF_MODEL_H_

#include <vector>

#include "common/status.h"
#include "timeseries/arima.h"

namespace invarnetx::core {

// The three threshold-setting rules of Sec. 3.2.
enum class ThresholdRule {
  kMaxMin,        // anomaly if residual > max(R) or < min(R)
  k95Percentile,  // anomaly if residual > P95(R)
  kBetaMax,       // anomaly if residual > beta * max(R); the paper's choice
};

std::string ThresholdRuleName(ThresholdRule rule);

// A context's performance model: the ARIMA model of normal CPI plus the
// calibrated residual statistics each threshold rule needs.
class PerformanceModel {
 public:
  // An empty placeholder model; assign a trained one before use.
  PerformanceModel() = default;

  // Fits the ARIMA order on the concatenated training traces (order chosen
  // by AIC) and calibrates residual statistics per-trace (residual streaks
  // never span trace boundaries). Requires >= 1 non-trivial trace.
  static Result<PerformanceModel> Train(
      const std::vector<std::vector<double>>& normal_cpi_traces,
      double beta = 1.2);

  const ts::ArimaModel& arima() const { return arima_; }
  double residual_max() const { return residual_max_; }
  double residual_min() const { return residual_min_; }
  double residual_p95() const { return residual_p95_; }
  double beta() const { return beta_; }

  // The scalar residual threshold implied by a rule (for kMaxMin this is
  // the upper bar; the lower bar is residual_min()).
  double Threshold(ThresholdRule rule) const;

  // Rebuilds a model from persisted parameters plus calibration traces.
  static Result<PerformanceModel> FromArima(
      ts::ArimaModel arima,
      const std::vector<std::vector<double>>& calibration_traces,
      double beta = 1.2);

  // Rebuilds a model from a fully persisted state (no recalibration).
  static PerformanceModel FromParts(ts::ArimaModel arima, double residual_min,
                                    double residual_max, double residual_p95,
                                    double beta = 1.2);

 private:
  Status Calibrate(const std::vector<std::vector<double>>& traces);

  ts::ArimaModel arima_;
  double residual_max_ = 0.0;
  double residual_min_ = 0.0;
  double residual_p95_ = 0.0;
  double beta_ = 1.2;
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_PERF_MODEL_H_
