#ifndef INVARNETX_CORE_RING_WINDOW_H_
#define INVARNETX_CORE_RING_WINDOW_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// Bounded observation window for streaming monitors: a fixed-capacity ring
// of per-tick samples (CPI + the 26 metrics) with oldest-tick eviction.
// This replaces the unbounded NodeTrace buffer on the online path, so a
// monitor's steady-state memory is exactly `capacity` ticks no matter how
// long the job runs. All storage is allocated once at construction; Push
// never allocates, which keeps per-tick ingestion latency flat.
class RingWindow {
 public:
  // `capacity` is the retention in ticks; it must be >= 1.
  explicit RingWindow(size_t capacity);

  // Appends one tick, evicting the oldest retained tick when full.
  void Push(double cpi,
            const std::array<double, telemetry::kNumMetrics>& metrics);

  // Drops every retained tick and resets the absolute tick counter.
  void Clear();

  // Retained ticks, <= capacity().
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  // Absolute ticks fed since construction/Clear (evicted ticks included).
  int64_t total_pushed() const { return total_; }
  // Absolute tick index of the oldest retained sample.
  int64_t start_tick() const {
    return total_ - static_cast<int64_t>(size_);
  }

  // Storage footprint in ticks - fixed at capacity() for the window's
  // lifetime (asserted by tests: fleet memory is monitors x window).
  size_t allocated_ticks() const {
    return slots_.size() / (telemetry::kNumMetrics + 1);
  }

  // Copies the retained ticks, oldest first, into a NodeTrace for the
  // association-matrix path. O(size()) - independent of job length.
  telemetry::NodeTrace Materialize(const std::string& ip) const;

 private:
  // Row-major storage: slot r holds [cpi, metric 0, ..., metric 25].
  double* Row(size_t slot) {
    return slots_.data() + slot * (telemetry::kNumMetrics + 1);
  }
  const double* Row(size_t slot) const {
    return slots_.data() + slot * (telemetry::kNumMetrics + 1);
  }

  size_t capacity_ = 0;
  size_t size_ = 0;
  int64_t total_ = 0;
  std::vector<double> slots_;
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_RING_WINDOW_H_
