#ifndef INVARNETX_CORE_INVARIANTS_H_
#define INVARNETX_CORE_INVARIANTS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/association.h"

namespace invarnetx::core {

// The likely invariants of one operation context: for each metric pair that
// stayed stable across the N normal runs (max - min of its association
// score < tau), the stored invariant value is the maximum score observed
// (Algorithm 1 in the paper).
struct InvariantSet {
  std::vector<uint8_t> present;  // kNumMetricPairs entries, 1 = invariant
  std::vector<double> values;    // stored I(m, n); meaningful iff present

  int NumInvariants() const;
  // Flat pair indices of the invariants, ascending.
  std::vector<int> PairIndices() const;
};

// Algorithm 1: pairwise association scores over N normal runs, stability
// filter with threshold tau. Requires >= 2 runs (stability of a single run
// is vacuous) and matrices of equal length.
Result<InvariantSet> BuildInvariants(
    const std::vector<AssociationMatrix>& normal_runs, double tau = 0.2);

// The violation tuple of an abnormal run: bit i (over the invariant pairs,
// ascending pair index) is 1 iff |I(m,n) - A(m,n)| >= epsilon. This tuple
// signifies a performance problem (Sec. 2). When `deviations` is non-null
// it receives |I - A| per invariant (same indexing as the tuple), which
// ranks the paper's "hints" by how badly each association broke.
Result<std::vector<uint8_t>> ComputeViolationTuple(
    const InvariantSet& invariants, const AssociationMatrix& abnormal,
    double epsilon = 0.2, std::vector<double>* deviations = nullptr);

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_INVARIANTS_H_
