#include "core/evaluate.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <thread>

namespace invarnetx::core {
namespace {

// Distinct seed streams for normal / signature / test runs so changing one
// campaign parameter does not reshuffle the others.
constexpr uint64_t kSignatureStream = 0x20000;
constexpr uint64_t kTestStream = 0x40000;

}  // namespace

Result<std::vector<telemetry::RunTrace>> SimulateNormalRuns(
    workload::WorkloadType workload, int count, uint64_t seed,
    int interactive_ticks) {
  std::vector<telemetry::RunTrace> runs;
  runs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    telemetry::RunConfig config;
    config.workload = workload;
    config.interactive_ticks = interactive_ticks;
    config.seed = seed + static_cast<uint64_t>(i);
    Result<telemetry::RunTrace> trace = SimulateRun(config);
    if (!trace.ok()) return trace.status();
    runs.push_back(std::move(trace.value()));
  }
  return runs;
}

Result<telemetry::RunTrace> SimulateFaultRun(workload::WorkloadType workload,
                                             faults::FaultType fault,
                                             uint64_t seed) {
  telemetry::RunConfig config;
  config.workload = workload;
  config.seed = seed;
  config.fault =
      telemetry::FaultRequest{fault, telemetry::DefaultFaultWindow(fault)};
  return SimulateRun(config);
}

OperationContext VictimContext(const EvalConfig& config) {
  // Victim node i has ip 10.0.0.(i+1) on the testbed.
  return OperationContext{
      config.workload, "10.0.0." + std::to_string(config.victim_node + 1)};
}

Status TrainPipeline(InvarNetX* pipeline, const EvalConfig& config,
                     const std::vector<telemetry::RunTrace>& normal_runs) {
  const OperationContext context = VictimContext(config);
  if (pipeline->config().use_operation_context) {
    return pipeline->TrainContext(context, normal_runs, config.victim_node);
  }
  // No-operation-context baseline: one pooled model over every slave of
  // every training run.
  std::vector<InvarNetX::TrainExample> examples;
  for (const telemetry::RunTrace& run : normal_runs) {
    for (size_t node = 1; node < run.nodes.size(); ++node) {
      examples.push_back(InvarNetX::TrainExample{&run, node});
    }
  }
  return pipeline->TrainContextFromExamples(context, examples);
}

Result<EvalResult> RunEvaluation(const EvalConfig& config) {
  // The operation context is (workload type, node); the no-context baseline
  // therefore loses both dimensions: its single global model is trained on
  // every node of a mixture of every workload's normal runs, because
  // without context it cannot know which workload produced which trace.
  std::vector<telemetry::RunTrace> training;
  if (config.pipeline.use_operation_context) {
    Result<std::vector<telemetry::RunTrace>> normal_runs =
        SimulateNormalRuns(config.workload, config.normal_runs, config.seed,
                           config.interactive_train_ticks);
    if (!normal_runs.ok()) return normal_runs.status();
    training = std::move(normal_runs.value());
  } else {
    const int num_workloads =
        static_cast<int>(std::size(workload::kAllWorkloads));
    const int per_workload =
        std::max(2, config.normal_runs / num_workloads);
    for (workload::WorkloadType w : workload::kAllWorkloads) {
      Result<std::vector<telemetry::RunTrace>> runs =
          SimulateNormalRuns(w, per_workload, config.seed + 0x10000,
                             config.interactive_train_ticks);
      if (!runs.ok()) return runs.status();
      for (telemetry::RunTrace& run : runs.value()) {
        training.push_back(std::move(run));
      }
    }
  }

  InvarNetX pipeline(config.pipeline);
  INVARNETX_RETURN_IF_ERROR(TrainPipeline(&pipeline, config, training));

  std::vector<faults::FaultType> fault_list = config.faults;
  if (fault_list.empty()) {
    for (faults::FaultType fault : faults::AllFaults()) {
      if (faults::AppliesTo(fault, config.workload)) {
        fault_list.push_back(fault);
      }
    }
  }

  const OperationContext context = VictimContext(config);
  for (size_t fi = 0; fi < fault_list.size(); ++fi) {
    for (int rep = 0; rep < config.signature_train_runs; ++rep) {
      const uint64_t seed = config.seed + kSignatureStream +
                            static_cast<uint64_t>(fi) * 1000 +
                            static_cast<uint64_t>(rep);
      Result<telemetry::RunTrace> run =
          SimulateFaultRun(config.workload, fault_list[fi], seed);
      if (!run.ok()) return run.status();
      INVARNETX_RETURN_IF_ERROR(pipeline.AddSignature(
          context, faults::FaultName(fault_list[fi]), run.value(),
          config.victim_node));
    }
  }

  EvalResult result;
  result.workload = config.workload;
  std::map<faults::FaultType, FaultOutcome> outcomes;
  for (faults::FaultType fault : fault_list) {
    outcomes[fault].fault = fault;
  }

  // Each test run (simulate + diagnose) is independent and Diagnose is
  // const, so the campaign fans the runs out over a small thread pool and
  // tallies sequentially afterwards.
  struct TestCase {
    size_t fault_index = 0;
    int rep = 0;
    bool completed = false;
    Status error = Status::Internal("not run");
    DiagnosisReport report;
  };
  std::vector<TestCase> cases;
  cases.reserve(fault_list.size() *
                static_cast<size_t>(config.test_runs_per_fault));
  for (size_t fi = 0; fi < fault_list.size(); ++fi) {
    for (int rep = 0; rep < config.test_runs_per_fault; ++rep) {
      TestCase test;
      test.fault_index = fi;
      test.rep = rep;
      cases.push_back(std::move(test));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t num_workers =
      std::max<size_t>(1, std::min<size_t>(hw == 0 ? 4 : hw, 8));
  std::atomic<size_t> next_case{0};
  auto worker = [&]() {
    for (;;) {
      const size_t index = next_case.fetch_add(1);
      if (index >= cases.size()) return;
      TestCase& test = cases[index];
      const faults::FaultType truth = fault_list[test.fault_index];
      const uint64_t seed = config.seed + kTestStream +
                            static_cast<uint64_t>(test.fault_index) * 1000 +
                            static_cast<uint64_t>(test.rep);
      Result<telemetry::RunTrace> run =
          SimulateFaultRun(config.workload, truth, seed);
      if (!run.ok()) {
        test.error = run.status();
        continue;
      }
      Result<DiagnosisReport> report =
          pipeline.Diagnose(context, run.value(), config.victim_node);
      if (!report.ok()) {
        test.error = report.status();
        continue;
      }
      test.report = std::move(report.value());
      test.completed = true;
    }
  };
  std::vector<std::thread> workers;
  for (size_t w = 0; w + 1 < num_workers; ++w) workers.emplace_back(worker);
  worker();
  for (std::thread& thread : workers) thread.join();

  for (const TestCase& test : cases) {
    if (!test.completed) return test.error;
    const faults::FaultType truth = fault_list[test.fault_index];
    const std::string truth_name = faults::FaultName(truth);
    const DiagnosisReport& report = test.report;

    FaultOutcome& outcome = outcomes[truth];
    if (!report.anomaly_detected) {
      ++outcome.undetected;
      ++outcome.false_negatives;
      ++result.confusion[truth_name]["undetected"];
      continue;
    }
    if (!report.known_problem) {
      ++outcome.unknown;
      ++outcome.false_negatives;
      ++result.confusion[truth_name]["unknown"];
      continue;
    }
    const std::string& predicted = report.causes[0].problem;
    ++result.confusion[truth_name][predicted];
    if (predicted == truth_name) {
      ++outcome.true_positives;
    } else {
      ++outcome.false_negatives;
      Result<faults::FaultType> predicted_type =
          faults::FaultFromName(predicted);
      if (predicted_type.ok() && outcomes.count(predicted_type.value()) > 0) {
        ++outcomes[predicted_type.value()].false_positives;
      }
    }
  }

  double precision_sum = 0.0, recall_sum = 0.0;
  for (faults::FaultType fault : fault_list) {
    result.per_fault.push_back(outcomes[fault]);
    precision_sum += outcomes[fault].precision();
    recall_sum += outcomes[fault].recall();
  }
  if (!result.per_fault.empty()) {
    result.avg_precision = precision_sum / result.per_fault.size();
    result.avg_recall = recall_sum / result.per_fault.size();
  }
  return result;
}

}  // namespace invarnetx::core
