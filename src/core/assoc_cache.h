#ifndef INVARNETX_CORE_ASSOC_CACHE_H_
#define INVARNETX_CORE_ASSOC_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace invarnetx::core {

// Content-hash key of one (engine, x series, y series) association score.
// 128 bits of two independent FNV/splitmix hashes over the engine name and
// the canonicalized bytes of both series: a collision between distinct
// inputs needs both halves to collide (~2^-128 per pair), so the cache
// stores no series data and a lookup costs a hash instead of a MIC grid
// search.
//
// Canonicalization: -0.0 hashes as +0.0, because the two compare equal and
// every association engine is insensitive to the sign of zero (MIC and the
// rank blend only compare values; ARX sign-of-zero differences cannot
// change a score's value) - without it, numerically identical series would
// miss the cache and (worse) read as dirty to the incremental retrain
// path. NaNs hash by their raw bit pattern: the pipeline rejects
// non-finite samples at its boundary, so distinct NaN payloads reaching a
// digest are a caller bug, not something to paper over.
struct PairScoreKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const PairScoreKey& a, const PairScoreKey& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

// Hashes an ordered series pair under the given engine name. Order matters
// (it mirrors the engine call), and the engine name keys apart engines that
// score the same series differently. Engines currently run with their
// default options; an engine that grows tunable options must fold them into
// its name() for the key to stay sound.
//
// This is the single-shot reference path: it rereads both full series per
// call. The mining fan-out instead hashes each metric once with HashSeries
// and derives all C(26,2) pair keys from the digests via CombinePairKey,
// turning 2 * O(ticks) of per-pair hashing into O(1).
PairScoreKey HashSeriesPair(std::string_view engine,
                            const std::vector<double>& x,
                            const std::vector<double>& y);

// 128-bit content digest of one metric series, precomputable once per
// metric and combinable into pair keys without rereading the series.
// Digest equality implies the two series are numerically identical
// (modulo the sign of zero), which is what lets the incremental retrain
// path treat an unchanged digest as "every score involving this metric is
// still valid".
struct SeriesDigest {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const SeriesDigest& a, const SeriesDigest& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const SeriesDigest& a, const SeriesDigest& b) {
    return !(a == b);
  }
};

// Digest of a series' length and canonicalized bytes (same double-FNV
// construction as HashSeriesPair, so distinct series collide with ~2^-128
// probability; -0.0 digests as +0.0, see PairScoreKey).
SeriesDigest HashSeries(const std::vector<double>& v);

// Derives the cache key of an ordered (x, y) pair under `engine` from the
// two precomputed digests. Deterministic and order-sensitive like
// HashSeriesPair; the key space is distinct from HashSeriesPair's (the two
// derivations must not be mixed for the same logical entry - each caller
// keys consistently with one scheme, and the cache is in-memory only).
PairScoreKey CombinePairKey(std::string_view engine, const SeriesDigest& x,
                            const SeriesDigest& y);

// Process-wide memoization of pairwise association scores, shared by every
// ComputeAssociationMatrix call. Invariant mining re-scores identical
// series constantly - the N-run stability filter, sliding training windows,
// baselines and benches all revisit the same normal-run traces - and MIC is
// the pipeline's dominant cost, so repeats should hit a hash table.
//
// Thread-safe via sharded mutexes (16 shards keyed by the low hash bits),
// so parallel mining workers rarely contend. Values are the exact doubles
// the engine produced: a hit is bit-identical to the compute it memoizes.
//
// Every instance additionally mirrors its hit/miss/flush/evicted events
// into the shared obs::MetricsRegistry (`assoc_cache.*` counters), so
// `invarnetx stats` and the benches can report cache effectiveness and
// cache-thrash without holding a cache pointer.
class AssociationScoreCache {
 public:
  // `max_entries_per_shard` bounds each shard; reaching the cap evicts the
  // least-recently-touched half of the shard (an earlier version flushed
  // the whole shard, which collapsed the hit rate to ~0 exactly when the
  // working set reached capacity). The default keeps worst-case footprint
  // in the tens of MB; tests shrink it to observe eviction behaviour.
  explicit AssociationScoreCache(size_t max_entries_per_shard = 1 << 16)
      : max_entries_per_shard_(max_entries_per_shard) {}

  AssociationScoreCache(const AssociationScoreCache&) = delete;
  AssociationScoreCache& operator=(const AssociationScoreCache&) = delete;

  // The score stored for `key`, if any. Counts a hit or a miss; a hit
  // refreshes the entry's recency stamp, so hot keys survive evictions.
  std::optional<double> Lookup(const PairScoreKey& key) const;

  // Stores a computed score. When a shard is at its entry cap, the
  // least-recently-touched half of the shard (minimum 1 entry) is evicted
  // first, so recently inserted / recently hit keys are retained - a
  // cache, not a store; correctness never depends on retention.
  void Insert(const PairScoreKey& key, double score);

  void Clear();
  size_t size() const;

  // Lifetime hit/miss tallies (Clear does not reset them); used by benches
  // and tests to observe cache effectiveness.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  // Lifetime capacity-eviction tallies: `flushes` counts eviction passes
  // (each pass drops the least-recently-touched half of one full shard;
  // before the bounded-eviction fix it counted wholesale shard drops),
  // `evicted` counts the entries those passes removed. A rising flush
  // count with a low hit rate is cache-thrash - the working set exceeds
  // the cap.
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }

  // Hits / (hits + misses); 0 before any lookup.
  double HitRate() const;

  // The shared instance used by ComputeAssociationMatrix.
  static AssociationScoreCache& Shared();

 private:
  static constexpr size_t kNumShards = 16;

  struct KeyHash {
    size_t operator()(const PairScoreKey& key) const {
      return static_cast<size_t>(key.hi);
    }
  };

  // A cached score plus the shard tick it was last inserted or hit at;
  // eviction drops the entries with the oldest stamps.
  struct Entry {
    double score = 0.0;
    uint64_t stamp = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PairScoreKey, Entry, KeyHash> scores;
    // Monotonic per-shard touch counter feeding the recency stamps.
    uint64_t tick = 0;
  };

  // Drops the least-recently-touched half of `shard` (minimum 1 entry).
  // Caller holds shard.mu.
  void EvictColdHalf(Shard& shard);

  Shard& ShardFor(const PairScoreKey& key) const {
    return shards_[static_cast<size_t>(key.lo) % kNumShards];
  }

  const size_t max_entries_per_shard_;
  mutable std::array<Shard, kNumShards> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> evicted_{0};
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_ASSOC_CACHE_H_
