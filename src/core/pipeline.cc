#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include "common/parallel.h"
#include "core/assoc_cache.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "telemetry/metrics.h"
#include "xmlstore/stores.h"
#include "xmlstore/xml.h"

namespace invarnetx::core {
namespace {

constexpr const char* kGlobalIp = "global";

// Collectors can emit garbage (counter wrap, parse bugs); a NaN reaching
// the ARIMA recursion would silently poison every later forecast, so the
// pipeline rejects non-finite observations at its boundary.
Status ValidateNode(const telemetry::NodeTrace& node, const char* what) {
  for (double v : node.cpi) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(std::string(what) +
                                     ": non-finite CPI sample");
    }
  }
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    for (double v : node.metrics[static_cast<size_t>(m)]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(std::string(what) +
                                       ": non-finite sample in " +
                                       telemetry::MetricName(m));
      }
    }
  }
  return Status::Ok();
}

// Copies ticks [start, start + len) of every series in the node trace.
telemetry::NodeTrace SliceNode(const telemetry::NodeTrace& node, size_t start,
                               size_t len) {
  telemetry::NodeTrace out;
  out.ip = node.ip;
  const size_t n = node.cpi.size();
  const size_t begin = std::min(start, n);
  const size_t end = std::min(start + len, n);
  out.cpi.assign(node.cpi.begin() + static_cast<long>(begin),
                 node.cpi.begin() + static_cast<long>(end));
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    const std::vector<double>& series = node.metrics[static_cast<size_t>(m)];
    out.metrics[static_cast<size_t>(m)].assign(
        series.begin() + static_cast<long>(begin),
        series.begin() + static_cast<long>(end));
  }
  return out;
}

// Start of the length-`window` stretch with the largest total CPI residual:
// the data "during the performance problem".
size_t AnomalousWindowStart(const PerformanceModel& perf,
                            const std::vector<double>& cpi, size_t window) {
  if (cpi.size() <= window) return 0;
  Result<std::vector<double>> residuals = perf.arima().AbsResiduals(cpi);
  if (!residuals.ok()) return 0;
  const std::vector<double>& r = residuals.value();
  double sum = 0.0;
  for (size_t i = 0; i < window; ++i) sum += r[i];
  double best = sum;
  size_t best_start = 0;
  for (size_t start = 1; start + window <= r.size(); ++start) {
    sum += r[start + window - 1] - r[start - 1];
    if (sum > best) {
      best = sum;
      best_start = start;
    }
  }
  return best_start;
}

}  // namespace

std::string DiagnosisCost::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "detect_s=%.6f matrix_s=%.6f infer_s=%.6f causal_s=%.6f "
                "total_s=%.6f cache_hits=%llu cache_misses=%llu",
                detect_seconds, matrix_seconds, infer_seconds, causal_seconds,
                total_seconds,
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses));
  return buf;
}

InvarNetX::InvarNetX(InvarNetXConfig config) : config_(config) {}

OperationContext InvarNetX::Key(const OperationContext& context) const {
  if (config_.use_operation_context) return context;
  // The no-operation-context baseline: one model for every workload/node.
  return OperationContext{workload::WorkloadType::kWordCount, kGlobalIp};
}

Status InvarNetX::TrainContext(
    const OperationContext& context,
    const std::vector<telemetry::RunTrace>& normal_runs, size_t node_index) {
  std::vector<TrainExample> examples;
  examples.reserve(normal_runs.size());
  for (const telemetry::RunTrace& run : normal_runs) {
    examples.push_back(TrainExample{&run, node_index});
  }
  return TrainContextFromExamples(context, examples);
}

Status InvarNetX::TrainContextFromExamples(
    const OperationContext& context,
    const std::vector<TrainExample>& examples) {
  if (examples.size() < 2) {
    return Status::InvalidArgument(
        "TrainContext: need >= 2 training examples");
  }
  obs::Span train_span("train_context",
                       {{"context", Key(context).ToString()},
                        {"examples", examples.size()}});
  obs::MetricsRegistry::Shared().GetCounter("pipeline.train_calls")
      .Increment();
  std::vector<std::vector<double>> cpi_traces;
  const std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(config_.engine);
  // Validation and window layout run serially (cheap); the MIC mining of
  // every (example, window) slice - the dominant training cost - fans out
  // across workers, each writing its own preallocated matrix slot so the
  // result is independent of scheduling.
  struct SliceTask {
    const telemetry::NodeTrace* node = nullptr;
    size_t start = 0;
    size_t window = 0;
  };
  std::vector<SliceTask> slices;
  for (const TrainExample& example : examples) {
    if (example.run == nullptr ||
        example.node_index >= example.run->nodes.size()) {
      return Status::InvalidArgument("TrainContext: bad example");
    }
    const telemetry::NodeTrace& node =
        example.run->nodes[example.node_index];
    INVARNETX_RETURN_IF_ERROR(ValidateNode(node, "TrainContext"));
    cpi_traces.push_back(node.cpi);
    // Slide the analysis window across the run (50% overlap) so the
    // stability filter only keeps associations that hold in any window
    // position - the same footing diagnosis-time matrices are computed on.
    const size_t n = node.cpi.size();
    const size_t window = config_.analysis_window > 0
                              ? static_cast<size_t>(config_.analysis_window)
                              : n;
    if (window >= n) {
      slices.push_back(SliceTask{&node, 0, window});
    } else {
      // The stride must never be 0 (window == 1 would otherwise loop on
      // s = 0 forever).
      const size_t stride = std::max<size_t>(1, window / 2);
      size_t last = 0;
      for (size_t s = 0; s + window <= n; s += stride) {
        slices.push_back(SliceTask{&node, s, window});
        last = s;
      }
      if (last + window < n) slices.push_back(SliceTask{&node, n - window,
                                                        window});
    }
  }
  // Incremental retrain: the previous epoch's snapshot carries the mining
  // records (matrices + digests) of its slices. When this retrain lines up
  // with it - same engine, same window config, same slice count - each
  // slice hands its predecessor to ComputeAssociationMatrix as a prior and
  // only digest-dirty pairs are rescored. Misalignment just means a cold
  // mine; the records repopulate either way.
  std::shared_ptr<const ContextModel> previous = Snapshot(Key(context));
  const std::string engine_name = engine->name();
  const size_t window_config =
      config_.analysis_window > 0
          ? static_cast<size_t>(config_.analysis_window)
          : 0;
  const MiningSnapshot* prior_mining = nullptr;
  if (previous != nullptr && previous->mining.engine == engine_name &&
      previous->mining.analysis_window == window_config &&
      previous->mining.records.size() == slices.size()) {
    prior_mining = &previous->mining;
  }
  std::vector<AssociationMatrix> matrices(slices.size());
  std::vector<MatrixMiningRecord> records(slices.size());
  std::atomic<int> pairs_rescored{0};
  std::atomic<int> pairs_reused{0};
  const AssociationOptions assoc = AssocOptions();
  obs::Span mine_span("mine_invariants",
                      {{"slices", slices.size()},
                       {"incremental", prior_mining != nullptr}});
  INVARNETX_RETURN_IF_ERROR(ParallelFor(
      slices.size(), config_.num_threads, [&](size_t i) -> Status {
        const SliceTask& task = slices[i];
        const telemetry::NodeTrace sliced =
            SliceNode(*task.node, task.start, task.window);
        IncrementalMatrixStats stats;
        Result<AssociationMatrix> matrix = ComputeAssociationMatrix(
            sliced, *engine, assoc,
            prior_mining == nullptr ? nullptr : &prior_mining->records[i],
            &records[i], &stats);
        if (!matrix.ok()) return matrix.status();
        pairs_rescored.fetch_add(stats.rescored, std::memory_order_relaxed);
        pairs_reused.fetch_add(stats.reused, std::memory_order_relaxed);
        matrices[i] = std::move(matrix.value());
        return Status::Ok();
      }));
  mine_span.End();
  if (prior_mining != nullptr) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
    registry.GetCounter("pipeline.pairs_rescored")
        .Increment(static_cast<uint64_t>(
            pairs_rescored.load(std::memory_order_relaxed)));
    registry.GetCounter("pipeline.pairs_reused")
        .Increment(static_cast<uint64_t>(
            pairs_reused.load(std::memory_order_relaxed)));
  }

  obs::Span perf_span("train_perf_model");
  Result<PerformanceModel> perf =
      PerformanceModel::Train(cpi_traces, config_.beta);
  if (!perf.ok()) return perf.status();
  perf_span.End();
  Result<InvariantSet> invariants = BuildInvariants(matrices, config_.tau);
  if (!invariants.ok()) return invariants.status();

  // Publish a fresh epoch: signatures taught to the previous epoch carry
  // over (retraining refreshes the model and invariants, not the operator's
  // investigated-problem knowledge).
  auto fresh = std::make_shared<ContextModel>();
  fresh->perf = std::move(perf.value());
  fresh->invariants = std::move(invariants.value());
  fresh->mining.engine = engine_name;
  fresh->mining.analysis_window = window_config;
  fresh->mining.records = std::move(records);
  // Re-fetch the newest epoch for the signature carry-over: a signature
  // taught while this retrain was mining must not be dropped ("previous"
  // above may be a mine-duration stale snapshot).
  if (std::shared_ptr<const ContextModel> latest = Snapshot(Key(context))) {
    fresh->sigdb = latest->sigdb;
  }
  const size_t num_invariants = fresh->invariants.NumInvariants();
  Publish(Key(context), std::move(fresh));
  obs::EventJournal::Shared().Record(
      obs::EventKind::kRetrain, "context (re)trained",
      {{"context", Key(context).ToString()},
       {"invariants", num_invariants},
       {"incremental", prior_mining != nullptr},
       {"pairs_rescored", pairs_rescored.load(std::memory_order_relaxed)},
       {"pairs_reused", pairs_reused.load(std::memory_order_relaxed)}});
  INVARNETX_OBS_LOG(
      obs::LogLevel::kInfo, "trained context",
      {{"context", Key(context).ToString()},
       {"examples", examples.size()},
       {"slices", slices.size()},
       {"invariants", num_invariants},
       {"incremental", prior_mining != nullptr},
       {"pairs_rescored", pairs_rescored.load(std::memory_order_relaxed)},
       {"pairs_reused", pairs_reused.load(std::memory_order_relaxed)},
       {"mine_s", mine_span.Seconds()},
       {"perf_model_s", perf_span.Seconds()}});
  return Status::Ok();
}

Status InvarNetX::AddSignature(const OperationContext& context,
                               const std::string& problem,
                               const telemetry::RunTrace& abnormal_run,
                               size_t node_index) {
  std::shared_ptr<const ContextModel> current = Snapshot(Key(context));
  if (current == nullptr) {
    return Status::FailedPrecondition("AddSignature: context not trained: " +
                                      context.ToString());
  }
  if (node_index >= abnormal_run.nodes.size()) {
    return Status::InvalidArgument("AddSignature: node index out of range");
  }
  INVARNETX_RETURN_IF_ERROR(
      ValidateNode(abnormal_run.nodes[node_index], "AddSignature"));
  Result<AssociationMatrix> matrix =
      AbnormalMatrix(*current, abnormal_run.nodes[node_index]);
  if (!matrix.ok()) return matrix.status();
  Result<std::vector<uint8_t>> tuple = ComputeViolationTuple(
      current->invariants, matrix.value(), config_.epsilon);
  if (!tuple.ok()) return tuple.status();
  obs::MetricsRegistry::Shared().GetCounter("pipeline.signatures_added")
      .Increment();
  INVARNETX_OBS_LOG(obs::LogLevel::kInfo, "added signature",
                    {{"context", Key(context).ToString()},
                     {"problem", problem}});
  // Copy-on-write: the signature lands in a fresh epoch so readers holding
  // the current snapshot never observe a mutating SignatureDatabase.
  auto fresh = std::make_shared<ContextModel>(*current);
  INVARNETX_RETURN_IF_ERROR(
      fresh->sigdb.Add(Signature{problem, std::move(tuple.value())}));
  Publish(Key(context), std::move(fresh));
  return Status::Ok();
}

Result<DiagnosisReport> InvarNetX::Diagnose(const OperationContext& context,
                                            const telemetry::RunTrace& run,
                                            size_t node_index) const {
  std::shared_ptr<const ContextModel> model = Snapshot(Key(context));
  if (model == nullptr) {
    return Status::FailedPrecondition("Diagnose: context not trained: " +
                                      context.ToString());
  }
  if (node_index >= run.nodes.size()) {
    return Status::InvalidArgument("Diagnose: node index out of range");
  }
  INVARNETX_RETURN_IF_ERROR(ValidateNode(run.nodes[node_index], "Diagnose"));
  obs::Span diagnose_span("diagnose", {{"context", Key(context).ToString()}});
  obs::MetricsRegistry::Shared().GetCounter("pipeline.diagnose_calls")
      .Increment();
  AnomalyDetector detector(model->perf, config_.threshold_rule,
                           config_.consecutive_required);
  obs::Span detect_span("detect");
  const AnomalyScan scan = detector.Scan(run.nodes[node_index].cpi);
  detect_span.End();
  if (!scan.triggered()) {
    DiagnosisReport report;
    report.anomaly_detected = false;
    diagnose_span.End();
    report.cost.detect_seconds = detect_span.Seconds();
    report.cost.total_seconds = diagnose_span.Seconds();
    INVARNETX_OBS_LOG(obs::LogLevel::kDebug, "diagnosis: no anomaly",
                      {{"context", Key(context).ToString()},
                       {"detect_s", detect_span.Seconds()}});
    return report;
  }
  obs::MetricsRegistry::Shared().GetCounter("pipeline.anomalies").Increment();
  // Infer against the same epoch detection ran on, so a concurrent retrain
  // cannot split one diagnosis across two model generations.
  Result<DiagnosisReport> report =
      InferCauseForModel(*model, run.nodes[node_index]);
  if (!report.ok()) return report.status();
  report.value().anomaly_detected = true;
  report.value().first_alarm_tick = scan.first_alarm_tick;
  diagnose_span.End();
  report.value().cost.detect_seconds = detect_span.Seconds();
  report.value().cost.total_seconds = diagnose_span.Seconds();
  INVARNETX_OBS_LOG(
      obs::LogLevel::kInfo, "diagnosis: anomaly",
      {{"context", Key(context).ToString()},
       {"first_alarm_tick", scan.first_alarm_tick},
       {"violations", report.value().num_violations},
       {"known_problem", report.value().known_problem},
       {"total_s", diagnose_span.Seconds()}});
  return report;
}

Result<DiagnosisReport> InvarNetX::InferCause(const OperationContext& context,
                                              const telemetry::RunTrace& run,
                                              size_t node_index) const {
  if (node_index >= run.nodes.size()) {
    return Status::InvalidArgument("InferCause: node index out of range");
  }
  return InferCauseForNode(context, run.nodes[node_index]);
}

Result<DiagnosisReport> InvarNetX::InferCauseForNode(
    const OperationContext& context, const telemetry::NodeTrace& node) const {
  std::shared_ptr<const ContextModel> model = Snapshot(Key(context));
  if (model == nullptr) {
    return Status::FailedPrecondition("InferCause: context not trained: " +
                                      context.ToString());
  }
  return InferCauseForModel(*model, node);
}

Result<DiagnosisReport> InvarNetX::InferCauseForModel(
    const ContextModel& model, const telemetry::NodeTrace& node) const {
  obs::Span infer_span("infer_cause");
  const AssociationScoreCache& cache = AssociationScoreCache::Shared();
  const uint64_t hits_before = cache.hits();
  const uint64_t misses_before = cache.misses();
  const uint64_t matrix_start_us = obs::UptimeMicros();
  Result<AssociationMatrix> matrix = AbnormalMatrix(model, node);
  if (!matrix.ok()) return matrix.status();
  const double matrix_seconds =
      static_cast<double>(obs::UptimeMicros() - matrix_start_us) / 1e6;
  std::vector<double> deviations;
  Result<std::vector<uint8_t>> tuple = ComputeViolationTuple(
      model.invariants, matrix.value(), config_.epsilon, &deviations);
  if (!tuple.ok()) return tuple.status();

  DiagnosisReport report;
  report.cost.matrix_seconds = matrix_seconds;
  report.cost.cache_hits = cache.hits() - hits_before;
  report.cost.cache_misses = cache.misses() - misses_before;
  report.violations = std::move(tuple.value());
  report.deviations = std::move(deviations);
  for (uint8_t bit : report.violations) report.num_violations += bit;

  // Hints: violated association pairs, worst deviation first, so the
  // operator sees the most decisively broken invariants at the top.
  std::vector<size_t> violated;
  for (size_t i = 0; i < report.violations.size(); ++i) {
    if (report.violations[i]) violated.push_back(i);
  }
  std::stable_sort(violated.begin(), violated.end(),
                   [&report](size_t a, size_t b) {
                     return report.deviations[a] > report.deviations[b];
                   });
  const std::vector<int> pair_indices = model.invariants.PairIndices();
  for (size_t i : violated) {
    if (report.hints.size() >= 10) break;
    int a = 0, b = 0;
    telemetry::PairFromIndex(pair_indices[i], &a, &b);
    report.hints.push_back(telemetry::MetricName(a) + " ~ " +
                           telemetry::MetricName(b));
  }

  if (model.sigdb.size() > 0) {
    Result<std::vector<RankedCause>> causes =
        model.sigdb.Query(report.violations, config_.similarity,
                          config_.top_k);
    if (!causes.ok()) return causes.status();
    report.causes = std::move(causes.value());
    report.known_problem = !report.causes.empty() &&
                           report.causes[0].score >= config_.min_similarity;
  }

  // Causal fallback: no signature cleared the threshold (or there were no
  // signatures at all), so rank suspect metrics over the broken-edge
  // subgraph of the invariant network instead of leaving the operator with
  // a low-confidence match. Pure function of the model snapshot and the
  // violation evidence - deterministic for every thread count.
  double causal_seconds = 0.0;
  if (config_.causal_fallback && !report.known_problem &&
      report.num_violations > 0) {
    const uint64_t causal_start_us = obs::UptimeMicros();
    Result<causal::InvariantGraph> graph = causal::BuildInvariantGraph(
        model.invariants.present, model.invariants.values, report.violations,
        report.deviations);
    if (!graph.ok()) return graph.status();
    causal::RankingOptions ranking_options;
    ranking_options.iterations = config_.causal_iterations;
    ranking_options.damping = config_.causal_damping;
    ranking_options.top_k = config_.causal_top_k;
    report.suspects = causal::RankSuspects(graph.value(), ranking_options);
    report.used_causal_fallback = !report.suspects.empty();
    causal_seconds =
        static_cast<double>(obs::UptimeMicros() - causal_start_us) / 1e6;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
    registry.GetCounter("causal.rankings").Increment();
    if (report.used_causal_fallback) {
      registry.GetCounter("causal.fallback_total").Increment();
      obs::EventJournal::Shared().Record(
          obs::EventKind::kCausalFallback,
          "causal fallback ranked suspects",
          {{"violations", report.num_violations},
           {"suspects", static_cast<int>(report.suspects.size())},
           {"top_metric", telemetry::MetricName(report.suspects[0].metric)}});
    }
  }

  infer_span.End();
  report.cost.causal_seconds = causal_seconds;
  report.cost.total_seconds = infer_span.Seconds();
  report.cost.infer_seconds =
      infer_span.Seconds() - matrix_seconds - causal_seconds;
  return report;
}

AssociationOptions InvarNetX::AssocOptions() const {
  AssociationOptions options;
  options.num_threads = config_.num_threads;
  options.use_cache = config_.use_association_cache;
  options.verify_incremental = config_.verify_incremental;
  return options;
}

Result<AssociationMatrix> InvarNetX::AbnormalMatrix(
    const ContextModel& model, const telemetry::NodeTrace& node) const {
  const std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(config_.engine);
  if (config_.analysis_window > 0 &&
      node.cpi.size() > static_cast<size_t>(config_.analysis_window)) {
    const size_t window = static_cast<size_t>(config_.analysis_window);
    const size_t start = AnomalousWindowStart(model.perf, node.cpi, window);
    return ComputeAssociationMatrix(SliceNode(node, start, window), *engine,
                                    AssocOptions());
  }
  // Whole-run matrices: the contrast between normal stretches (before and
  // after the problem) and the problem window is exactly what produces the
  // violation pattern, so no truncation is applied.
  return ComputeAssociationMatrix(node, *engine, AssocOptions());
}

bool InvarNetX::HasContext(const OperationContext& context) const {
  return Snapshot(Key(context)) != nullptr;
}

Result<std::shared_ptr<const ContextModel>> InvarNetX::GetContext(
    const OperationContext& context) const {
  std::shared_ptr<const ContextModel> model = Snapshot(Key(context));
  if (model == nullptr) {
    return Status::NotFound("context not trained: " + context.ToString());
  }
  return model;
}

std::shared_ptr<const ContextModel> InvarNetX::Snapshot(
    const OperationContext& key) const {
  std::lock_guard<std::mutex> lock(contexts_mu_);
  auto it = contexts_.find(key);
  return it == contexts_.end() ? nullptr : it->second;
}

void InvarNetX::Publish(const OperationContext& key,
                        std::shared_ptr<ContextModel> fresh) {
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    std::shared_ptr<const ContextModel>& slot = contexts_[key];
    fresh->epoch = (slot == nullptr ? 0 : slot->epoch) + 1;
    epoch = fresh->epoch;
    slot = std::move(fresh);
  }
  // Journal outside the lock: readers pinning snapshots never wait on the
  // journal's mutex.
  obs::EventJournal::Shared().Record(
      obs::EventKind::kEpochPublish, "context model epoch published",
      {{"context", key.ToString()}, {"epoch", epoch}});
}

Status InvarNetX::SaveToDirectory(const std::string& directory) const {
  // The pipeline configuration is part of the store: violation tuples are
  // only meaningful against the same engine and thresholds they were
  // computed with.
  xmlstore::XmlNode config_node;
  config_node.name = "invarnetx_config";
  config_node.SetAttr("engine", AssociationEngineName(config_.engine));
  config_node.SetAttr("tau", std::to_string(config_.tau));
  config_node.SetAttr("epsilon", std::to_string(config_.epsilon));
  config_node.SetAttr("beta", std::to_string(config_.beta));
  config_node.SetAttr("rule", ThresholdRuleName(config_.threshold_rule));
  config_node.SetAttr("consecutive",
                      std::to_string(config_.consecutive_required));
  config_node.SetAttr("similarity",
                      SimilarityMetricName(config_.similarity));
  config_node.SetAttr("min_similarity",
                      std::to_string(config_.min_similarity));
  config_node.SetAttr("use_operation_context",
                      config_.use_operation_context ? "1" : "0");
  INVARNETX_RETURN_IF_ERROR(
      xmlstore::WriteXmlFile(directory + "/config.xml", config_node));

  // Iterate a point-in-time copy of the map so saving is safe against
  // concurrent training (each snapshot itself is immutable).
  std::map<OperationContext, std::shared_ptr<const ContextModel>> snapshot;
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    snapshot = contexts_;
  }
  std::vector<xmlstore::ArimaModelRecord> models;
  std::vector<xmlstore::InvariantSetRecord> invariant_sets;
  std::vector<xmlstore::SignatureRecord> signatures;
  for (const auto& [context, model_ptr] : snapshot) {
    const ContextModel& model = *model_ptr;
    xmlstore::ArimaModelRecord rec;
    const ts::ArimaModel& arima = model.perf.arima();
    rec.p = arima.order().p;
    rec.d = arima.order().d;
    rec.q = arima.order().q;
    rec.ip = context.node_ip;
    rec.workload = workload::WorkloadName(context.workload);
    rec.ar = arima.ar();
    rec.ma = arima.ma();
    rec.intercept = arima.intercept();
    rec.sigma2 = arima.sigma2();
    rec.residual_min = model.perf.residual_min();
    rec.residual_max = model.perf.residual_max();
    rec.residual_p95 = model.perf.residual_p95();
    models.push_back(std::move(rec));

    xmlstore::InvariantSetRecord inv;
    inv.ip = context.node_ip;
    inv.workload = workload::WorkloadName(context.workload);
    inv.num_metrics = telemetry::kNumMetrics;
    for (int pair : model.invariants.PairIndices()) {
      int a = 0, b = 0;
      telemetry::PairFromIndex(pair, &a, &b);
      inv.entries.push_back(xmlstore::InvariantEntry{
          a, b, model.invariants.values[static_cast<size_t>(pair)]});
    }
    invariant_sets.push_back(std::move(inv));

    for (const Signature& sig : model.sigdb.signatures()) {
      xmlstore::SignatureRecord srec;
      srec.problem = sig.problem;
      srec.ip = context.node_ip;
      srec.workload = workload::WorkloadName(context.workload);
      srec.bits = sig.bits;
      signatures.push_back(std::move(srec));
    }
  }
  INVARNETX_RETURN_IF_ERROR(
      xmlstore::SaveArimaModels(directory + "/models.xml", models));
  INVARNETX_RETURN_IF_ERROR(xmlstore::SaveInvariantSets(
      directory + "/invariants.xml", invariant_sets));
  return xmlstore::SaveSignatures(directory + "/signatures.xml", signatures);
}

Status InvarNetX::LoadFromDirectory(const std::string& directory) {
  // Restore the configuration the store was built with (older stores
  // without config.xml keep this pipeline's configuration).
  Result<xmlstore::XmlNode> config_node =
      xmlstore::ReadXmlFile(directory + "/config.xml");
  if (config_node.ok()) {
    const xmlstore::XmlNode& node = config_node.value();
    if (node.name != "invarnetx_config") {
      return Status::Corruption("expected <invarnetx_config> root");
    }
    for (AssociationEngineType engine :
         {AssociationEngineType::kMic, AssociationEngineType::kArx,
          AssociationEngineType::kEnsemble}) {
      if (AssociationEngineName(engine) == node.Attr("engine")) {
        config_.engine = engine;
      }
    }
    for (ThresholdRule rule :
         {ThresholdRule::kMaxMin, ThresholdRule::k95Percentile,
          ThresholdRule::kBetaMax}) {
      if (ThresholdRuleName(rule) == node.Attr("rule")) {
        config_.threshold_rule = rule;
      }
    }
    for (SimilarityMetric metric :
         {SimilarityMetric::kJaccard, SimilarityMetric::kDice,
          SimilarityMetric::kCosine, SimilarityMetric::kHamming,
          SimilarityMetric::kIdfJaccard}) {
      if (SimilarityMetricName(metric) == node.Attr("similarity")) {
        config_.similarity = metric;
      }
    }
    if (!node.Attr("tau").empty()) config_.tau = std::stod(node.Attr("tau"));
    if (!node.Attr("epsilon").empty()) {
      config_.epsilon = std::stod(node.Attr("epsilon"));
    }
    if (!node.Attr("beta").empty()) {
      config_.beta = std::stod(node.Attr("beta"));
    }
    if (!node.Attr("consecutive").empty()) {
      config_.consecutive_required = std::stoi(node.Attr("consecutive"));
    }
    if (!node.Attr("min_similarity").empty()) {
      config_.min_similarity = std::stod(node.Attr("min_similarity"));
    }
    if (!node.Attr("use_operation_context").empty()) {
      config_.use_operation_context =
          node.Attr("use_operation_context") == "1";
    }
  }

  Result<std::vector<xmlstore::ArimaModelRecord>> models =
      xmlstore::LoadArimaModels(directory + "/models.xml");
  if (!models.ok()) return models.status();
  Result<std::vector<xmlstore::InvariantSetRecord>> invariant_sets =
      xmlstore::LoadInvariantSets(directory + "/invariants.xml");
  if (!invariant_sets.ok()) return invariant_sets.status();
  Result<std::vector<xmlstore::SignatureRecord>> signatures =
      xmlstore::LoadSignatures(directory + "/signatures.xml");
  if (!signatures.ok()) return signatures.status();

  // Assemble the restored state off to the side, then publish every context
  // as a fresh epoch in one pass: readers either see the old store or the
  // new one per context, never a half-restored model.
  std::map<OperationContext, ContextModel> staging;
  for (const xmlstore::ArimaModelRecord& rec : models.value()) {
    Result<workload::WorkloadType> type =
        workload::WorkloadFromName(rec.workload);
    if (!type.ok()) return type.status();
    Result<ts::ArimaModel> arima = ts::ArimaModel::FromParameters(
        ts::ArimaOrder{rec.p, rec.d, rec.q}, rec.ar, rec.ma, rec.intercept,
        rec.sigma2);
    if (!arima.ok()) return arima.status();
    const OperationContext context{type.value(), rec.ip};
    staging[context].perf = PerformanceModel::FromParts(
        std::move(arima.value()), rec.residual_min, rec.residual_max,
        rec.residual_p95, config_.beta);
  }
  for (const xmlstore::InvariantSetRecord& rec : invariant_sets.value()) {
    Result<workload::WorkloadType> type =
        workload::WorkloadFromName(rec.workload);
    if (!type.ok()) return type.status();
    if (rec.num_metrics != telemetry::kNumMetrics) {
      return Status::Corruption("invariant set has wrong metric count");
    }
    InvariantSet set;
    set.present.assign(telemetry::kNumMetricPairs, 0);
    set.values.assign(telemetry::kNumMetricPairs, 0.0);
    for (const xmlstore::InvariantEntry& entry : rec.entries) {
      if (entry.metric_a < 0 || entry.metric_b <= entry.metric_a ||
          entry.metric_b >= telemetry::kNumMetrics) {
        return Status::Corruption("bad invariant pair indices");
      }
      const size_t index = static_cast<size_t>(
          telemetry::PairIndex(entry.metric_a, entry.metric_b));
      set.present[index] = 1;
      set.values[index] = entry.value;
    }
    staging[OperationContext{type.value(), rec.ip}].invariants =
        std::move(set);
  }
  for (const xmlstore::SignatureRecord& rec : signatures.value()) {
    Result<workload::WorkloadType> type =
        workload::WorkloadFromName(rec.workload);
    if (!type.ok()) return type.status();
    const Status added =
        staging[OperationContext{type.value(), rec.ip}].sigdb.Add(
            Signature{rec.problem, rec.bits});
    if (!added.ok()) return added;
  }
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    contexts_.clear();
    for (auto& [context, model] : staging) {
      auto fresh = std::make_shared<ContextModel>(std::move(model));
      fresh->epoch = 1;
      contexts_[context] = std::move(fresh);
    }
  }
  return Status::Ok();
}

}  // namespace invarnetx::core
