#ifndef INVARNETX_CORE_MONITOR_H_
#define INVARNETX_CORE_MONITOR_H_

#include <array>
#include <optional>

#include "core/anomaly.h"
#include "core/pipeline.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// Streaming front end for one node: the deployment loop the paper's online
// part describes. At every job arrival the monitor "selects a performance
// model from the archived models instantly" (Sec. 3.2) by switching to the
// job's operation context; each tick it feeds the CPI sample through the
// one-step ARIMA detector; when the debounced alarm fires, cause inference
// runs over the observations buffered since the job started.
//
// The referenced InvarNetX must outlive the monitor and must not be
// retrained while a job is active (the detector holds the context's
// performance model by reference).
class OnlineMonitor {
 public:
  struct TickVerdict {
    bool alarm = false;      // debounced alarm raised at this tick
    double residual = 0.0;   // |observed - predicted| CPI
  };

  // `node_ip` names the node this monitor watches (used for reporting;
  // the context passed to StartJob decides which models apply).
  explicit OnlineMonitor(const InvarNetX* pipeline) : pipeline_(pipeline) {}

  // Switches to the context of the newly arrived job: selects its archived
  // performance model, clears the observation buffer and the alarm latch.
  // Fails if the context has not been trained.
  Status StartJob(const OperationContext& context);

  // Feeds one tick of observations (CPI + the 26 metrics). Requires an
  // active job. The alarm latches: once raised it stays visible via
  // alarm_active() until the next StartJob.
  Result<TickVerdict> Observe(
      double cpi, const std::array<double, telemetry::kNumMetrics>& metrics);

  // Cause inference over everything observed since StartJob. Usually
  // called once alarm_active(); callable any time >= 1 tick was observed.
  Result<DiagnosisReport> Diagnose() const;

  bool job_active() const { return detector_.has_value(); }
  bool alarm_active() const { return alarm_; }
  // Tick (within the current job) of the first debounced alarm; -1 if none.
  int first_alarm_tick() const { return first_alarm_tick_; }
  int ticks_observed() const {
    return static_cast<int>(buffer_.cpi.size());
  }
  const OperationContext& context() const { return context_; }

 private:
  const InvarNetX* pipeline_;
  OperationContext context_;
  std::optional<AnomalyDetector> detector_;
  telemetry::NodeTrace buffer_;
  bool alarm_ = false;
  int first_alarm_tick_ = -1;
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_MONITOR_H_
