#ifndef INVARNETX_CORE_MONITOR_H_
#define INVARNETX_CORE_MONITOR_H_

#include <array>
#include <memory>
#include <optional>

#include "core/anomaly.h"
#include "core/pipeline.h"
#include "core/ring_window.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// Streaming front end for one node: the deployment loop the paper's online
// part describes. At every job arrival the monitor "selects a performance
// model from the archived models instantly" (Sec. 3.2) by switching to the
// job's operation context; each tick it feeds the CPI sample through the
// one-step ARIMA detector; when the debounced alarm fires, cause inference
// runs over the bounded window of recent observations.
//
// Retrain safety: StartJob pins the context's current epoch snapshot
// (shared_ptr), so the referenced InvarNetX may be retrained freely while a
// job is active - this monitor keeps detecting and diagnosing against the
// epoch it selected at job start. Only the InvarNetX object itself must
// outlive the monitor.
//
// Memory safety at scale: observations live in a fixed-capacity RingWindow
// (Options::window_capacity ticks, oldest-tick eviction), so steady-state
// memory per monitor is bounded no matter how long the job runs, and every
// Diagnose call is O(window) instead of O(job length).
class OnlineMonitor {
 public:
  struct Options {
    // Observation retention in ticks. Diagnosis sees at most this many of
    // the most recent ticks; 256 comfortably covers the paper's 60-tick
    // runs plus the 5-minute fault windows.
    size_t window_capacity = 256;
  };

  struct TickVerdict {
    bool alarm = false;      // debounced alarm raised at this tick
    double residual = 0.0;   // |observed - predicted| CPI
  };

  explicit OnlineMonitor(const InvarNetX* pipeline)
      : OnlineMonitor(pipeline, Options()) {}
  OnlineMonitor(const InvarNetX* pipeline, Options options)
      : pipeline_(pipeline), window_(options.window_capacity) {}

  // Switches to the context of the newly arrived job: pins its archived
  // performance model's current epoch, clears the observation window and
  // the alarm latch. Fails if the context has not been trained. Callable
  // mid-job to re-arm the monitor for the next job.
  Status StartJob(const OperationContext& context);

  // Feeds one tick of observations (CPI + the 26 metrics). Requires an
  // active job. The alarm latches: once raised it stays visible via
  // alarm_active() until the next StartJob.
  Result<TickVerdict> Observe(
      double cpi, const std::array<double, telemetry::kNumMetrics>& metrics);

  // Cause inference over the retained observation window, against the model
  // epoch pinned at StartJob. Usually called once alarm_active(); callable
  // any time >= 1 tick was observed. O(window), so repeated mid-job
  // diagnoses stay cheap.
  Result<DiagnosisReport> Diagnose() const;

  // Snapshot of the observation window (for consumers that diagnose
  // asynchronously on a copy while ticks keep streaming in).
  telemetry::NodeTrace WindowTrace() const {
    return window_.Materialize(context_.node_ip);
  }

  bool job_active() const { return detector_.has_value(); }
  bool alarm_active() const { return alarm_; }
  // Tick (within the current job, in absolute job ticks - stable even after
  // the window evicted the tick itself) of the first debounced alarm; -1 if
  // none.
  int first_alarm_tick() const { return first_alarm_tick_; }
  // Absolute ticks observed since StartJob (including evicted ones).
  int ticks_observed() const { return static_cast<int>(window_.total_pushed()); }
  // Ticks currently retained in the bounded window (<= window capacity).
  int window_ticks() const { return static_cast<int>(window_.size()); }
  const RingWindow& window() const { return window_; }
  const OperationContext& context() const { return context_; }
  // The pinned model snapshot (nullptr before the first StartJob) and its
  // epoch (0 before the first StartJob).
  std::shared_ptr<const ContextModel> model() const { return model_; }
  uint64_t model_epoch() const { return model_ == nullptr ? 0 : model_->epoch; }
  const InvarNetX* pipeline() const { return pipeline_; }

 private:
  const InvarNetX* pipeline_;
  OperationContext context_;
  std::shared_ptr<const ContextModel> model_;
  std::optional<AnomalyDetector> detector_;
  RingWindow window_;
  bool alarm_ = false;
  int first_alarm_tick_ = -1;
};

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_MONITOR_H_
