#include "core/assoc_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace invarnetx::core {
namespace {

// Registry mirrors of the cache tallies, bound once. Every cache instance
// (shared or private) feeds the same process-wide counters; the per-instance
// atomics remain the per-cache source of truth.
struct CacheCounters {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& flushes;
  obs::Counter& evicted;

  static CacheCounters& Get() {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
    static CacheCounters* counters = new CacheCounters{
        registry.GetCounter("assoc_cache.hits"),
        registry.GetCounter("assoc_cache.misses"),
        registry.GetCounter("assoc_cache.flushes"),
        registry.GetCounter("assoc_cache.evicted"),
    };
    return *counters;
  }
};

// Two independent FNV-1a accumulators over the same byte stream. The second
// uses a distinct offset basis and both are finalized with a splitmix64-style
// avalanche so nearby inputs (series differing in one low bit) spread over
// the whole key space.
struct Hash128 {
  uint64_t a = 14695981039346656037ULL;           // FNV-1a offset basis
  uint64_t b = 14695981039346656037ULL ^ 0x9E3779B97F4A7C15ULL;

  void Bytes(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      a = (a ^ p[i]) * 1099511628211ULL;  // FNV-1a prime
      b = (b ^ p[i]) * 0x00000100000001B3ULL + 0x632BE59BD9B4E019ULL;
    }
  }

  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }

  // Hashes a run of doubles with -0.0 canonicalized to +0.0, so the two
  // representations of numeric zero - which every engine scores
  // identically - produce the same digest. NaNs pass through with their
  // raw bit pattern (the pipeline rejects non-finite samples upstream).
  void Doubles(const double* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const double v = p[i] == 0.0 ? 0.0 : p[i];
      Bytes(&v, sizeof(v));
    }
  }

  static uint64_t Avalanche(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  PairScoreKey Finish() const {
    return PairScoreKey{Avalanche(a), Avalanche(b)};
  }
};

}  // namespace

PairScoreKey HashSeriesPair(std::string_view engine,
                            const std::vector<double>& x,
                            const std::vector<double>& y) {
  Hash128 hash;
  hash.U64(engine.size());
  hash.Bytes(engine.data(), engine.size());
  // Lengths delimit the variable-size parts so ({1,2},{3}) != ({1},{2,3}).
  hash.U64(x.size());
  if (!x.empty()) hash.Doubles(x.data(), x.size());
  hash.U64(y.size());
  if (!y.empty()) hash.Doubles(y.data(), y.size());
  return hash.Finish();
}

SeriesDigest HashSeries(const std::vector<double>& v) {
  Hash128 hash;
  hash.U64(v.size());
  if (!v.empty()) hash.Doubles(v.data(), v.size());
  const PairScoreKey key = hash.Finish();
  return SeriesDigest{key.lo, key.hi};
}

PairScoreKey CombinePairKey(std::string_view engine, const SeriesDigest& x,
                            const SeriesDigest& y) {
  Hash128 hash;
  hash.U64(engine.size());
  hash.Bytes(engine.data(), engine.size());
  // The digests are avalanched and fixed-width, so feeding them in order
  // keeps the combined key order-sensitive and collision-resistant without
  // extra delimiters.
  hash.U64(x.lo);
  hash.U64(x.hi);
  hash.U64(y.lo);
  hash.U64(y.hi);
  return hash.Finish();
}

std::optional<double> AssociationScoreCache::Lookup(
    const PairScoreKey& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.scores.find(key);
  if (it == shard.scores.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheCounters::Get().misses.Increment();
    return std::nullopt;
  }
  it->second.stamp = ++shard.tick;
  hits_.fetch_add(1, std::memory_order_relaxed);
  CacheCounters::Get().hits.Increment();
  return it->second.score;
}

void AssociationScoreCache::EvictColdHalf(Shard& shard) {
  // Median recency stamp via nth_element; stamps are unique per shard
  // (monotonic tick), so "stamp < threshold" drops exactly `drop` entries.
  const size_t drop = std::max<size_t>(1, shard.scores.size() / 2);
  if (drop >= shard.scores.size()) {
    // Degenerate caps (1-entry shards in tests): dropping "half" is the
    // whole shard.
    const uint64_t dropped = shard.scores.size();
    shard.scores.clear();
    flushes_.fetch_add(1, std::memory_order_relaxed);
    evicted_.fetch_add(dropped, std::memory_order_relaxed);
    CacheCounters::Get().flushes.Increment();
    CacheCounters::Get().evicted.Increment(dropped);
    obs::EventJournal::Shared().Record(
        obs::EventKind::kCacheEviction, "assoc cache shard flushed",
        {{"evicted", dropped}});
    return;
  }
  std::vector<uint64_t> stamps;
  stamps.reserve(shard.scores.size());
  for (const auto& [key, entry] : shard.scores) stamps.push_back(entry.stamp);
  std::nth_element(stamps.begin(), stamps.begin() + static_cast<long>(drop),
                   stamps.end());
  const uint64_t threshold = stamps[drop];
  for (auto it = shard.scores.begin(); it != shard.scores.end();) {
    if (it->second.stamp < threshold) {
      it = shard.scores.erase(it);
    } else {
      ++it;
    }
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  evicted_.fetch_add(drop, std::memory_order_relaxed);
  CacheCounters::Get().flushes.Increment();
  CacheCounters::Get().evicted.Increment(drop);
  obs::EventJournal::Shared().Record(
      obs::EventKind::kCacheEviction, "assoc cache dropped cold half",
      {{"evicted", drop}, {"retained", shard.scores.size()}});
}

void AssociationScoreCache::Insert(const PairScoreKey& key, double score) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.scores.find(key);
  if (it != shard.scores.end()) {
    // Re-insert of a live key (two workers raced on the same miss):
    // refresh the recency stamp; the score is identical by determinism.
    it->second.stamp = ++shard.tick;
    return;
  }
  if (shard.scores.size() >= max_entries_per_shard_) EvictColdHalf(shard);
  shard.scores.emplace(key, Entry{score, ++shard.tick});
}

double AssociationScoreCache::HitRate() const {
  const uint64_t h = hits();
  const uint64_t m = misses();
  return h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
}

void AssociationScoreCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.scores.clear();
  }
}

size_t AssociationScoreCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.scores.size();
  }
  return total;
}

AssociationScoreCache& AssociationScoreCache::Shared() {
  static AssociationScoreCache* cache = new AssociationScoreCache();
  return *cache;
}

}  // namespace invarnetx::core
