#ifndef INVARNETX_CORE_CAUSAL_HINTS_H_
#define INVARNETX_CORE_CAUSAL_HINTS_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "telemetry/trace.h"

namespace invarnetx::core {

// A lightweight causal ordering over the metrics implicated in a diagnosis,
// inspired by the authors' companion system CauseInfer (their reference
// [2]: "automatic and distributed performance diagnosis with hierarchical
// causality graph"). When a problem is unknown, the paper hands operators
// the violated association pairs; this ranks the *metrics* behind those
// pairs by temporal precedence, so investigation starts at the likely
// origin instead of a symptom.
//
// Metric A is said to lead metric B when the lag-1 cross-correlation
// corr(A_t, B_{t+1}) exceeds corr(B_t, A_{t+1}) by a margin: changes in A
// foreshadow changes in B. A metric's score is (#metrics it leads) minus
// (#metrics leading it); the highest scores are the root candidates.
struct CausalHint {
  int metric = 0;
  std::string metric_name;
  int leads = 0;   // implicated metrics this one temporally precedes
  int led_by = 0;  // implicated metrics that precede this one
  int score() const { return leads - led_by; }
};

// Ranks the metrics implicated by `report.violations` (the endpoints of the
// violated invariant pairs) using the node's series. Returns hints sorted
// by descending score (ties by metric id). Empty when nothing violated.
Result<std::vector<CausalHint>> RankRootMetrics(
    const DiagnosisReport& report, const ContextModel& model,
    const telemetry::NodeTrace& node, double lead_margin = 0.1);

}  // namespace invarnetx::core

#endif  // INVARNETX_CORE_CAUSAL_HINTS_H_
