#ifndef INVARNETX_TIMESERIES_DIFF_H_
#define INVARNETX_TIMESERIES_DIFF_H_

#include <vector>

#include "common/status.h"

namespace invarnetx::ts {

// First-order difference applied d times; output length is n - d.
// Requires d >= 0 and series length > d.
Result<std::vector<double>> Difference(const std::vector<double>& series,
                                       int d);

// Inverts Difference: given the last d raw observations that preceded the
// forecast origin (tail, oldest first) and a one-step forecast of the
// d-times-differenced series, reconstructs the raw-scale forecast.
//
// With d = 0 this is the identity; with d = 1 it returns tail.back() + w;
// with d = 2 it returns 2*y[t] - y[t-1] + w, etc.
Result<double> Undifference(const std::vector<double>& tail, int d, double w);

}  // namespace invarnetx::ts

#endif  // INVARNETX_TIMESERIES_DIFF_H_
