#ifndef INVARNETX_TIMESERIES_ARIMA_H_
#define INVARNETX_TIMESERIES_ARIMA_H_

#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace invarnetx::ts {

// ARIMA(p, d, q) model order.
struct ArimaOrder {
  int p = 0;
  int d = 0;
  int q = 0;

  friend bool operator==(const ArimaOrder& a, const ArimaOrder& b) {
    return a.p == b.p && a.d == b.d && a.q == b.q;
  }
  std::string ToString() const;
};

// A fitted ARIMA model: the d-times-differenced series w_t follows
//   w_t = c + sum_i ar[i] w_{t-i} + sum_j ma[j] e_{t-j} + e_t.
//
// Fitted with the Hannan-Rissanen two-stage regression (long-AR residual
// proxy, then joint OLS), which is fast, closed-form, and accurate enough
// for the drift-detection use in InvarNet-X.
class ArimaModel {
 public:
  // An empty ARIMA(0,0,0) model with zero intercept; useful as a
  // placeholder member before Fit/FromParameters assigns a real model.
  ArimaModel() = default;

  // Fits the given order on the series. Requires enough observations for
  // the internal regressions (roughly 3 * (p + q) + d + 10).
  static Result<ArimaModel> Fit(const std::vector<double>& series,
                                const ArimaOrder& order);

  const ArimaOrder& order() const { return order_; }
  const std::vector<double>& ar() const { return ar_; }
  const std::vector<double>& ma() const { return ma_; }
  double intercept() const { return intercept_; }
  // Innovation variance estimated from the fitting residuals.
  double sigma2() const { return sigma2_; }
  // Akaike information criterion: n ln(sigma2) + 2 (p + q + 1).
  double aic() const { return aic_; }

  // One-step-ahead in-sample predictions over `series` (same length;
  // the first d + p entries, where the recursion has no history, repeat the
  // observed values so their residual is zero).
  Result<std::vector<double>> PredictInSample(
      const std::vector<double>& series) const;

  // |observed - predicted| over `series`; used for threshold calibration.
  Result<std::vector<double>> AbsResiduals(
      const std::vector<double>& series) const;

  // Direct construction from parameters (used by persistence).
  static Result<ArimaModel> FromParameters(const ArimaOrder& order,
                                           std::vector<double> ar,
                                           std::vector<double> ma,
                                           double intercept, double sigma2);

 private:
  ArimaOrder order_;
  std::vector<double> ar_;
  std::vector<double> ma_;
  double intercept_ = 0.0;
  double sigma2_ = 0.0;
  double aic_ = 0.0;
};

// Streaming one-step-ahead predictor for a fitted ArimaModel. Call
// PredictNext() to obtain the forecast for the upcoming observation, then
// Observe() with the actual value; the residual feeds the MA terms.
class ArimaPredictor {
 public:
  explicit ArimaPredictor(ArimaModel model);

  // Forecast of the next raw observation. Until d + p raw observations have
  // been seen there is not enough history; the predictor then returns the
  // last observed value (or 0 before any observation).
  double PredictNext() const;

  // Feeds the actual observation and returns |observation - forecast|.
  double Observe(double value);

  // Drops accumulated history (e.g., at a workload phase boundary).
  void Reset();

  // True once enough history has accumulated for model-based forecasts
  // (d raw values and p differenced values).
  bool Ready() const;

  const ArimaModel& model() const { return model_; }

 private:
  bool HasEnoughHistory() const;
  // w-scale forecast given current differenced history and residuals.
  double ForecastDifferenced() const;

  ArimaModel model_;
  std::deque<double> raw_history_;   // recent raw values (bounded)
  std::deque<double> w_history_;     // recent differenced values, newest last
  std::deque<double> residuals_;     // recent w-scale residuals, newest last
};

// Chooses d as the smallest value in [0, max_d] whose differenced series is
// "stationary enough" (lag-1 autocorrelation below 0.9, and further
// differencing does not reduce variance), then grid-searches (p, q) in
// [0, max_p] x [0, max_q] by AIC. (p, q) = (0, 0) with d = 0 is excluded.
Result<ArimaModel> FitArimaAuto(const std::vector<double>& series,
                                int max_p = 5, int max_d = 2, int max_q = 3);

}  // namespace invarnetx::ts

#endif  // INVARNETX_TIMESERIES_ARIMA_H_
