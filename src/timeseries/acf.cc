#include "timeseries/acf.h"

#include <cstddef>

#include "common/matrix.h"
#include "common/stats.h"

namespace invarnetx::ts {

Result<std::vector<double>> Acf(const std::vector<double>& series,
                                int max_lag) {
  if (max_lag < 0) return Status::InvalidArgument("Acf: max_lag < 0");
  const size_t n = series.size();
  if (n <= static_cast<size_t>(max_lag)) {
    return Status::InvalidArgument("Acf: series shorter than max_lag");
  }
  const double mean = Mean(series);
  double denom = 0.0;
  for (double x : series) denom += (x - mean) * (x - mean);
  std::vector<double> acf(static_cast<size_t>(max_lag) + 1, 0.0);
  acf[0] = 1.0;
  if (denom <= 0.0) return acf;
  for (int lag = 1; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (size_t t = static_cast<size_t>(lag); t < n; ++t) {
      acc += (series[t] - mean) * (series[t - static_cast<size_t>(lag)] - mean);
    }
    acf[static_cast<size_t>(lag)] = acc / denom;
  }
  return acf;
}

Result<std::vector<double>> Pacf(const std::vector<double>& series,
                                 int max_lag) {
  if (max_lag < 1) return Status::InvalidArgument("Pacf: max_lag < 1");
  Result<std::vector<double>> acf = Acf(series, max_lag);
  if (!acf.ok()) return acf.status();
  const std::vector<double>& rho = acf.value();
  // Durbin-Levinson: phi[k][j] coefficients for AR(k); pacf[k] = phi[k][k].
  std::vector<double> pacf(static_cast<size_t>(max_lag), 0.0);
  std::vector<double> phi_prev(static_cast<size_t>(max_lag) + 1, 0.0);
  std::vector<double> phi_curr(static_cast<size_t>(max_lag) + 1, 0.0);
  double v = 1.0;  // normalized innovation variance
  for (int k = 1; k <= max_lag; ++k) {
    double num = rho[static_cast<size_t>(k)];
    for (int j = 1; j < k; ++j) {
      num -= phi_prev[static_cast<size_t>(j)] *
             rho[static_cast<size_t>(k - j)];
    }
    const double phi_kk = v > 1e-12 ? num / v : 0.0;
    phi_curr[static_cast<size_t>(k)] = phi_kk;
    for (int j = 1; j < k; ++j) {
      phi_curr[static_cast<size_t>(j)] =
          phi_prev[static_cast<size_t>(j)] -
          phi_kk * phi_prev[static_cast<size_t>(k - j)];
    }
    v *= (1.0 - phi_kk * phi_kk);
    pacf[static_cast<size_t>(k - 1)] = phi_kk;
    phi_prev = phi_curr;
  }
  return pacf;
}

Result<std::vector<double>> YuleWalker(const std::vector<double>& series,
                                       int p) {
  if (p < 1) return Status::InvalidArgument("YuleWalker: p < 1");
  Result<std::vector<double>> acf = Acf(series, p);
  if (!acf.ok()) return acf.status();
  const std::vector<double>& rho = acf.value();
  Matrix r(static_cast<size_t>(p), static_cast<size_t>(p));
  std::vector<double> rhs(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      r(static_cast<size_t>(i), static_cast<size_t>(j)) =
          rho[static_cast<size_t>(std::abs(i - j))];
    }
    rhs[static_cast<size_t>(i)] = rho[static_cast<size_t>(i + 1)];
  }
  return SolveLinearSystem(std::move(r), std::move(rhs));
}

}  // namespace invarnetx::ts
