#include "timeseries/diff.h"

#include <cstddef>

namespace invarnetx::ts {

Result<std::vector<double>> Difference(const std::vector<double>& series,
                                       int d) {
  if (d < 0) return Status::InvalidArgument("Difference: d < 0");
  if (series.size() <= static_cast<size_t>(d)) {
    return Status::InvalidArgument("Difference: series shorter than d");
  }
  std::vector<double> out = series;
  for (int round = 0; round < d; ++round) {
    std::vector<double> next(out.size() - 1);
    for (size_t i = 1; i < out.size(); ++i) next[i - 1] = out[i] - out[i - 1];
    out = std::move(next);
  }
  return out;
}

Result<double> Undifference(const std::vector<double>& tail, int d, double w) {
  if (d < 0) return Status::InvalidArgument("Undifference: d < 0");
  if (tail.size() < static_cast<size_t>(d)) {
    return Status::InvalidArgument("Undifference: need d trailing raw values");
  }
  // Build the difference triangle from the last d raw values: level k holds
  // the k-th difference of the tail; the forecast at level d is w and each
  // lower level adds its own last value.
  std::vector<std::vector<double>> levels;
  levels.push_back(
      std::vector<double>(tail.end() - static_cast<long>(d), tail.end()));
  for (int k = 1; k < d; ++k) {
    const std::vector<double>& prev = levels.back();
    std::vector<double> next(prev.size() - 1);
    for (size_t i = 1; i < prev.size(); ++i) next[i - 1] = prev[i] - prev[i - 1];
    levels.push_back(std::move(next));
  }
  double forecast = w;
  for (int k = d - 1; k >= 0; --k) {
    forecast += levels[static_cast<size_t>(k)].back();
  }
  return forecast;
}

}  // namespace invarnetx::ts
