#include "timeseries/diagnostics.h"

#include <cmath>

#include "timeseries/acf.h"

namespace invarnetx::ts {
namespace {

// Regularized lower incomplete gamma P(a, x) via series expansion (x < a+1)
// or continued fraction (x >= a+1). Standard Numerical-Recipes-style
// formulation, accurate to ~1e-10 for the argument ranges used here.
double GammaP(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = x^a e^-x / Gamma(a) * sum x^n / (a)_{n+1}
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a,x); P = 1 - Q.
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

}  // namespace

double ChiSquareSurvival(double x, int k) {
  if (k <= 0) return x > 0.0 ? 0.0 : 1.0;
  if (x <= 0.0) return 1.0;
  return 1.0 - GammaP(k / 2.0, x / 2.0);
}

Result<LjungBoxResult> LjungBoxTest(const std::vector<double>& residuals,
                                    int lags, int fitted_params) {
  if (lags < 1) return Status::InvalidArgument("LjungBox: lags < 1");
  if (fitted_params < 0) {
    return Status::InvalidArgument("LjungBox: negative fitted_params");
  }
  if (lags <= fitted_params) {
    return Status::InvalidArgument(
        "LjungBox: lags must exceed fitted_params");
  }
  const int n = static_cast<int>(residuals.size());
  if (n <= lags + 1) {
    return Status::InvalidArgument("LjungBox: series shorter than lags");
  }
  Result<std::vector<double>> acf = Acf(residuals, lags);
  if (!acf.ok()) return acf.status();
  double q = 0.0;
  for (int k = 1; k <= lags; ++k) {
    const double rho = acf.value()[static_cast<size_t>(k)];
    q += rho * rho / (n - k);
  }
  q *= n * (n + 2.0);
  LjungBoxResult result;
  result.q = q;
  result.lags = lags;
  result.p_value = ChiSquareSurvival(q, lags - fitted_params);
  return result;
}

}  // namespace invarnetx::ts
