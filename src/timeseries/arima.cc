#include "timeseries/arima.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>

#include "common/matrix.h"
#include "common/stats.h"
#include "timeseries/acf.h"
#include "timeseries/diff.h"

namespace invarnetx::ts {
namespace {

// Residuals of an AR(order) OLS fit on w; entries before `order` are zero.
// Used as the innovation proxy in the Hannan-Rissanen second stage.
Result<std::vector<double>> LongArResiduals(const std::vector<double>& w,
                                            int order) {
  const size_t n = w.size();
  const size_t rows = n - static_cast<size_t>(order);
  Matrix x(rows, static_cast<size_t>(order) + 1);
  std::vector<double> y(rows);
  for (size_t t = static_cast<size_t>(order); t < n; ++t) {
    const size_t r = t - static_cast<size_t>(order);
    x(r, 0) = 1.0;
    for (int lag = 1; lag <= order; ++lag) {
      x(r, static_cast<size_t>(lag)) = w[t - static_cast<size_t>(lag)];
    }
    y[r] = w[t];
  }
  Result<std::vector<double>> beta = LeastSquares(x, y);
  if (!beta.ok()) return beta.status();
  std::vector<double> resid(n, 0.0);
  for (size_t t = static_cast<size_t>(order); t < n; ++t) {
    double pred = beta.value()[0];
    for (int lag = 1; lag <= order; ++lag) {
      pred += beta.value()[static_cast<size_t>(lag)] *
              w[t - static_cast<size_t>(lag)];
    }
    resid[t] = w[t] - pred;
  }
  return resid;
}

}  // namespace

std::string ArimaOrder::ToString() const {
  return "ARIMA(" + std::to_string(p) + "," + std::to_string(d) + "," +
         std::to_string(q) + ")";
}

Result<ArimaModel> ArimaModel::Fit(const std::vector<double>& series,
                                   const ArimaOrder& order) {
  if (order.p < 0 || order.d < 0 || order.q < 0) {
    return Status::InvalidArgument("ArimaModel::Fit: negative order");
  }
  Result<std::vector<double>> diffed = Difference(series, order.d);
  if (!diffed.ok()) return diffed.status();
  const std::vector<double>& w = diffed.value();
  const int n = static_cast<int>(w.size());
  const int min_needed = 3 * (order.p + order.q) + 10;
  if (n < min_needed) {
    return Status::InvalidArgument("ArimaModel::Fit: series too short for " +
                                   order.ToString());
  }

  ArimaModel model;
  model.order_ = order;
  model.ar_.assign(static_cast<size_t>(order.p), 0.0);
  model.ma_.assign(static_cast<size_t>(order.q), 0.0);

  if (order.p == 0 && order.q == 0) {
    // White noise around a constant level.
    model.intercept_ = Mean(w);
    double ssr = 0.0;
    for (double v : w) ssr += (v - model.intercept_) * (v - model.intercept_);
    model.sigma2_ = std::max(ssr / n, 1e-12);
    model.aic_ = n * std::log(model.sigma2_) + 2.0;
    return model;
  }

  std::vector<double> innovations(w.size(), 0.0);
  int start = order.p;
  if (order.q > 0) {
    // Stage 1: long autoregression provides an innovation proxy.
    const int long_order =
        std::min(n / 4, std::max(order.p + order.q + 2,
                                 static_cast<int>(10.0 * std::log10(
                                     std::max(n, 10)))));
    Result<std::vector<double>> proxy = LongArResiduals(w, long_order);
    if (!proxy.ok()) return proxy.status();
    innovations = std::move(proxy.value());
    start = std::max(order.p, long_order + order.q);
  }

  // Stage 2: joint OLS of w_t on its own lags and lagged innovations.
  const size_t terms = 1 + static_cast<size_t>(order.p + order.q);
  const size_t rows = w.size() - static_cast<size_t>(start);
  if (rows < terms + 2) {
    return Status::InvalidArgument(
        "ArimaModel::Fit: not enough rows after warmup for " +
        order.ToString());
  }
  Matrix x(rows, terms);
  std::vector<double> y(rows);
  for (size_t t = static_cast<size_t>(start); t < w.size(); ++t) {
    const size_t r = t - static_cast<size_t>(start);
    size_t c = 0;
    x(r, c++) = 1.0;
    for (int lag = 1; lag <= order.p; ++lag) {
      x(r, c++) = w[t - static_cast<size_t>(lag)];
    }
    for (int lag = 1; lag <= order.q; ++lag) {
      x(r, c++) = innovations[t - static_cast<size_t>(lag)];
    }
    y[r] = w[t];
  }
  Result<std::vector<double>> beta = LeastSquares(x, y);
  if (!beta.ok()) return beta.status();
  size_t c = 0;
  model.intercept_ = beta.value()[c++];
  for (int i = 0; i < order.p; ++i) model.ar_[static_cast<size_t>(i)] = beta.value()[c++];
  for (int j = 0; j < order.q; ++j) model.ma_[static_cast<size_t>(j)] = beta.value()[c++];

  double ssr = 0.0;
  const std::vector<double> fitted = x.MultiplyVec(beta.value());
  for (size_t r = 0; r < rows; ++r) {
    const double e = y[r] - fitted[r];
    ssr += e * e;
  }
  const double m = static_cast<double>(rows);
  model.sigma2_ = std::max(ssr / m, 1e-12);
  model.aic_ =
      m * std::log(model.sigma2_) + 2.0 * (order.p + order.q + 1);
  return model;
}

Result<ArimaModel> ArimaModel::FromParameters(const ArimaOrder& order,
                                              std::vector<double> ar,
                                              std::vector<double> ma,
                                              double intercept,
                                              double sigma2) {
  if (order.p < 0 || order.d < 0 || order.q < 0) {
    return Status::InvalidArgument("FromParameters: negative order");
  }
  if (ar.size() != static_cast<size_t>(order.p) ||
      ma.size() != static_cast<size_t>(order.q)) {
    return Status::InvalidArgument(
        "FromParameters: coefficient count does not match order");
  }
  ArimaModel model;
  model.order_ = order;
  model.ar_ = std::move(ar);
  model.ma_ = std::move(ma);
  model.intercept_ = intercept;
  model.sigma2_ = sigma2;
  model.aic_ = 0.0;
  return model;
}

Result<std::vector<double>> ArimaModel::PredictInSample(
    const std::vector<double>& series) const {
  if (series.empty()) {
    return Status::InvalidArgument("PredictInSample: empty series");
  }
  ArimaPredictor predictor(*this);
  std::vector<double> preds(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    // During warmup the model recursion has no history; echo the observed
    // value so warmup residuals are zero and do not skew calibration.
    preds[i] = predictor.Ready() ? predictor.PredictNext() : series[i];
    predictor.Observe(series[i]);
  }
  return preds;
}

Result<std::vector<double>> ArimaModel::AbsResiduals(
    const std::vector<double>& series) const {
  Result<std::vector<double>> preds = PredictInSample(series);
  if (!preds.ok()) return preds.status();
  std::vector<double> out(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    out[i] = std::fabs(series[i] - preds.value()[i]);
  }
  return out;
}

ArimaPredictor::ArimaPredictor(ArimaModel model) : model_(std::move(model)) {}

void ArimaPredictor::Reset() {
  raw_history_.clear();
  w_history_.clear();
  residuals_.clear();
}

bool ArimaPredictor::Ready() const { return HasEnoughHistory(); }

bool ArimaPredictor::HasEnoughHistory() const {
  const ArimaOrder& o = model_.order();
  return w_history_.size() >= static_cast<size_t>(o.p) &&
         raw_history_.size() >= static_cast<size_t>(o.d);
}

double ArimaPredictor::ForecastDifferenced() const {
  const ArimaOrder& o = model_.order();
  double acc = model_.intercept();
  for (int i = 1; i <= o.p; ++i) {
    acc += model_.ar()[static_cast<size_t>(i - 1)] *
           w_history_[w_history_.size() - static_cast<size_t>(i)];
  }
  for (int j = 1; j <= o.q; ++j) {
    if (residuals_.size() < static_cast<size_t>(j)) break;
    acc += model_.ma()[static_cast<size_t>(j - 1)] *
           residuals_[residuals_.size() - static_cast<size_t>(j)];
  }
  return acc;
}

double ArimaPredictor::PredictNext() const {
  if (!HasEnoughHistory()) {
    return raw_history_.empty() ? 0.0 : raw_history_.back();
  }
  const int d = model_.order().d;
  const double wfc = ForecastDifferenced();
  std::vector<double> tail(raw_history_.end() - d, raw_history_.end());
  Result<double> fc = Undifference(tail, d, wfc);
  // Undifference only fails on insufficient tail, which HasEnoughHistory
  // already guarantees; fall back to naive forecast defensively.
  return fc.ok() ? fc.value() : raw_history_.back();
}

double ArimaPredictor::Observe(double value) {
  const ArimaOrder& o = model_.order();
  const bool model_based = HasEnoughHistory();
  const double forecast = PredictNext();
  const double w_forecast = model_based ? ForecastDifferenced() : 0.0;

  raw_history_.push_back(value);
  const size_t raw_cap = static_cast<size_t>(o.d) + 1;
  while (raw_history_.size() > raw_cap) raw_history_.pop_front();

  if (raw_history_.size() >= static_cast<size_t>(o.d) + 1) {
    // d-th difference of the newest point via the alternating binomial sum.
    double w = 0.0;
    double coeff = 1.0;
    for (int k = 0; k <= o.d; ++k) {
      w += coeff * raw_history_[raw_history_.size() - 1 - static_cast<size_t>(k)];
      coeff *= -static_cast<double>(o.d - k) / static_cast<double>(k + 1);
    }
    const double innovation = model_based ? (w - w_forecast) : 0.0;
    w_history_.push_back(w);
    const size_t w_cap = static_cast<size_t>(std::max(o.p, 1));
    while (w_history_.size() > w_cap) w_history_.pop_front();
    if (o.q > 0) {
      residuals_.push_back(innovation);
      while (residuals_.size() > static_cast<size_t>(o.q)) {
        residuals_.pop_front();
      }
    }
  }
  return std::fabs(value - forecast);
}

Result<ArimaModel> FitArimaAuto(const std::vector<double>& series, int max_p,
                                int max_d, int max_q) {
  if (series.size() < 20) {
    return Status::InvalidArgument("FitArimaAuto: need >= 20 observations");
  }
  // Pick d: smallest differencing level whose lag-1 autocorrelation drops
  // below 0.8 (a cheap stationarity proxy suited to CPI traces).
  int chosen_d = 0;
  for (int d = 0; d <= max_d; ++d) {
    Result<std::vector<double>> w = Difference(series, d);
    if (!w.ok() || w.value().size() < 10) break;
    Result<std::vector<double>> acf = Acf(w.value(), 1);
    if (!acf.ok()) break;
    chosen_d = d;
    if (std::fabs(acf.value()[1]) < 0.8) break;
  }

  std::optional<ArimaModel> best;
  for (int p = 0; p <= max_p; ++p) {
    for (int q = 0; q <= max_q; ++q) {
      if (p == 0 && q == 0 && chosen_d == 0) continue;
      Result<ArimaModel> fit =
          ArimaModel::Fit(series, ArimaOrder{p, chosen_d, q});
      if (!fit.ok()) continue;
      if (!best.has_value() || fit.value().aic() < best->aic()) {
        best = std::move(fit.value());
      }
    }
  }
  if (!best.has_value()) {
    return Status::NumericalError("FitArimaAuto: no order could be fitted");
  }
  return *std::move(best);
}

}  // namespace invarnetx::ts
