#ifndef INVARNETX_TIMESERIES_ACF_H_
#define INVARNETX_TIMESERIES_ACF_H_

#include <vector>

#include "common/status.h"

namespace invarnetx::ts {

// Sample autocorrelation function at lags 0..max_lag (acf[0] == 1).
// Zero-variance series return all-zeros beyond lag 0.
Result<std::vector<double>> Acf(const std::vector<double>& series,
                                int max_lag);

// Partial autocorrelation function at lags 1..max_lag via Durbin-Levinson
// recursion on the sample ACF.
Result<std::vector<double>> Pacf(const std::vector<double>& series,
                                 int max_lag);

// Solves the Yule-Walker equations for AR(p) coefficients from the sample
// ACF; returns p coefficients (phi_1..phi_p).
Result<std::vector<double>> YuleWalker(const std::vector<double>& series,
                                       int p);

}  // namespace invarnetx::ts

#endif  // INVARNETX_TIMESERIES_ACF_H_
