#ifndef INVARNETX_TIMESERIES_DIAGNOSTICS_H_
#define INVARNETX_TIMESERIES_DIAGNOSTICS_H_

#include <vector>

#include "common/status.h"

namespace invarnetx::ts {

// Ljung-Box portmanteau test for residual whiteness: a fitted model is
// adequate when its residuals carry no remaining autocorrelation.
struct LjungBoxResult {
  double q = 0.0;        // the Q statistic
  int lags = 0;          // number of lags tested
  double p_value = 1.0;  // P(chi2_{lags - fitted_params} >= Q)
  // Convention: reject whiteness (model inadequate) when p_value < alpha.
  bool WhiteAt(double alpha = 0.05) const { return p_value >= alpha; }
};

// Computes the Ljung-Box statistic over residuals at lags 1..`lags`.
// `fitted_params` reduces the chi-square degrees of freedom (p + q for an
// ARMA model). Requires lags >= 1, residuals.size() > lags and
// lags > fitted_params.
Result<LjungBoxResult> LjungBoxTest(const std::vector<double>& residuals,
                                    int lags, int fitted_params = 0);

// Upper-tail probability of the chi-square distribution with k degrees of
// freedom: P(X >= x). Exposed for tests; computed via the regularized
// incomplete gamma function.
double ChiSquareSurvival(double x, int k);

}  // namespace invarnetx::ts

#endif  // INVARNETX_TIMESERIES_DIAGNOSTICS_H_
