#ifndef INVARNETX_FAULTS_FAULT_H_
#define INVARNETX_FAULTS_FAULT_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/engine.h"
#include "common/random.h"
#include "common/status.h"
#include "workload/spec.h"

namespace invarnetx::faults {

// The fault catalog of Sec. 4.1. The first nine are operational-environment
// faults (injected with AnarchyApe-style tooling in the paper), the next six
// reproduce real Hadoop bugs, and kCpuUtilNoise is the Fig. 2 utilization
// disturbance, which is system noise rather than a fault.
enum class FaultType {
  // Environment faults.
  kCpuHog,
  kMemHog,
  kDiskHog,
  kNetDrop,
  kNetDelay,
  kBlockCorruption,  // Block-C
  kMisconfig,        // mapred.max.split.size set to 1 MB
  kOverload,         // interactive workloads only
  kSuspend,          // SIGSTOP datanode/tasktracker
  // Software bugs.
  kRpcHang,                 // HADOOP-6498
  kThreadLeak,              // HADOOP-9703
  kNpeRestart,              // HADOOP-1036
  kLockRace,                // Lock-R (non-deterministic)
  kCommInterference,        // HADOOP-1970
  kBlockReceiverException,  // Block-R
  // Disturbance (not a fault; used by the Fig. 2 experiment).
  kCpuUtilNoise,
};

// The fifteen diagnosable faults, in a stable order.
const std::vector<FaultType>& AllFaults();

std::string FaultName(FaultType type);
Result<FaultType> FaultFromName(const std::string& name);

// One-line human description of the fault's mechanism, for campaign
// reports and fault-catalog listings.
std::string FaultDescription(FaultType type);

// Whether the fault is applicable under the given workload (Overload only
// exists for interactive mixes: under FIFO a batch job owns the cluster).
bool AppliesTo(FaultType fault, workload::WorkloadType type);

// When and where a fault is active. `target_node` is an index into the
// cluster (0 = master). Network faults injected at the name node also leak
// milder effects onto the other nodes, as in a shared switch.
struct FaultWindow {
  int start_tick = 0;
  int duration_ticks = 30;  // the paper's 5 minutes at 10 s ticks
  size_t target_node = 1;

  bool Active(int tick) const {
    return tick >= start_tick && tick < start_tick + duration_ticks;
  }
  int end_tick() const { return start_tick + duration_ticks; }
};

// Creates an injector. Per-run magnitudes (and, for Lock-R, the random set
// of perturbed metrics) are drawn from `rng` at construction, so repeated
// injections of the same fault type differ run to run.
std::unique_ptr<cluster::FaultInjector> MakeFault(FaultType type,
                                                  const FaultWindow& window,
                                                  Rng* rng);

}  // namespace invarnetx::faults

#endif  // INVARNETX_FAULTS_FAULT_H_
