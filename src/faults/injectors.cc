#include <algorithm>
#include <cmath>

#include "faults/fault.h"

namespace invarnetx::faults {
namespace {

using cluster::Cluster;
using cluster::DriverState;
using cluster::FaultInjector;

// Base class holding the window and per-run magnitude jitter.
class FaultBase : public FaultInjector {
 public:
  FaultBase(FaultType type, const FaultWindow& window, double magnitude)
      : type_(type), window_(window), magnitude_(magnitude) {}

  std::string name() const override { return FaultName(type_); }

  void Apply(int tick, Cluster* cluster, Rng* rng) final {
    if (!window_.Active(tick)) return;
    ApplyActive(tick, cluster, rng);
  }

 protected:
  virtual void ApplyActive(int tick, Cluster* cluster, Rng* rng) = 0;

  DriverState& Target(Cluster* cluster) const {
    return cluster->node(window_.target_node).drivers;
  }
  double magnitude() const { return magnitude_; }
  const FaultWindow& window() const { return window_; }

 private:
  FaultType type_;
  FaultWindow window_;
  double magnitude_;
};

// (1) CPU-hog: a CPU-bound co-located process competes sharply for cores
// and cache - raises both utilization and CPI.
class CpuHog : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    // Hog processes are bursty; the resulting CPI swings are what keeps the
    // ARIMA one-step residual elevated for the whole window (Fig. 5).
    const double burst = 0.6 + 0.8 * rng->Uniform();
    d.cpu_extra = 0.85 * magnitude() * burst;
    d.cache_pressure = 0.45 * magnitude() * burst;
  }
};

// (2) Mem-hog: a co-located process pins a large allocation, pushing the
// node over the swap threshold.
class MemHog : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    // The hog keeps (re)touching a large allocation; resident size and the
    // induced swap pressure oscillate.
    d.mem_extra_mb = 11800.0 * magnitude() * (0.85 + 0.35 * rng->Uniform());
    d.cpu_extra = 0.06;  // the hog itself burns a little CPU touching pages
  }
};

// (3) Disk-hog: mass of reads+writes saturating the device.
class DiskHog : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    d.io_extra = 1.35 * magnitude() * (0.68 + 0.64 * rng->Uniform());
    d.cpu_extra = 0.05;
  }
};

// (4) Net-drop: packet loss injected at the name node; since all traffic
// crosses the shared switch, slaves see a milder echo.
class NetDrop : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    const double burst = 0.5 + rng->Uniform();
    for (size_t i = 0; i < cluster->size(); ++i) {
      DriverState& d = cluster->node(i).drivers;
      const double scale = i == window().target_node ? 1.0 : 0.65;
      d.pkt_loss = std::min(0.9, 0.07 * magnitude() * burst * scale);
      // Every task blocks on name-node RPCs sooner or later, so loss slows
      // progress in every phase, not just network-heavy ones.
      d.progress_scale =
          std::clamp(1.0 - 5.0 * d.pkt_loss * (0.6 + 0.8 * rng->Uniform()),
                     0.55, 1.0);
    }
  }
};

// (5) Net-delay: 800 ms added latency at the name node. Deliberately close
// to Net-drop in its observable footprint (the paper's signature conflict).
class NetDelay : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    const double burst = 0.85 + 0.3 * rng->Uniform();
    for (size_t i = 0; i < cluster->size(); ++i) {
      DriverState& d = cluster->node(i).drivers;
      const double scale = i == window().target_node ? 1.0 : 0.65;
      d.net_delay_ms = 800.0 * magnitude() * burst * scale;
      d.progress_scale = std::clamp(
          1.0 - d.net_delay_ms / 2200.0 * (0.75 + 0.5 * rng->Uniform()), 0.55,
          1.0);
    }
  }
};

// (6) Block-C: corrupted blocks on one data node force checksum re-reads
// and re-replication traffic.
class BlockCorruption : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    const double burst = 0.6 + 0.8 * rng->Uniform();
    d.io_read += 0.45 * magnitude() * burst;
    d.net_out += 0.35 * magnitude() * burst;
    d.rpc_rate += 0.35 * magnitude();  // block reports to the name node
    d.restart_churn = 0.15 * magnitude();
    // Tasks whose blocks fail checksum re-read (or re-fetch) them.
    d.progress_scale = 0.62 + 0.22 * rng->Uniform();
  }
};

// (7) Misconf: mapred.max.split.size = 1 MB floods the cluster with tiny
// tasks - scheduling overhead dominates useful work.
class Misconfig : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    for (size_t i = 1; i < cluster->size(); ++i) {
      DriverState& d = cluster->node(i).drivers;
      d.task_churn *= 5.0 * magnitude();
      d.rpc_rate *= 2.6;
      // Per-task overhead dominates; tiny tasks start and finish in bursts.
      d.progress_scale = 0.62 + 0.12 * rng->Uniform();
    }
    cluster->master().drivers.rpc_rate *= 2.2;
    cluster->master().drivers.cpu_task += 0.10;
  }
};

// (8) Overload: extra concurrent interactive queries on every slave -
// equivalent to scaling the active mix, since faults run after the
// workload writes its per-tick demands.
class Overload : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    // The extra queries arrive in waves; the factor breathes tick to tick.
    const double f = (1.0 + 1.6 * magnitude()) * (0.75 + 0.5 * rng->Uniform());
    for (size_t i = 1; i < cluster->size(); ++i) {
      DriverState& d = cluster->node(i).drivers;
      d.cpu_task *= f;
      d.io_read *= f;
      d.io_write *= f;
      d.net_in *= f;
      d.net_out *= f;
      d.task_churn *= f;
      d.rpc_rate *= f;
      d.mem_task_mb += 7000.0 * magnitude();
    }
    cluster->master().drivers.rpc_rate *= f;
  }
};

// (9) Suspend: SIGSTOP on the datanode/tasktracker process.
class Suspend : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng*) override {
    Target(cluster).suspended = true;
  }
};

// (10) RPC-hang (HADOOP-6498): a sleep in the RPC path stalls task
// heartbeats; the backlog builds while the node goes quiet.
class RpcHang : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    backlog_ += 15.0 * d.rpc_rate * magnitude();
    d.rpc_backlog = backlog_;
    d.progress_scale = 0.45 + 0.25 * rng->Uniform();
    d.net_in *= 0.5;
    d.net_out *= 0.5;
    d.task_churn *= 0.4;
    d.rpc_rate *= 0.2;  // heartbeats stop leaving the hung call path
  }

 private:
  double backlog_ = 0.0;
};

// (11) Thread leak (HADOOP-9703): Client.stop() leaks a thread per call;
// the server process balloons over the fault window.
class ThreadLeak : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    leaked_ = std::min(leaked_ + 150.0 * magnitude(), 4000.0);
    d.extra_threads = leaked_;
    d.mem_extra_mb = leaked_ * 1.1;  // ~1 MB stack + object churn per thread
    d.cpu_extra = std::min(0.25, leaked_ / 8000.0);
    // Thousands of runnable threads contend on scheduler and JVM locks,
    // increasingly and erratically.
    d.lock_contention =
        std::min(0.9, leaked_ / 4000.0) * (0.4 + 0.8 * rng->Uniform());
  }

 private:
  double leaked_ = 0.0;
};

// (12) NPE restart loop (HADOOP-1036): a task child dies on a
// NullPointerException and the tracker keeps relaunching it.
class NpeRestart : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    d.restart_churn = 0.8 * magnitude() * (0.6 + 0.8 * rng->Uniform());
    d.task_churn += 1.8 * magnitude() * (0.8 + 0.4 * rng->Uniform());
    d.cpu_extra = 0.18 * magnitude() * (0.7 + 0.6 * rng->Uniform());
    d.progress_scale = 0.65 + 0.2 * rng->Uniform();
  }
};

// (13) Lock-R: a removed `synchronized` causes races whose manifestation
// flickers and lands on a different random set of metrics every run - the
// paper's canonical non-deterministic fault (low recall expected).
class LockRace : public FaultBase {
 public:
  LockRace(FaultType type, const FaultWindow& window, double magnitude,
           Rng* rng)
      : FaultBase(type, window, magnitude) {
    const int num_affected = 5 + static_cast<int>(rng->UniformInt(6));
    for (int i = 0; i < num_affected; ++i) {
      affected_slots_.push_back(static_cast<size_t>(
          rng->UniformInt(cluster::kMetricNoiseSlots)));
    }
    flicker_prob_ = 0.45 + 0.3 * rng->Uniform();
  }

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    if (rng->Bernoulli(flicker_prob_)) {
      d.lock_contention = magnitude() * (0.35 + 0.5 * rng->Uniform());
      d.progress_scale = 0.85;
    }
    for (size_t slot : affected_slots_) {
      d.metric_noise[slot] = 0.25 + 0.35 * rng->Uniform();
    }
  }

 private:
  std::vector<size_t> affected_slots_;
  double flicker_prob_ = 0.6;
};

// (14) Communication-thread interference (HADOOP-1970): the task umbilical
// thread stutters, making network throughput jittery.
class CommInterference : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    const double jitter = 0.68 + 0.44 * rng->Uniform();
    d.net_in *= jitter;
    d.net_out *= jitter;
    backlog_ += 3.0 * magnitude();
    d.rpc_backlog = backlog_;
    d.progress_scale = 0.65 + 0.25 * rng->Uniform();
  }

 private:
  double backlog_ = 0.0;
};

// (15) Block-R: BlockReceiver.receivePacket throws - the HDFS write
// pipeline on this node keeps failing over.
class BlockReceiverException : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    DriverState& d = Target(cluster);
    d.io_write *= 0.25;
    d.net_in += 0.25 * magnitude();  // clients retry the pipeline
    d.rpc_rate += 0.4 * magnitude();
    d.restart_churn = 0.3 * magnitude() * (0.5 + rng->Uniform());
    d.progress_scale = 0.72 + 0.2 * rng->Uniform();
  }
};

// Fig. 2 disturbance: extra CPU utilization that fits in the node's
// headroom - visible (and jittery, as background load always is) on the
// utilization metrics, invisible to CPI. This burstiness is what makes a
// utilization-based KPI false-alarm where the CPI KPI stays quiet.
class CpuUtilNoise : public FaultBase {
 public:
  using FaultBase::FaultBase;

  void ApplyActive(int, Cluster* cluster, Rng* rng) override {
    Target(cluster).cpu_extra =
        0.30 * magnitude() * (0.3 + 1.4 * rng->Uniform());
  }
};

}  // namespace

const std::vector<FaultType>& AllFaults() {
  static const std::vector<FaultType>* kFaults = new std::vector<FaultType>{
      FaultType::kCpuHog,
      FaultType::kMemHog,
      FaultType::kDiskHog,
      FaultType::kNetDrop,
      FaultType::kNetDelay,
      FaultType::kBlockCorruption,
      FaultType::kMisconfig,
      FaultType::kOverload,
      FaultType::kSuspend,
      FaultType::kRpcHang,
      FaultType::kThreadLeak,
      FaultType::kNpeRestart,
      FaultType::kLockRace,
      FaultType::kCommInterference,
      FaultType::kBlockReceiverException,
  };
  return *kFaults;
}

std::string FaultName(FaultType type) {
  switch (type) {
    case FaultType::kCpuHog: return "cpu-hog";
    case FaultType::kMemHog: return "mem-hog";
    case FaultType::kDiskHog: return "disk-hog";
    case FaultType::kNetDrop: return "net-drop";
    case FaultType::kNetDelay: return "net-delay";
    case FaultType::kBlockCorruption: return "block-c";
    case FaultType::kMisconfig: return "misconf";
    case FaultType::kOverload: return "overload";
    case FaultType::kSuspend: return "suspend";
    case FaultType::kRpcHang: return "rpc-hang";
    case FaultType::kThreadLeak: return "h-9703";
    case FaultType::kNpeRestart: return "h-1036";
    case FaultType::kLockRace: return "lock-r";
    case FaultType::kCommInterference: return "h-1970";
    case FaultType::kBlockReceiverException: return "block-r";
    case FaultType::kCpuUtilNoise: return "cpu-util-noise";
  }
  return "unknown";
}

std::string FaultDescription(FaultType type) {
  switch (type) {
    case FaultType::kCpuHog:
      return "co-located CPU-bound process competing for cores and cache";
    case FaultType::kMemHog:
      return "co-located process pinning memory past the swap threshold";
    case FaultType::kDiskHog:
      return "mass of reads+writes saturating the data disk";
    case FaultType::kNetDrop:
      return "packet loss at the name node, echoed across the switch";
    case FaultType::kNetDelay:
      return "800 ms added latency at the name node";
    case FaultType::kBlockCorruption:
      return "corrupted HDFS blocks forcing checksum re-reads";
    case FaultType::kMisconfig:
      return "mapred.max.split.size=1MB flooding the cluster with tiny tasks";
    case FaultType::kOverload:
      return "extra concurrent interactive queries on every slave";
    case FaultType::kSuspend:
      return "SIGSTOP on the datanode/tasktracker process";
    case FaultType::kRpcHang:
      return "RPC path stall backing up task heartbeats (HADOOP-6498)";
    case FaultType::kThreadLeak:
      return "thread leaked per Client.stop() call (HADOOP-9703)";
    case FaultType::kNpeRestart:
      return "task child dying on NPE and relaunching (HADOOP-1036)";
    case FaultType::kLockRace:
      return "removed synchronized causing flickering races (Lock-R)";
    case FaultType::kCommInterference:
      return "task umbilical thread stutter jittering throughput "
             "(HADOOP-1970)";
    case FaultType::kBlockReceiverException:
      return "BlockReceiver.receivePacket failures in the write pipeline";
    case FaultType::kCpuUtilNoise:
      return "background CPU utilization inside the node's headroom";
  }
  return "unknown";
}

Result<FaultType> FaultFromName(const std::string& name) {
  for (FaultType t : AllFaults()) {
    if (FaultName(t) == name) return t;
  }
  if (name == FaultName(FaultType::kCpuUtilNoise)) {
    return FaultType::kCpuUtilNoise;
  }
  return Status::NotFound("unknown fault: " + name);
}

bool AppliesTo(FaultType fault, workload::WorkloadType type) {
  if (fault == FaultType::kOverload) {
    // Under FIFO a batch job owns the cluster: overload cannot happen.
    return !workload::IsBatch(type);
  }
  return true;
}

std::unique_ptr<cluster::FaultInjector> MakeFault(FaultType type,
                                                  const FaultWindow& window,
                                                  Rng* rng) {
  // Per-run severity jitter keeps repeated injections from being carbon
  // copies (the paper repeats each fault 40 times). A misconfiguration is
  // the exception: the same wrong config value is set every run.
  const double magnitude = type == FaultType::kMisconfig
                               ? 1.0
                               : std::max(0.55, rng->Gaussian(1.0, 0.12));
  switch (type) {
    case FaultType::kCpuHog:
      return std::make_unique<CpuHog>(type, window, magnitude);
    case FaultType::kMemHog:
      return std::make_unique<MemHog>(type, window, magnitude);
    case FaultType::kDiskHog:
      return std::make_unique<DiskHog>(type, window, magnitude);
    case FaultType::kNetDrop:
      return std::make_unique<NetDrop>(type, window, magnitude);
    case FaultType::kNetDelay:
      return std::make_unique<NetDelay>(type, window, magnitude);
    case FaultType::kBlockCorruption:
      return std::make_unique<BlockCorruption>(type, window, magnitude);
    case FaultType::kMisconfig:
      return std::make_unique<Misconfig>(type, window, magnitude);
    case FaultType::kOverload:
      return std::make_unique<Overload>(type, window, magnitude);
    case FaultType::kSuspend:
      return std::make_unique<Suspend>(type, window, magnitude);
    case FaultType::kRpcHang:
      return std::make_unique<RpcHang>(type, window, magnitude);
    case FaultType::kThreadLeak:
      return std::make_unique<ThreadLeak>(type, window, magnitude);
    case FaultType::kNpeRestart:
      return std::make_unique<NpeRestart>(type, window, magnitude);
    case FaultType::kLockRace:
      return std::make_unique<LockRace>(type, window, magnitude, rng);
    case FaultType::kCommInterference:
      return std::make_unique<CommInterference>(type, window, magnitude);
    case FaultType::kBlockReceiverException:
      return std::make_unique<BlockReceiverException>(type, window, magnitude);
    case FaultType::kCpuUtilNoise:
      return std::make_unique<CpuUtilNoise>(type, window, magnitude);
  }
  return nullptr;
}

}  // namespace invarnetx::faults
