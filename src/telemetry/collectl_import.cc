#include "telemetry/collectl_import.h"

#include <cstdlib>
#include <map>
#include <sstream>

namespace invarnetx::telemetry {
namespace {

// Catalog metric -> collectl plot column (collectl -P with -scdmnt).
const std::map<int, std::string>& ColumnTable() {
  static const std::map<int, std::string>* kTable =
      new std::map<int, std::string>{
          {kCpuUserPct, "[CPU]User%"},
          {kCpuSysPct, "[CPU]Sys%"},
          {kCpuIdlePct, "[CPU]Idle%"},
          {kCpuIowaitPct, "[CPU]Wait%"},
          {kLoadAvg1m, "[CPU]RunQ"},
          {kCtxSwitchesPerSec, "[CPU]Ctx"},
          {kInterruptsPerSec, "[CPU]Intrpt"},
          {kProcsRunning, "[CPU]RunTot"},
          {kMemUsedMb, "[MEM]Used"},
          {kMemFreeMb, "[MEM]Free"},
          {kMemCachedMb, "[MEM]Cached"},
          {kSwapUsedMb, "[MEM]SwapUsed"},
          {kPageFaultsPerSec, "[MEM]Fault"},
          {kPagesInPerSec, "[MEM]PageIn"},
          {kPagesOutPerSec, "[MEM]PageOut"},
          {kDiskReadKbps, "[DSK]ReadKBTot"},
          {kDiskWriteKbps, "[DSK]WriteKBTot"},
          {kDiskReadIops, "[DSK]ReadTot"},
          {kDiskWriteIops, "[DSK]WriteTot"},
          {kDiskUtilPct, "[DSK]PctUtil"},
          {kNetRxKbps, "[NET]RxKBTot"},
          {kNetTxKbps, "[NET]TxKBTot"},
          {kNetRxPktsPerSec, "[NET]RxPktTot"},
          {kNetTxPktsPerSec, "[NET]TxPktTot"},
          {kTcpRetransPerSec, "[TCP]Retrans"},
          // proc_threads has no node-level collectl counterpart.
      };
  return *kTable;
}

}  // namespace

std::string CollectlColumnFor(int metric) {
  auto it = ColumnTable().find(metric);
  return it == ColumnTable().end() ? "" : it->second;
}

Result<CollectlImportResult> ImportCollectlPlot(
    const std::string& text, const std::string& node_ip,
    const std::vector<double>& cpi) {
  std::istringstream in(text);
  std::string line;
  // Find the header line (first line starting with "#Date").
  std::vector<std::string> columns;
  while (std::getline(in, line)) {
    if (line.rfind("#Date", 0) == 0) {
      std::istringstream header(line);
      std::string token;
      while (header >> token) columns.push_back(token);
      break;
    }
  }
  if (columns.size() < 3) {
    return Status::Corruption("no collectl plot header (#Date Time ...)");
  }

  // Column index per catalog metric.
  std::vector<int> source(kNumMetrics, -1);
  for (int m = 0; m < kNumMetrics; ++m) {
    const std::string wanted = CollectlColumnFor(m);
    if (wanted.empty()) continue;
    for (size_t c = 0; c < columns.size(); ++c) {
      if (columns[c] == wanted) {
        source[static_cast<size_t>(m)] = static_cast<int>(c);
        break;
      }
    }
  }

  CollectlImportResult result;
  result.node.ip = node_ip;
  int rows = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::vector<double> values;
    std::string token;
    while (row >> token) {
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      // Date/time tokens parse partially; keep the raw position alignment
      // by pushing whatever strtod produced (columns 0-1 are never mapped).
      values.push_back(end == token.c_str() ? 0.0 : v);
    }
    if (values.size() != columns.size()) {
      return Status::Corruption("collectl row has " +
                                std::to_string(values.size()) +
                                " fields, header has " +
                                std::to_string(columns.size()));
    }
    for (int m = 0; m < kNumMetrics; ++m) {
      const int c = source[static_cast<size_t>(m)];
      result.node.metrics[static_cast<size_t>(m)].push_back(
          c < 0 ? 0.0 : values[static_cast<size_t>(c)]);
    }
    ++rows;
  }
  if (rows == 0) return Status::Corruption("collectl file has no data rows");

  for (int m = 0; m < kNumMetrics; ++m) {
    if (source[static_cast<size_t>(m)] < 0) {
      result.missing_metrics.push_back(MetricName(m));
    }
  }
  if (cpi.empty()) {
    result.node.cpi.assign(static_cast<size_t>(rows), 1.0);
    result.missing_metrics.push_back("cpi");
  } else if (cpi.size() != static_cast<size_t>(rows)) {
    return Status::InvalidArgument(
        "perf CPI series length does not match collectl row count");
  } else {
    result.node.cpi = cpi;
  }
  return result;
}

}  // namespace invarnetx::telemetry
