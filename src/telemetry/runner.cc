#include "telemetry/runner.h"

#include <algorithm>

#include <memory>
#include <vector>

#include "cluster/engine.h"
#include "common/random.h"
#include "telemetry/collector.h"
#include "workload/factory.h"
#include "workload/sequence.h"

namespace invarnetx::telemetry {

faults::FaultWindow DefaultFaultWindow(faults::FaultType type) {
  faults::FaultWindow window;
  window.start_tick = 8;
  window.duration_ticks = 30;  // 5 minutes at 10 s ticks
  const bool name_node_fault = type == faults::FaultType::kNetDrop ||
                               type == faults::FaultType::kNetDelay;
  window.target_node = name_node_fault ? 0 : 1;
  return window;
}

Result<RunTrace> SimulateRun(const RunConfig& config) {
  if (config.num_slaves < 1) {
    return Status::InvalidArgument("SimulateRun: num_slaves must be >= 1");
  }
  Rng rng(config.seed);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed(config.num_slaves);

  Result<std::unique_ptr<cluster::WorkloadModel>> workload =
      workload::MakeWorkload(config.workload, testbed, &rng,
                             config.data_scale);
  if (!workload.ok()) return workload.status();

  std::vector<std::unique_ptr<cluster::FaultInjector>> owned_faults;
  std::vector<cluster::FaultInjector*> fault_ptrs;
  RunTrace trace;
  trace.workload = config.workload;
  std::vector<FaultRequest> requested;
  if (config.fault.has_value()) requested.push_back(*config.fault);
  requested.insert(requested.end(), config.extra_faults.begin(),
                   config.extra_faults.end());
  for (const FaultRequest& request : requested) {
    if (!faults::AppliesTo(request.type, config.workload)) {
      return Status::InvalidArgument(faults::FaultName(request.type) +
                                     " does not apply to " +
                                     workload::WorkloadName(config.workload));
    }
    owned_faults.push_back(
        faults::MakeFault(request.type, request.window, &rng));
    fault_ptrs.push_back(owned_faults.back().get());
    trace.injected.push_back(FaultGroundTruth{request.type, request.window});
  }
  if (!trace.injected.empty()) trace.fault = trace.injected.front();

  cluster::EngineConfig engine_config;
  engine_config.max_ticks =
      workload::IsBatch(config.workload)
          ? static_cast<int>(config.max_ticks *
                             std::max(1.0, config.data_scale))
          : config.interactive_ticks;

  Collector collector(&trace, &rng);
  cluster::SimulationEngine engine(engine_config);
  const cluster::EngineResult result = engine.Run(
      &testbed, workload.value().get(), fault_ptrs, &collector, &rng);

  trace.duration_seconds = result.duration_seconds;
  trace.finished = result.workload_finished;
  return trace;
}

Result<RunTrace> SimulateJobSequence(const SequenceConfig& config) {
  if (config.jobs.empty()) {
    return Status::InvalidArgument("SimulateJobSequence: empty job list");
  }
  for (workload::WorkloadType type : config.jobs) {
    if (!workload::IsBatch(type)) {
      return Status::InvalidArgument(
          "SimulateJobSequence: only batch jobs queue under FIFO");
    }
  }
  Rng rng(config.seed);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  workload::JobSequenceModel sequence(config.jobs, testbed, &rng);

  std::vector<std::unique_ptr<cluster::FaultInjector>> owned_faults;
  std::vector<cluster::FaultInjector*> fault_ptrs;
  RunTrace trace;
  trace.workload = config.jobs.front();
  if (config.fault.has_value()) {
    owned_faults.push_back(
        faults::MakeFault(config.fault->type, config.fault->window, &rng));
    fault_ptrs.push_back(owned_faults.back().get());
    trace.fault = FaultGroundTruth{config.fault->type, config.fault->window};
    trace.injected.push_back(*trace.fault);
  }

  cluster::EngineConfig engine_config;
  engine_config.max_ticks = config.max_ticks;
  Collector collector(&trace, &rng);
  cluster::SimulationEngine engine(engine_config);
  const cluster::EngineResult result =
      engine.Run(&testbed, &sequence, fault_ptrs, &collector, &rng);

  trace.duration_seconds = result.duration_seconds;
  trace.finished = result.workload_finished;
  for (const workload::JobSequenceModel::JobSpan& span : sequence.spans()) {
    trace.job_spans.push_back(
        JobSpanInfo{span.type, span.start_tick, span.end_tick});
  }
  return trace;
}

}  // namespace invarnetx::telemetry
