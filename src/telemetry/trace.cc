#include "telemetry/trace.h"

namespace invarnetx::telemetry {

std::vector<double> RunTrace::MeanSlaveCpi() const {
  std::vector<double> out(static_cast<size_t>(ticks), 0.0);
  if (nodes.size() <= 1 || ticks == 0) return out;
  const size_t slaves = nodes.size() - 1;
  for (size_t t = 0; t < static_cast<size_t>(ticks); ++t) {
    double acc = 0.0;
    for (size_t n = 1; n < nodes.size(); ++n) {
      acc += nodes[n].cpi[t];
    }
    out[t] = acc / static_cast<double>(slaves);
  }
  return out;
}

Result<const std::vector<double>*> RunTrace::Series(size_t node,
                                                    int metric) const {
  if (node >= nodes.size()) {
    return Status::OutOfRange("node index out of range");
  }
  if (metric < 0 || metric >= kNumMetrics) {
    return Status::OutOfRange("metric id out of range");
  }
  return &nodes[node].metrics[static_cast<size_t>(metric)];
}

}  // namespace invarnetx::telemetry
