#ifndef INVARNETX_TELEMETRY_RUNNER_H_
#define INVARNETX_TELEMETRY_RUNNER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "faults/fault.h"
#include "telemetry/trace.h"
#include "workload/spec.h"

namespace invarnetx::telemetry {

// One requested fault injection.
struct FaultRequest {
  faults::FaultType type = faults::FaultType::kCpuHog;
  faults::FaultWindow window;
};

// Parameters of one simulated run.
struct RunConfig {
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  uint64_t seed = 1;
  // Cluster size: 1 master + `num_slaves` slaves (the paper's testbed has
  // 4; campaign scenarios may scale it).
  int num_slaves = 4;
  // Batch jobs run to completion (capped here); interactive mixes are
  // observed for exactly this many ticks.
  int max_ticks = 400;
  int interactive_ticks = 60;
  // Batch input size relative to the paper's 15 GB.
  double data_scale = 1.0;
  std::optional<FaultRequest> fault;
  // Additional simultaneous faults (the paper's multi-fault extension:
  // "the probability of multiple faults happening ... is very tiny", but
  // the method extends by listing multiple similar signatures).
  std::vector<FaultRequest> extra_faults;
};

// Simulates one run on the 5-node testbed and returns its trace.
// Fully deterministic given `config.seed`.
Result<RunTrace> SimulateRun(const RunConfig& config);

// Simulates a FIFO queue of batch jobs in one trace (Hadoop's FIFO mode);
// the returned trace's job_spans record each job's tick range, which the
// monitoring side uses to switch operation contexts at job boundaries.
struct SequenceConfig {
  std::vector<workload::WorkloadType> jobs;
  uint64_t seed = 1;
  int max_ticks = 1200;
  std::optional<FaultRequest> fault;
};
Result<RunTrace> SimulateJobSequence(const SequenceConfig& config);

// Convenience: a fault window starting mid-run (tick 8) with the paper's
// 5-minute duration, targeting slave 1 (node index 1) - or the master for
// the name-node faults Net-drop / Net-delay.
faults::FaultWindow DefaultFaultWindow(faults::FaultType type);

}  // namespace invarnetx::telemetry

#endif  // INVARNETX_TELEMETRY_RUNNER_H_
