#ifndef INVARNETX_TELEMETRY_COLLECTOR_H_
#define INVARNETX_TELEMETRY_COLLECTOR_H_

#include <array>

#include "cluster/engine.h"
#include "common/random.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::telemetry {

// Computes the 26 observable metrics of a node from its latent drivers for
// one tick (pure; observation noise is drawn from `rng`). Exposed so tests
// can probe the driver -> metric mapping directly.
std::array<double, kNumMetrics> ObserveMetrics(const cluster::SimNode& node,
                                               Rng* rng);

// TelemetrySink that appends per-node metric samples and CPI readings to a
// RunTrace (collectl + perf in the paper's deployment).
class Collector : public cluster::TelemetrySink {
 public:
  // `trace` must outlive the collector; node entries are created lazily on
  // the first Record call.
  Collector(RunTrace* trace, Rng* rng) : trace_(trace), rng_(rng) {}

  void Record(int tick, const cluster::Cluster& cluster,
              const std::vector<cluster::CpiSample>& cpi) override;

 private:
  RunTrace* trace_;
  Rng* rng_;
};

}  // namespace invarnetx::telemetry

#endif  // INVARNETX_TELEMETRY_COLLECTOR_H_
