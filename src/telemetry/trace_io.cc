#include "telemetry/trace_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "obs/log.h"

namespace invarnetx::telemetry {
namespace {

std::string DoubleToStr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Splits "key=value key=value" metadata payloads.
std::map<std::string, std::string> ParseKeyValues(const std::string& line) {
  std::map<std::string, std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

Result<double> ToDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return Status::Corruption("bad number: " + s);
  return v;
}

Result<int> ToInt(const std::string& s) {
  Result<double> v = ToDouble(s);
  if (!v.ok()) return v.status();
  return static_cast<int>(v.value());
}

}  // namespace

std::string WriteTraceCsv(const RunTrace& trace) {
  std::ostringstream out;
  out << "# invarnetx-trace v1\n";
  out << "# workload=" << workload::WorkloadName(trace.workload)
      << " ticks=" << trace.ticks
      << " duration_seconds=" << DoubleToStr(trace.duration_seconds)
      << " finished=" << (trace.finished ? 1 : 0) << "\n";
  for (const FaultGroundTruth& fault : trace.injected) {
    out << "# fault=" << faults::FaultName(fault.type)
        << " start=" << fault.window.start_tick
        << " duration=" << fault.window.duration_ticks
        << " target=" << fault.window.target_node << "\n";
  }
  for (const JobSpanInfo& span : trace.job_spans) {
    out << "# job_span=" << workload::WorkloadName(span.type)
        << " start=" << span.start_tick << " end=" << span.end_tick << "\n";
  }
  out << "node_ip,tick,cpi";
  for (int m = 0; m < kNumMetrics; ++m) out << ',' << MetricName(m);
  out << '\n';
  for (const NodeTrace& node : trace.nodes) {
    for (int t = 0; t < trace.ticks; ++t) {
      out << node.ip << ',' << t << ','
          << DoubleToStr(node.cpi[static_cast<size_t>(t)]);
      for (int m = 0; m < kNumMetrics; ++m) {
        out << ','
            << DoubleToStr(
                   node.metrics[static_cast<size_t>(m)][static_cast<size_t>(t)]);
      }
      out << '\n';
    }
  }
  return out.str();
}

Status WriteTraceFile(const std::string& path, const RunTrace& trace) {
  std::ofstream file(path);
  if (!file) {
    INVARNETX_OBS_LOG(obs::LogLevel::kError, "trace write failed",
                      {{"path", path}, {"reason", "cannot open"}});
    return Status::IoError("cannot open " + path);
  }
  file << WriteTraceCsv(trace);
  if (!file.good()) {
    INVARNETX_OBS_LOG(obs::LogLevel::kError, "trace write failed",
                      {{"path", path}, {"reason", "write error"}});
    return Status::IoError("write failed for " + path);
  }
  INVARNETX_OBS_LOG(obs::LogLevel::kDebug, "wrote trace file",
                    {{"path", path},
                     {"ticks", trace.ticks},
                     {"nodes", trace.nodes.size()}});
  return Status::Ok();
}

Result<RunTrace> ParseTraceCsv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line.rfind("# invarnetx-trace", 0) != 0) {
    return Status::Corruption("missing invarnetx-trace header");
  }
  RunTrace trace;
  bool header_seen = false;
  std::map<std::string, size_t> node_index;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::map<std::string, std::string> kv =
          ParseKeyValues(line.substr(1));
      if (kv.count("workload")) {
        Result<workload::WorkloadType> type =
            workload::WorkloadFromName(kv.at("workload"));
        if (!type.ok()) return type.status();
        trace.workload = type.value();
        if (kv.count("duration_seconds")) {
          Result<double> d = ToDouble(kv.at("duration_seconds"));
          if (!d.ok()) return d.status();
          trace.duration_seconds = d.value();
        }
        if (kv.count("finished")) trace.finished = kv.at("finished") == "1";
      } else if (kv.count("fault")) {
        Result<faults::FaultType> type = faults::FaultFromName(kv.at("fault"));
        if (!type.ok()) return type.status();
        Result<int> start = ToInt(kv.at("start"));
        Result<int> duration = ToInt(kv.at("duration"));
        Result<int> target = ToInt(kv.at("target"));
        if (!start.ok() || !duration.ok() || !target.ok()) {
          return Status::Corruption("bad fault metadata: " + line);
        }
        faults::FaultWindow window;
        window.start_tick = start.value();
        window.duration_ticks = duration.value();
        window.target_node = static_cast<size_t>(target.value());
        trace.injected.push_back(FaultGroundTruth{type.value(), window});
      } else if (kv.count("job_span")) {
        Result<workload::WorkloadType> type =
            workload::WorkloadFromName(kv.at("job_span"));
        if (!type.ok()) return type.status();
        Result<int> start = ToInt(kv.at("start"));
        Result<int> end = ToInt(kv.at("end"));
        if (!start.ok() || !end.ok()) {
          return Status::Corruption("bad job_span metadata: " + line);
        }
        trace.job_spans.push_back(
            JobSpanInfo{type.value(), start.value(), end.value()});
      }
      continue;
    }
    if (!header_seen) {
      // Column header: validate the metric ordering matches the catalog.
      std::istringstream cols(line);
      std::string col;
      std::getline(cols, col, ',');
      if (col != "node_ip") return Status::Corruption("bad column header");
      std::getline(cols, col, ',');
      std::getline(cols, col, ',');  // tick, cpi
      for (int m = 0; m < kNumMetrics; ++m) {
        if (!std::getline(cols, col, ',') || col != MetricName(m)) {
          return Status::Corruption("metric column mismatch at " +
                                    MetricName(m));
        }
      }
      header_seen = true;
      continue;
    }
    // Data row.
    std::istringstream cols(line);
    std::string ip, tick_str, value;
    if (!std::getline(cols, ip, ',') || !std::getline(cols, tick_str, ',')) {
      return Status::Corruption("truncated data row: " + line);
    }
    auto [it, inserted] = node_index.emplace(ip, trace.nodes.size());
    if (inserted) {
      trace.nodes.push_back(NodeTrace{});
      trace.nodes.back().ip = ip;
    }
    NodeTrace& node = trace.nodes[it->second];
    if (!std::getline(cols, value, ',')) {
      return Status::Corruption("row missing cpi: " + line);
    }
    Result<double> cpi = ToDouble(value);
    if (!cpi.ok()) return cpi.status();
    node.cpi.push_back(cpi.value());
    for (int m = 0; m < kNumMetrics; ++m) {
      if (!std::getline(cols, value, ',')) {
        return Status::Corruption("row missing metric " + MetricName(m));
      }
      Result<double> v = ToDouble(value);
      if (!v.ok()) return v.status();
      node.metrics[static_cast<size_t>(m)].push_back(v.value());
    }
  }
  if (trace.nodes.empty()) return Status::Corruption("trace has no data rows");
  trace.ticks = static_cast<int>(trace.nodes[0].cpi.size());
  for (const NodeTrace& node : trace.nodes) {
    if (node.cpi.size() != static_cast<size_t>(trace.ticks)) {
      return Status::Corruption("node " + node.ip +
                                " has inconsistent tick count");
    }
  }
  if (!trace.injected.empty()) trace.fault = trace.injected.front();
  return trace;
}

Result<RunTrace> ReadTraceFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    INVARNETX_OBS_LOG(obs::LogLevel::kWarn, "trace read failed",
                      {{"path", path}, {"reason", "cannot open"}});
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  Result<RunTrace> trace = ParseTraceCsv(buf.str());
  if (!trace.ok()) {
    INVARNETX_OBS_LOG(obs::LogLevel::kWarn, "trace parse failed",
                      {{"path", path},
                       {"error", trace.status().ToString()}});
    return trace;
  }
  INVARNETX_OBS_LOG(obs::LogLevel::kDebug, "read trace file",
                    {{"path", path},
                     {"ticks", trace.value().ticks},
                     {"nodes", trace.value().nodes.size()}});
  return trace;
}

}  // namespace invarnetx::telemetry
