#ifndef INVARNETX_TELEMETRY_TRACE_H_
#define INVARNETX_TELEMETRY_TRACE_H_

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "faults/fault.h"
#include "telemetry/metrics.h"
#include "workload/spec.h"

namespace invarnetx::telemetry {

// Time series recorded for one node over one run: the 26 metrics plus the
// perf-style CPI samples, one value per 10 s tick.
struct NodeTrace {
  std::string ip;
  std::array<std::vector<double>, kNumMetrics> metrics;
  std::vector<double> cpi;
};

// Ground truth of the fault injected into a run (absent for normal runs).
struct FaultGroundTruth {
  faults::FaultType type = faults::FaultType::kCpuHog;
  faults::FaultWindow window;
};

// One job's span within a multi-job (FIFO sequence) trace.
struct JobSpanInfo {
  workload::WorkloadType type = workload::WorkloadType::kWordCount;
  int start_tick = 0;
  int end_tick = -1;  // exclusive; -1 if still running at trace end
};

// Everything observed during one run of one workload.
struct RunTrace {
  workload::WorkloadType workload = workload::WorkloadType::kWordCount;
  std::vector<NodeTrace> nodes;
  int ticks = 0;
  double duration_seconds = 0.0;
  bool finished = false;  // batch job completed within the tick budget
  // Primary injected fault (absent for normal runs) and, for multi-fault
  // runs, the full injection list (injected.front() == *fault).
  std::optional<FaultGroundTruth> fault;
  std::vector<FaultGroundTruth> injected;
  // For FIFO job-sequence traces: the per-job spans (empty for single-job
  // runs, where `workload` describes the whole trace).
  std::vector<JobSpanInfo> job_spans;

  // Mean CPI across the slave nodes at each tick - the "job CPI" series
  // used for run-level statistics like the Fig. 4 95th percentile.
  std::vector<double> MeanSlaveCpi() const;

  // The metric series of one node, bounds-checked.
  Result<const std::vector<double>*> Series(size_t node, int metric) const;
};

}  // namespace invarnetx::telemetry

#endif  // INVARNETX_TELEMETRY_TRACE_H_
