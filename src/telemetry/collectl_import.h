#ifndef INVARNETX_TELEMETRY_COLLECTL_IMPORT_H_
#define INVARNETX_TELEMETRY_COLLECTL_IMPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace invarnetx::telemetry {

// Import of real collectl data. The paper's deployment collects the 26
// metrics with `collectl` and CPI with `perf`; this adapter converts
// collectl's plot format (`collectl -P -scdmn ...`) into a NodeTrace:
//
//   #Date Time [CPU]User% [CPU]Sys% [CPU]Wait% [CPU]Idle% ... \n
//   20140601 00:00:10 12.1 3.4 1.0 83.5 ...
//
// Recognized columns are mapped onto the metric catalog (see
// CollectlColumnFor); unrecognized collectl columns are ignored; catalog
// metrics with no source column are zero-filled and reported in
// `missing_metrics` so the caller can decide whether the coverage is
// sufficient. The per-process CPI series from perf is supplied separately
// (`cpi`); if empty, CPI is filled with 1.0 and "cpi" is reported missing -
// anomaly detection is meaningless without it, but invariant mining still
// works.
struct CollectlImportResult {
  NodeTrace node;
  std::vector<std::string> missing_metrics;
};

Result<CollectlImportResult> ImportCollectlPlot(
    const std::string& text, const std::string& node_ip,
    const std::vector<double>& cpi);

// The collectl plot column name a catalog metric is read from, or "" when
// the metric has no collectl counterpart (it is then zero-filled).
std::string CollectlColumnFor(int metric);

}  // namespace invarnetx::telemetry

#endif  // INVARNETX_TELEMETRY_COLLECTL_IMPORT_H_
