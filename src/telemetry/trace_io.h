#ifndef INVARNETX_TELEMETRY_TRACE_IO_H_
#define INVARNETX_TELEMETRY_TRACE_IO_H_

#include <string>

#include "common/status.h"
#include "telemetry/trace.h"

namespace invarnetx::telemetry {

// Serializes a run trace as CSV with '#'-prefixed metadata lines:
//
//   # invarnetx-trace v1
//   # workload=wordcount ticks=48 duration_seconds=480 finished=1
//   # fault=cpu-hog start=8 duration=30 target=1        (per injected fault)
//   # job_span=wordcount start=0 end=43                 (per queued job)
//   node_ip,tick,cpi,cpu_user_pct,...                   (26 metric columns)
//   10.0.0.1,0,1.0031,...
//
// This is the interchange format between a real collectl/perf collector and
// the diagnosis pipeline, and what the CLI consumes.
std::string WriteTraceCsv(const RunTrace& trace);
Status WriteTraceFile(const std::string& path, const RunTrace& trace);

// Parses WriteTraceCsv output. Validates that every node carries the same
// tick count and all 26 metric columns.
Result<RunTrace> ParseTraceCsv(const std::string& text);
Result<RunTrace> ReadTraceFile(const std::string& path);

}  // namespace invarnetx::telemetry

#endif  // INVARNETX_TELEMETRY_TRACE_IO_H_
