#include "telemetry/collector.h"

#include <algorithm>
#include <cmath>

namespace invarnetx::telemetry {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

std::array<double, kNumMetrics> ObserveMetrics(const cluster::SimNode& node,
                                               Rng* rng) {
  const cluster::DriverState& d = node.drivers;
  const cluster::NodeSpec& spec = node.spec;

  // A suspended Hadoop process stops generating activity, but co-located
  // hogs and already-allocated memory are unaffected.
  const double act = d.suspended ? 0.06 : 1.0;

  // ---- disk -------------------------------------------------------------
  // Demands are relative to the 120 MB/s reference device; utilization on
  // this node scales with its actual disk speed.
  const double disk_scale = node.DiskDemandScale();
  const double io_r = (d.io_read * act + 0.5 * d.io_extra) * disk_scale;
  const double io_w = (d.io_write * act + 0.5 * d.io_extra) * disk_scale;
  const double io_total = io_r + io_w;
  const double io_served = std::min(io_total, 1.0);  // device saturates
  const double read_share = io_total > 0.0 ? io_r / io_total : 0.5;
  const double disk_read_kbps = spec.disk_mbps * 1024.0 * io_served * read_share;
  const double disk_write_kbps =
      spec.disk_mbps * 1024.0 * io_served * (1.0 - read_share);
  // Random-ish Hadoop I/O averages ~64 KB per request.
  const double disk_read_iops = disk_read_kbps / 64.0;
  const double disk_write_iops = disk_write_kbps / 64.0;
  const double disk_util = 100.0 * io_served;

  // ---- network ----------------------------------------------------------
  // Loss shrinks goodput via retransmissions; latency shrinks it via the
  // bandwidth-delay product. 800 ms of added delay is far more damaging
  // than ~5% loss, but loss produces far more retransmission events.
  const double net_eff = std::pow(1.0 - d.pkt_loss, 8.0) /
                         (1.0 + d.net_delay_ms / 250.0);
  const double rx_kbps =
      spec.net_mbps * 125.0 * Clamp01(d.net_in * act) * net_eff;
  const double tx_kbps =
      spec.net_mbps * 125.0 * Clamp01(d.net_out * act) * net_eff;
  // ~1400 B frames => ~0.09 packets per kb/s; loss adds small retransmit
  // frames on top.
  // Small control packets dominate at low rates, jumbo-ish data frames at
  // high rates, so the packet rate is sublinear in throughput.
  const double rx_pkts =
      std::pow(rx_kbps, 0.88) * 0.22 * (1.0 + 5.0 * d.pkt_loss);
  const double tx_pkts =
      std::pow(tx_kbps, 0.88) * 0.22 * (1.0 + 5.0 * d.pkt_loss);
  const double traffic_pkts = rx_pkts + tx_pkts;
  const double tcp_retrans = 0.4 + traffic_pkts * d.pkt_loss * 1.3 +
                             traffic_pkts * (d.net_delay_ms / 800.0) * 0.012;

  // ---- CPU ---------------------------------------------------------------
  const double cpu_user =
      100.0 * Clamp01(0.88 * d.cpu_task * act + 0.95 * d.cpu_extra +
                      0.25 * d.gc_activity);
  const double cpu_sys = 100.0 * std::clamp(
      0.10 * io_total + 0.055 * (d.net_in + d.net_out) * act +
          0.07 * d.task_churn * act + 0.06 * d.restart_churn +
          0.04 * d.rpc_rate * act + 0.02 * d.lock_contention,
      0.0, 0.6);
  // I/O wait grows convexly as the device queue builds.
  const double cpu_iowait =
      100.0 * std::clamp(0.16 * std::pow(io_total, 1.8) +
                             0.45 * std::max(0.0, io_total - 1.0),
                         0.0, 0.8);
  const double busy = std::min(99.0, cpu_user + cpu_sys + cpu_iowait);
  const double cpu_idle = 100.0 - busy;

  // Run-queue length explodes as utilization approaches saturation
  // (M/M/c-style queueing), so load is strongly nonlinear in demand.
  const double cpu_demand =
      std::min(d.cpu_task * act + d.cpu_extra, 1.6);
  const double load_avg =
      spec.cores * cpu_demand * (1.0 + 2.2 * std::pow(std::max(0.0, cpu_demand - 0.55), 2.0)) +
      3.0 * std::max(0.0, io_total - 1.0) + 0.02 * d.rpc_backlog +
      2.0 * d.lock_contention;

  const double ctx = 2500.0 +
                     26500.0 * std::pow(d.cpu_task * act + d.cpu_extra, 0.72) +
                     9000.0 * d.task_churn * act + 4.0 * d.extra_threads +
                     0.35 * traffic_pkts + 18000.0 * d.lock_contention +
                     6000.0 * d.restart_churn;
  const double interrupts =
      900.0 + 0.9 * traffic_pkts + 0.8 * (disk_read_iops + disk_write_iops);
  const double procs = 2.0 + 8.0 * (d.cpu_task * act + d.cpu_extra) +
                       3.0 * d.task_churn * act + 2.5 * d.restart_churn;

  // ---- memory ------------------------------------------------------------
  // A suspended process keeps its resident set.
  const double mem_used = 1200.0 + d.mem_task_mb + d.mem_extra_mb;
  const double headroom = std::max(0.0, spec.mem_total_mb - mem_used);
  const double mem_cached =
      std::max(200.0, headroom * 0.55 * (0.5 + 0.5 * std::min(1.0, io_r)));
  const double mem_free = std::max(64.0, spec.mem_total_mb - mem_used -
                                             mem_cached);
  const double swap_pressure =
      std::max(0.0, mem_used / spec.mem_total_mb - 0.85);
  const double swap_used = swap_pressure * spec.mem_total_mb * 1.4;
  const double page_faults = 150.0 + 0.9 * d.mem_task_mb * act +
                             26000.0 * swap_pressure +
                             800.0 * d.task_churn * act;
  const double pages_in =
      40.0 + disk_read_kbps * 0.06 + 9000.0 * swap_pressure;
  const double pages_out =
      30.0 + disk_write_kbps * 0.06 + 7000.0 * swap_pressure;

  const double threads = 110.0 + 60.0 * d.task_churn * act +
                         d.extra_threads + 25.0 * d.cpu_task * act +
                         0.3 * d.rpc_backlog;

  std::array<double, kNumMetrics> metrics{};
  metrics[kCpuUserPct] = cpu_user;
  metrics[kCpuSysPct] = cpu_sys;
  metrics[kCpuIdlePct] = cpu_idle;
  metrics[kCpuIowaitPct] = cpu_iowait;
  metrics[kLoadAvg1m] = load_avg;
  metrics[kCtxSwitchesPerSec] = ctx;
  metrics[kInterruptsPerSec] = interrupts;
  metrics[kProcsRunning] = procs;
  metrics[kMemUsedMb] = mem_used;
  metrics[kMemFreeMb] = mem_free;
  metrics[kMemCachedMb] = mem_cached;
  metrics[kSwapUsedMb] = swap_used;
  metrics[kPageFaultsPerSec] = page_faults;
  metrics[kPagesInPerSec] = pages_in;
  metrics[kPagesOutPerSec] = pages_out;
  metrics[kDiskReadKbps] = disk_read_kbps;
  metrics[kDiskWriteKbps] = disk_write_kbps;
  metrics[kDiskReadIops] = disk_read_iops;
  metrics[kDiskWriteIops] = disk_write_iops;
  metrics[kDiskUtilPct] = disk_util;
  metrics[kNetRxKbps] = rx_kbps;
  metrics[kNetTxKbps] = tx_kbps;
  metrics[kNetRxPktsPerSec] = rx_pkts;
  metrics[kNetTxPktsPerSec] = tx_pkts;
  metrics[kTcpRetransPerSec] = tcp_retrans;
  metrics[kProcThreads] = threads;

  // Observation noise: a multiplicative component, a fault-injected
  // metric-level jitter (Lock-R style nondeterministic decoupling), and an
  // additive idle floor. The floor models OS housekeeping and other
  // daemons, which keep every metric jittering independently even when the
  // Hadoop processes go quiet - without it, a suspended or saturated node
  // would keep its metric couplings intact and violate nothing.
  static constexpr double kIdleFloor[kNumMetrics] = {
      1.5,   // cpu_user_pct
      0.4,   // cpu_sys_pct
      1.5,   // cpu_idle_pct
      0.3,   // cpu_iowait_pct
      0.15,  // load_avg_1m
      300,   // ctx_switches_per_sec
      120,   // interrupts_per_sec
      0.5,   // procs_running
      60,    // mem_used_mb
      80,    // mem_free_mb
      50,    // mem_cached_mb
      2,     // swap_used_mb
      40,    // page_faults_per_sec
      15,    // pages_in_per_sec
      12,    // pages_out_per_sec
      180,   // disk_read_kbps
      120,   // disk_write_kbps
      4,     // disk_read_iops
      3,     // disk_write_iops
      1.5,   // disk_util_pct
      40,    // net_rx_kbps
      40,    // net_tx_kbps
      6,     // net_rx_pkts_per_sec
      6,     // net_tx_pkts_per_sec
      0.15,  // tcp_retrans_per_sec
      2,     // proc_threads
  };
  for (int i = 0; i < kNumMetrics; ++i) {
    double jitter = rng->Gaussian(0.0, 0.03);
    if (i < cluster::kMetricNoiseSlots && d.metric_noise[static_cast<size_t>(i)] > 0.0) {
      jitter += rng->Gaussian(0.0, d.metric_noise[static_cast<size_t>(i)]);
    }
    const double floor_noise =
        kIdleFloor[static_cast<size_t>(i)] * std::fabs(rng->Gaussian(0.0, 1.0));
    metrics[static_cast<size_t>(i)] = std::max(
        0.0, metrics[static_cast<size_t>(i)] * (1.0 + jitter) + floor_noise);
  }
  // Counter-style metrics are small integers in collectl output; the
  // quantization matters: a retransmission counter that reads 0 almost
  // every interval forms rock-stable (zero-MIC) invariants whose violation
  // is a crisp marker for loss-type faults.
  metrics[kTcpRetransPerSec] = std::floor(metrics[kTcpRetransPerSec]);
  metrics[kProcsRunning] = std::floor(metrics[kProcsRunning]);
  metrics[kSwapUsedMb] = std::floor(metrics[kSwapUsedMb]);  // A/B marker
  return metrics;
}

void Collector::Record(int /*tick*/, const cluster::Cluster& cluster,
                       const std::vector<cluster::CpiSample>& cpi) {
  if (trace_->nodes.empty()) {
    trace_->nodes.resize(cluster.size());
    for (size_t i = 0; i < cluster.size(); ++i) {
      trace_->nodes[i].ip = cluster.node(i).ip;
    }
  }
  for (size_t i = 0; i < cluster.size(); ++i) {
    const std::array<double, kNumMetrics> metrics =
        ObserveMetrics(cluster.node(i), rng_);
    NodeTrace& node_trace = trace_->nodes[i];
    for (int m = 0; m < kNumMetrics; ++m) {
      node_trace.metrics[static_cast<size_t>(m)].push_back(
          metrics[static_cast<size_t>(m)]);
    }
    // perf-style CPI reading with a little measurement noise.
    node_trace.cpi.push_back(
        std::max(0.05, cpi[i].cpi * (1.0 + rng_->Gaussian(0.0, 0.008))));
  }
  ++trace_->ticks;
}

}  // namespace invarnetx::telemetry
