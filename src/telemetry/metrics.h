#ifndef INVARNETX_TELEMETRY_METRICS_H_
#define INVARNETX_TELEMETRY_METRICS_H_

#include <string>

#include "common/status.h"

namespace invarnetx::telemetry {

// The 26 collectl-style metrics the paper collects every 10 s: coarse CPU /
// memory / disk / network utilization plus fine-grained counters (context
// switches, page faults, ...). Indices are stable and used in invariant
// matrices and signatures.
enum MetricId : int {
  kCpuUserPct = 0,
  kCpuSysPct,
  kCpuIdlePct,
  kCpuIowaitPct,
  kLoadAvg1m,
  kCtxSwitchesPerSec,
  kInterruptsPerSec,
  kProcsRunning,
  kMemUsedMb,
  kMemFreeMb,
  kMemCachedMb,
  kSwapUsedMb,
  kPageFaultsPerSec,
  kPagesInPerSec,
  kPagesOutPerSec,
  kDiskReadKbps,
  kDiskWriteKbps,
  kDiskReadIops,
  kDiskWriteIops,
  kDiskUtilPct,
  kNetRxKbps,
  kNetTxKbps,
  kNetRxPktsPerSec,
  kNetTxPktsPerSec,
  kTcpRetransPerSec,
  kProcThreads,
};

inline constexpr int kNumMetrics = 26;

// Number of unordered metric pairs (m, n), m < n: the length of a full
// association matrix / violation tuple.
inline constexpr int kNumMetricPairs = kNumMetrics * (kNumMetrics - 1) / 2;

std::string MetricName(int id);
Result<int> MetricFromName(const std::string& name);

// Maps the unordered pair (a, b), a < b, to its flat index in
// [0, kNumMetricPairs), row-major over the upper triangle.
int PairIndex(int a, int b);
// Inverse of PairIndex.
void PairFromIndex(int index, int* a, int* b);

}  // namespace invarnetx::telemetry

#endif  // INVARNETX_TELEMETRY_METRICS_H_
