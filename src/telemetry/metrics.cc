#include "telemetry/metrics.h"

namespace invarnetx::telemetry {
namespace {

constexpr const char* kNames[kNumMetrics] = {
    "cpu_user_pct",       "cpu_sys_pct",       "cpu_idle_pct",
    "cpu_iowait_pct",     "load_avg_1m",       "ctx_switches_per_sec",
    "interrupts_per_sec", "procs_running",     "mem_used_mb",
    "mem_free_mb",        "mem_cached_mb",     "swap_used_mb",
    "page_faults_per_sec","pages_in_per_sec",  "pages_out_per_sec",
    "disk_read_kbps",     "disk_write_kbps",   "disk_read_iops",
    "disk_write_iops",    "disk_util_pct",     "net_rx_kbps",
    "net_tx_kbps",        "net_rx_pkts_per_sec","net_tx_pkts_per_sec",
    "tcp_retrans_per_sec","proc_threads",
};

}  // namespace

std::string MetricName(int id) {
  if (id < 0 || id >= kNumMetrics) return "invalid_metric";
  return kNames[id];
}

Result<int> MetricFromName(const std::string& name) {
  for (int i = 0; i < kNumMetrics; ++i) {
    if (name == kNames[i]) return i;
  }
  return Status::NotFound("unknown metric: " + name);
}

int PairIndex(int a, int b) {
  // Row-major upper triangle: offset of row a plus column distance.
  // Row a contributes (kNumMetrics - 1 - a) entries.
  int index = 0;
  for (int row = 0; row < a; ++row) index += kNumMetrics - 1 - row;
  return index + (b - a - 1);
}

void PairFromIndex(int index, int* a, int* b) {
  int row = 0;
  int remaining = index;
  while (remaining >= kNumMetrics - 1 - row) {
    remaining -= kNumMetrics - 1 - row;
    ++row;
  }
  *a = row;
  *b = row + 1 + remaining;
}

}  // namespace invarnetx::telemetry
