#include "fingerprint/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace invarnetx::fingerprint {
namespace {

// Mean absolute elementwise distance between equal-length vectors.
double MeanL1(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / a.size();
}

}  // namespace

Status FingerprintIndex::Train(
    const std::vector<telemetry::RunTrace>& normal_runs, size_t node_index) {
  if (normal_runs.size() < 2) {
    return Status::InvalidArgument("FingerprintIndex::Train: need >= 2 runs");
  }
  for (const telemetry::RunTrace& run : normal_runs) {
    if (node_index >= run.nodes.size()) {
      return Status::InvalidArgument(
          "FingerprintIndex::Train: node index out of range");
    }
  }
  cold_threshold_.assign(telemetry::kNumMetrics, 0.0);
  hot_threshold_.assign(telemetry::kNumMetrics, 0.0);
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    std::vector<double> pooled;
    for (const telemetry::RunTrace& run : normal_runs) {
      const std::vector<double>& series =
          run.nodes[node_index].metrics[static_cast<size_t>(m)];
      pooled.insert(pooled.end(), series.begin(), series.end());
    }
    Result<double> cold = Percentile(pooled, options_.cold_quantile);
    Result<double> hot = Percentile(pooled, options_.hot_quantile);
    if (!cold.ok()) return cold.status();
    if (!hot.ok()) return hot.status();
    cold_threshold_[static_cast<size_t>(m)] = cold.value();
    hot_threshold_[static_cast<size_t>(m)] = hot.value();
  }
  // Healthy centroid: mean fingerprint of the training runs.
  healthy_centroid_.assign(2 * telemetry::kNumMetrics, 0.0);
  for (const telemetry::RunTrace& run : normal_runs) {
    Result<std::vector<double>> values = Summarize(run, node_index);
    if (!values.ok()) return values.status();
    for (size_t i = 0; i < healthy_centroid_.size(); ++i) {
      healthy_centroid_[i] += values.value()[i];
    }
  }
  for (double& value : healthy_centroid_) value /= normal_runs.size();
  return Status::Ok();
}

Result<std::vector<double>> FingerprintIndex::Summarize(
    const telemetry::RunTrace& run, size_t node_index) const {
  if (!trained()) {
    return Status::FailedPrecondition("FingerprintIndex: not trained");
  }
  if (node_index >= run.nodes.size()) {
    return Status::InvalidArgument("Summarize: node index out of range");
  }
  std::vector<double> values(2 * telemetry::kNumMetrics, 0.0);
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    const std::vector<double>& series =
        run.nodes[node_index].metrics[static_cast<size_t>(m)];
    if (series.empty()) {
      return Status::InvalidArgument("Summarize: empty metric series");
    }
    int cold = 0, hot = 0;
    for (double v : series) {
      cold += v < cold_threshold_[static_cast<size_t>(m)];
      hot += v > hot_threshold_[static_cast<size_t>(m)];
    }
    values[static_cast<size_t>(2 * m)] =
        static_cast<double>(cold) / series.size();
    values[static_cast<size_t>(2 * m + 1)] =
        static_cast<double>(hot) / series.size();
  }
  return values;
}

Status FingerprintIndex::AddLabeled(const std::string& problem,
                                    const telemetry::RunTrace& run,
                                    size_t node_index) {
  if (problem.empty()) {
    return Status::InvalidArgument("AddLabeled: empty problem name");
  }
  Result<std::vector<double>> values = Summarize(run, node_index);
  if (!values.ok()) return values.status();
  labeled_.push_back(LabeledFingerprint{problem, std::move(values.value())});
  return Status::Ok();
}

Result<bool> FingerprintIndex::IsAnomalous(const telemetry::RunTrace& run,
                                           size_t node_index) const {
  Result<std::vector<double>> values = Summarize(run, node_index);
  if (!values.ok()) return values.status();
  return MeanL1(values.value(), healthy_centroid_) > options_.detect_distance;
}

Result<std::vector<FingerprintMatch>> FingerprintIndex::Classify(
    const telemetry::RunTrace& run, size_t node_index) const {
  if (labeled_.empty()) {
    return Status::FailedPrecondition("Classify: no labeled fingerprints");
  }
  Result<std::vector<double>> values = Summarize(run, node_index);
  if (!values.ok()) return values.status();
  // Best distance per problem.
  std::vector<FingerprintMatch> matches;
  for (const LabeledFingerprint& label : labeled_) {
    const double distance = MeanL1(values.value(), label.values);
    if (distance > options_.max_match_distance) continue;
    bool merged = false;
    for (FingerprintMatch& match : matches) {
      if (match.problem == label.problem) {
        match.distance = std::min(match.distance, distance);
        merged = true;
        break;
      }
    }
    if (!merged) matches.push_back(FingerprintMatch{label.problem, distance});
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const FingerprintMatch& a, const FingerprintMatch& b) {
                     return a.distance < b.distance;
                   });
  return matches;
}

}  // namespace invarnetx::fingerprint
