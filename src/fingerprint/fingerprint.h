#ifndef INVARNETX_FINGERPRINT_FINGERPRINT_H_
#define INVARNETX_FINGERPRINT_FINGERPRINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace invarnetx::fingerprint {

// A fingerprint-based crisis classifier in the style of Bodik et al.,
// "Fingerprinting the datacenter: automated classification of performance
// crises" (EuroSys 2010) - the paper's reference [3] and the classic
// "coarse-granularity" contrast to invariant-based diagnosis.
//
// Each metric's healthy value distribution is summarized by two quantile
// thresholds (cold/hot). A run's fingerprint is, per metric, the fraction
// of ticks spent below the cold threshold and above the hot threshold
// (2 x 26 values in [0, 1]). Crises are classified by nearest labeled
// fingerprint (L1); detection falls out of the distance to the healthy
// centroid.
struct FingerprintOptions {
  double cold_quantile = 25.0;  // percentile of the healthy distribution
  double hot_quantile = 75.0;
  // Mean absolute elementwise distance above which a run is considered
  // anomalous (vs the healthy centroid) / unclassifiable (vs labels).
  double detect_distance = 0.08;
  double max_match_distance = 0.35;
};

// A labeled crisis fingerprint.
struct LabeledFingerprint {
  std::string problem;
  std::vector<double> values;
};

// A classification candidate, nearest first.
struct FingerprintMatch {
  std::string problem;
  double distance = 0.0;
};

class FingerprintIndex {
 public:
  explicit FingerprintIndex(FingerprintOptions options = FingerprintOptions())
      : options_(options) {}

  // Learns the per-metric cold/hot thresholds and the healthy-fingerprint
  // centroid from fault-free runs of one node. Requires >= 2 runs.
  Status Train(const std::vector<telemetry::RunTrace>& normal_runs,
               size_t node_index);

  // The 52-element fingerprint of a run (cold fractions then hot fractions,
  // metric-major). Requires Train.
  Result<std::vector<double>> Summarize(const telemetry::RunTrace& run,
                                        size_t node_index) const;

  // Stores a labeled crisis fingerprint.
  Status AddLabeled(const std::string& problem,
                    const telemetry::RunTrace& run, size_t node_index);

  // True when the run's fingerprint sits far from the healthy centroid.
  Result<bool> IsAnomalous(const telemetry::RunTrace& run,
                           size_t node_index) const;

  // Labeled problems ranked by fingerprint distance (nearest first;
  // entries beyond max_match_distance are omitted).
  Result<std::vector<FingerprintMatch>> Classify(
      const telemetry::RunTrace& run, size_t node_index) const;

  bool trained() const { return !hot_threshold_.empty(); }
  size_t num_labeled() const { return labeled_.size(); }

 private:
  FingerprintOptions options_;
  std::vector<double> cold_threshold_;  // per metric
  std::vector<double> hot_threshold_;
  std::vector<double> healthy_centroid_;
  std::vector<LabeledFingerprint> labeled_;
};

}  // namespace invarnetx::fingerprint

#endif  // INVARNETX_FINGERPRINT_FINGERPRINT_H_
