#ifndef INVARNETX_NET_WIRE_H_
#define INVARNETX_NET_WIRE_H_

#include <cstddef>
#include <string>

// Blocking socket I/O helpers shared by the HTTP endpoint and the ingest
// protocol: full-buffer writes and exact-length reads that retry on EINTR
// and partial transfers, honoring whatever SO_RCVTIMEO/SO_SNDTIMEO the
// accept path installed.
namespace invarnetx::net {

// Writes the whole buffer; false on error (the fd's send timeout counts).
bool WriteAll(int fd, const void* data, size_t len);
bool WriteAll(int fd, const std::string& data);

// Reads exactly `len` bytes; false on EOF, error, or timeout.
bool ReadFull(int fd, void* data, size_t len);

// Buffered newline-delimited reader for the text dialects (ingest text
// protocol, protocol sniffing). Strips the trailing "\n" (and "\r" before
// it); a line longer than max_line_bytes is an error, not a partial line.
class LineReader {
 public:
  explicit LineReader(int fd, size_t max_line_bytes = 1 << 20)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  // Hands bytes already read off the socket (protocol sniffing) back to the
  // reader; they are consumed before any further recv.
  void Preload(const std::string& bytes) { buffer_.insert(0, bytes); }

  // Reads one line; false on EOF, error, timeout, or an overlong line.
  bool ReadLine(std::string* line);

 private:
  int fd_;
  size_t max_line_bytes_;
  std::string buffer_;
};

}  // namespace invarnetx::net

#endif  // INVARNETX_NET_WIRE_H_
