#ifndef INVARNETX_NET_INGEST_SERVER_H_
#define INVARNETX_NET_INGEST_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/socket_server.h"
#include "net/wire.h"
#include "serve/fleet.h"
#include "serve/replay.h"

namespace invarnetx::net {

struct IngestServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0: ephemeral; port() reports the bound one
  // Idle producers are cut after this; 0 disables the socket timeouts.
  int io_timeout_seconds = 30;
  // Frames whose declared payload exceeds this close the connection before
  // any allocation. A TICK of N samples needs 4 + N * 220 bytes, so huge
  // fleets raise this (bench/fleet_ingest does).
  size_t max_frame_bytes = kDefaultMaxFramePayload;
  // SocketServer accept workers. Extra workers only matter for turning
  // away concurrent producers quickly: one session runs at a time.
  int num_workers = 2;
};

// What one ingest session did, reported by WaitForSession once the session
// ends with BYE.
struct SessionStats {
  int runs = 0;               // ENDJOBs completed
  uint64_t total_alarms = 0;  // latched alarms summed across those runs
  bool completed = false;     // false: server stopped with no clean session
};

// The TCP ingest front end: external producers stream ticks into a
// MonitorFleet over a socket instead of calling IngestTick in-process.
// Speaks the two DESIGN.md section 14 dialects - length-prefixed binary
// frames after the "INVX" magic, newline text otherwise - over the same
// session state machine:
//
//   HELLO   negotiate operation contexts -> dense MonitorHandles (arms a
//           monitor per context; unknown workloads or untrained contexts
//           are an error)
//   JOB     re-arm every negotiated monitor: one job (run) starts
//   TICK    one batched ingest tick of handle-stamped samples; the reply
//           carries accepted/rejected counts, and any rejection (the
//           per-shard ring quota of DESIGN.md section 13) arrives as an
//           explicit BACKPRESSURE frame
//   ENDJOB  wait for the job's asynchronous diagnoses and render its
//           verdicts ("== run N ==" + per-node lines) to the sink, via the
//           same serve::RenderVerdicts as --replay - which is why socket-fed
//           verdicts diff byte-for-byte against a local replay
//   BYE     clean end of session; completes WaitForSession
//
// Parse errors and protocol violations are strict: one ERR reply, then the
// connection closes. A session that dies without BYE (disconnect, garbage,
// oversized frame) releases the fleet for the next connection but never
// completes WaitForSession - and contributes nothing to the verdict sink:
// each session renders into a private buffer that is flushed to the sink
// only at BYE, so partial runs never pollute the report. One session runs
// at a time; a second concurrent producer is turned away with ERR busy,
// and once any session has completed cleanly the server serves no further
// sessions until the next Start() (a late producer would otherwise append
// extra run blocks to a report already being assembled). The busy flag
// serializes every fleet call, honoring MonitorFleet's
// single-ingestion-thread contract even though successive sessions may
// land on different worker threads.
//
// Self-observability (obs::MetricsRegistry::Shared()):
//   counter net.ingest_sessions   accepted session connections
//   counter net.ingest_ticks      TICK frames applied to the fleet
//   counter net.ingest_samples    samples accepted by the fleet
//   counter net.ingest_rejects    samples rejected by ring backpressure
//   counter net.ingest_errors     sessions ended by ERR
class IngestServer {
 public:
  // `fleet` must outlive the server; `verdicts` (may be null) receives the
  // completed session's rendered per-run verdict blocks, flushed atomically
  // under the session lock when the session ends with BYE.
  IngestServer(serve::MonitorFleet* fleet, std::ostream* verdicts,
               IngestServerOptions options = {});
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  Status Start();
  void Stop();

  bool running() const { return server_.running(); }
  int port() const { return server_.port(); }

  // Blocks until a session completes cleanly (BYE) or the server stops;
  // stats.completed distinguishes the two.
  SessionStats WaitForSession();

 private:
  // One connection's session state, shared by both dialects. Verdicts
  // render into the private buffer; OnBye flushes it to the shared sink so
  // sessions that die without BYE leave no partial blocks behind.
  struct Session {
    std::vector<serve::ArmedContext> armed;
    int run = 0;
    uint64_t total_alarms = 0;
    std::ostringstream verdicts;
  };

  // Registers the connection for shutdown teardown, then runs RunSession.
  void ServeConnection(int fd);
  // Dialect sniff + busy/done gate + the session loop.
  void RunSession(int fd);
  void RunBinarySession(int fd, Session* session);
  void RunTextSession(int fd, LineReader* reader, Session* session);

  // Dialect-agnostic command handlers. Errors mean "send ERR, close".
  Result<std::vector<serve::MonitorHandle>> OnHello(
      Session* session, const std::vector<HelloEntry>& entries);
  Status OnJob(Session* session);
  Result<TickOutcome> OnTick(Session* session,
                             const std::vector<serve::TickSample>& samples);
  Result<uint32_t> OnEndJob(Session* session);
  void OnBye(Session* session);

  serve::MonitorFleet* fleet_;
  std::ostream* verdicts_;
  IngestServerOptions options_;
  SocketServer server_;

  // Serializes sessions and every fleet call; completed_ / done_ hand the
  // finished session's stats to WaitForSession.
  std::mutex mu_;
  std::condition_variable done_cv_;
  bool busy_ = false;
  bool stopping_ = false;
  bool done_ = false;
  // Latched (until the next Start) once any session completes with BYE;
  // later connections are refused so a straggler cannot append run blocks
  // to a report the embedder is already assembling.
  bool session_done_ = false;
  // Every connection registers here before its first read; Stop() shuts
  // them all down so even a producer idle in the dialect sniff cannot
  // stall shutdown for a full io timeout.
  std::vector<int> live_fds_;
  SessionStats completed_;
};

}  // namespace invarnetx::net

#endif  // INVARNETX_NET_INGEST_SERVER_H_
