#ifndef INVARNETX_NET_SOCKET_SERVER_H_
#define INVARNETX_NET_SOCKET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

// Reusable blocking-socket server plumbing: one listener, one acceptor
// thread, a small worker pool draining accepted connections into a
// per-connection handler. Extracted from obs::HttpServer so the
// observability endpoint and the ingest front end share one hardened
// accept path instead of two divergent copies. Like invarnetx_obs, this
// layer is deliberately dependency-free (header-only parts of
// common/status.h plus Threads) so anything above it - including
// invarnetx_obs itself - can link it without a cycle; diagnostics are
// routed through an optional callback rather than the obs logger.
namespace invarnetx::net {

class SocketServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 picks an ephemeral port; see port() after Start
    int num_workers = 2;
    int backlog = 16;
    // SO_RCVTIMEO / SO_SNDTIMEO applied to every accepted connection so a
    // stuck peer cannot pin a worker forever. <= 0 disables the timeouts.
    int io_timeout_seconds = 5;
    // Diagnostics hook (accept failures, backoffs). Called from the
    // acceptor thread; must be thread-safe. Null = silent.
    std::function<void(const std::string& event, const std::string& detail)>
        on_error;
    // Test-only fault injection: when set, called instead of ::accept(2).
    // Lets tests hand the acceptor transient errnos (ECONNABORTED, EMFILE)
    // without exhausting real kernel resources.
    std::function<int(int listen_fd)> accept_override;
  };

  // Serves one accepted connection; the server closes the fd afterwards.
  // Runs on a worker thread and must be thread-safe against other workers.
  using ConnectionHandler = std::function<void(int fd)>;

  SocketServer() = default;
  explicit SocketServer(Options options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Sets the per-connection handler. Must be called before Start().
  void SetHandler(ConnectionHandler handler);

  // Replaces the options. Must be called before Start() (embedders that
  // default-construct the server as a member configure it here).
  void SetOptions(Options options);

  // Binds, listens, and spawns the acceptor + workers. Fails (with the
  // errno text) if the port is taken, the address does not parse, or no
  // handler is set.
  Status Start();

  // Idempotent; joins all threads and closes every socket.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  // The bound port (resolves ephemeral requests); 0 before Start.
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  // Sleeps briefly after a transient accept failure, waking early when the
  // server is stopping. Returns false when shutdown began mid-wait.
  bool BackoffOrStop();

  Options options_;
  ConnectionHandler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // Written by Stop() while the acceptor reads it after a failed accept();
  // atomic so that unsynchronized hand-off is well-defined.
  std::atomic<bool> running_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  bool shutting_down_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace invarnetx::net

#endif  // INVARNETX_NET_SOCKET_SERVER_H_
