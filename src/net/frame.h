#ifndef INVARNETX_NET_FRAME_H_
#define INVARNETX_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/fleet.h"

// Wire codec of the ingest protocol (DESIGN.md section 14). A connection
// speaks one of two dialects, chosen by its first bytes:
//
//   binary  - the 4-byte magic "INVX", then length-prefixed frames:
//             uint32 payload length (little-endian, includes the type
//             byte), uint8 frame type, payload. Doubles travel as raw
//             IEEE-754 little-endian bytes, so a TICK sample is exactly
//             4 + 8 + 26*8 = 220 bytes and round trips bit-identically -
//             the determinism argument for socket vs. replay ingest.
//   text    - newline-terminated ASCII commands (HELLO / JOB / TICK /
//             ENDJOB / BYE), `nc`-friendly; doubles printed with %.17g so
//             strtod recovers the exact bits.
//
// Both dialects drive the same session state machine; parse errors are
// strict (ERR reply, connection closed) in both.
namespace invarnetx::net {

inline constexpr char kBinaryMagic[4] = {'I', 'N', 'V', 'X'};
inline constexpr uint16_t kProtocolVersion = 1;
// Frames whose declared payload exceeds this are a parse error before any
// allocation happens (IngestServerOptions can raise it for huge fleets).
inline constexpr size_t kDefaultMaxFramePayload = 8u << 20;
// One TICK sample on the binary wire: int32 handle, double cpi, 26 doubles.
inline constexpr size_t kBinarySampleBytes =
    4 + 8 + static_cast<size_t>(telemetry::kNumMetrics) * 8;

enum class FrameType : uint8_t {
  // Client -> server.
  kHello = 0x01,   // version + operation contexts to negotiate handles for
  kJob = 0x02,     // (re-)arm every negotiated monitor: one job starts
  kTick = 0x03,    // one batched ingest tick of handle-stamped samples
  kEndJob = 0x04,  // job over: wait for diagnoses, render verdicts
  kBye = 0x05,     // clean end of session
  // Server -> client.
  kErr = 0x7F,           // strict parse / protocol error; connection closes
  kHelloAck = 0x81,      // dense MonitorHandles, one per HELLO context
  kJobAck = 0x82,
  kTickAck = 0x83,       // accepted/rejected counts, rejected == 0
  kEndJobAck = 0x84,     // latched alarm count for the finished job
  kBackpressure = 0x85,  // like kTickAck but rejected > 0: ring overflow
  kByeAck = 0x86,
};

struct Frame {
  FrameType type = FrameType::kErr;
  std::string payload;
};

// One negotiated monitor stream: the operation context whose handle the
// producer wants.
struct HelloEntry {
  std::string workload;  // workload::WorkloadName spelling
  std::string node_ip;
};

// Outcome of one TICK: how many samples the fleet admitted and how many
// the per-shard ring quota rejected (DESIGN.md section 13 backpressure).
struct TickOutcome {
  uint32_t accepted = 0;
  uint32_t rejected = 0;
};

// --- Binary encoding (every Encode* returns a full frame, length prefix
// included, ready for one WriteAll). ---

std::string EncodeFrame(FrameType type, std::string_view payload);
// Fails if any workload / node_ip exceeds the 255-byte str8 limit (a masked
// length would silently desync the frame).
Result<std::string> EncodeHello(const std::vector<HelloEntry>& entries);
std::string EncodeHelloAck(const std::vector<serve::MonitorHandle>& handles);
std::string EncodeTick(const std::vector<serve::TickSample>& samples);
// kTickAck when rejected == 0, kBackpressure otherwise.
std::string EncodeTickReply(const TickOutcome& outcome);
std::string EncodeEndJobAck(uint32_t alarms_active);
std::string EncodeEmpty(FrameType type);
std::string EncodeErr(std::string_view message);

// --- Binary decoding. Strict: trailing bytes, truncated fields, and
// out-of-range counts are errors, never best-effort parses. ---

Result<std::vector<HelloEntry>> DecodeHello(std::string_view payload);
Result<std::vector<serve::MonitorHandle>> DecodeHelloAck(
    std::string_view payload);
// Decoded samples carry only the handle and the doubles; the context field
// stays empty (the handle is the identity on the wire).
Result<std::vector<serve::TickSample>> DecodeTick(std::string_view payload);
Result<TickOutcome> DecodeTickReply(std::string_view payload);
Result<uint32_t> DecodeEndJobAck(std::string_view payload);

// Reads one length-prefixed frame off a connected socket. Enforces
// max_payload before allocating; EOF or a timeout mid-frame is an IoError.
Result<Frame> ReadFrame(int fd, size_t max_payload);
// Writes one already-encoded frame (or any buffer) to the socket.
Status WriteFrame(int fd, const std::string& encoded);

// --- Text dialect helpers (shared by server, client, and tests). ---

// "H CPI M0 .. M25" with %.17g doubles; the TICK body line for one sample.
std::string FormatSampleLine(const serve::TickSample& sample);
// Parses one TICK body line; strict field count and numeric syntax.
Result<serve::TickSample> ParseSampleLine(std::string_view line);

}  // namespace invarnetx::net

#endif  // INVARNETX_NET_FRAME_H_
