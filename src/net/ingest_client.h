#ifndef INVARNETX_NET_INGEST_CLIENT_H_
#define INVARNETX_NET_INGEST_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/scenario.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/wire.h"
#include "serve/fleet.h"

namespace invarnetx::net {

struct IngestClientOptions {
  std::string address = "127.0.0.1";
  int port = 0;
  // Speak the newline text dialect instead of length-prefixed binary
  // frames. Binary is the production path; text exists for `nc` driving
  // and protocol debugging, and the client keeps both honest in tests.
  bool text = false;
  int io_timeout_seconds = 30;
  size_t max_frame_bytes = kDefaultMaxFramePayload;
};

// Producer side of the ingest protocol (DESIGN.md section 14): connects,
// negotiates handles with HELLO, then drives JOB / TICK / ENDJOB / BYE.
// Every call is a blocking request/response round trip; any ERR reply or
// transport failure is returned as a Status and poisons the connection
// (the server has already closed it).
class IngestClient {
 public:
  explicit IngestClient(IngestClientOptions options);
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Negotiates one monitor per entry; the returned handles are parallel to
  // `entries` and must be stamped into every Tick sample.
  Result<std::vector<serve::MonitorHandle>> Hello(
      const std::vector<HelloEntry>& entries);
  // (Re-)arms every negotiated monitor: one job starts.
  Status StartJob();
  // Streams one batched tick; the outcome carries the fleet's
  // accepted/rejected counts (rejected > 0 = explicit backpressure).
  Result<TickOutcome> Tick(const std::vector<serve::TickSample>& samples);
  // Ends the job; returns the fleet's latched alarm count for it.
  Result<uint32_t> EndJob();
  // Clean end of session.
  Status Bye();

 private:
  Status WriteCommand(const std::string& bytes);
  Result<std::string> ReadReplyLine();

  IngestClientOptions options_;
  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;  // text dialect only
};

// What streaming a scenario through a client did.
struct StreamStats {
  int runs = 0;
  uint64_t ticks = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;  // backpressure drops reported by the server
  uint64_t alarms = 0;    // summed ENDJOB alarm counts
};

// Streams every test run of a scenario through a connected client exactly
// the way ReplayScenario ingests it locally: HELLO in slave node order,
// then per run JOB, one TICK per cluster tick (samples in node order),
// ENDJOB; finally BYE. Byte-identical verdicts on the server side follow
// from this ordering plus the bit-exact sample codec. `max_runs` caps the
// test runs (0 = all).
Result<StreamStats> StreamScenario(IngestClient* client,
                                   const campaign::Scenario& scenario,
                                   int max_runs);

}  // namespace invarnetx::net

#endif  // INVARNETX_NET_INGEST_CLIENT_H_
