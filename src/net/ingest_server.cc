#include "net/ingest_server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "workload/spec.h"

namespace invarnetx::net {
namespace {

// Splits a text-dialect command line on single spaces.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    if (end > start) tokens.emplace_back(line, start, end - start);
    start = end + 1;
  }
  return tokens;
}

// Parses "workload@ip" (OperationContext::ToString spelling).
Result<HelloEntry> ParseContextToken(const std::string& token) {
  const size_t at = token.find('@');
  if (at == std::string::npos || at == 0 || at + 1 == token.size()) {
    return Status::InvalidArgument("bad context '" + token +
                                   "' (want workload@ip)");
  }
  return HelloEntry{token.substr(0, at), token.substr(at + 1)};
}

bool IsDisconnect(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

}  // namespace

IngestServer::IngestServer(serve::MonitorFleet* fleet, std::ostream* verdicts,
                           IngestServerOptions options)
    : fleet_(fleet), verdicts_(verdicts), options_(std::move(options)) {}

IngestServer::~IngestServer() { Stop(); }

Status IngestServer::Start() {
  SocketServer::Options server_options;
  server_options.bind_address = options_.bind_address;
  server_options.port = options_.port;
  server_options.num_workers = options_.num_workers;
  server_options.io_timeout_seconds = options_.io_timeout_seconds;
  server_.SetOptions(std::move(server_options));
  server_.SetHandler([this](int fd) { ServeConnection(fd); });
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
    done_ = false;
    session_done_ = false;
  }
  return server_.Start();
}

void IngestServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Unblock every connection stuck in recv - including one still in the
    // dialect sniff - so SocketServer::Stop can join its workers without
    // waiting out the io timeout.
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  done_cv_.notify_all();
  server_.Stop();
}

SessionStats IngestServer::WaitForSession() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return done_ || stopping_; });
  if (!done_) return SessionStats{};  // stopped with no clean session
  done_ = false;
  return std::exchange(completed_, SessionStats{});
}

void IngestServer::ServeConnection(int fd) {
  // Register before the first read: Stop() shuts down every registered fd,
  // so even a producer that connects and then sends nothing cannot stall
  // shutdown until its io timeout expires.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    live_fds_.push_back(fd);
  }
  RunSession(fd);
  std::lock_guard<std::mutex> lock(mu_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                  live_fds_.end());
}

void IngestServer::RunSession(int fd) {
  // Dialect sniff: binary producers lead with the 4-byte magic; every text
  // session leads with "HELLO ...", so 4 bytes are always forthcoming.
  char magic[4];
  if (!ReadFull(fd, magic, sizeof(magic))) return;
  const bool binary = std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0;
  LineReader reader(fd);
  if (!binary) reader.Preload(std::string(magic, sizeof(magic)));

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    if (busy_ || session_done_) {
      // One producer at a time: the fleet has a single-ingestion-thread
      // contract, and interleaving two sessions' jobs would make verdicts
      // depend on connection timing. Once a session has completed cleanly
      // the server is done until the next Start(): a late producer must
      // not append run blocks to a report already being assembled.
      const std::string err =
          busy_ ? "busy: another ingest session is active"
                : "done: an ingest session already completed";
      obs::MetricsRegistry::Shared().GetCounter("net.ingest_errors")
          .Increment();
      if (binary) {
        WriteAll(fd, EncodeErr(err));
      } else {
        WriteAll(fd, "ERR " + err + "\n");
      }
      return;
    }
    busy_ = true;
  }
  obs::MetricsRegistry::Shared().GetCounter("net.ingest_sessions").Increment();

  Session session;
  if (binary) {
    RunBinarySession(fd, &session);
  } else {
    RunTextSession(fd, &reader, &session);
  }

  std::lock_guard<std::mutex> lock(mu_);
  busy_ = false;
}

void IngestServer::RunBinarySession(int fd, Session* session) {
  const auto fail = [&](const std::string& message) {
    obs::MetricsRegistry::Shared().GetCounter("net.ingest_errors").Increment();
    WriteAll(fd, EncodeErr(message));
  };
  for (;;) {
    Result<Frame> frame = ReadFrame(fd, options_.max_frame_bytes);
    if (!frame.ok()) {
      // Mid-frame disconnect gets no reply (nobody is listening); a parse
      // error (oversized / zero-length frame) gets a strict ERR first.
      if (!IsDisconnect(frame.status())) fail(frame.status().message());
      return;
    }
    switch (frame.value().type) {
      case FrameType::kHello: {
        Result<std::vector<HelloEntry>> entries =
            DecodeHello(frame.value().payload);
        if (!entries.ok()) return fail(entries.status().message());
        Result<std::vector<serve::MonitorHandle>> handles =
            OnHello(session, entries.value());
        if (!handles.ok()) return fail(handles.status().message());
        if (!WriteAll(fd, EncodeHelloAck(handles.value()))) return;
        break;
      }
      case FrameType::kJob: {
        if (!frame.value().payload.empty()) {
          return fail("JOB frame carries no payload");
        }
        const Status status = OnJob(session);
        if (!status.ok()) return fail(status.message());
        if (!WriteAll(fd, EncodeEmpty(FrameType::kJobAck))) return;
        break;
      }
      case FrameType::kTick: {
        Result<std::vector<serve::TickSample>> samples =
            DecodeTick(frame.value().payload);
        if (!samples.ok()) return fail(samples.status().message());
        Result<TickOutcome> outcome = OnTick(session, samples.value());
        if (!outcome.ok()) return fail(outcome.status().message());
        if (!WriteAll(fd, EncodeTickReply(outcome.value()))) return;
        break;
      }
      case FrameType::kEndJob: {
        if (!frame.value().payload.empty()) {
          return fail("ENDJOB frame carries no payload");
        }
        Result<uint32_t> alarms = OnEndJob(session);
        if (!alarms.ok()) return fail(alarms.status().message());
        if (!WriteAll(fd, EncodeEndJobAck(alarms.value()))) return;
        break;
      }
      case FrameType::kBye: {
        // Ack before completing: OnBye wakes WaitForSession, whose caller
        // may Stop() the server - and Stop shuts the socket down, which
        // would race the ack out from under a well-behaved client.
        WriteAll(fd, EncodeEmpty(FrameType::kByeAck));
        OnBye(session);
        return;
      }
      default:
        return fail("unexpected frame type " +
                    std::to_string(static_cast<int>(frame.value().type)));
    }
  }
}

void IngestServer::RunTextSession(int fd, LineReader* reader,
                                  Session* session) {
  const auto fail = [&](const std::string& message) {
    obs::MetricsRegistry::Shared().GetCounter("net.ingest_errors").Increment();
    WriteAll(fd, "ERR " + message + "\n");
  };
  std::string line;
  while (reader->ReadLine(&line)) {
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& command = tokens[0];
    if (command == "HELLO") {
      if (tokens.size() < 3 || tokens[1] != "v1") {
        return fail("want: HELLO v1 workload@ip ...");
      }
      std::vector<HelloEntry> entries;
      for (size_t i = 2; i < tokens.size(); ++i) {
        Result<HelloEntry> entry = ParseContextToken(tokens[i]);
        if (!entry.ok()) return fail(entry.status().message());
        entries.push_back(std::move(entry.value()));
      }
      Result<std::vector<serve::MonitorHandle>> handles =
          OnHello(session, entries);
      if (!handles.ok()) return fail(handles.status().message());
      std::string reply = "OK";
      for (const serve::MonitorHandle handle : handles.value()) {
        reply += " " + std::to_string(handle);
      }
      if (!WriteAll(fd, reply + "\n")) return;
    } else if (command == "JOB") {
      if (tokens.size() != 1) return fail("JOB takes no arguments");
      const Status status = OnJob(session);
      if (!status.ok()) return fail(status.message());
      if (!WriteAll(fd, std::string("OK\n"))) return;
    } else if (command == "TICK") {
      if (tokens.size() != 2) return fail("want: TICK <count>");
      char* end = nullptr;
      const long count = std::strtol(tokens[1].c_str(), &end, 10);
      // Both dialects share one resource bound: the text dialect buffers at
      // most as many samples as the largest legal binary TICK frame carries
      // (max_frame_bytes), instead of a separate, larger cap.
      const long max_samples =
          static_cast<long>(options_.max_frame_bytes / kBinarySampleBytes);
      if (*end != '\0' || count < 0 || count > max_samples) {
        return fail("bad TICK count '" + tokens[1] + "' (max " +
                    std::to_string(max_samples) + ")");
      }
      std::vector<serve::TickSample> samples;
      samples.reserve(static_cast<size_t>(count));
      for (long i = 0; i < count; ++i) {
        std::string sample_line;
        if (!reader->ReadLine(&sample_line)) return;  // disconnect mid-tick
        Result<serve::TickSample> sample = ParseSampleLine(sample_line);
        if (!sample.ok()) return fail(sample.status().message());
        samples.push_back(std::move(sample.value()));
      }
      Result<TickOutcome> outcome = OnTick(session, samples);
      if (!outcome.ok()) return fail(outcome.status().message());
      const std::string verb =
          outcome.value().rejected == 0 ? "OK" : "BACKPRESSURE";
      if (!WriteAll(fd, verb + " " + std::to_string(outcome.value().accepted) +
                            " " + std::to_string(outcome.value().rejected) +
                            "\n")) {
        return;
      }
    } else if (command == "ENDJOB") {
      if (tokens.size() != 1) return fail("ENDJOB takes no arguments");
      Result<uint32_t> alarms = OnEndJob(session);
      if (!alarms.ok()) return fail(alarms.status().message());
      if (!WriteAll(fd, "OK " + std::to_string(alarms.value()) + "\n")) return;
    } else if (command == "BYE") {
      // Ack first; see the binary BYE handler for the Stop() race.
      WriteAll(fd, std::string("OK\n"));
      OnBye(session);
      return;
    } else {
      return fail("unknown command '" + command + "'");
    }
  }
}

Result<std::vector<serve::MonitorHandle>> IngestServer::OnHello(
    Session* session, const std::vector<HelloEntry>& entries) {
  if (!session->armed.empty()) {
    return Status::FailedPrecondition("duplicate HELLO");
  }
  std::vector<serve::MonitorHandle> handles;
  handles.reserve(entries.size());
  std::vector<serve::ArmedContext> armed;
  armed.reserve(entries.size());
  for (const HelloEntry& entry : entries) {
    Result<workload::WorkloadType> type =
        workload::WorkloadFromName(entry.workload);
    if (!type.ok()) {
      return Status::InvalidArgument("unknown workload '" + entry.workload +
                                     "' in HELLO");
    }
    const core::OperationContext context{type.value(), entry.node_ip};
    Result<serve::MonitorHandle> handle = fleet_->StartJob(context);
    if (!handle.ok()) {
      return Status::InvalidArgument("unknown context '" + context.ToString() +
                                     "' in HELLO: " +
                                     handle.status().message());
    }
    handles.push_back(handle.value());
    armed.push_back(serve::ArmedContext{context, handle.value()});
  }
  session->armed = std::move(armed);
  return handles;
}

Status IngestServer::OnJob(Session* session) {
  if (session->armed.empty()) {
    return Status::FailedPrecondition("JOB before HELLO");
  }
  for (serve::ArmedContext& armed : session->armed) {
    Result<serve::MonitorHandle> handle = fleet_->StartJob(armed.context);
    if (!handle.ok()) return handle.status();
    armed.handle = handle.value();  // stable, but never trust stale state
  }
  return Status::Ok();
}

Result<TickOutcome> IngestServer::OnTick(
    Session* session, const std::vector<serve::TickSample>& samples) {
  if (session->armed.empty()) {
    return Status::FailedPrecondition("TICK before HELLO");
  }
  // IngestTick validates strictly up front (handle range, active job,
  // duplicate monitor in one tick) and leaves the fleet untouched on error,
  // so a strict ERR-and-close here never corrupts monitor state.
  Result<serve::TickSummary> summary = fleet_->IngestTick(samples);
  if (!summary.ok()) return summary.status();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetCounter("net.ingest_ticks").Increment();
  registry.GetCounter("net.ingest_samples")
      .Increment(static_cast<uint64_t>(summary.value().samples));
  if (summary.value().rejected > 0) {
    registry.GetCounter("net.ingest_rejects")
        .Increment(static_cast<uint64_t>(summary.value().rejected));
  }
  return TickOutcome{static_cast<uint32_t>(summary.value().samples),
                     static_cast<uint32_t>(summary.value().rejected)};
}

Result<uint32_t> IngestServer::OnEndJob(Session* session) {
  if (session->armed.empty()) {
    return Status::FailedPrecondition("ENDJOB before HELLO");
  }
  fleet_->WaitForDiagnoses();
  const std::vector<serve::FleetDiagnosis> diagnoses = fleet_->TakeDiagnoses();
  if (verdicts_ != nullptr) {
    // Render into the session's private buffer; OnBye flushes it to the
    // shared sink, so a session that dies before BYE leaves no partial
    // run blocks in the report.
    session->verdicts << "== run " << session->run << " ==\n";
    serve::RenderVerdicts(*fleet_, session->armed, diagnoses,
                          &session->verdicts);
  }
  ++session->run;
  const uint32_t alarms = static_cast<uint32_t>(fleet_->alarms_active());
  session->total_alarms += alarms;
  return alarms;
}

void IngestServer::OnBye(Session* session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (verdicts_ != nullptr) *verdicts_ << session->verdicts.str();
  completed_ = SessionStats{session->run, session->total_alarms, true};
  done_ = true;
  session_done_ = true;
  done_cv_.notify_all();
}

}  // namespace invarnetx::net
