#include "net/ingest_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "campaign/runner.h"
#include "workload/spec.h"

namespace invarnetx::net {
namespace {

// Splits a text reply line on single spaces.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    if (end > start) tokens.emplace_back(line, start, end - start);
    start = end + 1;
  }
  return tokens;
}

Result<long> ParseLong(const std::string& token) {
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + token + "' in reply");
  }
  return value;
}

Status ErrFromReply(const std::vector<std::string>& tokens,
                    const std::string& line) {
  if (!tokens.empty() && tokens[0] == "ERR") {
    return Status::InvalidArgument("server: " + line.substr(4));
  }
  return Status::InvalidArgument("unexpected reply '" + line + "'");
}

}  // namespace

IngestClient::IngestClient(IngestClientOptions options)
    : options_(std::move(options)) {}

IngestClient::~IngestClient() { Close(); }

Status IngestClient::Connect() {
  if (connected()) return Status::FailedPrecondition("already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (options_.io_timeout_seconds > 0) {
    timeval timeout{};
    timeout.tv_sec = options_.io_timeout_seconds;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.address.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address: " + options_.address);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    Close();
    return Status::IoError("connect " + options_.address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  // Request/response round trips: without NODELAY every small frame waits
  // out Nagle against the peer's delayed ACK.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.text) {
    reader_ = std::make_unique<LineReader>(fd_);
  } else if (!WriteAll(fd_, kBinaryMagic, sizeof(kBinaryMagic))) {
    Close();
    return Status::IoError("failed to send protocol magic");
  }
  return Status::Ok();
}

void IngestClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

Status IngestClient::WriteCommand(const std::string& bytes) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  if (!WriteAll(fd_, bytes)) {
    Close();
    return Status::IoError("connection lost writing command");
  }
  return Status::Ok();
}

Result<std::string> IngestClient::ReadReplyLine() {
  std::string line;
  if (!reader_->ReadLine(&line)) {
    Close();
    return Status::IoError("connection lost reading reply");
  }
  return line;
}

Result<std::vector<serve::MonitorHandle>> IngestClient::Hello(
    const std::vector<HelloEntry>& entries) {
  if (options_.text) {
    std::string command = "HELLO v1";
    for (const HelloEntry& entry : entries) {
      command += " " + entry.workload + "@" + entry.node_ip;
    }
    INVARNETX_RETURN_IF_ERROR(WriteCommand(command + "\n"));
    Result<std::string> line = ReadReplyLine();
    if (!line.ok()) return line.status();
    const std::vector<std::string> tokens = Tokenize(line.value());
    if (tokens.empty() || tokens[0] != "OK") {
      return ErrFromReply(tokens, line.value());
    }
    if (tokens.size() != entries.size() + 1) {
      return Status::InvalidArgument("HELLO reply handle count mismatch");
    }
    std::vector<serve::MonitorHandle> handles;
    for (size_t i = 1; i < tokens.size(); ++i) {
      Result<long> handle = ParseLong(tokens[i]);
      if (!handle.ok()) return handle.status();
      handles.push_back(static_cast<serve::MonitorHandle>(handle.value()));
    }
    return handles;
  }
  Result<std::string> hello = EncodeHello(entries);
  if (!hello.ok()) return hello.status();
  INVARNETX_RETURN_IF_ERROR(WriteCommand(hello.value()));
  Result<Frame> reply = ReadFrame(fd_, options_.max_frame_bytes);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply.value().type == FrameType::kErr) {
    return Status::InvalidArgument("server: " + reply.value().payload);
  }
  if (reply.value().type != FrameType::kHelloAck) {
    return Status::InvalidArgument("unexpected reply to HELLO");
  }
  Result<std::vector<serve::MonitorHandle>> handles =
      DecodeHelloAck(reply.value().payload);
  if (!handles.ok()) return handles.status();
  if (handles.value().size() != entries.size()) {
    return Status::InvalidArgument("HELLO-ACK handle count mismatch");
  }
  return handles;
}

Status IngestClient::StartJob() {
  if (options_.text) {
    INVARNETX_RETURN_IF_ERROR(WriteCommand("JOB\n"));
    Result<std::string> line = ReadReplyLine();
    if (!line.ok()) return line.status();
    if (line.value() != "OK") {
      return ErrFromReply(Tokenize(line.value()), line.value());
    }
    return Status::Ok();
  }
  INVARNETX_RETURN_IF_ERROR(WriteCommand(EncodeEmpty(FrameType::kJob)));
  Result<Frame> reply = ReadFrame(fd_, options_.max_frame_bytes);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply.value().type == FrameType::kErr) {
    return Status::InvalidArgument("server: " + reply.value().payload);
  }
  if (reply.value().type != FrameType::kJobAck) {
    return Status::InvalidArgument("unexpected reply to JOB");
  }
  return Status::Ok();
}

Result<TickOutcome> IngestClient::Tick(
    const std::vector<serve::TickSample>& samples) {
  if (options_.text) {
    std::string command = "TICK " + std::to_string(samples.size()) + "\n";
    for (const serve::TickSample& sample : samples) {
      command += FormatSampleLine(sample) + "\n";
    }
    INVARNETX_RETURN_IF_ERROR(WriteCommand(command));
    Result<std::string> line = ReadReplyLine();
    if (!line.ok()) return line.status();
    const std::vector<std::string> tokens = Tokenize(line.value());
    if (tokens.size() != 3 ||
        (tokens[0] != "OK" && tokens[0] != "BACKPRESSURE")) {
      return ErrFromReply(tokens, line.value());
    }
    Result<long> accepted = ParseLong(tokens[1]);
    Result<long> rejected = ParseLong(tokens[2]);
    if (!accepted.ok()) return accepted.status();
    if (!rejected.ok()) return rejected.status();
    return TickOutcome{static_cast<uint32_t>(accepted.value()),
                       static_cast<uint32_t>(rejected.value())};
  }
  INVARNETX_RETURN_IF_ERROR(WriteCommand(EncodeTick(samples)));
  Result<Frame> reply = ReadFrame(fd_, options_.max_frame_bytes);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply.value().type == FrameType::kErr) {
    return Status::InvalidArgument("server: " + reply.value().payload);
  }
  if (reply.value().type != FrameType::kTickAck &&
      reply.value().type != FrameType::kBackpressure) {
    return Status::InvalidArgument("unexpected reply to TICK");
  }
  return DecodeTickReply(reply.value().payload);
}

Result<uint32_t> IngestClient::EndJob() {
  if (options_.text) {
    INVARNETX_RETURN_IF_ERROR(WriteCommand("ENDJOB\n"));
    Result<std::string> line = ReadReplyLine();
    if (!line.ok()) return line.status();
    const std::vector<std::string> tokens = Tokenize(line.value());
    if (tokens.size() != 2 || tokens[0] != "OK") {
      return ErrFromReply(tokens, line.value());
    }
    Result<long> alarms = ParseLong(tokens[1]);
    if (!alarms.ok()) return alarms.status();
    return static_cast<uint32_t>(alarms.value());
  }
  INVARNETX_RETURN_IF_ERROR(WriteCommand(EncodeEmpty(FrameType::kEndJob)));
  Result<Frame> reply = ReadFrame(fd_, options_.max_frame_bytes);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply.value().type == FrameType::kErr) {
    return Status::InvalidArgument("server: " + reply.value().payload);
  }
  if (reply.value().type != FrameType::kEndJobAck) {
    return Status::InvalidArgument("unexpected reply to ENDJOB");
  }
  return DecodeEndJobAck(reply.value().payload);
}

Status IngestClient::Bye() {
  if (options_.text) {
    INVARNETX_RETURN_IF_ERROR(WriteCommand("BYE\n"));
    Result<std::string> line = ReadReplyLine();
    if (!line.ok()) return line.status();
    if (line.value() != "OK") {
      return ErrFromReply(Tokenize(line.value()), line.value());
    }
    Close();
    return Status::Ok();
  }
  INVARNETX_RETURN_IF_ERROR(WriteCommand(EncodeEmpty(FrameType::kBye)));
  Result<Frame> reply = ReadFrame(fd_, options_.max_frame_bytes);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply.value().type != FrameType::kByeAck) {
    return Status::InvalidArgument("unexpected reply to BYE");
  }
  Close();
  return Status::Ok();
}

Result<StreamStats> StreamScenario(IngestClient* client,
                                   const campaign::Scenario& scenario,
                                   int max_runs) {
  // HELLO in slave node order - the canonical arming order of
  // serve::PrepareScenarioFleet, so per-tick sample order (and with it
  // backpressure admission order) matches a local replay exactly.
  std::vector<HelloEntry> entries;
  std::vector<size_t> node_indices;
  const std::string workload_name = workload::WorkloadName(scenario.workload);
  for (int node = 1; node <= scenario.slaves; ++node) {
    entries.push_back(
        HelloEntry{workload_name, "10.0.0." + std::to_string(node + 1)});
    node_indices.push_back(static_cast<size_t>(node));
  }
  Result<std::vector<serve::MonitorHandle>> handles = client->Hello(entries);
  if (!handles.ok()) return handles.status();

  int runs = scenario.test_runs;
  if (max_runs > 0) runs = std::min(runs, max_runs);

  StreamStats stats;
  std::vector<serve::TickSample> samples;
  for (int rep = 0; rep < runs; ++rep) {
    Result<telemetry::RunTrace> trace =
        campaign::SimulateScenarioTestRun(scenario, rep);
    if (!trace.ok()) return trace.status();
    INVARNETX_RETURN_IF_ERROR(client->StartJob());
    const size_t ticks = trace.value().nodes[1].cpi.size();
    for (size_t t = 0; t < ticks; ++t) {
      samples.clear();
      for (size_t i = 0; i < node_indices.size(); ++i) {
        const telemetry::NodeTrace& node = trace.value().nodes[node_indices[i]];
        serve::TickSample sample;
        sample.monitor = handles.value()[i];
        sample.cpi = node.cpi[t];
        for (int metric = 0; metric < telemetry::kNumMetrics; ++metric) {
          sample.metrics[static_cast<size_t>(metric)] =
              node.metrics[static_cast<size_t>(metric)][t];
        }
        samples.push_back(std::move(sample));
      }
      Result<TickOutcome> outcome = client->Tick(samples);
      if (!outcome.ok()) return outcome.status();
      ++stats.ticks;
      stats.accepted += outcome.value().accepted;
      stats.rejected += outcome.value().rejected;
    }
    Result<uint32_t> alarms = client->EndJob();
    if (!alarms.ok()) return alarms.status();
    stats.alarms += alarms.value();
    ++stats.runs;
  }
  INVARNETX_RETURN_IF_ERROR(client->Bye());
  return stats;
}

}  // namespace invarnetx::net
