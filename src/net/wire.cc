#include "net/wire.h"

#include <sys/socket.h>

#include <cerrno>

namespace invarnetx::net {

bool WriteAll(int fd, const void* data, size_t len) {
  const char* bytes = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, bytes + off, len - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool WriteAll(int fd, const std::string& data) {
  return WriteAll(fd, data.data(), data.size());
}

bool ReadFull(int fd, void* data, size_t len) {
  char* bytes = static_cast<char*>(data);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, bytes + off, len - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // EOF, timeout, or reset
    off += static_cast<size_t>(n);
  }
  return true;
}

bool LineReader::ReadLine(std::string* line) {
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      size_t end = newline;
      if (end > 0 && buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, 0, end);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (buffer_.size() > max_line_bytes_) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace invarnetx::net
