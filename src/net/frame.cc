#include "net/frame.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "net/wire.h"

namespace invarnetx::net {
namespace {

static_assert(std::numeric_limits<double>::is_iec559,
              "the binary dialect ships raw IEEE-754 doubles");
static_assert(sizeof(double) == 8 && sizeof(serve::MonitorHandle) == 4,
              "wire layout assumes 8-byte doubles and 4-byte handles");

void AppendU16(std::string* out, uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff),
                         static_cast<char>(v >> 8)};
  out->append(bytes, 2);
}

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out->append(bytes, 4);
}

void AppendI32(std::string* out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendF64(std::string* out, double v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);  // little-endian host assumed (see header)
  out->append(bytes, 8);
}

// Strict forward-only cursor over a decode payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ReadU16(uint16_t* v) {
    if (data_.size() - pos_ < 2) return false;
    *v = static_cast<uint16_t>(
        static_cast<uint8_t>(data_[pos_]) |
        (static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1])) << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    *v = out;
    pos_ += 4;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t raw = 0;
    if (!ReadU32(&raw)) return false;
    std::memcpy(v, &raw, 4);
    return true;
  }

  bool ReadF64(double* v) {
    if (data_.size() - pos_ < 8) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool ReadString8(std::string* v) {
    if (pos_ >= data_.size()) return false;
    const size_t len = static_cast<uint8_t>(data_[pos_]);
    if (data_.size() - pos_ - 1 < len) return false;
    v->assign(data_.data() + pos_ + 1, len);
    pos_ += 1 + len;
    return true;
  }

  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what + " frame");
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(5 + payload.size());
  AppendU32(&out, static_cast<uint32_t>(payload.size() + 1));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

Result<std::string> EncodeHello(const std::vector<HelloEntry>& entries) {
  std::string payload;
  AppendU16(&payload, kProtocolVersion);
  AppendU32(&payload, static_cast<uint32_t>(entries.size()));
  for (const HelloEntry& entry : entries) {
    // str8 fields carry a 1-byte length; a longer string would silently
    // desync the frame, so refuse to encode it.
    if (entry.workload.size() > 255 || entry.node_ip.size() > 255) {
      return Status::InvalidArgument(
          "HELLO context field exceeds 255 bytes: '" +
          entry.workload.substr(0, 32) + "@" + entry.node_ip.substr(0, 32) +
          "...'");
    }
    payload.push_back(static_cast<char>(entry.workload.size()));
    payload.append(entry.workload);
    payload.push_back(static_cast<char>(entry.node_ip.size()));
    payload.append(entry.node_ip);
  }
  return EncodeFrame(FrameType::kHello, payload);
}

std::string EncodeHelloAck(const std::vector<serve::MonitorHandle>& handles) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(handles.size()));
  for (const serve::MonitorHandle handle : handles) {
    AppendI32(&payload, handle);
  }
  return EncodeFrame(FrameType::kHelloAck, payload);
}

std::string EncodeTick(const std::vector<serve::TickSample>& samples) {
  std::string payload;
  payload.reserve(4 + samples.size() * kBinarySampleBytes);
  AppendU32(&payload, static_cast<uint32_t>(samples.size()));
  for (const serve::TickSample& sample : samples) {
    AppendI32(&payload, sample.monitor);
    AppendF64(&payload, sample.cpi);
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      AppendF64(&payload, sample.metrics[static_cast<size_t>(m)]);
    }
  }
  return EncodeFrame(FrameType::kTick, payload);
}

std::string EncodeTickReply(const TickOutcome& outcome) {
  std::string payload;
  AppendU32(&payload, outcome.accepted);
  AppendU32(&payload, outcome.rejected);
  return EncodeFrame(outcome.rejected == 0 ? FrameType::kTickAck
                                           : FrameType::kBackpressure,
                     payload);
}

std::string EncodeEndJobAck(uint32_t alarms_active) {
  std::string payload;
  AppendU32(&payload, alarms_active);
  return EncodeFrame(FrameType::kEndJobAck, payload);
}

std::string EncodeEmpty(FrameType type) { return EncodeFrame(type, {}); }

std::string EncodeErr(std::string_view message) {
  return EncodeFrame(FrameType::kErr, message);
}

Result<std::vector<HelloEntry>> DecodeHello(std::string_view payload) {
  Cursor cursor(payload);
  uint16_t version = 0;
  uint32_t count = 0;
  if (!cursor.ReadU16(&version)) return Truncated("HELLO");
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  if (!cursor.ReadU32(&count)) return Truncated("HELLO");
  // Bound the count against the bytes actually shipped before reserving:
  // every entry needs at least its two length bytes, so a 10-byte payload
  // claiming 2^32 entries is rejected here instead of driving a huge
  // allocation. (6 = version + count already consumed.)
  if (count > (payload.size() - 6) / 2) {
    return Status::InvalidArgument(
        "HELLO count does not fit its payload size");
  }
  std::vector<HelloEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HelloEntry entry;
    if (!cursor.ReadString8(&entry.workload) ||
        !cursor.ReadString8(&entry.node_ip)) {
      return Truncated("HELLO");
    }
    if (entry.workload.empty() || entry.node_ip.empty()) {
      return Status::InvalidArgument("empty context in HELLO");
    }
    entries.push_back(std::move(entry));
  }
  if (!cursor.Done()) {
    return Status::InvalidArgument("trailing bytes after HELLO entries");
  }
  if (entries.empty()) {
    return Status::InvalidArgument("HELLO negotiates no contexts");
  }
  return entries;
}

Result<std::vector<serve::MonitorHandle>> DecodeHelloAck(
    std::string_view payload) {
  Cursor cursor(payload);
  uint32_t count = 0;
  if (!cursor.ReadU32(&count)) return Truncated("HELLO-ACK");
  // Exact-size check before the reserve, mirroring DecodeTick: a lying
  // count must not drive the allocation, and trailing or missing bytes
  // fail in the same comparison.
  if (payload.size() != 4 + static_cast<size_t>(count) * 4) {
    return Status::InvalidArgument(
        "HELLO-ACK payload size does not match its handle count");
  }
  std::vector<serve::MonitorHandle> handles;
  handles.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    serve::MonitorHandle handle = serve::kInvalidMonitor;
    cursor.ReadI32(&handle);
    handles.push_back(handle);
  }
  return handles;
}

Result<std::vector<serve::TickSample>> DecodeTick(std::string_view payload) {
  Cursor cursor(payload);
  uint32_t count = 0;
  if (!cursor.ReadU32(&count)) return Truncated("TICK");
  // The exact-size check up front makes the per-sample loop unconditional
  // and rejects truncation/trailing garbage in one comparison.
  if (payload.size() != 4 + static_cast<size_t>(count) * kBinarySampleBytes) {
    return Status::InvalidArgument(
        "TICK payload size does not match its sample count");
  }
  std::vector<serve::TickSample> samples(count);
  for (uint32_t i = 0; i < count; ++i) {
    serve::TickSample& sample = samples[i];
    cursor.ReadI32(&sample.monitor);
    cursor.ReadF64(&sample.cpi);
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      cursor.ReadF64(&sample.metrics[static_cast<size_t>(m)]);
    }
  }
  return samples;
}

Result<TickOutcome> DecodeTickReply(std::string_view payload) {
  Cursor cursor(payload);
  TickOutcome outcome;
  if (!cursor.ReadU32(&outcome.accepted) ||
      !cursor.ReadU32(&outcome.rejected) || !cursor.Done()) {
    return Truncated("TICK-ACK");
  }
  return outcome;
}

Result<uint32_t> DecodeEndJobAck(std::string_view payload) {
  Cursor cursor(payload);
  uint32_t alarms = 0;
  if (!cursor.ReadU32(&alarms) || !cursor.Done()) {
    return Truncated("ENDJOB-ACK");
  }
  return alarms;
}

Result<Frame> ReadFrame(int fd, size_t max_payload) {
  char header[4];
  if (!ReadFull(fd, header, sizeof(header))) {
    return Status::IoError("connection closed reading frame header");
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
              << (8 * i);
  }
  if (length == 0) return Status::InvalidArgument("zero-length frame");
  if (length > max_payload + 1) {
    return Status::InvalidArgument("oversized frame: " +
                                   std::to_string(length) + " bytes > max " +
                                   std::to_string(max_payload + 1));
  }
  Frame frame;
  char type = 0;
  if (!ReadFull(fd, &type, 1)) {
    return Status::IoError("connection closed reading frame type");
  }
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(type));
  frame.payload.resize(length - 1);
  if (length > 1 && !ReadFull(fd, frame.payload.data(), length - 1)) {
    return Status::IoError("connection closed mid-frame");
  }
  return frame;
}

Status WriteFrame(int fd, const std::string& encoded) {
  if (!WriteAll(fd, encoded)) {
    return Status::IoError("short write on frame");
  }
  return Status::Ok();
}

std::string FormatSampleLine(const serve::TickSample& sample) {
  char buf[32];
  std::string line = std::to_string(sample.monitor);
  std::snprintf(buf, sizeof(buf), " %.17g", sample.cpi);
  line += buf;
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    std::snprintf(buf, sizeof(buf), " %.17g",
                  sample.metrics[static_cast<size_t>(m)]);
    line += buf;
  }
  return line;
}

Result<serve::TickSample> ParseSampleLine(std::string_view line) {
  serve::TickSample sample;
  // strtol/strtod need a terminated buffer; copy once (sample lines are
  // short) rather than assuming the caller's backing store is terminated.
  const std::string owned(line);
  const char* cursor = owned.c_str();
  char* next = nullptr;
  const long handle = std::strtol(cursor, &next, 10);
  if (next == cursor) {
    return Status::InvalidArgument("sample line: bad handle");
  }
  sample.monitor = static_cast<serve::MonitorHandle>(handle);
  cursor = next;
  sample.cpi = std::strtod(cursor, &next);
  if (next == cursor) {
    return Status::InvalidArgument("sample line: bad cpi");
  }
  cursor = next;
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    sample.metrics[static_cast<size_t>(m)] = std::strtod(cursor, &next);
    if (next == cursor) {
      return Status::InvalidArgument("sample line: bad metric " +
                                     std::to_string(m));
    }
    cursor = next;
  }
  while (cursor != owned.c_str() + owned.size() &&
         (*cursor == ' ' || *cursor == '\r')) {
    ++cursor;
  }
  if (*cursor != '\0') {
    return Status::InvalidArgument("sample line: trailing fields");
  }
  return sample;
}

}  // namespace invarnetx::net
