#include "net/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace invarnetx::net {

SocketServer::SocketServer(Options options) : options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

void SocketServer::SetHandler(ConnectionHandler handler) {
  handler_ = std::move(handler);
}

void SocketServer::SetOptions(Options options) {
  options_ = std::move(options);
}

Status SocketServer::Start() {
  if (running()) return Status::InvalidArgument("socket server already running");
  if (!handler_) {
    return Status::InvalidArgument("socket server has no connection handler");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);

  shutting_down_ = false;
  running_.store(true, std::memory_order_relaxed);
  const int workers = options_.num_workers < 1 ? 1 : options_.num_workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::Stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  // shutdown() unblocks the acceptor's accept(); close alone is not
  // guaranteed to on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

bool SocketServer::BackoffOrStop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(10),
               [this] { return shutting_down_; });
  return !shutting_down_;
}

void SocketServer::AcceptLoop() {
  for (;;) {
    const int fd = options_.accept_override
                       ? options_.accept_override(listen_fd_)
                       : ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed or shut down listener: exit quietly when stopping.
      if (!running()) return;
      // Transient failures (aborted handshake, fd exhaustion, out of
      // memory, ...) must never kill the acceptor: a monitoring server
      // that silently stops accepting is worse than one that sheds a
      // connection. Report, back off briefly, and keep accepting; only
      // shutdown ends the loop.
      if (options_.on_error) {
        options_.on_error("accept failed", std::strerror(errno));
      }
      if (!BackoffOrStop()) return;
      continue;
    }
    if (options_.io_timeout_seconds > 0) {
      // A stuck client must not pin a worker forever.
      timeval timeout{};
      timeout.tv_sec = options_.io_timeout_seconds;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      ::close(fd);
      return;
    }
    pending_.push_back(fd);
    cv_.notify_one();
  }
}

void SocketServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !pending_.empty(); });
      // On shutdown, never serve queued connections - each could cost a
      // full io timeout. Stop() closes whatever is still pending.
      if (shutting_down_) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    handler_(fd);
    ::close(fd);
  }
}

}  // namespace invarnetx::net
