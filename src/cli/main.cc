// The `invarnetx` command-line tool: trace generation, context training,
// signature management and diagnosis over CSV trace files. See Usage().

#include <cstdio>

#include "cli/commands.h"
#include "obs/log.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(invarnetx::cli::Usage().c_str(), stderr);
    return 2;
  }
  invarnetx::Result<invarnetx::cli::CommandLine> args =
      invarnetx::cli::ParseArgs(argc - 1, argv + 1);
  if (!args.ok()) {
    invarnetx::obs::Log(invarnetx::obs::LogLevel::kError, "bad command line",
                        {{"error", args.status().ToString()}});
    std::fputs(invarnetx::cli::Usage().c_str(), stderr);
    return 2;
  }
  std::string out;
  const invarnetx::Status status =
      invarnetx::cli::RunCommand(args.value(), &out);
  std::fputs(out.c_str(), stdout);
  if (!status.ok()) {
    invarnetx::obs::Log(invarnetx::obs::LogLevel::kError, "command failed",
                        {{"command", args.value().command},
                         {"error", status.ToString()}});
    return 1;
  }
  return 0;
}
