#ifndef INVARNETX_CLI_COMMANDS_H_
#define INVARNETX_CLI_COMMANDS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace invarnetx::cli {

// Parsed command line: `invarnetx <command> [--key value]... [positional]...`
struct CommandLine {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;

  // Option lookup with default.
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return options.count(key) > 0; }
};

// Parses argv (after the program name). Fails on `--key` without a value.
Result<CommandLine> ParseArgs(int argc, const char* const* argv);

// Command implementations; each prints human-readable results to `out` and
// returns a Status. Factored out of main() so tests can drive them.
//
//   simulate  --workload W --seed S [--fault F] [--ticks N] --out FILE
//   train     --node IP --out STOREDIR TRACE...
//   add-signature --store DIR --problem P --node IP TRACE...
//   diagnose  --store DIR [--node IP] TRACE      (no --node: cluster scan)
//   conflicts --store DIR --workload W --node IP [--threshold X]
//   info      TRACE
//   stats     [--workload W] [--runs N] [--format text|json]
//   campaign  run DIR|FILE [--csv F] [--json F] [--golden-dir D]
//             [--update-golden] [--min-precision X]
//   serve     --replay FILE [--store DIR] [--window W] [--runs N]
//             [--http-port P] [--http-addr A] [--http-linger S]
//   events    [--format text|json] [--last N] [--exercise 0|1]
Status RunSimulate(const CommandLine& args, std::string* out);
Status RunTrain(const CommandLine& args, std::string* out);
Status RunAddSignature(const CommandLine& args, std::string* out);
Status RunDiagnose(const CommandLine& args, std::string* out);
Status RunConflicts(const CommandLine& args, std::string* out);
Status RunInfo(const CommandLine& args, std::string* out);
Status RunStats(const CommandLine& args, std::string* out);
Status RunCampaign(const CommandLine& args, std::string* out);
Status RunServe(const CommandLine& args, std::string* out);
Status RunEvents(const CommandLine& args, std::string* out);

// Dispatches to the command; unknown commands return kInvalidArgument with
// the usage text in *out. Also applies the global observability options
// every command honours: --log-level LEVEL (debug|info|warn|error|off) and
// --trace-out FILE (records Chrome trace-event JSON of the invocation).
Status RunCommand(const CommandLine& args, std::string* out);

// The usage/help text.
std::string Usage();

}  // namespace invarnetx::cli

#endif  // INVARNETX_CLI_COMMANDS_H_
