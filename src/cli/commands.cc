#include "cli/commands.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "campaign/scenario.h"
#include "campaign/scoreboard.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "serve/fleet.h"
#include "serve/replay.h"
#include "serve/statusz.h"
#include "core/cluster_diagnosis.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "obs/http.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "telemetry/runner.h"
#include "telemetry/trace_io.h"

namespace invarnetx::cli {
namespace {

Result<uint64_t> ParseSeed(const CommandLine& args) {
  const std::string raw = args.Get("seed", "42");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str()) {
    return Status::InvalidArgument("bad --seed: " + raw);
  }
  return static_cast<uint64_t>(v);
}

// Index of the node with the given ip inside a trace.
Result<size_t> NodeIndexOf(const telemetry::RunTrace& trace,
                           const std::string& ip) {
  for (size_t i = 0; i < trace.nodes.size(); ++i) {
    if (trace.nodes[i].ip == ip) return i;
  }
  return Status::NotFound("trace has no node " + ip);
}

// Applies the mining-performance knobs shared by train / add-signature /
// diagnose: --threads N (0 = one worker per hardware thread) and
// --assoc-cache 0|1 (per-pair score memoization, on by default).
void ApplyMiningOptions(const CommandLine& args,
                        core::InvarNetXConfig* config) {
  config->num_threads = std::atoi(args.Get("threads", "0").c_str());
  config->use_association_cache = args.Get("assoc-cache", "1") != "0";
}

// Loads every positional argument as a trace; they must share a workload.
Result<std::vector<telemetry::RunTrace>> LoadTraces(const CommandLine& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("no trace files given");
  }
  std::vector<telemetry::RunTrace> traces;
  for (const std::string& path : args.positional) {
    Result<telemetry::RunTrace> trace = telemetry::ReadTraceFile(path);
    if (!trace.ok()) return trace.status();
    if (!traces.empty() && trace.value().workload != traces[0].workload) {
      return Status::InvalidArgument("traces mix workload types");
    }
    traces.push_back(std::move(trace.value()));
  }
  return traces;
}

}  // namespace

Result<CommandLine> ParseArgs(int argc, const char* const* argv) {
  CommandLine out;
  if (argc < 1) return Status::InvalidArgument("no command given");
  out.command = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      // Both spellings work: `--key value` and `--key=value`. A bare
      // option with no value (next token is another option, or end of the
      // line) is a boolean flag and parses as "1", e.g. `--update-golden`.
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        out.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        continue;
      }
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        out.options[arg.substr(2)] = "1";
        continue;
      }
      out.options[arg.substr(2)] = argv[++i];
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

Status RunSimulate(const CommandLine& args, std::string* out) {
  Result<uint64_t> seed = ParseSeed(args);
  if (!seed.ok()) return seed.status();
  // --jobs a,b,c simulates a FIFO queue of batch jobs in one trace.
  if (args.Has("jobs")) {
    telemetry::SequenceConfig sequence;
    sequence.seed = seed.value();
    std::istringstream jobs(args.Get("jobs", ""));
    std::string name;
    while (std::getline(jobs, name, ',')) {
      Result<workload::WorkloadType> type = workload::WorkloadFromName(name);
      if (!type.ok()) return type.status();
      sequence.jobs.push_back(type.value());
    }
    if (args.Has("fault")) {
      Result<faults::FaultType> fault =
          faults::FaultFromName(args.Get("fault", ""));
      if (!fault.ok()) return fault.status();
      faults::FaultWindow window =
          telemetry::DefaultFaultWindow(fault.value());
      window.start_tick = std::atoi(args.Get("fault-start", "8").c_str());
      sequence.fault = telemetry::FaultRequest{fault.value(), window};
    }
    Result<telemetry::RunTrace> trace =
        telemetry::SimulateJobSequence(sequence);
    if (!trace.ok()) return trace.status();
    const std::string path = args.Get("out", "trace.csv");
    INVARNETX_RETURN_IF_ERROR(telemetry::WriteTraceFile(path, trace.value()));
    *out += "wrote " + path + " (" + std::to_string(trace.value().ticks) +
            " ticks, " + std::to_string(trace.value().job_spans.size()) +
            " jobs)\n";
    return Status::Ok();
  }
  Result<workload::WorkloadType> type =
      workload::WorkloadFromName(args.Get("workload", "wordcount"));
  if (!type.ok()) return type.status();
  telemetry::RunConfig config;
  config.workload = type.value();
  config.seed = seed.value();
  config.interactive_ticks =
      std::atoi(args.Get("ticks", "60").c_str());
  config.data_scale = std::atof(args.Get("data-scale", "1.0").c_str());
  if (args.Has("fault")) {
    Result<faults::FaultType> fault =
        faults::FaultFromName(args.Get("fault", ""));
    if (!fault.ok()) return fault.status();
    config.fault = telemetry::FaultRequest{
        fault.value(), telemetry::DefaultFaultWindow(fault.value())};
  }
  Result<telemetry::RunTrace> trace = telemetry::SimulateRun(config);
  if (!trace.ok()) return trace.status();
  const std::string path = args.Get("out", "trace.csv");
  INVARNETX_RETURN_IF_ERROR(
      telemetry::WriteTraceFile(path, trace.value()));
  std::ostringstream message;
  message << "wrote " << path << " (" << trace.value().ticks << " ticks, "
          << trace.value().nodes.size() << " nodes"
          << (config.fault.has_value()
                  ? ", fault " + faults::FaultName(config.fault->type)
                  : std::string(", fault-free"))
          << ")\n";
  *out += message.str();
  return Status::Ok();
}

Status RunTrain(const CommandLine& args, std::string* out) {
  if (!args.Has("node") || !args.Has("out")) {
    return Status::InvalidArgument("train needs --node IP and --out DIR");
  }
  Result<std::vector<telemetry::RunTrace>> traces = LoadTraces(args);
  if (!traces.ok()) return traces.status();
  const std::string ip = args.Get("node", "");
  Result<size_t> node = NodeIndexOf(traces.value()[0], ip);
  if (!node.ok()) return node.status();

  core::InvarNetXConfig pipeline_config;
  ApplyMiningOptions(args, &pipeline_config);
  if (args.Has("engine")) {
    const std::string engine = args.Get("engine", "mic");
    if (engine == "mic") {
      pipeline_config.engine = core::AssociationEngineType::kMic;
    } else if (engine == "arx") {
      pipeline_config.engine = core::AssociationEngineType::kArx;
    } else if (engine == "ensemble") {
      pipeline_config.engine = core::AssociationEngineType::kEnsemble;
    } else {
      return Status::InvalidArgument("unknown --engine: " + engine);
    }
  }
  core::InvarNetX pipeline(pipeline_config);
  const core::OperationContext context{traces.value()[0].workload, ip};
  INVARNETX_RETURN_IF_ERROR(
      pipeline.TrainContext(context, traces.value(), node.value()));
  const std::string dir = args.Get("out", "");
  std::filesystem::create_directories(dir);
  INVARNETX_RETURN_IF_ERROR(pipeline.SaveToDirectory(dir));
  // Hold the snapshot: GetContext returns a shared_ptr whose Result wrapper
  // is a temporary.
  const std::shared_ptr<const core::ContextModel> model =
      pipeline.GetContext(context).value();
  std::ostringstream message;
  message << "trained " << context.ToString() << " from "
          << traces.value().size() << " runs: ARIMA "
          << model->perf.arima().order().ToString() << ", "
          << model->invariants.NumInvariants() << " invariants -> " << dir
          << "/\n";
  *out += message.str();
  return Status::Ok();
}

Status RunAddSignature(const CommandLine& args, std::string* out) {
  if (!args.Has("store") || !args.Has("problem") || !args.Has("node")) {
    return Status::InvalidArgument(
        "add-signature needs --store DIR --problem NAME --node IP");
  }
  Result<std::vector<telemetry::RunTrace>> traces = LoadTraces(args);
  if (!traces.ok()) return traces.status();
  const std::string dir = args.Get("store", "");
  core::InvarNetXConfig pipeline_config;
  ApplyMiningOptions(args, &pipeline_config);
  core::InvarNetX pipeline(pipeline_config);
  INVARNETX_RETURN_IF_ERROR(pipeline.LoadFromDirectory(dir));
  const std::string ip = args.Get("node", "");
  const std::string problem = args.Get("problem", "");
  for (const telemetry::RunTrace& trace : traces.value()) {
    Result<size_t> node = NodeIndexOf(trace, ip);
    if (!node.ok()) return node.status();
    INVARNETX_RETURN_IF_ERROR(pipeline.AddSignature(
        core::OperationContext{trace.workload, ip}, problem, trace,
        node.value()));
  }
  INVARNETX_RETURN_IF_ERROR(pipeline.SaveToDirectory(dir));
  std::ostringstream message;
  message << "added " << traces.value().size() << " signature(s) for '"
          << problem << "' to " << dir << "/\n";
  *out += message.str();
  return Status::Ok();
}

Status RunDiagnose(const CommandLine& args, std::string* out) {
  if (!args.Has("store")) {
    return Status::InvalidArgument("diagnose needs --store DIR");
  }
  Result<std::vector<telemetry::RunTrace>> traces = LoadTraces(args);
  if (!traces.ok()) return traces.status();
  core::InvarNetXConfig pipeline_config;
  ApplyMiningOptions(args, &pipeline_config);
  core::InvarNetX pipeline(pipeline_config);
  INVARNETX_RETURN_IF_ERROR(pipeline.LoadFromDirectory(args.Get("store", "")));
  const telemetry::RunTrace& trace = traces.value()[0];

  // A FIFO-sequence trace mixes jobs with different operation contexts;
  // diagnose each job span against its own workload's models.
  if (trace.job_spans.size() > 1) {
    std::string span_out;
    for (size_t j = 0; j < trace.job_spans.size(); ++j) {
      const telemetry::JobSpanInfo& span = trace.job_spans[j];
      if (span.end_tick <= span.start_tick) continue;
      telemetry::RunTrace sliced;
      sliced.workload = span.type;
      sliced.ticks = span.end_tick - span.start_tick;
      for (const telemetry::NodeTrace& node : trace.nodes) {
        telemetry::NodeTrace piece;
        piece.ip = node.ip;
        piece.cpi.assign(node.cpi.begin() + span.start_tick,
                         node.cpi.begin() + span.end_tick);
        for (int m = 0; m < telemetry::kNumMetrics; ++m) {
          piece.metrics[static_cast<size_t>(m)].assign(
              node.metrics[static_cast<size_t>(m)].begin() + span.start_tick,
              node.metrics[static_cast<size_t>(m)].begin() + span.end_tick);
        }
        sliced.nodes.push_back(std::move(piece));
      }
      span_out += "== job " + std::to_string(j) + " (" +
                  workload::WorkloadName(span.type) + ", ticks " +
                  std::to_string(span.start_tick) + ".." +
                  std::to_string(span.end_tick) + ") ==\n";
      CommandLine span_args = args;
      span_args.positional.clear();
      // Recurse on the sliced trace via a temp file-free path: inline the
      // single-trace logic by writing the slice out? Simpler: handle here.
      // (fall through to the shared single-trace logic below)
      std::string one;
      Status st = [&]() -> Status {
        if (span_args.Has("node")) {
          const std::string ip = span_args.Get("node", "");
          Result<size_t> node = NodeIndexOf(sliced, ip);
          if (!node.ok()) return node.status();
          Result<core::DiagnosisReport> report = pipeline.Diagnose(
              core::OperationContext{sliced.workload, ip}, sliced,
              node.value());
          if (!report.ok()) return report.status();
          if (!report.value().anomaly_detected) {
            one += ip + ": no anomaly\n";
          } else {
            one += ip + ": ANOMALY, " +
                   std::to_string(report.value().num_violations) +
                   " violations\n";
            for (const core::RankedCause& cause : report.value().causes) {
              one += "  " + cause.problem + "  " +
                     std::to_string(cause.score) + "\n";
            }
          }
          return Status::Ok();
        }
        Result<core::ClusterDiagnosis> scan =
            core::DiagnoseCluster(pipeline, sliced);
        if (!scan.ok()) return scan.status();
        for (const core::NodeDiagnosis& entry : scan.value().nodes) {
          if (!entry.context_trained) {
            one += entry.node_ip + ": (context not trained)\n";
          } else if (!entry.report.anomaly_detected) {
            one += entry.node_ip + ": healthy\n";
          } else {
            one += entry.node_ip + ": ANOMALOUS (" +
                   std::to_string(entry.report.num_violations) +
                   " violations)";
            if (!entry.report.causes.empty()) {
              one += " -> " + entry.report.causes[0].problem;
            }
            one += "\n";
          }
        }
        return Status::Ok();
      }();
      if (!st.ok()) return st;
      span_out += one;
    }
    *out += span_out;
    return Status::Ok();
  }

  std::ostringstream message;
  const bool show_cost = args.Get("stats", "0") != "0";
  auto render = [&message, show_cost](const std::string& where,
                                      const core::DiagnosisReport& report) {
    if (!report.anomaly_detected) {
      message << where << ": no anomaly\n";
      if (show_cost) message << "  cost: " << report.cost.Summary() << "\n";
      return;
    }
    message << where << ": ANOMALY at tick " << report.first_alarm_tick
            << ", " << report.num_violations << " violations\n";
    for (const core::RankedCause& cause : report.causes) {
      message << "  " << cause.problem << "  " << cause.score << "\n";
    }
    if (!report.known_problem) {
      message << "  (below similarity threshold - hints:)\n";
      for (const std::string& hint : report.hints) {
        message << "    " << hint << "\n";
      }
    }
    if (show_cost) message << "  cost: " << report.cost.Summary() << "\n";
  };

  std::string markdown;
  if (args.Has("node")) {
    const std::string ip = args.Get("node", "");
    Result<size_t> node = NodeIndexOf(trace, ip);
    if (!node.ok()) return node.status();
    const core::OperationContext context{trace.workload, ip};
    Result<core::DiagnosisReport> report =
        pipeline.Diagnose(context, trace, node.value());
    if (!report.ok()) return report.status();
    render(ip, report.value());
    if (args.Has("report")) {
      Result<std::shared_ptr<const core::ContextModel>> model =
          pipeline.GetContext(context);
      if (!model.ok()) return model.status();
      markdown = core::RenderIncidentReport(context, report.value(),
                                            *model.value(), trace.ticks,
                                            &trace.nodes[node.value()]);
    }
  } else {
    Result<core::ClusterDiagnosis> scan =
        core::DiagnoseCluster(pipeline, trace);
    if (!scan.ok()) return scan.status();
    for (const core::NodeDiagnosis& entry : scan.value().nodes) {
      if (!entry.context_trained) {
        message << entry.node_ip << ": (context not trained)\n";
        continue;
      }
      render(entry.node_ip, entry.report);
    }
    if (scan.value().AnyAnomaly()) {
      message << "culprit: "
              << scan.value()
                     .nodes[static_cast<size_t>(scan.value().culprit)]
                     .node_ip
              << "\n";
    }
    if (args.Has("report")) {
      markdown = core::RenderClusterReport(pipeline, scan.value(),
                                           trace.workload, trace.ticks);
    }
  }
  if (args.Has("report")) {
    std::ofstream file(args.Get("report", ""));
    if (!file) return Status::IoError("cannot open report file");
    file << markdown;
    message << "wrote incident report to " << args.Get("report", "") << "\n";
  }
  *out += message.str();
  return Status::Ok();
}

Status RunConflicts(const CommandLine& args, std::string* out) {
  if (!args.Has("store") || !args.Has("workload") || !args.Has("node")) {
    return Status::InvalidArgument(
        "conflicts needs --store DIR --workload W --node IP");
  }
  core::InvarNetX pipeline;
  INVARNETX_RETURN_IF_ERROR(pipeline.LoadFromDirectory(args.Get("store", "")));
  Result<workload::WorkloadType> type =
      workload::WorkloadFromName(args.Get("workload", ""));
  if (!type.ok()) return type.status();
  Result<std::shared_ptr<const core::ContextModel>> model =
      pipeline.GetContext(
          core::OperationContext{type.value(), args.Get("node", "")});
  if (!model.ok()) return model.status();
  const double threshold = std::atof(args.Get("threshold", "0.6").c_str());
  Result<std::vector<core::SignatureConflict>> conflicts =
      model.value()->sigdb.FindConflicts(threshold);
  if (!conflicts.ok()) return conflicts.status();
  std::ostringstream message;
  if (conflicts.value().empty()) {
    message << "no signature conflicts at threshold " << threshold << "\n";
  }
  for (const core::SignatureConflict& c : conflicts.value()) {
    message << c.problem_a << " ~ " << c.problem_b << "  " << c.similarity
            << "\n";
  }
  *out += message.str();
  return Status::Ok();
}

Status RunInfo(const CommandLine& args, std::string* out) {
  Result<std::vector<telemetry::RunTrace>> traces = LoadTraces(args);
  if (!traces.ok()) return traces.status();
  std::ostringstream message;
  for (size_t i = 0; i < traces.value().size(); ++i) {
    const telemetry::RunTrace& trace = traces.value()[i];
    message << args.positional[i] << ": "
            << workload::WorkloadName(trace.workload) << ", " << trace.ticks
            << " ticks, " << trace.nodes.size() << " nodes";
    for (const telemetry::FaultGroundTruth& fault : trace.injected) {
      message << ", fault " << faults::FaultName(fault.type) << "@"
              << fault.window.start_tick;
    }
    for (const telemetry::JobSpanInfo& span : trace.job_spans) {
      message << ", job " << workload::WorkloadName(span.type) << "["
              << span.start_tick << "," << span.end_tick << ")";
    }
    message << "\n";
  }
  *out += message.str();
  return Status::Ok();
}

Status RunStats(const CommandLine& args, std::string* out) {
  // A fresh process has an empty metrics registry, so `stats` first runs a
  // small representative workload end to end (simulate -> train -> diagnose
  // one faulty run) and then dumps the registry those stages populated.
  Result<workload::WorkloadType> type =
      workload::WorkloadFromName(args.Get("workload", "wordcount"));
  if (!type.ok()) return type.status();
  Result<uint64_t> seed = ParseSeed(args);
  if (!seed.ok()) return seed.status();
  const std::string format = args.Get("format", "text");
  if (format != "text" && format != "json") {
    return Status::InvalidArgument("bad --format (want text|json): " + format);
  }
  core::EvalConfig config;
  config.workload = type.value();
  config.seed = seed.value();
  config.normal_runs = std::atoi(args.Get("runs", "4").c_str());
  if (config.normal_runs < 2) config.normal_runs = 2;
  ApplyMiningOptions(args, &config.pipeline);
  // The self-exercise should light up the thread-pool metrics even on a
  // single-core machine, where `--threads 0` would resolve to the serial
  // path; default to two workers unless the user chose explicitly.
  if (!args.Has("threads")) config.pipeline.num_threads = 2;

  Result<std::vector<telemetry::RunTrace>> normal = core::SimulateNormalRuns(
      config.workload, config.normal_runs, config.seed,
      config.interactive_train_ticks);
  if (!normal.ok()) return normal.status();
  core::InvarNetX pipeline(config.pipeline);
  INVARNETX_RETURN_IF_ERROR(
      core::TrainPipeline(&pipeline, config, normal.value()));
  Result<telemetry::RunTrace> faulty = core::SimulateFaultRun(
      config.workload, faults::FaultType::kCpuHog, config.seed + 1000);
  if (!faulty.ok()) return faulty.status();
  const core::OperationContext context = core::VictimContext(config);
  // Diagnose the same run twice: the first pass populates the association
  // score cache, the second hits it, so the dump shows both sides of the
  // cache counters.
  Result<core::DiagnosisReport> cold =
      pipeline.Diagnose(context, faulty.value(), config.victim_node);
  if (!cold.ok()) return cold.status();
  Result<core::DiagnosisReport> report =
      pipeline.Diagnose(context, faulty.value(), config.victim_node);
  if (!report.ok()) return report.status();

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  if (format == "json") {
    *out += registry.RenderJson();
    *out += "\n";
    return Status::Ok();
  }
  std::ostringstream message;
  message << "# self-exercise: " << context.ToString() << ", "
          << config.normal_runs << " training runs, fault "
          << faults::FaultName(faults::FaultType::kCpuHog) << ", "
          << (report.value().anomaly_detected ? "anomaly detected"
                                              : "no anomaly")
          << "\n# cost: " << report.value().cost.Summary() << "\n"
          << registry.RenderText();
  *out += message.str();
  return Status::Ok();
}

Status RunCampaign(const CommandLine& args, std::string* out) {
  if (args.positional.size() < 2 || args.positional[0] != "run") {
    return Status::InvalidArgument(
        "usage: campaign run SCENARIO_DIR|SCENARIO_FILE [options]");
  }
  const std::string target = args.positional[1];

  // Accept a directory of *.scenario files or one scenario file.
  std::vector<campaign::Scenario> scenarios;
  std::string default_golden_dir;
  if (std::filesystem::is_directory(target)) {
    Result<std::vector<campaign::Scenario>> loaded =
        campaign::LoadScenarioDirectory(target);
    if (!loaded.ok()) return loaded.status();
    scenarios = std::move(loaded.value());
    default_golden_dir =
        (std::filesystem::path(target) / "golden").string();
  } else {
    Result<campaign::Scenario> scenario =
        campaign::LoadScenarioFile(target);
    if (!scenario.ok()) return scenario.status();
    default_golden_dir =
        (std::filesystem::path(target).parent_path() / "golden").string();
    scenarios.push_back(std::move(scenario.value()));
  }

  campaign::CampaignOptions options;
  options.threads = std::atoi(args.Get("threads", "0").c_str());
  options.use_assoc_cache = args.Get("assoc-cache", "1") != "0";
  const int top_k = std::atoi(args.Get("top-k", "5").c_str());
  if (top_k < 1) return Status::InvalidArgument("bad --top-k");
  options.top_k = static_cast<size_t>(top_k);

  Result<campaign::CampaignResult> result =
      campaign::RunCampaign(scenarios, options);
  if (!result.ok()) return result.status();
  *out += campaign::RenderText(result.value());
  // Head-to-head engine table with measured per-engine latency columns -
  // console only, never byte-compared (see scoreboard.h).
  *out += campaign::RenderEngineComparison(result.value());

  if (args.Has("csv")) {
    std::ofstream file(args.Get("csv", ""), std::ios::binary);
    if (!file) return Status::IoError("cannot open --csv file");
    file << campaign::RenderCsv(result.value());
    *out += "wrote " + args.Get("csv", "") + "\n";
  }
  if (args.Has("json")) {
    std::ofstream file(args.Get("json", ""), std::ios::binary);
    if (!file) return Status::IoError("cannot open --json file");
    file << campaign::RenderJson(result.value());
    *out += "wrote " + args.Get("json", "") + "\n";
  }

  // Golden-report regression gate: update on request; otherwise compare
  // when golden reports exist (their absence is not an error, so fresh
  // scenario directories can be scored before goldens are recorded).
  const std::string golden_dir = args.Get("golden-dir", default_golden_dir);
  const bool update_golden = args.Has("update-golden");
  if (update_golden || std::filesystem::is_directory(golden_dir)) {
    INVARNETX_RETURN_IF_ERROR(campaign::CheckOrUpdateGolden(
        result.value(), golden_dir, update_golden, out));
  } else {
    *out += "no golden reports in " + golden_dir +
            " (record them with --update-golden)\n";
  }

  // Regression floors: --min-precision gates the signature engine over the
  // known-fault scenarios (hold-outs score zero there by construction);
  // --min-causal-recall gates the causal engine's recall@3 over the
  // unknown-fault scenarios.
  if (args.Has("min-precision")) {
    const double floor = std::atof(args.Get("min-precision", "0").c_str());
    if (result.value().known_scenarios == 0) {
      return Status::FailedPrecondition(
          "--min-precision set but the campaign has no known-fault "
          "scenarios to gate");
    }
    if (result.value().mean_known_precision_at_1 < floor) {
      return Status::FailedPrecondition(
          "known-fault mean precision@1 " +
          std::to_string(result.value().mean_known_precision_at_1) +
          " below the --min-precision floor " + args.Get("min-precision", ""));
    }
  }
  if (args.Has("min-causal-recall")) {
    const double floor =
        std::atof(args.Get("min-causal-recall", "0").c_str());
    if (result.value().holdout_scenarios == 0) {
      return Status::FailedPrecondition(
          "--min-causal-recall set but the campaign has no unknown-fault "
          "(signatures = all-except-fault) scenarios to gate");
    }
    if (result.value().mean_causal_recall_at_3 < floor) {
      return Status::FailedPrecondition(
          "unknown-fault causal recall@3 " +
          std::to_string(result.value().mean_causal_recall_at_3) +
          " below the --min-causal-recall floor " +
          args.Get("min-causal-recall", ""));
    }
  }
  return Status::Ok();
}

Status RunServe(const CommandLine& args, std::string* out) {
  if (!args.Has("replay")) {
    return Status::InvalidArgument(
        "serve needs --replay FILE (a .scenario file, or a trace with "
        "--store DIR)");
  }
  const std::string target = args.Get("replay", "");
  serve::ReplayOptions options;
  options.threads = std::atoi(args.Get("threads", "0").c_str());
  options.window_capacity =
      static_cast<size_t>(std::atoi(args.Get("window", "256").c_str()));
  if (options.window_capacity == 0) {
    return Status::InvalidArgument("bad --window (want >= 1)");
  }
  options.max_runs = std::atoi(args.Get("runs", "0").c_str());
  options.retrain_each_run = args.Has("retrain-each-run");
  options.shards = std::atoi(args.Get("shards", "0").c_str());
  if (options.shards < 0) {
    return Status::InvalidArgument("bad --shards (want >= 0; 0 = auto)");
  }
  const int ring_capacity = std::atoi(args.Get("ring-capacity", "0").c_str());
  if (ring_capacity < 0) {
    return Status::InvalidArgument(
        "bad --ring-capacity (want >= 0; 0 = auto-size, never rejects)");
  }
  options.ring_capacity = static_cast<size_t>(ring_capacity);

  // Optional embedded observability endpoint. Everything about it stays off
  // stdout (the port announcement goes through the structured logger on
  // stderr), so replay output is byte-identical with or without it.
  std::unique_ptr<obs::HttpServer> http;
  if (args.Has("http-port")) {
    const int port = std::atoi(args.Get("http-port", "").c_str());
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("bad --http-port (want 0..65535): " +
                                     args.Get("http-port", ""));
    }
    obs::HttpServer::Options http_options;
    http_options.port = static_cast<uint16_t>(port);
    http_options.bind_address = args.Get("http-addr", "127.0.0.1");
    http = std::make_unique<obs::HttpServer>(http_options);
    serve::InstallObsEndpoints(http.get());
    INVARNETX_RETURN_IF_ERROR(http->Start());
    obs::EventJournal::Shared().Record(
        obs::EventKind::kLifecycle, "observability endpoint up",
        {{"port", static_cast<uint64_t>(http->port())}});
    INVARNETX_OBS_LOG(
        obs::LogLevel::kInfo, "observability endpoint listening",
        {{"addr", http_options.bind_address},
         {"port", static_cast<uint64_t>(http->port())},
         {"endpoints", "/metrics /healthz /statusz /tracez"}});
  }
  // CI smoke and manual curls need the endpoint alive after the replay
  // finishes; --http-linger S holds the process that long before exiting.
  const double linger_seconds =
      std::atof(args.Get("http-linger", "0").c_str());

  Status status = [&]() -> Status {
    // Socket ingest mode: train the scenario's fleet exactly like --replay,
    // then accept the test-run samples over TCP instead of simulating them
    // in-process. The output composes the same header, the same per-run
    // verdict blocks (IngestServer renders through serve::RenderVerdicts),
    // and the same summary line, so it diffs byte-for-byte against a local
    // replay of the scenario when the producer streams the same runs.
    if (args.Has("ingest-port")) {
      const int ingest_port = std::atoi(args.Get("ingest-port", "").c_str());
      if (ingest_port < 0 || ingest_port > 65535) {
        return Status::InvalidArgument("bad --ingest-port (want 0..65535): " +
                                       args.Get("ingest-port", ""));
      }
      if (std::filesystem::path(target).extension() != ".scenario") {
        return Status::InvalidArgument(
            "--ingest-port needs a .scenario --replay target (the scenario "
            "defines which contexts get trained)");
      }
      if (options.retrain_each_run) {
        return Status::InvalidArgument(
            "--ingest-port does not support --retrain-each-run");
      }
      Result<campaign::Scenario> scenario = campaign::LoadScenarioFile(target);
      if (!scenario.ok()) return scenario.status();
      Result<serve::ScenarioFleetPlan> plan =
          serve::PrepareScenarioFleet(scenario.value(), options);
      if (!plan.ok()) return plan.status();
      serve::MonitorFleet fleet(
          plan.value().pipeline.get(),
          serve::MakeScenarioFleetConfig(options,
                                         plan.value().contexts.size()));

      std::ostringstream verdicts;
      net::IngestServerOptions ingest_options;
      ingest_options.bind_address = args.Get("ingest-addr", "127.0.0.1");
      ingest_options.port = ingest_port;
      net::IngestServer server(&fleet, &verdicts, ingest_options);
      INVARNETX_RETURN_IF_ERROR(server.Start());
      // Port announcement stays off stdout so the report is byte-clean.
      INVARNETX_OBS_LOG(obs::LogLevel::kInfo, "ingest endpoint listening",
                        {{"addr", ingest_options.bind_address},
                         {"port", static_cast<uint64_t>(server.port())}});
      const net::SessionStats stats = server.WaitForSession();
      server.Stop();
      if (!stats.completed) {
        return Status::IoError("no ingest session completed cleanly");
      }
      *out += plan.value().header;
      *out += verdicts.str();
      *out += "summary: " + std::to_string(stats.total_alarms) +
              " alarm(s) over " + std::to_string(stats.runs) + " run(s) x " +
              std::to_string(plan.value().contexts.size()) + " monitor(s)\n";
      return Status::Ok();
    }
    // A scenario file carries its own training data (seeded simulation); a
    // recorded trace needs the offline store that trained its contexts.
    if (std::filesystem::path(target).extension() == ".scenario") {
      Result<campaign::Scenario> scenario = campaign::LoadScenarioFile(target);
      if (!scenario.ok()) return scenario.status();
      Result<std::string> rendered =
          serve::ReplayScenario(scenario.value(), options);
      if (!rendered.ok()) return rendered.status();
      *out += rendered.value();
      return Status::Ok();
    }
    if (!args.Has("store")) {
      return Status::InvalidArgument(
          "serve --replay TRACE needs --store DIR (trained offline state)");
    }
    Result<telemetry::RunTrace> trace = telemetry::ReadTraceFile(target);
    if (!trace.ok()) return trace.status();
    core::InvarNetXConfig pipeline_config;
    ApplyMiningOptions(args, &pipeline_config);
    core::InvarNetX pipeline(pipeline_config);
    INVARNETX_RETURN_IF_ERROR(
        pipeline.LoadFromDirectory(args.Get("store", "")));
    Result<std::string> rendered =
        serve::ReplayTrace(pipeline, trace.value(), options);
    if (!rendered.ok()) return rendered.status();
    *out += rendered.value();
    return Status::Ok();
  }();

  if (http != nullptr) {
    if (status.ok() && linger_seconds > 0.0) {
      INVARNETX_OBS_LOG(obs::LogLevel::kInfo, "replay done, endpoint lingering",
                        {{"seconds", linger_seconds}});
      std::this_thread::sleep_for(
          std::chrono::duration<double>(linger_seconds));
    }
    obs::EventJournal::Shared().Record(obs::EventKind::kLifecycle,
                                       "observability endpoint down");
    http->Stop();
  }
  return status;
}

Status RunStream(const CommandLine& args, std::string* out) {
  // The producer side of `serve --ingest-port`: connects to a running
  // ingest endpoint and streams a scenario's test runs through it in
  // replay order (HELLO in node order, JOB / TICK x ticks / ENDJOB per
  // run, BYE). The server's stdout then matches `serve --replay` of the
  // same scenario byte for byte.
  if (!args.Has("replay")) {
    return Status::InvalidArgument("stream needs --replay FILE (.scenario)");
  }
  const std::string target = args.Get("replay", "");
  if (std::filesystem::path(target).extension() != ".scenario") {
    return Status::InvalidArgument("stream --replay wants a .scenario file");
  }
  const int port = std::atoi(args.Get("port", "0").c_str());
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("stream needs --port P (1..65535)");
  }
  Result<campaign::Scenario> scenario = campaign::LoadScenarioFile(target);
  if (!scenario.ok()) return scenario.status();

  net::IngestClientOptions client_options;
  client_options.address = args.Get("addr", "127.0.0.1");
  client_options.port = port;
  client_options.text = args.Has("text");
  net::IngestClient client(client_options);
  INVARNETX_RETURN_IF_ERROR(client.Connect());
  Result<net::StreamStats> stats = net::StreamScenario(
      &client, scenario.value(), std::atoi(args.Get("runs", "0").c_str()));
  if (!stats.ok()) return stats.status();
  *out += "streamed " + scenario.value().name + ": " +
          std::to_string(stats.value().runs) + " run(s), " +
          std::to_string(stats.value().ticks) + " tick(s), " +
          std::to_string(stats.value().accepted) + " sample(s) accepted, " +
          std::to_string(stats.value().rejected) + " rejected, " +
          std::to_string(stats.value().alarms) + " alarm(s)\n";
  return Status::Ok();
}

Status RunEvents(const CommandLine& args, std::string* out) {
  // Like `stats`, a fresh process has an empty journal, so `events` first
  // exercises the whole span of journal hooks - train (retrain +
  // epoch-publish events), then a one-monitor fleet streamed through a
  // faulty run (alarm, diagnosis, and - with the demo's low thresholds -
  // alarm-storm events) - and dumps what was recorded.
  const std::string format = args.Get("format", "text");
  if (format != "text" && format != "json") {
    return Status::InvalidArgument("bad --format (want text|json): " + format);
  }
  const int last = std::atoi(args.Get("last", "0").c_str());
  if (last < 0) return Status::InvalidArgument("bad --last (want >= 0)");

  if (args.Get("exercise", "1") != "0") {
    Result<uint64_t> seed = ParseSeed(args);
    if (!seed.ok()) return seed.status();
    core::EvalConfig config;
    config.seed = seed.value();
    config.normal_runs = std::atoi(args.Get("runs", "3").c_str());
    if (config.normal_runs < 2) config.normal_runs = 2;
    ApplyMiningOptions(args, &config.pipeline);

    Result<std::vector<telemetry::RunTrace>> normal =
        core::SimulateNormalRuns(config.workload, config.normal_runs,
                                 config.seed, config.interactive_train_ticks);
    if (!normal.ok()) return normal.status();
    core::InvarNetX pipeline(config.pipeline);
    INVARNETX_RETURN_IF_ERROR(
        core::TrainPipeline(&pipeline, config, normal.value()));
    Result<telemetry::RunTrace> faulty = core::SimulateFaultRun(
        config.workload, faults::FaultType::kCpuHog, config.seed + 1000);
    if (!faulty.ok()) return faulty.status();

    serve::FleetConfig fleet_config;
    fleet_config.threads = config.pipeline.num_threads;
    // Demo thresholds: a single alarm counts as a storm, so the dump shows
    // every event kind the serve path can journal.
    fleet_config.storm_alarm_threshold = 1;
    serve::MonitorFleet fleet(&pipeline, fleet_config);
    const core::OperationContext context = core::VictimContext(config);
    INVARNETX_RETURN_IF_ERROR(fleet.StartJob(context).status());
    const telemetry::NodeTrace& node =
        faulty.value().nodes[static_cast<size_t>(config.victim_node)];
    std::vector<serve::TickSample> batch(1);
    batch[0].context = context;
    for (size_t t = 0; t < node.cpi.size(); ++t) {
      batch[0].cpi = node.cpi[t];
      for (size_t m = 0; m < static_cast<size_t>(telemetry::kNumMetrics);
           ++m) {
        batch[0].metrics[m] = node.metrics[m][t];
      }
      Result<serve::TickSummary> summary = fleet.IngestTick(batch);
      if (!summary.ok()) return summary.status();
    }
    fleet.WaitForDiagnoses();
    fleet.TakeDiagnoses();
  }

  obs::EventJournal& journal = obs::EventJournal::Shared();
  const std::vector<obs::Event> events =
      journal.Snapshot(static_cast<size_t>(last));
  if (format == "json") {
    *out += obs::RenderEventsJson(events);
    return Status::Ok();
  }
  *out += "# journal: " + std::to_string(events.size()) + " of " +
          std::to_string(journal.next_seq()) + " recorded events (" +
          std::to_string(journal.evicted()) + " evicted, capacity " +
          std::to_string(journal.capacity()) + ")\n";
  *out += obs::RenderEventsText(events);
  return Status::Ok();
}

std::string Usage() {
  return
      "invarnetx <command> [options] [trace files]\n"
      "\n"
      "commands:\n"
      "  simulate  --workload W --seed S [--fault F] [--ticks N] --out FILE\n"
      "            generate a testbed trace file; or --jobs a,b,c for a\n"
      "            FIFO queue ([--fault-start T] places the fault)\n"
      "  train     --node IP [--engine mic|arx|ensemble] --out STOREDIR\n"
      "            TRACE...  train the node's operation context from\n"
      "            fault-free traces (the store remembers the engine)\n"
      "  add-signature --store DIR --problem NAME --node IP TRACE...\n"
      "            teach the signature base an investigated problem\n"
      "  diagnose  --store DIR [--node IP] [--report FILE.md] [--stats 1]\n"
      "            TRACE  diagnose one node, or scan the whole cluster\n"
      "            (--stats 1 appends a per-stage cost line per report)\n"
      "  conflicts --store DIR --workload W --node IP [--threshold X]\n"
      "            list near-identical problem signatures\n"
      "  info      TRACE...\n"
      "            print trace metadata\n"
      "  stats     [--workload W] [--runs N] [--format text|json]\n"
      "            run a built-in end-to-end self-exercise and dump the\n"
      "            process metrics registry (counters/gauges/histograms)\n"
      "  campaign  run SCENARIO_DIR|SCENARIO_FILE [--csv FILE]\n"
      "            [--json FILE] [--golden-dir DIR] [--update-golden]\n"
      "            [--top-k K] [--min-precision X] [--min-causal-recall X]\n"
      "            execute a deterministic fault-injection campaign:\n"
      "            train, inject, diagnose, and score ranked causes\n"
      "            against each scenario's expected root cause; compares\n"
      "            diagnosis reports against golden files when present\n"
      "  serve     --replay FILE [--store DIR] [--window W] [--runs N]\n"
      "            [--shards S] [--ring-capacity C] [--retrain-each-run]\n"
      "            [--http-port P] [--http-addr A] [--http-linger S]\n"
      "            [--ingest-port P] [--ingest-addr A]\n"
      "            stream a scenario's test runs (or a recorded trace,\n"
      "            with --store) tick by tick through a MonitorFleet -\n"
      "            one monitor per node, sharded batched ingestion over\n"
      "            per-shard SPSC rings, bounded windows, alarm-triggered\n"
      "            asynchronous diagnosis - and print the per-job\n"
      "            verdicts (byte-identical for every --threads and\n"
      "            --shards value, and with --http-port on or off);\n"
      "            --shards 0 = one shard per hardware thread, and\n"
      "            --ring-capacity 0 auto-sizes each shard's ring so\n"
      "            nothing is rejected (a fixed C gives real\n"
      "            backpressure); --retrain-each-run retrains every context\n"
      "            between runs via the incremental dirty-pair path and\n"
      "            reports the rescored/reused split; --http-port serves\n"
      "            /metrics /healthz /statusz /tracez while replaying\n"
      "            (0 = ephemeral; port logged on stderr), binding\n"
      "            --http-addr (default 127.0.0.1), and --http-linger\n"
      "            keeps the endpoint up S seconds after the replay;\n"
      "            --ingest-port opens the TCP ingest front end instead of\n"
      "            simulating the test runs locally: the fleet is trained\n"
      "            from the scenario exactly like --replay, then waits for\n"
      "            one producer session (see `stream`) and prints the same\n"
      "            byte-identical report (0 = ephemeral port, logged on\n"
      "            stderr; binds --ingest-addr, default 127.0.0.1)\n"
      "  stream    --replay FILE.scenario --port P [--addr A] [--runs N]\n"
      "            [--text]\n"
      "            connect to a `serve --ingest-port` endpoint and stream\n"
      "            the scenario's test runs through it in replay order\n"
      "            (HELLO handle negotiation, batched TICK frames,\n"
      "            explicit BACKPRESSURE accounting); --text speaks the\n"
      "            nc-friendly line protocol instead of binary frames\n"
      "  events    [--format text|json] [--last N] [--exercise 0|1]\n"
      "            dump the bounded in-process event journal (alarms,\n"
      "            retrains, epoch publishes, diagnoses, cache\n"
      "            evictions, watchdog trips); by default first runs a\n"
      "            small train+serve self-exercise so a fresh process\n"
      "            has events to show (--exercise 0 skips it)\n"
      "\n"
      "global options (every command):\n"
      "  --log-level L     debug|info|warn|error|off (default info);\n"
      "                    structured key=value diagnostics on stderr\n"
      "  --trace-out FILE  record Chrome trace-event JSON for the whole\n"
      "                    invocation (open in chrome://tracing / Perfetto)\n"
      "\n"
      "mining options (train / add-signature / diagnose / stats /\n"
      "campaign):\n"
      "  --threads N       worker threads for invariant mining\n"
      "                    (0 = one per hardware thread; 1 = serial)\n"
      "  --assoc-cache 0|1 per-pair score memoization (default 1)\n";
}

Status RunCommand(const CommandLine& args, std::string* out) {
  if (args.Has("log-level")) {
    Result<obs::LogLevel> level =
        obs::LogLevelFromName(args.Get("log-level", ""));
    if (!level.ok()) return level.status();
    obs::SetLogLevel(level.value());
  }
  const std::string trace_out = args.Get("trace-out", "");
  if (!trace_out.empty()) obs::TraceRecorder::Shared().SetEnabled(true);
  Status status = [&]() -> Status {
    if (args.command == "simulate") return RunSimulate(args, out);
    if (args.command == "train") return RunTrain(args, out);
    if (args.command == "add-signature") return RunAddSignature(args, out);
    if (args.command == "diagnose") return RunDiagnose(args, out);
    if (args.command == "conflicts") return RunConflicts(args, out);
    if (args.command == "info") return RunInfo(args, out);
    if (args.command == "stats") return RunStats(args, out);
    if (args.command == "campaign") return RunCampaign(args, out);
    if (args.command == "serve") return RunServe(args, out);
    if (args.command == "stream") return RunStream(args, out);
    if (args.command == "events") return RunEvents(args, out);
    *out += Usage();
    return Status::InvalidArgument("unknown command: " + args.command);
  }();
  if (!trace_out.empty()) {
    const Status write =
        obs::TraceRecorder::Shared().WriteChromeTrace(trace_out);
    if (write.ok()) {
      *out += "wrote trace events to " + trace_out + "\n";
    } else if (status.ok()) {
      // The command itself succeeded; surface the trace-write failure.
      status = write;
    }
  }
  return status;
}

}  // namespace invarnetx::cli
