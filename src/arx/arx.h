#ifndef INVARNETX_ARX_ARX_H_
#define INVARNETX_ARX_ARX_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace invarnetx::arx {

// Order of an ARX(na, nb, delay) model:
//   y(t) = c + sum_{i=1..na} a_i y(t-i) + sum_{j=0..nb-1} b_j u(t-delay-j).
// This is the model family Jiang et al. use for pairwise invariants.
struct ArxOrder {
  int na = 1;
  int nb = 1;
  int delay = 0;

  std::string ToString() const;
};

// An ARX model fitted by ordinary least squares, scored by the fitness
// function F = 1 - ||y - yhat|| / ||y - ybar||, which is 1 for a perfect
// fit and <= 0 when the model is no better than the mean.
class ArxModel {
 public:
  static Result<ArxModel> Fit(const std::vector<double>& y,
                              const std::vector<double>& u,
                              const ArxOrder& order);

  const ArxOrder& order() const { return order_; }
  const std::vector<double>& a() const { return a_; }
  const std::vector<double>& b() const { return b_; }
  double intercept() const { return intercept_; }
  // Fitness on the training data.
  double fitness() const { return fitness_; }

  // One-step-ahead predictions on new data (same length as y; warmup
  // entries where lags are unavailable echo the observation).
  Result<std::vector<double>> PredictInSample(
      const std::vector<double>& y, const std::vector<double>& u) const;

  // Fitness of this (already fitted) model evaluated on new data.
  Result<double> EvaluateFitness(const std::vector<double>& y,
                                 const std::vector<double>& u) const;

 private:
  ArxModel() = default;

  ArxOrder order_;
  std::vector<double> a_;
  std::vector<double> b_;
  double intercept_ = 0.0;
  double fitness_ = 0.0;
};

// Grid-searches na in [1, max_na], nb in [1, max_nb], delay in [0, max_delay]
// and returns the model with the highest training fitness.
Result<ArxModel> FitArxBest(const std::vector<double>& y,
                            const std::vector<double>& u, int max_na = 2,
                            int max_nb = 2, int max_delay = 2);

// Association score used when ARX replaces MIC as the invariant engine:
// the held-out conformance rate of the pair under the best ARX model -
// the fraction of ticks whose one-step residual stays within 3-4x the
// training RMSE when the model learned on one half of the series polices
// the other half (how Jiang et al.'s trained invariants check residuals
// online). Symmetrized by taking the larger direction; in [0, 1].
Result<double> ArxAssociationScore(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace invarnetx::arx

#endif  // INVARNETX_ARX_ARX_H_
