#include "arx/arx.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>

#include "common/matrix.h"
#include "common/stats.h"

namespace invarnetx::arx {

std::string ArxOrder::ToString() const {
  return "ARX(" + std::to_string(na) + "," + std::to_string(nb) + "," +
         std::to_string(delay) + ")";
}

Result<ArxModel> ArxModel::Fit(const std::vector<double>& y,
                               const std::vector<double>& u,
                               const ArxOrder& order) {
  if (y.size() != u.size()) {
    return Status::InvalidArgument("ArxModel::Fit: length mismatch");
  }
  if (order.na < 0 || order.nb < 0 || order.delay < 0) {
    return Status::InvalidArgument("ArxModel::Fit: negative order");
  }
  if (order.na == 0 && order.nb == 0) {
    return Status::InvalidArgument("ArxModel::Fit: empty model");
  }
  const int warmup = std::max(order.na, order.delay + order.nb - 1);
  const int n = static_cast<int>(y.size());
  const int terms = 1 + order.na + order.nb;
  if (n - warmup < terms + 4) {
    return Status::InvalidArgument("ArxModel::Fit: series too short for " +
                                   order.ToString());
  }
  const size_t rows = static_cast<size_t>(n - warmup);
  Matrix x(rows, static_cast<size_t>(terms));
  std::vector<double> target(rows);
  for (int t = warmup; t < n; ++t) {
    const size_t r = static_cast<size_t>(t - warmup);
    size_t c = 0;
    x(r, c++) = 1.0;
    for (int i = 1; i <= order.na; ++i) {
      x(r, c++) = y[static_cast<size_t>(t - i)];
    }
    for (int j = 0; j < order.nb; ++j) {
      x(r, c++) = u[static_cast<size_t>(t - order.delay - j)];
    }
    target[r] = y[static_cast<size_t>(t)];
  }
  Result<std::vector<double>> beta = LeastSquares(x, target);
  if (!beta.ok()) return beta.status();

  ArxModel model;
  model.order_ = order;
  size_t c = 0;
  model.intercept_ = beta.value()[c++];
  model.a_.resize(static_cast<size_t>(order.na));
  for (int i = 0; i < order.na; ++i) model.a_[static_cast<size_t>(i)] = beta.value()[c++];
  model.b_.resize(static_cast<size_t>(order.nb));
  for (int j = 0; j < order.nb; ++j) model.b_[static_cast<size_t>(j)] = beta.value()[c++];

  Result<double> fit = model.EvaluateFitness(y, u);
  if (!fit.ok()) return fit.status();
  model.fitness_ = fit.value();
  return model;
}

Result<std::vector<double>> ArxModel::PredictInSample(
    const std::vector<double>& y, const std::vector<double>& u) const {
  if (y.size() != u.size()) {
    return Status::InvalidArgument("ArxModel::PredictInSample: length mismatch");
  }
  const int warmup = std::max(order_.na, order_.delay + order_.nb - 1);
  const int n = static_cast<int>(y.size());
  std::vector<double> preds(y.size());
  for (int t = 0; t < n; ++t) {
    if (t < warmup) {
      preds[static_cast<size_t>(t)] = y[static_cast<size_t>(t)];
      continue;
    }
    double acc = intercept_;
    for (int i = 1; i <= order_.na; ++i) {
      acc += a_[static_cast<size_t>(i - 1)] * y[static_cast<size_t>(t - i)];
    }
    for (int j = 0; j < order_.nb; ++j) {
      acc += b_[static_cast<size_t>(j)] *
             u[static_cast<size_t>(t - order_.delay - j)];
    }
    preds[static_cast<size_t>(t)] = acc;
  }
  return preds;
}

Result<double> ArxModel::EvaluateFitness(const std::vector<double>& y,
                                         const std::vector<double>& u) const {
  Result<std::vector<double>> preds = PredictInSample(y, u);
  if (!preds.ok()) return preds.status();
  const int warmup = std::max(order_.na, order_.delay + order_.nb - 1);
  std::vector<double> tail(y.begin() + warmup, y.end());
  if (tail.size() < 2) {
    return Status::InvalidArgument("EvaluateFitness: series too short");
  }
  const double mean = Mean(tail);
  double num = 0.0, den = 0.0;
  for (size_t t = static_cast<size_t>(warmup); t < y.size(); ++t) {
    const double e = y[t] - preds.value()[t];
    num += e * e;
    const double d = y[t] - mean;
    den += d * d;
  }
  if (den <= 0.0) {
    // Constant target: a model either matches it exactly or it does not.
    return num <= 1e-18 ? 1.0 : 0.0;
  }
  return 1.0 - std::sqrt(num) / std::sqrt(den);
}

Result<ArxModel> FitArxBest(const std::vector<double>& y,
                            const std::vector<double>& u, int max_na,
                            int max_nb, int max_delay) {
  std::optional<ArxModel> best;
  for (int na = 1; na <= max_na; ++na) {
    for (int nb = 1; nb <= max_nb; ++nb) {
      for (int delay = 0; delay <= max_delay; ++delay) {
        Result<ArxModel> fit = ArxModel::Fit(y, u, ArxOrder{na, nb, delay});
        if (!fit.ok()) continue;
        if (!best.has_value() || fit.value().fitness() > best->fitness()) {
          best = std::move(fit.value());
        }
      }
    }
  }
  if (!best.has_value()) {
    return Status::NumericalError("FitArxBest: no order fitted");
  }
  return *std::move(best);
}

namespace {

// Conformance rate of held-out data under the best model trained on the
// other (interleaved) fold: the fraction of evaluated ticks whose one-step
// residual stays within 3x the training RMSE, averaged over both folds.
// This mirrors how Jiang et al. check a *trained* ARX invariant online
// (per-tick residual bounds): any regime the linear law does not cover
// counts against the pair tick by tick, which is what makes ARX invariants
// break easily - and their violation patterns look alike - under any
// performance problem (Sec. 4.3).
Result<double> ConformanceScore(const std::vector<double>& y,
                                const std::vector<double>& u) {
  const size_t n = y.size();
  if (n / 2 < 12) return Status::InvalidArgument("series too short for CV");
  // Time-halves folds: the invariant is learned from one stretch of time
  // and checked on the other, exactly as a deployed invariant trained
  // yesterday polices today's residuals.
  const size_t half = n / 2;
  const std::vector<double> y1(y.begin(), y.begin() + static_cast<long>(half));
  const std::vector<double> u1(u.begin(), u.begin() + static_cast<long>(half));
  const std::vector<double> y2(y.begin() + static_cast<long>(half), y.end());
  const std::vector<double> u2(u.begin() + static_cast<long>(half), u.end());
  constexpr int kMaxNa = 4, kMaxNb = 4, kMaxDelay = 3;
  auto fold = [](const std::vector<double>& train_y,
                 const std::vector<double>& train_u,
                 const std::vector<double>& eval_y,
                 const std::vector<double>& eval_u) -> Result<double> {
    Result<ArxModel> model = FitArxBest(train_y, train_u, kMaxNa, kMaxNb,
                                        kMaxDelay);
    if (!model.ok()) return model.status();
    Result<std::vector<double>> train_pred =
        model.value().PredictInSample(train_y, train_u);
    if (!train_pred.ok()) return train_pred.status();
    double sse = 0.0;
    for (size_t t = 0; t < train_y.size(); ++t) {
      const double e = train_y[t] - train_pred.value()[t];
      sse += e * e;
    }
    const double bound =
        4.0 * std::sqrt(std::max(sse / train_y.size(), 1e-12));
    Result<std::vector<double>> eval_pred =
        model.value().PredictInSample(eval_y, eval_u);
    if (!eval_pred.ok()) return eval_pred.status();
    int conforming = 0;
    for (size_t t = 0; t < eval_y.size(); ++t) {
      if (std::fabs(eval_y[t] - eval_pred.value()[t]) <= bound) ++conforming;
    }
    return static_cast<double>(conforming) /
           static_cast<double>(eval_y.size());
  };
  double total = 0.0;
  int folds = 0;
  Result<double> f1 = fold(y1, u1, y2, u2);
  if (f1.ok()) {
    total += f1.value();
    ++folds;
  }
  Result<double> f2 = fold(y2, u2, y1, u1);
  if (f2.ok()) {
    total += f2.value();
    ++folds;
  }
  if (folds == 0) return Status::NumericalError("no CV fold fitted");
  return total / folds;
}

}  // namespace

Result<double> ArxAssociationScore(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  Result<double> forward = ConformanceScore(y, x);
  Result<double> backward = ConformanceScore(x, y);
  if (!forward.ok() && !backward.ok()) return forward.status();
  double score = 0.0;
  if (forward.ok()) score = std::max(score, forward.value());
  if (backward.ok()) score = std::max(score, backward.value());
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace invarnetx::arx
