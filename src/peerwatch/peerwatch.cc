#include "peerwatch/peerwatch.h"

#include <cmath>

#include "common/stats.h"

namespace invarnetx::peerwatch {
namespace {

// Pairs (i, j), i < j over `slaves` indices, flattened.
int PairCount(size_t slaves) {
  return static_cast<int>(slaves * (slaves - 1) / 2);
}

int PairIndex(size_t i, size_t j, size_t slaves) {
  int index = 0;
  for (size_t row = 0; row < i; ++row) {
    index += static_cast<int>(slaves - 1 - row);
  }
  return index + static_cast<int>(j - i - 1);
}

}  // namespace

Status PeerWatch::Train(
    const std::vector<telemetry::RunTrace>& normal_runs) {
  if (normal_runs.size() < 2) {
    return Status::InvalidArgument("PeerWatch::Train: need >= 2 runs");
  }
  if (normal_runs[0].nodes.size() < 3) {  // master + >= 2 slaves
    return Status::InvalidArgument("PeerWatch::Train: need >= 2 slaves");
  }
  num_slaves_ = normal_runs[0].nodes.size() - 1;
  const int pairs = PairCount(num_slaves_);

  baseline_.assign(telemetry::kNumMetrics,
                   std::vector<double>(static_cast<size_t>(pairs), 0.0));
  std::vector<std::vector<int>> counts(
      telemetry::kNumMetrics, std::vector<int>(static_cast<size_t>(pairs), 0));
  for (const telemetry::RunTrace& run : normal_runs) {
    if (run.nodes.size() != num_slaves_ + 1) {
      return Status::InvalidArgument(
          "PeerWatch::Train: runs differ in node count");
    }
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      for (size_t i = 0; i < num_slaves_; ++i) {
        for (size_t j = i + 1; j < num_slaves_; ++j) {
          Result<double> corr = PearsonCorrelation(
              run.nodes[i + 1].metrics[static_cast<size_t>(m)],
              run.nodes[j + 1].metrics[static_cast<size_t>(m)]);
          if (!corr.ok()) return corr.status();
          const size_t p =
              static_cast<size_t>(PairIndex(i, j, num_slaves_));
          baseline_[static_cast<size_t>(m)][p] += corr.value();
          ++counts[static_cast<size_t>(m)][p];
        }
      }
    }
  }
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    for (int p = 0; p < pairs; ++p) {
      double& value = baseline_[static_cast<size_t>(m)][static_cast<size_t>(p)];
      value /= counts[static_cast<size_t>(m)][static_cast<size_t>(p)];
      // Weakly correlated metrics carry no peer signal.
      if (std::fabs(value) < options_.min_baseline) value = kUntracked;
    }
  }
  return Status::Ok();
}

int PeerWatch::NumTrackedCorrelations() const {
  int tracked = 0;
  for (const std::vector<double>& metric : baseline_) {
    for (double value : metric) tracked += value != kUntracked;
  }
  return tracked;
}

Result<PeerWatch::Scan> PeerWatch::Detect(
    const telemetry::RunTrace& run) const {
  if (baseline_.empty()) {
    return Status::FailedPrecondition("PeerWatch::Detect: not trained");
  }
  if (run.nodes.size() != num_slaves_ + 1) {
    return Status::InvalidArgument("PeerWatch::Detect: node count mismatch");
  }
  Scan scan;
  scan.nodes.resize(num_slaves_);
  for (size_t i = 0; i < num_slaves_; ++i) {
    scan.nodes[i].node_ip = run.nodes[i + 1].ip;
    scan.nodes[i].node_index = i + 1;
  }
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    for (size_t i = 0; i < num_slaves_; ++i) {
      for (size_t j = i + 1; j < num_slaves_; ++j) {
        const double base =
            baseline_[static_cast<size_t>(m)]
                     [static_cast<size_t>(PairIndex(i, j, num_slaves_))];
        if (base == kUntracked) continue;
        Result<double> corr = PearsonCorrelation(
            run.nodes[i + 1].metrics[static_cast<size_t>(m)],
            run.nodes[j + 1].metrics[static_cast<size_t>(m)]);
        if (!corr.ok()) return corr.status();
        ++scan.nodes[i].tracked;
        ++scan.nodes[j].tracked;
        // Correlations carry the baseline's sign; a deviated pair implicates
        // both endpoints, and the true culprit accumulates deviations
        // against every peer.
        const double drop = std::fabs(base) - std::fabs(corr.value());
        if (drop > options_.deviation_threshold) {
          ++scan.nodes[i].deviated;
          ++scan.nodes[j].deviated;
        }
      }
    }
  }
  double best = 0.0;
  for (size_t i = 0; i < num_slaves_; ++i) {
    NodeScore& node = scan.nodes[i];
    node.flagged = node.tracked > 0 &&
                   node.fraction() >= options_.flag_fraction;
    if (node.flagged && node.fraction() > best) {
      best = node.fraction();
      scan.culprit = static_cast<int>(i);
    }
  }
  return scan;
}

}  // namespace invarnetx::peerwatch
