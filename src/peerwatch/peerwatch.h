#ifndef INVARNETX_PEERWATCH_PEERWATCH_H_
#define INVARNETX_PEERWATCH_PEERWATCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace invarnetx::peerwatch {

// A PeerWatch-style fault locator (Kang, Chen, Jiang: "PeerWatch: a fault
// detection and diagnosis tool for virtualized consolidation systems",
// ICAC 2010), the correlation-based related work the paper critiques in
// Sec. 5. The premise: peer nodes doing the same work exhibit correlated
// metrics; a faulty node's correlations with its peers collapse.
//
// Training learns, per metric and per slave pair, the typical cross-node
// correlation over fault-free runs. Detection recomputes the correlations
// on a fresh run and scores each node by how many of its (metric, peer)
// correlations dropped far below baseline. The paper's counter-example -
// a fault that degrades EVERY node the same way keeps peers correlated and
// is invisible to this method - is reproduced by bench/peerwatch_critique.
struct PeerWatchOptions {
  // A (metric, pair) correlation counts as deviated when it drops more
  // than this below its learned baseline.
  double deviation_threshold = 0.4;
  // A node is flagged when at least this fraction of its (metric, peer)
  // combinations deviate.
  double flag_fraction = 0.25;
  // Metrics whose baseline |correlation| is below this carry no peer
  // signal and are skipped.
  double min_baseline = 0.4;
};

class PeerWatch {
 public:
  explicit PeerWatch(PeerWatchOptions options = PeerWatchOptions())
      : options_(options) {}

  // Learns baseline cross-node correlations from fault-free runs (all
  // slaves, all metrics). Requires >= 2 runs and >= 2 slaves.
  Status Train(const std::vector<telemetry::RunTrace>& normal_runs);

  struct NodeScore {
    std::string node_ip;
    size_t node_index = 0;
    int deviated = 0;  // (metric, peer) combinations below baseline
    int tracked = 0;   // combinations with a usable baseline
    bool flagged = false;

    double fraction() const {
      return tracked > 0 ? static_cast<double>(deviated) / tracked : 0.0;
    }
  };

  struct Scan {
    std::vector<NodeScore> nodes;
    int culprit = -1;  // index into nodes, -1 when nothing flagged
    bool AnyFlagged() const { return culprit >= 0; }
  };

  // Scores every slave of the run. Requires Train first.
  Result<Scan> Detect(const telemetry::RunTrace& run) const;

  bool trained() const { return !baseline_.empty(); }
  // Number of (metric, pair) baselines retained after the min_baseline cut.
  int NumTrackedCorrelations() const;

 private:
  // baseline_[metric][pair] = mean normal correlation; pairs enumerate
  // (i, j), i < j over slave indices; kUntracked marks skipped entries.
  static constexpr double kUntracked = -2.0;
  PeerWatchOptions options_;
  size_t num_slaves_ = 0;
  std::vector<std::vector<double>> baseline_;
};

}  // namespace invarnetx::peerwatch

#endif  // INVARNETX_PEERWATCH_PEERWATCH_H_
