#include "causal/ranking.h"

#include <algorithm>
#include <array>

namespace invarnetx::causal {
namespace {

// Floors for zero deviations/weights (possible on hand-built graphs and on
// degenerate slices whose association scores are exactly 0): a broken edge
// always attracts a sliver of restart mass and always conducts, so the
// all-degenerate case still yields a well-defined uniform ranking instead
// of dividing by zero or silently dropping edges.
constexpr double kFloor = 1e-9;

// Sum that is a function of the addend multiset alone: sorting by value
// before accumulating removes the dependence of floating-point addition on
// operand order, which is what makes every score bit-identical across
// metric-index permutations, repeated runs, and thread counts.
double MultisetSum(std::vector<double>* terms) {
  std::sort(terms->begin(), terms->end());
  double sum = 0.0;
  for (double term : *terms) sum += term;
  return sum;
}

}  // namespace

std::vector<RankedSuspect> RankSuspects(const InvariantGraph& graph,
                                        const RankingOptions& options) {
  constexpr size_t kN = static_cast<size_t>(telemetry::kNumMetrics);

  // Restart distribution: each broken edge deposits its deviation on both
  // endpoints, so the walk keeps returning to the metrics whose invariants
  // broke hardest. Also the weighted broken-degree each node divides its
  // outflow by.
  std::array<std::vector<double>, kN> base_terms;
  std::array<std::vector<double>, kN> strength_terms;
  for (const InvariantEdge& edge : graph.edges) {
    if (!edge.broken) continue;
    const double deviation = std::max(edge.deviation, kFloor);
    const double weight = std::max(edge.weight, kFloor);
    const size_t a = static_cast<size_t>(edge.metric_a);
    const size_t b = static_cast<size_t>(edge.metric_b);
    base_terms[a].push_back(deviation);
    base_terms[b].push_back(deviation);
    strength_terms[a].push_back(weight);
    strength_terms[b].push_back(weight);
  }

  std::array<double, kN> base{};
  std::array<double, kN> strength{};
  std::vector<double> totals;
  for (size_t m = 0; m < kN; ++m) {
    base[m] = MultisetSum(&base_terms[m]);
    strength[m] = MultisetSum(&strength_terms[m]);
    if (base[m] > 0.0) totals.push_back(base[m]);
  }
  if (totals.empty()) return {};  // nothing broken: nobody to suspect
  const double total = MultisetSum(&totals);
  for (size_t m = 0; m < kN; ++m) base[m] /= total;

  // Deterministic power iteration of the personalized walk over the
  // broken-edge subgraph: a node emits its mass across its broken edges in
  // proportion to the strength of the violated association (a decisively
  // broken tight coupling conducts more blame than a weak one).
  const double damping = std::clamp(options.damping, 0.0, 1.0);
  const int iterations = std::max(options.iterations, 1);
  std::array<double, kN> score = base;
  std::array<double, kN> next{};
  std::vector<double> incoming;
  for (int it = 0; it < iterations; ++it) {
    for (size_t m = 0; m < kN; ++m) {
      incoming.clear();
      for (int e : graph.incident[m]) {
        const InvariantEdge& edge = graph.edges[static_cast<size_t>(e)];
        if (!edge.broken) continue;
        const size_t n = static_cast<size_t>(
            edge.metric_a == static_cast<int>(m) ? edge.metric_b
                                                 : edge.metric_a);
        incoming.push_back(score[n] * std::max(edge.weight, kFloor) /
                           strength[n]);
      }
      next[m] = (1.0 - damping) * base[m] + damping * MultisetSum(&incoming);
    }
    score = next;
  }

  std::vector<RankedSuspect> suspects;
  for (size_t m = 0; m < kN; ++m) {
    if (score[m] > 0.0) {
      suspects.push_back(RankedSuspect{static_cast<int>(m), score[m]});
    }
  }
  std::stable_sort(suspects.begin(), suspects.end(),
                   [](const RankedSuspect& x, const RankedSuspect& y) {
                     if (x.score != y.score) return x.score > y.score;
                     return x.metric < y.metric;
                   });
  if (options.top_k > 0 && suspects.size() > options.top_k) {
    suspects.resize(options.top_k);
  }
  return suspects;
}

}  // namespace invarnetx::causal
