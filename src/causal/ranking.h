#ifndef INVARNETX_CAUSAL_RANKING_H_
#define INVARNETX_CAUSAL_RANKING_H_

#include <cstddef>
#include <vector>

#include "causal/graph.h"

namespace invarnetx::causal {

// One suspect metric in a causal ranking, most suspicious first.
struct RankedSuspect {
  int metric = 0;      // telemetry::MetricId
  double score = 0.0;  // stationary blame mass, sums to ~1 over suspects
};

// Knobs of the score-propagation walk. Defaults are the ones the pipeline's
// causal fallback uses; campaigns and tests override iterations/top_k only.
struct RankingOptions {
  // Fixed iteration count: the walk is a deterministic power iteration, not
  // a sampled random walk, so there is no RNG and no convergence test whose
  // outcome could depend on floating-point round-off direction.
  int iterations = 64;
  // Fraction of each metric's next-round mass that arrives from neighbors;
  // the rest is the personalized restart toward broken-edge endpoints.
  double damping = 0.5;
  // Suspects retained (0 = all with positive score).
  size_t top_k = 5;
};

// Ranks suspect metrics over the broken-edge subgraph of `graph`: the
// restart distribution concentrates on the endpoints of broken invariants
// (proportional to how badly each broke), and mass then diffuses across the
// broken edges weighted by the strength of the violated association, so a
// metric at the center of many decisively broken, formerly tight couplings
// accumulates the blame.
//
// Deterministic by construction: per-node contribution lists are sorted by
// numeric value before summation, so every score is a function of the
// contribution *multiset* - bit-identical across runs, thread counts, and
// metric-index permutations. A graph with no broken edges ranks nobody
// (empty result), never an error.
std::vector<RankedSuspect> RankSuspects(const InvariantGraph& graph,
                                        const RankingOptions& options = {});

}  // namespace invarnetx::causal

#endif  // INVARNETX_CAUSAL_RANKING_H_
