#ifndef INVARNETX_CAUSAL_GRAPH_H_
#define INVARNETX_CAUSAL_GRAPH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics.h"

// The invariant network of one operation context viewed as a weighted
// undirected graph: nodes are the 26 collectl metrics, edges are the mined
// invariants, edge weight is the stored association score I(m, n). A
// diagnosis marks the violated edges "broken" and attaches the deviation
// |I - A| that broke them; the causal ranking (ranking.h) then propagates
// blame over this graph to localize faults the signature database has never
// seen (RADICE-style graph comparison, ExplainIt!-style ranked suspects).
namespace invarnetx::causal {

// One invariant edge in metric-pair space.
struct InvariantEdge {
  int pair_index = 0;  // flat upper-triangle index (telemetry::PairIndex)
  int metric_a = 0;    // lower MetricId of the pair
  int metric_b = 0;    // higher MetricId of the pair
  // Stored invariant value I(a, b) in [0, 1] - how tightly the two metrics
  // moved together across the normal runs.
  double weight = 0.0;
  bool broken = false;     // violated in the diagnosed run
  double deviation = 0.0;  // |I - A| when broken; 0.0 otherwise
};

struct InvariantGraph {
  // Every invariant, ascending pair index (the order of
  // core::InvariantSet::PairIndices() and of violation tuples).
  std::vector<InvariantEdge> edges;
  // Indices into `edges` for the edges incident to each metric, ascending.
  std::array<std::vector<int>, telemetry::kNumMetrics> incident;

  int num_edges() const { return static_cast<int>(edges.size()); }
  int num_broken() const;
};

// Builds the graph from the core layer's invariant-network layout without
// depending on it: `present` / `values` hold one entry per metric pair
// (kNumMetricPairs, flat upper-triangle order), `violations` / `deviations`
// one entry per *invariant* (ascending pair index - exactly the layout of
// DiagnosisReport::violations / ::deviations). `deviations` may be empty,
// in which case every broken edge gets deviation 1.0.
//
// An all-zero `present` (nothing mined - e.g. a fully degenerate,
// all-constant training slice) yields a graph with no edges; rankings over
// it are empty, never an error.
Result<InvariantGraph> BuildInvariantGraph(
    const std::vector<uint8_t>& present, const std::vector<double>& values,
    const std::vector<uint8_t>& violations,
    const std::vector<double>& deviations);

}  // namespace invarnetx::causal

#endif  // INVARNETX_CAUSAL_GRAPH_H_
