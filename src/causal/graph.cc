#include "causal/graph.h"

#include <algorithm>
#include <string>

namespace invarnetx::causal {

int InvariantGraph::num_broken() const {
  int broken = 0;
  for (const InvariantEdge& edge : edges) broken += edge.broken ? 1 : 0;
  return broken;
}

Result<InvariantGraph> BuildInvariantGraph(
    const std::vector<uint8_t>& present, const std::vector<double>& values,
    const std::vector<uint8_t>& violations,
    const std::vector<double>& deviations) {
  const size_t pairs = static_cast<size_t>(telemetry::kNumMetricPairs);
  if (present.size() != pairs || values.size() != pairs) {
    return Status::InvalidArgument(
        "BuildInvariantGraph: present/values want " + std::to_string(pairs) +
        " metric-pair entries, got " + std::to_string(present.size()) + "/" +
        std::to_string(values.size()));
  }
  size_t num_invariants = 0;
  for (uint8_t bit : present) num_invariants += bit ? 1 : 0;
  if (violations.size() != num_invariants) {
    return Status::InvalidArgument(
        "BuildInvariantGraph: violation tuple wants " +
        std::to_string(num_invariants) + " entries (one per invariant), got " +
        std::to_string(violations.size()));
  }
  if (!deviations.empty() && deviations.size() != num_invariants) {
    return Status::InvalidArgument(
        "BuildInvariantGraph: deviations want " +
        std::to_string(num_invariants) + " entries or none, got " +
        std::to_string(deviations.size()));
  }

  InvariantGraph graph;
  graph.edges.reserve(num_invariants);
  size_t invariant = 0;
  for (size_t p = 0; p < pairs; ++p) {
    if (!present[p]) continue;
    InvariantEdge edge;
    edge.pair_index = static_cast<int>(p);
    telemetry::PairFromIndex(edge.pair_index, &edge.metric_a, &edge.metric_b);
    // Association scores live in [0, 1] by construction; clamp anyway so a
    // hand-built or corrupted store can never push propagation negative.
    edge.weight = std::clamp(values[p], 0.0, 1.0);
    edge.broken = violations[invariant] != 0;
    if (edge.broken) {
      edge.deviation = deviations.empty()
                           ? 1.0
                           : std::max(deviations[invariant], 0.0);
    }
    const int index = static_cast<int>(graph.edges.size());
    graph.incident[static_cast<size_t>(edge.metric_a)].push_back(index);
    graph.incident[static_cast<size_t>(edge.metric_b)].push_back(index);
    graph.edges.push_back(edge);
    ++invariant;
  }
  return graph;
}

}  // namespace invarnetx::causal
