#ifndef INVARNETX_CLUSTER_CPI_H_
#define INVARNETX_CLUSTER_CPI_H_

#include "cluster/drivers.h"
#include "cluster/node.h"

namespace invarnetx::cluster {

// Decomposition of a node's effective CPI for one tick.
struct CpiSample {
  double cpi = 1.0;             // measured cycles-per-instruction
  double progress_share = 1.0;  // fraction of demanded work actually retired
};

// Computes the effective CPI of the Hadoop task processes on a node.
//
// CPI = cpi_base * contention terms * (1 + AR(1) noise). The key modelling
// decision (Sec. 3.1 of the paper): plain CPU *utilization* from co-located
// processes does NOT raise CPI as long as spare cores absorb it - only
// contention for shared micro-architectural resources (cache_pressure),
// memory thrashing, I/O stalls, network stalls and lock contention do.
// A suspended process retires almost nothing, so its apparent CPI spikes.
CpiSample ComputeCpi(const SimNode& node);

// Instructions retired by the node's task processes during one tick of
// `tick_seconds`, given the CPI sample.
double InstructionsRetired(const SimNode& node, const CpiSample& sample,
                           double tick_seconds);

}  // namespace invarnetx::cluster

#endif  // INVARNETX_CLUSTER_CPI_H_
