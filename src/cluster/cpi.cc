#include "cluster/cpi.h"

#include <algorithm>
#include <cmath>

namespace invarnetx::cluster {

CpiSample ComputeCpi(const SimNode& node) {
  const DriverState& d = node.drivers;

  // Core oversubscription: co-located CPU demand beyond the free cores
  // causes cache/context interference (a modest CPU disturbance that fits
  // in the headroom leaves CPI untouched - the Fig. 2 behaviour).
  const double total_cpu = d.cpu_task + d.cpu_extra;
  const double oversub = std::max(0.0, total_cpu - 1.0);
  const double cache_eff = d.cache_pressure + 0.8 * oversub;

  // Memory: above ~85% occupancy the node starts swapping and thrashing.
  const double mem_used =
      d.mem_task_mb + d.mem_extra_mb + 1200.0;  // 1200 MB OS/daemon base
  const double occupancy = mem_used / node.spec.mem_total_mb;
  const double swap_thrash = std::max(0.0, occupancy - 0.85) * 6.0;

  // Disk: demand beyond the device bandwidth stalls tasks on I/O. Demands
  // are relative to the reference device, so slower disks stall earlier.
  const double io_total =
      (d.io_read + d.io_write + d.io_extra) * node.DiskDemandScale();
  const double io_stall = std::max(0.0, io_total - 1.0);

  // Network: loss and latency stall tasks only in proportion to how
  // network-dependent the current phase is.
  const double net_dependency = std::clamp(d.net_in + d.net_out, 0.0, 1.0);
  const double net_stall =
      (8.0 * d.pkt_loss + d.net_delay_ms / 150.0) * net_dependency;

  const double contention = 1.0 + 0.9 * cache_eff + 0.5 * swap_thrash +
                            0.45 * io_stall + 0.6 * net_stall +
                            0.5 * d.lock_contention + 0.3 * d.gc_activity +
                            0.25 * d.restart_churn;

  double share = std::clamp(d.progress_scale, 0.02, 1.0);
  if (d.suspended) share = 0.02;

  CpiSample sample;
  // Stalled-but-scheduled processes keep burning cycles without retiring
  // instructions, so reduced progress shows up as elevated measured CPI -
  // this is what keeps T = I * CPI * C an identity in the simulator.
  sample.cpi = d.cpi_base * node.spec.cpi_factor * contention *
               (1.0 + d.cpi_noise) / share;
  sample.cpi = std::max(sample.cpi, 0.05);
  sample.progress_share = share;
  return sample;
}

double InstructionsRetired(const SimNode& node, const CpiSample& sample,
                           double tick_seconds) {
  const double demand = std::clamp(node.drivers.cpu_task, 0.0, 1.0);
  return node.InstructionsPerSecondAtCpi1() * tick_seconds * demand /
         sample.cpi;
}

}  // namespace invarnetx::cluster
