#ifndef INVARNETX_CLUSTER_DRIVERS_H_
#define INVARNETX_CLUSTER_DRIVERS_H_

#include <array>

namespace invarnetx::cluster {

// Number of generic per-metric noise slots faults may perturb (the telemetry
// layer maps its metric catalog onto the first entries).
inline constexpr int kMetricNoiseSlots = 32;

// Latent activity drivers of one node for one simulation tick.
//
// The pipeline under test only ever sees *observable* metrics; these drivers
// are the hidden state that (a) the workload model writes, (b) fault
// injectors perturb, and (c) the telemetry layer maps to the 26 observable
// metrics and to CPI. Shared drivers are what make metric pairs co-move and
// hence form MIC invariants; faults perturb specific drivers, which is what
// breaks specific invariants.
//
// Demand-style fields are normalized so 1.0 saturates the corresponding
// hardware resource of the node.
struct DriverState {
  // -- written fresh by the workload model each tick --------------------
  double cpu_task = 0.0;     // CPU demand from Hadoop tasks
  double io_read = 0.0;      // disk read demand
  double io_write = 0.0;     // disk write demand
  double net_in = 0.0;       // inbound network demand
  double net_out = 0.0;      // outbound network demand
  double mem_task_mb = 0.0;  // working set of running tasks
  double task_churn = 0.0;   // task spawn/teardown intensity
  double rpc_rate = 0.0;     // heartbeat/RPC traffic intensity
  double cpi_base = 1.0;     // workload-intrinsic cycles per instruction

  // -- persistent or fault-controlled ----------------------------------
  double cpu_extra = 0.0;       // co-located CPU consumers (noise or hog)
  double cache_pressure = 0.0;  // cache/membw interference; affects CPI only
  double mem_extra_mb = 0.0;    // co-located memory consumers
  double io_extra = 0.0;        // co-located disk activity
  double rpc_backlog = 0.0;     // queued RPC calls (grows under RPC stalls)
  double extra_threads = 0.0;   // leaked/extra threads in server processes
  double gc_activity = 0.0;     // JVM GC intensity
  double lock_contention = 0.0; // lock-wait intensity
  double pkt_loss = 0.0;        // packet loss fraction in [0, 1]
  double net_delay_ms = 0.0;    // added one-way network latency
  double restart_churn = 0.0;   // process crash/restart intensity
  bool suspended = false;       // SIGSTOP'd server process
  double progress_scale = 1.0;  // multiplier on instruction retirement

  // Per-tick AR(1) noise states (updated by the engine).
  double cpi_noise = 0.0;
  double demand_noise = 0.0;

  // Extra multiplicative jitter a fault applies to individual observable
  // metrics (indexed by telemetry metric id). Models faults - like lock
  // races - whose manifestation is metric-level and nondeterministic.
  std::array<double, kMetricNoiseSlots> metric_noise{};

  // Clears the fields the workload rewrites each tick; persistent and
  // fault-controlled fields survive between ticks.
  void ResetPerTick() {
    cpu_task = 0.0;
    io_read = 0.0;
    io_write = 0.0;
    net_in = 0.0;
    net_out = 0.0;
    mem_task_mb = 0.0;
    task_churn = 0.0;
    rpc_rate = 0.0;
  }
};

}  // namespace invarnetx::cluster

#endif  // INVARNETX_CLUSTER_DRIVERS_H_
