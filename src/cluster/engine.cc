#include "cluster/engine.h"

#include <algorithm>
#include <cmath>

namespace invarnetx::cluster {
namespace {

// Clears the fault-controlled driver fields; active faults re-assert their
// values immediately afterwards, so an expired fault's effects vanish.
void ResetFaultControlled(DriverState* d) {
  d->cpu_extra = 0.0;
  d->cache_pressure = 0.0;
  d->mem_extra_mb = 0.0;
  d->io_extra = 0.0;
  d->rpc_backlog = 0.0;
  d->extra_threads = 0.0;
  d->lock_contention = 0.0;
  d->pkt_loss = 0.0;
  d->net_delay_ms = 0.0;
  d->restart_churn = 0.0;
  d->suspended = false;
  d->progress_scale = 1.0;
  d->metric_noise.fill(0.0);
}

}  // namespace

EngineResult SimulationEngine::Run(Cluster* cluster, WorkloadModel* workload,
                                   const std::vector<FaultInjector*>& faults,
                                   TelemetrySink* sink, Rng* rng) {
  EngineResult result;
  std::vector<CpiSample> samples(cluster->size());
  for (int tick = 0; tick < config_.max_ticks; ++tick) {
    for (SimNode& node : cluster->nodes()) {
      node.drivers.ResetPerTick();
      ResetFaultControlled(&node.drivers);
    }

    workload->Step(tick, cluster, rng);
    for (FaultInjector* fault : faults) fault->Apply(tick, cluster, rng);

    for (SimNode& node : cluster->nodes()) {
      DriverState& d = node.drivers;
      // Ambient AR(1) noise: slow drifts in CPI and demand.
      d.cpi_noise = 0.7 * d.cpi_noise + rng->Gaussian(0.0, 0.012);
      d.demand_noise = 0.6 * d.demand_noise + rng->Gaussian(0.0, 0.02);
      // JVM garbage collection intensifies with memory occupancy.
      const double occupancy =
          (d.mem_task_mb + d.mem_extra_mb + 1200.0) / node.spec.mem_total_mb;
      d.gc_activity = std::clamp((occupancy - 0.75) * 3.0, 0.0, 1.0);
    }

    for (size_t i = 0; i < cluster->size(); ++i) {
      SimNode& node = cluster->node(i);
      samples[i] = ComputeCpi(node);
      const double retired =
          InstructionsRetired(node, samples[i], config_.tick_seconds);
      workload->OnProgress(i, retired);
    }

    if (sink != nullptr) sink->Record(tick, *cluster, samples);
    ++result.ticks_run;
    if (workload->Finished()) {
      result.workload_finished = true;
      break;
    }
  }
  result.duration_seconds = result.ticks_run * config_.tick_seconds;
  return result;
}

}  // namespace invarnetx::cluster
