#include "cluster/node.h"

namespace invarnetx::cluster {
namespace {

// The four slave hardware profiles the testbed cycles through.
const NodeSpec kSlaveProfiles[] = {
    // cores, GHz, mem MB, disk MB/s, net Mb/s, cpi factor
    {8, 2.1, 16384.0, 120.0, 1000.0, 1.00},
    {4, 2.6, 8192.0, 105.0, 1000.0, 0.88},
    {12, 1.8, 24576.0, 140.0, 1000.0, 1.18},
    {8, 2.1, 16384.0, 95.0, 1000.0, 1.05},
};

Cluster Build(int num_slaves, const NodeSpec* uniform_spec) {
  Cluster cluster;
  for (int i = 0; i <= num_slaves; ++i) {
    SimNode node;
    node.ip = "10.0.0." + std::to_string(i + 1);
    node.role = i == 0 ? NodeRole::kMaster : NodeRole::kSlave;
    if (uniform_spec != nullptr) {
      node.spec = *uniform_spec;
    } else {
      node.spec = i == 0 ? NodeSpec() : kSlaveProfiles[(i - 1) % 4];
    }
    cluster.nodes().push_back(std::move(node));
  }
  return cluster;
}

}  // namespace

Cluster Cluster::MakeTestbed(int num_slaves) {
  return Build(num_slaves, nullptr);
}

Cluster Cluster::MakeUniformTestbed(int num_slaves, const NodeSpec& spec) {
  return Build(num_slaves, &spec);
}

Result<size_t> Cluster::IndexOf(const std::string& ip) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].ip == ip) return i;
  }
  return Status::NotFound("no node with ip " + ip);
}

}  // namespace invarnetx::cluster
