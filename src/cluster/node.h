#ifndef INVARNETX_CLUSTER_NODE_H_
#define INVARNETX_CLUSTER_NODE_H_

#include <string>
#include <vector>

#include "cluster/drivers.h"
#include "common/status.h"

namespace invarnetx::cluster {

// Role of a node in the (simulated) Hadoop deployment.
enum class NodeRole {
  kMaster,  // JobTracker + NameNode
  kSlave,   // TaskTracker + DataNode
};

// Hardware description, mirroring the paper's testbed machines
// (2 x 4-core Xeon 2.1 GHz, 16 GB RAM, 1 TB disk, gigabit NIC).
struct NodeSpec {
  int cores = 8;
  double freq_ghz = 2.1;
  double mem_total_mb = 16384.0;
  double disk_mbps = 120.0;  // sequential bandwidth at util 1.0
  double net_mbps = 1000.0;
  // Micro-architectural CPI multiplier relative to the reference machine
  // (cache sizes, memory latency); this is the hardware heterogeneity that
  // makes per-node operation contexts necessary.
  double cpi_factor = 1.0;
};

// One simulated machine.
struct SimNode {
  std::string ip;
  NodeRole role = NodeRole::kSlave;
  NodeSpec spec;
  DriverState drivers;

  // Peak instruction retirement per second at CPI = 1 (all cores busy).
  double InstructionsPerSecondAtCpi1() const {
    return spec.cores * spec.freq_ghz * 1e9;
  }

  // Workload I/O demand is expressed relative to the 120 MB/s reference
  // device; a slower disk serves the same absolute demand at higher
  // utilization (and saturates sooner).
  double DiskDemandScale() const { return 120.0 / spec.disk_mbps; }
};

// The whole deployment: node 0 is the master, the rest are slaves.
class Cluster {
 public:
  // Builds the 5-machine testbed: 1 master + `num_slaves` slaves with
  // addresses 10.0.0.1 .. 10.0.0.(1+num_slaves). Slaves cycle through four
  // heterogeneous hardware profiles (big-data clusters are rarely uniform,
  // and heterogeneity is what per-node operation contexts adapt to).
  static Cluster MakeTestbed(int num_slaves = 4);

  // Same, but every node uses the given spec (homogeneous).
  static Cluster MakeUniformTestbed(int num_slaves,
                                    const NodeSpec& spec = NodeSpec());

  size_t size() const { return nodes_.size(); }
  SimNode& node(size_t i) { return nodes_[i]; }
  const SimNode& node(size_t i) const { return nodes_[i]; }

  SimNode& master() { return nodes_[0]; }
  // Slave indices are 1..size()-1.
  size_t num_slaves() const { return nodes_.size() - 1; }
  SimNode& slave(size_t i) { return nodes_[i + 1]; }
  const SimNode& slave(size_t i) const { return nodes_[i + 1]; }

  // Index of the node with the given ip, or error.
  Result<size_t> IndexOf(const std::string& ip) const;

  std::vector<SimNode>& nodes() { return nodes_; }
  const std::vector<SimNode>& nodes() const { return nodes_; }

 private:
  std::vector<SimNode> nodes_;
};

}  // namespace invarnetx::cluster

#endif  // INVARNETX_CLUSTER_NODE_H_
