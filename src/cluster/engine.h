#ifndef INVARNETX_CLUSTER_ENGINE_H_
#define INVARNETX_CLUSTER_ENGINE_H_

#include <string>
#include <vector>

#include "cluster/cpi.h"
#include "cluster/node.h"
#include "common/random.h"

namespace invarnetx::cluster {

// Interface implemented by workload models (src/workload). Each tick the
// model writes per-tick demand drivers (and cpi_base) into every node.
class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  virtual std::string name() const = 0;

  // Writes this tick's demand drivers for every node.
  virtual void Step(int tick, Cluster* cluster, Rng* rng) = 0;

  // The engine reports instructions retired on a node this tick.
  virtual void OnProgress(size_t node_index, double instructions) = 0;

  // Batch jobs finish when their instruction budget is retired;
  // interactive workloads never finish (run until max_ticks).
  virtual bool Finished() const = 0;
};

// Interface implemented by fault injectors (src/faults). Fault-controlled
// driver fields are cleared by the engine every tick, so an active fault
// must (re)assert its effect on each Apply call; injector objects keep any
// state they need (e.g. a leak accumulator) internally.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  virtual std::string name() const = 0;
  virtual void Apply(int tick, Cluster* cluster, Rng* rng) = 0;
};

// Interface implemented by the telemetry layer (src/telemetry).
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  virtual void Record(int tick, const Cluster& cluster,
                      const std::vector<CpiSample>& cpi) = 0;
};

struct EngineConfig {
  double tick_seconds = 10.0;  // the paper's collection interval
  int max_ticks = 2000;
};

struct EngineResult {
  int ticks_run = 0;
  bool workload_finished = false;
  double duration_seconds = 0.0;
};

// Discrete-time driver of one simulated run. Per tick: the workload writes
// demands, faults assert their perturbations, ambient noise evolves, CPI and
// retired instructions are computed, and the telemetry sink records.
class SimulationEngine {
 public:
  explicit SimulationEngine(EngineConfig config = EngineConfig())
      : config_(config) {}

  EngineResult Run(Cluster* cluster, WorkloadModel* workload,
                   const std::vector<FaultInjector*>& faults,
                   TelemetrySink* sink, Rng* rng);

 private:
  EngineConfig config_;
};

}  // namespace invarnetx::cluster

#endif  // INVARNETX_CLUSTER_ENGINE_H_
