#include "xmlstore/xml.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace invarnetx::xmlstore {

std::string XmlNode::Attr(const std::string& key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return "";
}

const XmlNode* XmlNode::Child(const std::string& child_name) const {
  for (const XmlNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(
    const std::string& child_name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children) {
    if (c.name == child_name) out.push_back(&c);
  }
  return out;
}

XmlNode& XmlNode::AddChild(std::string child_name) {
  children.push_back(XmlNode{});
  children.back().name = std::move(child_name);
  return children.back();
}

void XmlNode::SetAttr(std::string key, std::string value) {
  for (auto& [k, v] : attributes) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes.emplace_back(std::move(key), std::move(value));
}

std::string XmlEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void WriteNode(const XmlNode& node, int depth, std::ostringstream* out) {
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  *out << pad << '<' << node.name;
  for (const auto& [k, v] : node.attributes) {
    *out << ' ' << k << "=\"" << XmlEscape(v) << '"';
  }
  if (node.children.empty() && node.text.empty()) {
    *out << "/>\n";
    return;
  }
  *out << '>';
  if (!node.text.empty()) *out << XmlEscape(node.text);
  if (!node.children.empty()) {
    *out << '\n';
    for (const XmlNode& c : node.children) WriteNode(c, depth + 1, out);
    *out << pad;
  }
  *out << "</" << node.name << ">\n";
}

// Recursive-descent parser over the raw document text.
class Parser {
 public:
  explicit Parser(const std::string& input) : in_(input) {}

  Result<XmlNode> Parse() {
    SkipProlog();
    XmlNode root;
    Status st = ParseElement(&root);
    if (!st.ok()) return st;
    SkipWhitespaceAndComments();
    if (pos_ != in_.size()) {
      return Status::Corruption("trailing content after root element");
    }
    return root;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool SkipComment() {
    if (in_.compare(pos_, 4, "<!--") != 0) return false;
    const size_t end = in_.find("-->", pos_ + 4);
    pos_ = end == std::string::npos ? in_.size() : end + 3;
    return true;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      SkipWhitespace();
      if (!SkipComment()) return;
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndComments();
    if (in_.compare(pos_, 5, "<?xml") == 0) {
      const size_t end = in_.find("?>", pos_);
      pos_ = end == std::string::npos ? in_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    if (pos_ == start) return Status::Corruption("expected XML name");
    return in_.substr(start, pos_ - start);
  }

  Result<std::string> Unescape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string::npos) {
        return Status::Corruption("unterminated entity");
      }
      const std::string entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else return Status::Corruption("unknown entity &" + entity + ";");
      i = semi;
    }
    return out;
  }

  Status ParseAttributes(XmlNode* node) {
    for (;;) {
      SkipWhitespace();
      if (pos_ >= in_.size()) return Status::Corruption("eof in tag");
      if (in_[pos_] == '>' || in_[pos_] == '/' || in_[pos_] == '?') {
        return Status::Ok();
      }
      Result<std::string> key = ParseName();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (pos_ >= in_.size() || in_[pos_] != '=') {
        return Status::Corruption("expected '=' in attribute");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= in_.size() || (in_[pos_] != '"' && in_[pos_] != '\'')) {
        return Status::Corruption("expected quoted attribute value");
      }
      const char quote = in_[pos_++];
      const size_t end = in_.find(quote, pos_);
      if (end == std::string::npos) {
        return Status::Corruption("unterminated attribute value");
      }
      Result<std::string> value = Unescape(in_.substr(pos_, end - pos_));
      if (!value.ok()) return value.status();
      node->attributes.emplace_back(key.value(), value.value());
      pos_ = end + 1;
    }
  }

  Status ParseElement(XmlNode* node) {
    SkipWhitespaceAndComments();
    if (pos_ >= in_.size() || in_[pos_] != '<') {
      return Status::Corruption("expected '<'");
    }
    ++pos_;
    Result<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    node->name = name.value();
    INVARNETX_RETURN_IF_ERROR(ParseAttributes(node));
    if (in_.compare(pos_, 2, "/>") == 0) {
      pos_ += 2;
      return Status::Ok();
    }
    if (pos_ >= in_.size() || in_[pos_] != '>') {
      return Status::Corruption("expected '>' closing tag of " + node->name);
    }
    ++pos_;
    // Content: interleaved text, comments and child elements until </name>.
    std::string text;
    for (;;) {
      const size_t lt = in_.find('<', pos_);
      if (lt == std::string::npos) {
        return Status::Corruption("unterminated element " + node->name);
      }
      text.append(in_, pos_, lt - pos_);
      pos_ = lt;
      if (in_.compare(pos_, 2, "</") == 0) {
        pos_ += 2;
        Result<std::string> close = ParseName();
        if (!close.ok()) return close.status();
        if (close.value() != node->name) {
          return Status::Corruption("mismatched close tag: expected " +
                                    node->name + " got " + close.value());
        }
        SkipWhitespace();
        if (pos_ >= in_.size() || in_[pos_] != '>') {
          return Status::Corruption("expected '>' in close tag");
        }
        ++pos_;
        break;
      }
      if (SkipComment()) continue;
      XmlNode child;
      INVARNETX_RETURN_IF_ERROR(ParseElement(&child));
      node->children.push_back(std::move(child));
    }
    // Trim pure-whitespace text (indentation); keep meaningful text.
    const size_t first = text.find_first_not_of(" \t\r\n");
    if (first != std::string::npos) {
      const size_t last = text.find_last_not_of(" \t\r\n");
      Result<std::string> unescaped =
          Unescape(text.substr(first, last - first + 1));
      if (!unescaped.ok()) return unescaped.status();
      node->text = unescaped.value();
    }
    return Status::Ok();
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace

std::string WriteXml(const XmlNode& root) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  WriteNode(root, 0, &out);
  return out.str();
}

Result<XmlNode> ParseXml(const std::string& input) {
  Parser parser(input);
  return parser.Parse();
}

Status WriteXmlFile(const std::string& path, const XmlNode& root) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  file << WriteXml(root);
  if (!file.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<XmlNode> ReadXmlFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << file.rdbuf();
  return ParseXml(buf.str());
}

}  // namespace invarnetx::xmlstore
