#ifndef INVARNETX_XMLSTORE_XML_H_
#define INVARNETX_XMLSTORE_XML_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace invarnetx::xmlstore {

// A minimal XML document tree. The paper persists ARIMA models, invariants
// and signatures as XML files; this is the smallest implementation that
// round-trips those documents (elements, attributes, text, comments,
// declarations, the five standard entities).
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;  // concatenated character data directly inside this node
  std::vector<XmlNode> children;

  // First attribute with the given key, or empty string.
  std::string Attr(const std::string& key) const;
  // First child element with the given name, or nullptr.
  const XmlNode* Child(const std::string& name) const;
  // All child elements with the given name.
  std::vector<const XmlNode*> Children(const std::string& name) const;

  XmlNode& AddChild(std::string child_name);
  void SetAttr(std::string key, std::string value);
};

// Serializes the tree with 2-space indentation and an XML declaration.
std::string WriteXml(const XmlNode& root);

// Parses a document produced by WriteXml (or similarly simple XML).
// Unsupported constructs (CDATA, DTD, processing instructions other than
// the declaration) yield kCorruption.
Result<XmlNode> ParseXml(const std::string& input);

// Escapes &, <, >, ", ' for use in text or attribute values.
std::string XmlEscape(const std::string& raw);

// File helpers.
Status WriteXmlFile(const std::string& path, const XmlNode& root);
Result<XmlNode> ReadXmlFile(const std::string& path);

}  // namespace invarnetx::xmlstore

#endif  // INVARNETX_XMLSTORE_XML_H_
