#include "xmlstore/stores.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/log.h"
#include "xmlstore/xml.h"

namespace invarnetx::xmlstore {
namespace {

// One debug line per store round-trip, one warn per failure: store I/O is
// rare and operator-visible, so every call is worth a structured record.
void LogStoreOp(const char* op, const std::string& path, size_t records,
                const Status& status) {
  if (!status.ok()) {
    INVARNETX_OBS_LOG(obs::LogLevel::kWarn, "xml store operation failed",
                      {{"op", op},
                       {"path", path},
                       {"error", status.ToString()}});
    return;
  }
  INVARNETX_OBS_LOG(obs::LogLevel::kDebug, "xml store operation",
                    {{"op", op}, {"path", path}, {"records", records}});
}

std::string DoubleToStr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<double> StrToDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return Status::Corruption("bad double: " + s);
  return v;
}

Result<int> StrToInt(const std::string& s) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str()) return Status::Corruption("bad int: " + s);
  return static_cast<int>(v);
}

std::string JoinDoubles(const std::vector<double>& v) {
  std::ostringstream out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << ' ';
    out << DoubleToStr(v[i]);
  }
  return out.str();
}

Result<std::vector<double>> SplitDoubles(const std::string& s) {
  std::vector<double> out;
  std::istringstream in(s);
  std::string token;
  while (in >> token) {
    Result<double> v = StrToDouble(token);
    if (!v.ok()) return v.status();
    out.push_back(v.value());
  }
  return out;
}

}  // namespace

Status SaveArimaModels(const std::string& path,
                       const std::vector<ArimaModelRecord>& records) {
  XmlNode root;
  root.name = "arima_models";
  for (const ArimaModelRecord& rec : records) {
    XmlNode& node = root.AddChild("model");
    node.SetAttr("p", std::to_string(rec.p));
    node.SetAttr("d", std::to_string(rec.d));
    node.SetAttr("q", std::to_string(rec.q));
    node.SetAttr("ip", rec.ip);
    node.SetAttr("type", rec.workload);
    node.SetAttr("intercept", DoubleToStr(rec.intercept));
    node.SetAttr("sigma2", DoubleToStr(rec.sigma2));
    node.SetAttr("res_min", DoubleToStr(rec.residual_min));
    node.SetAttr("res_max", DoubleToStr(rec.residual_max));
    node.SetAttr("res_p95", DoubleToStr(rec.residual_p95));
    node.AddChild("ar").text = JoinDoubles(rec.ar);
    node.AddChild("ma").text = JoinDoubles(rec.ma);
  }
  const Status status = WriteXmlFile(path, root);
  LogStoreOp("save_models", path, records.size(), status);
  return status;
}

Result<std::vector<ArimaModelRecord>> LoadArimaModels(
    const std::string& path) {
  Result<XmlNode> doc = ReadXmlFile(path);
  if (!doc.ok()) return doc.status();
  if (doc.value().name != "arima_models") {
    return Status::Corruption("expected <arima_models> root");
  }
  std::vector<ArimaModelRecord> out;
  for (const XmlNode* node : doc.value().Children("model")) {
    ArimaModelRecord rec;
    Result<int> p = StrToInt(node->Attr("p"));
    Result<int> d = StrToInt(node->Attr("d"));
    Result<int> q = StrToInt(node->Attr("q"));
    if (!p.ok()) return p.status();
    if (!d.ok()) return d.status();
    if (!q.ok()) return q.status();
    rec.p = p.value();
    rec.d = d.value();
    rec.q = q.value();
    rec.ip = node->Attr("ip");
    rec.workload = node->Attr("type");
    Result<double> intercept = StrToDouble(node->Attr("intercept"));
    Result<double> sigma2 = StrToDouble(node->Attr("sigma2"));
    Result<double> res_min = StrToDouble(node->Attr("res_min"));
    Result<double> res_max = StrToDouble(node->Attr("res_max"));
    Result<double> res_p95 = StrToDouble(node->Attr("res_p95"));
    if (!intercept.ok()) return intercept.status();
    if (!sigma2.ok()) return sigma2.status();
    if (!res_min.ok()) return res_min.status();
    if (!res_max.ok()) return res_max.status();
    if (!res_p95.ok()) return res_p95.status();
    rec.intercept = intercept.value();
    rec.sigma2 = sigma2.value();
    rec.residual_min = res_min.value();
    rec.residual_max = res_max.value();
    rec.residual_p95 = res_p95.value();
    const XmlNode* ar = node->Child("ar");
    const XmlNode* ma = node->Child("ma");
    if (ar == nullptr || ma == nullptr) {
      return Status::Corruption("model missing <ar>/<ma>");
    }
    Result<std::vector<double>> ar_v = SplitDoubles(ar->text);
    Result<std::vector<double>> ma_v = SplitDoubles(ma->text);
    if (!ar_v.ok()) return ar_v.status();
    if (!ma_v.ok()) return ma_v.status();
    rec.ar = std::move(ar_v.value());
    rec.ma = std::move(ma_v.value());
    if (rec.ar.size() != static_cast<size_t>(rec.p) ||
        rec.ma.size() != static_cast<size_t>(rec.q)) {
      return Status::Corruption("coefficient count mismatch in model record");
    }
    out.push_back(std::move(rec));
  }
  LogStoreOp("load_models", path, out.size(), Status::Ok());
  return out;
}

Status SaveInvariantSets(const std::string& path,
                         const std::vector<InvariantSetRecord>& records) {
  XmlNode root;
  root.name = "invariant_sets";
  for (const InvariantSetRecord& rec : records) {
    XmlNode& node = root.AddChild("invariants");
    node.SetAttr("ip", rec.ip);
    node.SetAttr("type", rec.workload);
    node.SetAttr("num_metrics", std::to_string(rec.num_metrics));
    for (const InvariantEntry& e : rec.entries) {
      XmlNode& child = node.AddChild("pair");
      child.SetAttr("a", std::to_string(e.metric_a));
      child.SetAttr("b", std::to_string(e.metric_b));
      child.SetAttr("value", DoubleToStr(e.value));
    }
  }
  const Status status = WriteXmlFile(path, root);
  LogStoreOp("save_invariants", path, records.size(), status);
  return status;
}

Result<std::vector<InvariantSetRecord>> LoadInvariantSets(
    const std::string& path) {
  Result<XmlNode> doc = ReadXmlFile(path);
  if (!doc.ok()) return doc.status();
  if (doc.value().name != "invariant_sets") {
    return Status::Corruption("expected <invariant_sets> root");
  }
  std::vector<InvariantSetRecord> out;
  for (const XmlNode* node : doc.value().Children("invariants")) {
    InvariantSetRecord rec;
    rec.ip = node->Attr("ip");
    rec.workload = node->Attr("type");
    Result<int> nm = StrToInt(node->Attr("num_metrics"));
    if (!nm.ok()) return nm.status();
    rec.num_metrics = nm.value();
    for (const XmlNode* pair : node->Children("pair")) {
      Result<int> a = StrToInt(pair->Attr("a"));
      Result<int> b = StrToInt(pair->Attr("b"));
      Result<double> v = StrToDouble(pair->Attr("value"));
      if (!a.ok()) return a.status();
      if (!b.ok()) return b.status();
      if (!v.ok()) return v.status();
      rec.entries.push_back(InvariantEntry{a.value(), b.value(), v.value()});
    }
    out.push_back(std::move(rec));
  }
  LogStoreOp("load_invariants", path, out.size(), Status::Ok());
  return out;
}

Status SaveSignatures(const std::string& path,
                      const std::vector<SignatureRecord>& records) {
  XmlNode root;
  root.name = "signatures";
  for (const SignatureRecord& rec : records) {
    XmlNode& node = root.AddChild("signature");
    node.SetAttr("problem", rec.problem);
    node.SetAttr("ip", rec.ip);
    node.SetAttr("type", rec.workload);
    std::string bits;
    bits.reserve(rec.bits.size());
    for (uint8_t b : rec.bits) bits += b ? '1' : '0';
    node.text = bits;
  }
  const Status status = WriteXmlFile(path, root);
  LogStoreOp("save_signatures", path, records.size(), status);
  return status;
}

Result<std::vector<SignatureRecord>> LoadSignatures(const std::string& path) {
  Result<XmlNode> doc = ReadXmlFile(path);
  if (!doc.ok()) return doc.status();
  if (doc.value().name != "signatures") {
    return Status::Corruption("expected <signatures> root");
  }
  std::vector<SignatureRecord> out;
  for (const XmlNode* node : doc.value().Children("signature")) {
    SignatureRecord rec;
    rec.problem = node->Attr("problem");
    rec.ip = node->Attr("ip");
    rec.workload = node->Attr("type");
    for (char c : node->text) {
      if (c == '0') rec.bits.push_back(0);
      else if (c == '1') rec.bits.push_back(1);
      else return Status::Corruption("signature bits must be 0/1");
    }
    out.push_back(std::move(rec));
  }
  LogStoreOp("load_signatures", path, out.size(), Status::Ok());
  return out;
}

}  // namespace invarnetx::xmlstore
