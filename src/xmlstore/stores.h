#ifndef INVARNETX_XMLSTORE_STORES_H_
#define INVARNETX_XMLSTORE_STORES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace invarnetx::xmlstore {

// Persisted form of a performance model: the paper's five-tuple
// (p, d, q, ip, type) plus the fitted coefficients needed to reuse it.
struct ArimaModelRecord {
  int p = 0;
  int d = 0;
  int q = 0;
  std::string ip;        // Hadoop node address
  std::string workload;  // workload type
  std::vector<double> ar;
  std::vector<double> ma;
  double intercept = 0.0;
  double sigma2 = 0.0;
  // Calibrated residual statistics for the three threshold rules.
  double residual_min = 0.0;
  double residual_max = 0.0;
  double residual_p95 = 0.0;
};

// One likely invariant: the pair of metric indices and the stored MIC value
// I(m, n) (the max over the N training runs, per Algorithm 1).
struct InvariantEntry {
  int metric_a = 0;
  int metric_b = 0;
  double value = 0.0;
};

// Persisted form of the paper's three-tuple (I, ip, type).
struct InvariantSetRecord {
  std::string ip;
  std::string workload;
  int num_metrics = 0;
  std::vector<InvariantEntry> entries;
};

// Persisted form of the paper's four-tuple
// (binary tuple, problem name, ip, workload type).
struct SignatureRecord {
  std::string problem;
  std::string ip;
  std::string workload;
  std::vector<uint8_t> bits;  // one per invariant, 1 = violated
};

Status SaveArimaModels(const std::string& path,
                       const std::vector<ArimaModelRecord>& records);
Result<std::vector<ArimaModelRecord>> LoadArimaModels(const std::string& path);

Status SaveInvariantSets(const std::string& path,
                         const std::vector<InvariantSetRecord>& records);
Result<std::vector<InvariantSetRecord>> LoadInvariantSets(
    const std::string& path);

Status SaveSignatures(const std::string& path,
                      const std::vector<SignatureRecord>& records);
Result<std::vector<SignatureRecord>> LoadSignatures(const std::string& path);

}  // namespace invarnetx::xmlstore

#endif  // INVARNETX_XMLSTORE_STORES_H_
