#ifndef INVARNETX_OBS_JOURNAL_H_
#define INVARNETX_OBS_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/log.h"

// Bounded structured event journal: the last-N notable state changes of the
// process (alarms, epoch publishes, diagnoses, cache evictions, ring
// overflows, watchdog trips), kept in memory so `/statusz` and `invarnetx
// events` can answer "what just happened?" without scraping logs. The ring
// is fixed-capacity; when full, the oldest event is dropped and an eviction
// counter advances, so the journal itself can never grow without bound -
// the same discipline the serve layer's ring windows follow.
namespace invarnetx::obs {

enum class EventKind {
  kAlarm = 0,        // monitor raised or re-confirmed an alarm
  kRetrain,          // model (re)training started or finished
  kEpochPublish,     // a new immutable model epoch went live
  kDiagnosis,        // a ranked diagnosis completed
  kCacheEviction,    // association score cache dropped its cold half
  kRingOverflow,     // a serve-side ring overwrote unread samples
  kAlarmStorm,       // alarm-storm detector tripped or cleared
  kSlowTick,         // ingest watchdog saw p99 above budget
  kLifecycle,        // process-level marks (serve start/stop, HTTP up)
  kCausalFallback,   // no signature matched; causal engine ranked suspects
  kBackpressure,     // a shard's ingest ring rejected samples (full)
};

// Stable lowercase token for rendering and filtering (e.g. "alarm",
// "epoch_publish").
std::string EventKindName(EventKind kind);

struct Event {
  uint64_t seq = 0;         // monotonic, never reused, survives eviction
  uint64_t uptime_us = 0;   // same clock as logs and trace spans
  EventKind kind = EventKind::kLifecycle;
  std::string message;
  std::vector<LogField> fields;
};

class EventJournal {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit EventJournal(size_t capacity = kDefaultCapacity);
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  // Appends one event, evicting the oldest if the ring is full. Cheap
  // enough for serve-path hooks: one mutex, no I/O. Also mirrors the event
  // to the debug log so journal and logs tell the same story.
  void Record(EventKind kind, std::string message,
              std::vector<LogField> fields = {});

  // Point-in-time copy, oldest first. `last_n == 0` means everything
  // retained.
  std::vector<Event> Snapshot(size_t last_n = 0) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Events dropped from the ring so far (total recorded = size + evicted).
  uint64_t evicted() const;
  // Next sequence number to be assigned (== total events ever recorded).
  uint64_t next_seq() const;

  // Drops all retained events and zeroes counters (tests, bench phases).
  void Reset();

  // Process-wide journal all built-in hooks record to.
  static EventJournal& Shared();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Event> ring_;
  uint64_t next_seq_ = 0;
  uint64_t evicted_ = 0;
};

// `ts=<s> seq=<n> kind=<token> msg="..." key=value ...`, one line per
// event, oldest first.
std::string RenderEventsText(const std::vector<Event>& events);
// JSON array of {"seq":..,"uptime_us":..,"kind":"..","msg":"..",
// "fields":{...}} objects, oldest first.
std::string RenderEventsJson(const std::vector<Event>& events);

}  // namespace invarnetx::obs

#endif  // INVARNETX_OBS_JOURNAL_H_
