#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/log.h"
#include "obs/metrics.h"

namespace invarnetx::obs {
namespace {

constexpr size_t kMaxRequestBytes = 8192;

std::string StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

// Writes the whole buffer, retrying on EINTR / partial writes.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_) return Status::InvalidArgument("http server already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);

  shutting_down_ = false;
  running_ = true;
  const int workers = options_.num_workers < 1 ? 1 : options_.num_workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_) return;
  running_ = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  // shutdown() unblocks the acceptor's accept(); close alone is not
  // guaranteed to on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed or shut down listener: exit quietly when stopping.
      if (!running_) return;
      INVARNETX_OBS_LOG(LogLevel::kWarn, "http accept failed",
                        {{"error", std::strerror(errno)}});
      return;
    }
    // A stuck client must not pin a worker forever.
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      ::close(fd);
      return;
    }
    pending_.push_back(fd);
    cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !pending_.empty(); });
      if (pending_.empty()) return;  // shutting down, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Read until the end of the request head; the endpoints take no bodies.
  std::string head;
  char buf[1024];
  while (head.size() < kMaxRequestBytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // timeout, reset, or client gave up mid-request
    }
    head.append(buf, static_cast<size_t>(n));
  }

  MetricsRegistry& registry = MetricsRegistry::Shared();
  HttpRequest request;
  HttpResponse response;
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else {
    request.method = request_line.substr(0, sp1);
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t question = target.find('?');
    if (question != std::string::npos) {
      request.query = target.substr(question + 1);
      target.resize(question);
    }
    request.path = target;
    if (request.method != "GET" && request.method != "HEAD") {
      response.status = 405;
      response.body = "only GET is served here\n";
    } else {
      auto it = handlers_.find(request.path);
      if (it == handlers_.end()) {
        response.status = 404;
        response.body = "no handler for " + request.path + "; try:\n";
        for (const auto& [path, handler] : handlers_) {
          response.body += "  " + path + "\n";
        }
      } else {
        response = it->second(request);
      }
    }
  }

  registry
      .GetCounter("obs.http_requests",
                  {{"code", std::to_string(response.status)}})
      .Increment();

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (request.method != "HEAD") out += response.body;
  WriteAll(fd, out);
}

}  // namespace invarnetx::obs
