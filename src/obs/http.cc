#include "obs/http.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "net/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace invarnetx::obs {
namespace {

constexpr size_t kMaxRequestBytes = 8192;

std::string StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

// Serializes status/headers/body; HEAD suppresses the body but keeps the
// real Content-Length.
std::string RenderResponse(const HttpResponse& response, bool include_body) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (include_body) out += response.body;
  return out;
}

}  // namespace

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

HttpServer::Handler HttpServer::LookupHandler(const std::string& path) const {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  auto it = handlers_.find(path);
  return it == handlers_.end() ? Handler() : it->second;
}

std::string HttpServer::HandlerListing() const {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  std::string listing;
  for (const auto& [path, handler] : handlers_) {
    listing += "  " + path + "\n";
  }
  return listing;
}

Status HttpServer::Start() {
  net::SocketServer::Options server_options;
  server_options.bind_address = options_.bind_address;
  server_options.port = options_.port;
  server_options.num_workers = options_.num_workers;
  server_options.backlog = options_.backlog;
  server_options.io_timeout_seconds = 5;
  server_options.accept_override = options_.accept_override;
  server_options.on_error = [](const std::string& event,
                               const std::string& detail) {
    INVARNETX_OBS_LOG(LogLevel::kWarn, "http " + event,
                      {{"error", detail}});
  };
  server_.SetOptions(std::move(server_options));
  server_.SetHandler([this](int fd) { ServeConnection(fd); });
  return server_.Start();
}

void HttpServer::Stop() { server_.Stop(); }

void HttpServer::ServeConnection(int fd) {
  // Read until the end of the request head; the endpoints take no bodies.
  std::string head;
  char buf[1024];
  while (head.size() < kMaxRequestBytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // timeout, reset, or client gave up mid-request
    }
    head.append(buf, static_cast<size_t>(n));
  }

  MetricsRegistry& registry = MetricsRegistry::Shared();
  if (head.find("\r\n\r\n") == std::string::npos) {
    // The head hit the size cap without terminating: the request is
    // truncated, not complete. Parsing the fragment would serve whatever
    // path prefix happened to fit - reject it instead.
    HttpResponse response;
    response.status = 400;
    response.body = "request head exceeds " +
                    std::to_string(kMaxRequestBytes) + " bytes\n";
    registry
        .GetCounter("obs.http_requests",
                    {{"code", std::to_string(response.status)}})
        .Increment();
    net::WriteAll(fd, RenderResponse(response, /*include_body=*/true));
    return;
  }

  HttpRequest request;
  HttpResponse response;
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else {
    request.method = request_line.substr(0, sp1);
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t question = target.find('?');
    if (question != std::string::npos) {
      request.query = target.substr(question + 1);
      target.resize(question);
    }
    request.path = target;
    if (request.method != "GET" && request.method != "HEAD") {
      response.status = 405;
      response.body = "only GET is served here\n";
    } else {
      Handler handler = LookupHandler(request.path);
      if (!handler) {
        response.status = 404;
        response.body =
            "no handler for " + request.path + "; try:\n" + HandlerListing();
      } else {
        response = handler(request);
      }
    }
  }

  registry
      .GetCounter("obs.http_requests",
                  {{"code", std::to_string(response.status)}})
      .Increment();
  net::WriteAll(fd,
                RenderResponse(response, request.method != "HEAD"));
}

}  // namespace invarnetx::obs
