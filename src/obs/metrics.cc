#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace invarnetx::obs {
namespace {

std::string DoubleToStr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// JSON string escaping for metric names (which are code-controlled, but a
// malformed export must never be possible).
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

size_t BucketIndex(double value) {
  if (value <= Histogram::kMinBucket) return 0;
  double bound = Histogram::kMinBucket;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (value <= bound) return i;
    bound *= 2.0;
  }
  return Histogram::kNumBuckets;  // overflow
}

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// `<area>.<noun>` names map onto that by replacing everything else with '_'.
std::string OpenMetricsName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

// Label values escape `\`, `"` and newline per the exposition format.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += OpenMetricsName(key) + "=\"" + EscapeLabelValue(value) + "\"";
  }
  out += "}";
  return out;
}

MetricLabels SortedLabels(const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

void Histogram::Record(double value) {
  if (!(value >= 0.0)) value = 0.0;  // negatives and NaN clamp to zero
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next =
        std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + value);
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::BucketUpperBound(size_t i) {
  double bound = kMinBucket;
  for (size_t b = 0; b < i && b < kNumBuckets - 1; ++b) bound *= 2.0;
  return bound;
}

double Histogram::Percentile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), then walk the cumulative
  // distribution to its bucket.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double upper = BucketUpperBound(i >= kNumBuckets ? kNumBuckets - 1
                                                             : i);
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      const double fraction = static_cast<double>(rank - cumulative) /
                              static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::string MetricsRegistry::SeriesKey(const std::string& name,
                                       const MetricLabels& labels) {
  if (labels.empty()) return name;
  return name + RenderLabels(SortedLabels(labels));
}

template <typename T>
MetricsRegistry::Entry<T>& MetricsRegistry::GetEntry(
    std::map<std::string, Entry<T>>* entries, const std::string& name,
    const MetricLabels& labels) {
  MetricLabels sorted = SortedLabels(labels);
  std::string key = name;
  if (!sorted.empty()) key += RenderLabels(sorted);
  Entry<T>& entry = (*entries)[key];
  if (!entry.metric) {
    entry.metric = std::make_unique<T>();
    entry.family = name;
    entry.labels = std::move(sorted);
  }
  return entry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return GetCounter(name, {});
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return *GetEntry(&counters_, name, labels).metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return GetGauge(name, {});
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return *GetEntry(&gauges_, name, labels).metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, {});
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return *GetEntry(&histograms_, name, labels).metric;
}

bool MetricsRegistry::HasGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.count(name) > 0;
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = help;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  // Metric objects are pointer-stable and never deregistered, so the lock
  // only needs to cover copying the index - values (and the histogram
  // percentile walks, the expensive part) are read lock-free afterwards.
  // A scrape therefore can never stall a hot path blocked on Get*.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [key, entry] : counters_) {
      counters.emplace_back(key, entry.metric.get());
    }
    gauges.reserve(gauges_.size());
    for (const auto& [key, entry] : gauges_) {
      gauges.emplace_back(key, entry.metric.get());
    }
    histograms.reserve(histograms_.size());
    for (const auto& [key, entry] : histograms_) {
      histograms.emplace_back(key, entry.metric.get());
    }
  }
  Snapshot snap;
  for (const auto& [key, counter] : counters) {
    snap.counters[key] = counter->value();
  }
  for (const auto& [key, gauge] : gauges) {
    snap.gauges[key] = gauge->value();
  }
  for (const auto& [key, hist] : histograms) {
    HistogramStats stats;
    stats.count = hist->count();
    stats.sum = hist->sum();
    stats.p50 = hist->Percentile(0.50);
    stats.p95 = hist->Percentile(0.95);
    stats.p99 = hist->Percentile(0.99);
    snap.histograms[key] = stats;
  }
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  const Snapshot snap = Snap();
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge " << name << " " << DoubleToStr(value) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << "histogram " << name << " count=" << h.count
        << " sum=" << DoubleToStr(h.sum) << " p50=" << DoubleToStr(h.p50)
        << " p95=" << DoubleToStr(h.p95) << " p99=" << DoubleToStr(h.p99)
        << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  const Snapshot snap = Snap();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << DoubleToStr(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":{\"count\":" << h.count
        << ",\"sum\":" << DoubleToStr(h.sum)
        << ",\"p50\":" << DoubleToStr(h.p50)
        << ",\"p95\":" << DoubleToStr(h.p95)
        << ",\"p99\":" << DoubleToStr(h.p99) << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::RenderOpenMetrics() {
  GetCounter("obs.export_total").Increment();

  // Short-lock index copy, exactly like Snap(): families grouped so each
  // `# TYPE` appears once even when labeled and unlabeled series interleave
  // in display-key order.
  struct CounterSeries {
    std::string labels;
    const Counter* metric;
  };
  struct GaugeSeries {
    std::string labels;
    const Gauge* metric;
  };
  struct HistSeries {
    std::string labels;
    const Histogram* metric;
  };
  std::map<std::string, std::vector<CounterSeries>> counter_families;
  std::map<std::string, std::vector<GaugeSeries>> gauge_families;
  std::map<std::string, std::vector<HistSeries>> hist_families;
  std::map<std::string, std::string> help;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : counters_) {
      counter_families[entry.family].push_back(
          {RenderLabels(entry.labels), entry.metric.get()});
    }
    for (const auto& [key, entry] : gauges_) {
      gauge_families[entry.family].push_back(
          {RenderLabels(entry.labels), entry.metric.get()});
    }
    for (const auto& [key, entry] : histograms_) {
      hist_families[entry.family].push_back(
          {RenderLabels(entry.labels), entry.metric.get()});
    }
    help = help_;
  }

  std::ostringstream out;
  auto help_line = [&](const std::string& family, const std::string& name) {
    auto it = help.find(family);
    if (it == help.end() || it->second.empty()) return;
    std::string text;
    for (char c : it->second) {
      if (c == '\n') {
        text += "\\n";
      } else if (c == '\\') {
        text += "\\\\";
      } else {
        text.push_back(c);
      }
    }
    out << "# HELP " << name << " " << text << "\n";
  };

  for (const auto& [family, series] : counter_families) {
    std::string name = OpenMetricsName(family);
    if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
      name += "_total";
    }
    help_line(family, name);
    out << "# TYPE " << name << " counter\n";
    for (const CounterSeries& s : series) {
      out << name << s.labels << " " << s.metric->value() << "\n";
    }
  }
  for (const auto& [family, series] : gauge_families) {
    const std::string name = OpenMetricsName(family);
    help_line(family, name);
    out << "# TYPE " << name << " gauge\n";
    for (const GaugeSeries& s : series) {
      out << name << s.labels << " " << DoubleToStr(s.metric->value())
          << "\n";
    }
  }
  for (const auto& [family, series] : hist_families) {
    const std::string name = OpenMetricsName(family);
    help_line(family, name);
    out << "# TYPE " << name << " histogram\n";
    for (const HistSeries& s : series) {
      // Labels on a histogram series merge with the `le` bucket label:
      // `{shard="3"}` becomes `{shard="3",le="..."}`.
      const std::string prefix =
          s.labels.empty() ? "{" : s.labels.substr(0, s.labels.size() - 1) +
                                       ",";
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
        cumulative += s.metric->bucket_count(i);
        if (i < Histogram::kNumBuckets) {
          out << name << "_bucket" << prefix << "le=\""
              << DoubleToStr(Histogram::BucketUpperBound(i)) << "\"} "
              << cumulative << "\n";
        } else {
          out << name << "_bucket" << prefix << "le=\"+Inf\"} " << cumulative
              << "\n";
        }
      }
      out << name << "_sum" << s.labels << " " << DoubleToStr(s.metric->sum())
          << "\n";
      out << name << "_count" << s.labels << " " << cumulative << "\n";
    }
  }
  out << "# EOF\n";
  return out.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) entry.metric->Reset();
  for (auto& [name, entry] : gauges_) entry.metric->Reset();
  for (auto& [name, entry] : histograms_) entry.metric->Reset();
}

MetricsRegistry& MetricsRegistry::Shared() {
  // Leaked so instrumented code (including detached pool workers) can
  // report during static destruction without racing teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

// Parses `name{k="v",...} value` into its parts; returns false on any
// syntax violation. `labels` gets the canonical rendered label block
// (exactly the input text between the braces).
bool ParseSampleLine(const std::string& line, std::string* name,
                     std::string* labels, std::string* value) {
  size_t pos = 0;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
  *name = line.substr(0, pos);
  if (!ValidMetricName(*name)) return false;
  labels->clear();
  if (pos < line.size() && line[pos] == '{') {
    const size_t open = pos++;
    bool in_string = false;
    // Walk to the matching close brace; quotes may contain '}'.
    while (pos < line.size()) {
      const char c = line[pos];
      if (in_string) {
        if (c == '\\') ++pos;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '}') {
        break;
      }
      ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') return false;
    const std::string block = line.substr(open + 1, pos - open - 1);
    ++pos;
    // Validate each `key="value"` pair.
    size_t p = 0;
    while (p < block.size()) {
      size_t eq = block.find('=', p);
      if (eq == std::string::npos) return false;
      const std::string key = block.substr(p, eq - p);
      if (!ValidMetricName(key)) return false;
      p = eq + 1;
      if (p >= block.size() || block[p] != '"') return false;
      ++p;
      while (p < block.size() && block[p] != '"') {
        if (block[p] == '\\') {
          ++p;
          if (p >= block.size()) return false;
          if (block[p] != '\\' && block[p] != '"' && block[p] != 'n') {
            return false;
          }
        }
        ++p;
      }
      if (p >= block.size()) return false;  // unterminated value
      ++p;
      if (p < block.size()) {
        if (block[p] != ',') return false;
        ++p;
        if (p >= block.size()) return false;  // trailing comma
      }
    }
    *labels = block;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  *value = line.substr(pos + 1);
  if (value->empty() || value->find(' ') != std::string::npos) return false;
  return true;
}

bool ParseSampleValue(const std::string& text, double* out) {
  if (text == "+Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

// Strips the `le` label from a histogram bucket's label block so buckets of
// one series group together; returns the le value text via `le`.
bool SplitLeLabel(const std::string& labels, std::string* rest,
                  std::string* le) {
  rest->clear();
  le->clear();
  size_t p = 0;
  bool found = false;
  while (p < labels.size()) {
    size_t eq = labels.find('=', p);
    if (eq == std::string::npos) return false;
    const std::string key = labels.substr(p, eq - p);
    size_t q = eq + 2;  // skip ="
    while (q < labels.size() && labels[q] != '"') {
      if (labels[q] == '\\') ++q;
      ++q;
    }
    if (q >= labels.size()) return false;
    const std::string pair = labels.substr(p, q + 1 - p);
    if (key == "le") {
      *le = labels.substr(eq + 2, q - eq - 2);
      found = true;
    } else {
      if (!rest->empty()) *rest += ",";
      *rest += pair;
    }
    p = q + 1;
    if (p < labels.size() && labels[p] == ',') ++p;
  }
  return found;
}

}  // namespace

Status ValidateOpenMetrics(const std::string& text, size_t* num_samples) {
  if (text.empty()) return Status::Corruption("empty exposition");
  if (text.size() < 6 || text.compare(text.size() - 6, 6, "# EOF\n") != 0) {
    return Status::Corruption("exposition does not end with '# EOF'");
  }

  std::map<std::string, std::string> families;  // name -> type
  std::map<std::string, bool> family_sampled;
  std::map<std::string, uint64_t> seen_series;  // name{labels} -> line no
  struct HistSeriesState {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool has_inf = false;
    double inf_count = 0.0;
    bool has_sum = false;
    bool has_count = false;
    double count = 0.0;
  };
  std::map<std::string, HistSeriesState> hist_series;  // family|labels

  size_t samples = 0;
  size_t line_no = 0;
  std::istringstream lines(text);
  std::string line;
  bool saw_eof = false;
  auto fail = [&](const std::string& what) {
    return Status::Corruption("line " + std::to_string(line_no) + ": " +
                              what + ": " + line);
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (saw_eof) return fail("content after '# EOF'");
    if (line.empty()) continue;
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name;
      std::string type;
      std::string extra;
      fields >> name >> type >> extra;
      if (!ValidMetricName(name)) return fail("bad family name");
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("bad family type");
      }
      if (!extra.empty()) return fail("trailing text after type");
      if (families.count(name) != 0) return fail("duplicate # TYPE");
      if (type == "counter" &&
          (name.size() < 6 ||
           name.compare(name.size() - 6, 6, "_total") != 0)) {
        return fail("counter family does not end in _total");
      }
      families[name] = type;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name;
      fields >> name;
      if (!ValidMetricName(name)) return fail("bad family name in HELP");
      if (family_sampled.count(name) != 0) {
        return fail("HELP after samples of the family");
      }
      continue;
    }
    if (line[0] == '#') return fail("unknown comment directive");

    std::string name;
    std::string labels;
    std::string value_text;
    if (!ParseSampleLine(line, &name, &labels, &value_text)) {
      return fail("malformed sample line");
    }
    double value = 0.0;
    if (!ParseSampleValue(value_text, &value)) return fail("bad value");

    // Resolve the sample's family: exact, or a histogram suffix.
    std::string family = name;
    std::string suffix;
    if (families.count(family) == 0) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        const size_t len = std::string(s).size();
        if (name.size() > len &&
            name.compare(name.size() - len, len, s) == 0) {
          const std::string stem = name.substr(0, name.size() - len);
          auto it = families.find(stem);
          if (it != families.end() && it->second == "histogram") {
            family = stem;
            suffix = s;
            break;
          }
        }
      }
    }
    auto family_it = families.find(family);
    if (family_it == families.end()) {
      return fail("sample without a preceding # TYPE");
    }
    if (family_it->second == "histogram" && suffix.empty()) {
      return fail("bare sample of a histogram family");
    }
    if (family_it->second != "histogram" && !suffix.empty()) {
      return fail("suffixed sample of a non-histogram family");
    }
    family_sampled[family] = true;

    const std::string series = name + "{" + labels + "}";
    if (!seen_series.emplace(series, line_no).second) {
      return fail("duplicate series");
    }
    ++samples;

    if (family_it->second == "histogram") {
      if (suffix == "_bucket") {
        std::string rest;
        std::string le_text;
        if (!SplitLeLabel(labels, &rest, &le_text)) {
          return fail("bucket sample without le label");
        }
        HistSeriesState& state = hist_series[family + "|" + rest];
        if (le_text == "+Inf") {
          state.has_inf = true;
          state.inf_count = value;
        } else {
          double le = 0.0;
          if (!ParseSampleValue(le_text, &le)) return fail("bad le value");
          if (state.has_inf) return fail("finite bucket after +Inf");
          state.buckets.emplace_back(le, value);
        }
      } else {
        HistSeriesState& state = hist_series[family + "|" + labels];
        if (suffix == "_sum") {
          state.has_sum = true;
        } else {
          state.has_count = true;
          state.count = value;
        }
      }
    }
  }
  if (!saw_eof) return Status::Corruption("missing '# EOF'");

  for (const auto& [key, state] : hist_series) {
    const std::string where = "histogram series " + key;
    if (!state.has_inf) {
      return Status::Corruption(where + ": no le=\"+Inf\" bucket");
    }
    if (!state.has_sum || !state.has_count) {
      return Status::Corruption(where + ": missing _sum or _count");
    }
    double prev_le = -1.0;
    double prev_count = 0.0;
    for (const auto& [le, cumulative] : state.buckets) {
      if (le <= prev_le) {
        return Status::Corruption(where + ": le bounds not increasing");
      }
      if (cumulative < prev_count) {
        return Status::Corruption(where + ": bucket counts not cumulative");
      }
      prev_le = le;
      prev_count = cumulative;
    }
    if (state.inf_count < prev_count) {
      return Status::Corruption(where + ": +Inf bucket below last bucket");
    }
    if (state.inf_count != state.count) {
      return Status::Corruption(where + ": _count != +Inf bucket");
    }
  }
  if (num_samples != nullptr) *num_samples = samples;
  return Status::Ok();
}

}  // namespace invarnetx::obs
