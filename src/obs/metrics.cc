#include "obs/metrics.h"

#include <bit>
#include <cstdio>
#include <sstream>

namespace invarnetx::obs {
namespace {

std::string DoubleToStr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// JSON string escaping for metric names (which are code-controlled, but a
// malformed export must never be possible).
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

size_t BucketIndex(double value) {
  if (value <= Histogram::kMinBucket) return 0;
  double bound = Histogram::kMinBucket;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (value <= bound) return i;
    bound *= 2.0;
  }
  return Histogram::kNumBuckets;  // overflow
}

}  // namespace

void Histogram::Record(double value) {
  if (!(value >= 0.0)) value = 0.0;  // negatives and NaN clamp to zero
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next =
        std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + value);
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::BucketUpperBound(size_t i) {
  double bound = kMinBucket;
  for (size_t b = 0; b < i && b < kNumBuckets - 1; ++b) bound *= 2.0;
  return bound;
}

double Histogram::Percentile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), then walk the cumulative
  // distribution to its bucket.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double upper = BucketUpperBound(i >= kNumBuckets ? kNumBuckets - 1
                                                             : i);
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      const double fraction = static_cast<double>(rank - cumulative) /
                              static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

bool MetricsRegistry::HasGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.count(name) > 0;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramStats stats;
    stats.count = hist->count();
    stats.sum = hist->sum();
    stats.p50 = hist->Percentile(0.50);
    stats.p95 = hist->Percentile(0.95);
    stats.p99 = hist->Percentile(0.99);
    snap.histograms[name] = stats;
  }
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  const Snapshot snap = Snap();
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge " << name << " " << DoubleToStr(value) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << "histogram " << name << " count=" << h.count
        << " sum=" << DoubleToStr(h.sum) << " p50=" << DoubleToStr(h.p50)
        << " p95=" << DoubleToStr(h.p95) << " p99=" << DoubleToStr(h.p99)
        << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  const Snapshot snap = Snap();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << DoubleToStr(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":{\"count\":" << h.count
        << ",\"sum\":" << DoubleToStr(h.sum)
        << ",\"p50\":" << DoubleToStr(h.p50)
        << ",\"p95\":" << DoubleToStr(h.p95)
        << ",\"p99\":" << DoubleToStr(h.p99) << "}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& MetricsRegistry::Shared() {
  // Leaked so instrumented code (including detached pool workers) can
  // report during static destruction without racing teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace invarnetx::obs
