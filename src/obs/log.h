#ifndef INVARNETX_OBS_LOG_H_
#define INVARNETX_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Structured, leveled logging for the diagnosis engine itself. Lines are
// `ts=<uptime s> level=<name> msg="..." key=value ...` - grep-friendly
// key=value telemetry rather than free prose, so analysis-cost questions
// ("which context retrained?", "how long did mining take?") are answerable
// from the log alone. Thread-safe; the level gate is one relaxed atomic
// load, so disabled levels cost nothing but the argument evaluation.
namespace invarnetx::obs {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // silences everything; not a valid line level
};

std::string LogLevelName(LogLevel level);
// Accepts "debug", "info", "warn", "error", "off" (case-sensitive).
Result<LogLevel> LogLevelFromName(std::string_view name);

// One key=value field of a structured log line (also reused as span
// annotations). String values are quoted and escaped on render; numeric and
// boolean values render bare.
struct LogField {
  std::string key;
  std::string value;
  bool quoted = false;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)), quoted(true) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), value(v), quoted(true) {}
  LogField(std::string k, double v);
  LogField(std::string k, int v) : LogField(std::move(k), int64_t{v}) {}
  LogField(std::string k, int64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, uint64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, unsigned int v)
      : LogField(std::move(k), uint64_t{v}) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false") {}
};

// Minimum level that reaches the sink (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
inline bool LogEnabled(LogLevel level) {
  return level >= GetLogLevel() && level != LogLevel::kOff;
}

// Emits one structured line if `level` clears the current threshold.
void Log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields = {});

// Renders the line without emitting it (exposed for tests).
std::string FormatLogLine(LogLevel level, std::string_view message,
                          const std::vector<LogField>& fields);

// Redirects rendered lines (tests, embedders). A null sink restores the
// default stderr writer. The sink is called with the lock held: keep it
// cheap and non-reentrant (it must not call Log).
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void SetLogSink(LogSink sink);

// Monotonic microseconds since process start - the shared clock for log
// timestamps and trace-span times, so both line up in one timeline.
uint64_t UptimeMicros();

}  // namespace invarnetx::obs

// Evaluates the message/fields only when the level is enabled.
#define INVARNETX_OBS_LOG(level, ...)                    \
  do {                                                   \
    if (::invarnetx::obs::LogEnabled(level)) {           \
      ::invarnetx::obs::Log(level, __VA_ARGS__);         \
    }                                                    \
  } while (0)

#endif  // INVARNETX_OBS_LOG_H_
