#ifndef INVARNETX_OBS_HTTP_H_
#define INVARNETX_OBS_HTTP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "net/socket_server.h"

// Minimal embedded HTTP/1.1 server for the observability endpoints
// (/metrics, /healthz, /statusz, /tracez). Deliberately dependency-free:
// blocking BSD sockets via the shared net::SocketServer plumbing (one
// acceptor thread, a small worker pool draining an accepted-connection
// queue). It serves GET with Connection: close only - a scrape target, not
// a web framework - and binds loopback by default so enabling it never
// exposes the process beyond the host. Handlers run on worker threads and
// must be thread-safe.
namespace invarnetx::obs {

struct HttpRequest {
  std::string method;  // "GET", uppercased
  std::string path;    // "/metrics" - no query string
  std::string query;   // text after '?', if any (no parsing)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 picks an ephemeral port; see port() after Start
    int num_workers = 2;
    int backlog = 16;
    // Test-only fault injection, forwarded to the acceptor (see
    // net::SocketServer::Options::accept_override).
    std::function<int(int listen_fd)> accept_override;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-path handler. Thread-safe, and safe to call while
  // the server is running (the handler map is locked against concurrent
  // worker-thread lookups); unknown paths get a 404 listing the
  // registered ones.
  void Handle(const std::string& path, Handler handler);

  // Binds, listens, and spawns the acceptor + workers. Fails (with the
  // errno text) if the port is taken or the address does not parse.
  Status Start();

  // Idempotent; joins all threads and closes every socket.
  void Stop();

  bool running() const { return server_.running(); }
  // The bound port (resolves ephemeral requests); 0 before Start.
  uint16_t port() const { return server_.port(); }

 private:
  void ServeConnection(int fd);
  // The registered handler for `path`, or null. Copies the std::function
  // out under the lock so the (possibly slow) handler runs without it.
  Handler LookupHandler(const std::string& path) const;
  // The sorted path list for 404 bodies.
  std::string HandlerListing() const;

  Options options_;
  net::SocketServer server_;

  // Guards handlers_: Handle() may race worker-thread lookups when a
  // handler is registered after Start().
  mutable std::mutex handlers_mu_;
  std::map<std::string, Handler> handlers_;
};

}  // namespace invarnetx::obs

#endif  // INVARNETX_OBS_HTTP_H_
