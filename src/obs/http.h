#ifndef INVARNETX_OBS_HTTP_H_
#define INVARNETX_OBS_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

// Minimal embedded HTTP/1.1 server for the observability endpoints
// (/metrics, /healthz, /statusz, /tracez). Deliberately dependency-free:
// blocking BSD sockets, one acceptor thread, a small worker pool draining
// an accepted-connection queue. It serves GET with Connection: close only -
// a scrape target, not a web framework - and binds loopback by default so
// enabling it never exposes the process beyond the host. Handlers run on
// worker threads and must be thread-safe.
namespace invarnetx::obs {

struct HttpRequest {
  std::string method;  // "GET", uppercased
  std::string path;    // "/metrics" - no query string
  std::string query;   // text after '?', if any (no parsing)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 picks an ephemeral port; see port() after Start
    int num_workers = 2;
    int backlog = 16;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-path handler. Call before Start(); unknown paths
  // get a 404 listing the registered ones.
  void Handle(const std::string& path, Handler handler);

  // Binds, listens, and spawns the acceptor + workers. Fails (with the
  // errno text) if the port is taken or the address does not parse.
  Status Start();

  // Idempotent; joins all threads and closes every socket.
  void Stop();

  bool running() const { return running_; }
  // The bound port (resolves ephemeral requests); 0 before Start.
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // Written by Stop() while the acceptor reads it after a failed accept();
  // atomic so that unsynchronized hand-off is well-defined.
  std::atomic<bool> running_{false};

  std::map<std::string, Handler> handlers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  bool shutting_down_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace invarnetx::obs

#endif  // INVARNETX_OBS_HTTP_H_
