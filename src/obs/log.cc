#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace invarnetx::obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

// Guarded by SinkMutex(); empty function means "write to stderr".
LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

// Values render bare when they are already safe tokens; everything that
// came in as a string is quoted so parsers never guess.
void AppendValue(const LogField& field, std::string* out) {
  if (!field.quoted) {
    *out += field.value;
    return;
  }
  out->push_back('"');
  for (char c : field.value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

std::string LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

Result<LogLevel> LogLevelFromName(std::string_view name) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) return level;
  }
  return Status::InvalidArgument("unknown log level: " + std::string(name));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

uint64_t UptimeMicros() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            start)
          .count());
}

std::string FormatLogLine(LogLevel level, std::string_view message,
                          const std::vector<LogField>& fields) {
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%.3f",
                static_cast<double>(UptimeMicros()) / 1e6);
  std::string line = "ts=";
  line += ts;
  line += " level=";
  line += LogLevelName(level);
  line += " msg=";
  AppendValue(LogField("msg", std::string(message)), &line);
  for (const LogField& field : fields) {
    line.push_back(' ');
    line += field.key;
    line.push_back('=');
    AppendValue(field, &line);
  }
  return line;
}

void Log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields) {
  if (!LogEnabled(level)) return;
  const std::string line = FormatLogLine(
      level, message, std::vector<LogField>(fields.begin(), fields.end()));
  std::lock_guard<std::mutex> lock(SinkMutex());
  const LogSink& sink = SinkSlot();
  if (sink) {
    sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

}  // namespace invarnetx::obs
