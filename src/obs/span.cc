#include "obs/span.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"

namespace invarnetx::obs {
namespace {

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

// ------------------------------------------------------------------------
// Minimal recursive-descent JSON parser used only for validation: the
// golden-file tests and the CI smoke check must be able to parse traces
// back without external dependencies.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  Status Validate() {
    INVARNETX_RETURN_IF_ERROR(ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return Status::Ok();
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::Corruption("invalid JSON at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (text_.compare(pos_, 4, "true") == 0) { pos_ += 4; return Status::Ok(); }
    if (text_.compare(pos_, 5, "false") == 0) { pos_ += 5; return Status::Ok(); }
    if (text_.compare(pos_, 4, "null") == 0) { pos_ += 4; return Status::Ok(); }
    return Fail("unexpected character");
  }

  Status ParseObject() {
    ++pos_;  // '{'
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      INVARNETX_RETURN_IF_ERROR(ParseString());
      if (!Consume(':')) return Fail("expected ':'");
      INVARNETX_RETURN_IF_ERROR(ParseValue());
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray() {
    ++pos_;  // '['
    if (Consume(']')) return Status::Ok();
    for (;;) {
      INVARNETX_RETURN_IF_ERROR(ParseValue());
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Status ParseString() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return Fail("bad escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber() {
    if (text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Locates the "traceEvents" array and counts its top-level elements; runs
// after full syntax validation, so scanning is safe.
Status CountTraceEvents(const std::string& json, size_t* num_events) {
  const size_t key = json.find("\"traceEvents\"");
  if (key == std::string::npos) return Status::Corruption("no traceEvents");
  size_t pos = json.find('[', key);
  if (pos == std::string::npos) {
    return Status::Corruption("traceEvents is not an array");
  }
  size_t count = 0;
  int depth = 0;
  bool in_string = false;
  for (; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (in_string) {
      if (c == '\\') ++pos;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[' || c == '{') {
      if (c == '{' && depth == 1) ++count;  // one top-level event object
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
      if (depth == 0) break;
    }
  }
  if (num_events != nullptr) *num_events = count;
  return Status::Ok();
}

}  // namespace

void TraceRecorder::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    MetricsRegistry::Shared()
        .GetCounter("obs.trace_events_dropped")
        .Increment();
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string TraceRecorder::RenderChromeTrace() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + JsonString(event.name) +
           ",\"ph\":\"X\",\"cat\":\"invarnetx\",\"pid\":1,\"tid\":" +
           std::to_string(event.tid) + ",\"ts\":" +
           std::to_string(event.ts_us) + ",\"dur\":" +
           std::to_string(event.dur_us);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += JsonString(key) + ":" + JsonString(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open trace file " + path);
  file << RenderChromeTrace();
  if (!file.good()) return Status::IoError("trace write failed for " + path);
  return Status::Ok();
}

TraceRecorder& TraceRecorder::Shared() {
  // Leaked for the same reason as the shared thread pool: spans on worker
  // threads must never race static destruction.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

int CurrentThreadTid() {
  static std::mutex mu;
  static std::unordered_map<std::thread::id, int>* ids =
      new std::unordered_map<std::thread::id, int>();
  thread_local int tid = [] {
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<int>(
        ids->emplace(std::this_thread::get_id(),
                     static_cast<int>(ids->size()) + 1)
            .first->second);
  }();
  return tid;
}

SlowSpanSampler::SlowSpanSampler(size_t per_stage)
    : per_stage_(per_stage == 0 ? 1 : per_stage) {}

void SlowSpanSampler::Offer(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++offered_;
  std::vector<TraceEvent>& kept = by_stage_[event.name];
  if (kept.size() >= per_stage_ && event.dur_us <= kept.back().dur_us) {
    return;
  }
  // Sorted insert by descending duration; the vector is at most
  // per_stage_ long, so a linear scan is the whole cost.
  auto it = kept.begin();
  while (it != kept.end() && it->dur_us >= event.dur_us) ++it;
  kept.insert(it, event);
  if (kept.size() > per_stage_) kept.pop_back();
}

std::vector<TraceEvent> SlowSpanSampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& [stage, kept] : by_stage_) {
    out.insert(out.end(), kept.begin(), kept.end());
  }
  return out;
}

uint64_t SlowSpanSampler::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

void SlowSpanSampler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  by_stage_.clear();
  offered_ = 0;
}

std::string SlowSpanSampler::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "tracez: slowest spans per stage (keeping " +
                    std::to_string(per_stage_) + ", offered " +
                    std::to_string(offered_) + ")\n";
  for (const auto& [stage, kept] : by_stage_) {
    out += "\nstage " + stage + "\n";
    for (const TraceEvent& event : kept) {
      char line[128];
      std::snprintf(line, sizeof(line),
                    "  dur_ms=%.3f ts=%.3f tid=%d",
                    static_cast<double>(event.dur_us) / 1e3,
                    static_cast<double>(event.ts_us) / 1e6, event.tid);
      out += line;
      for (const auto& [key, value] : event.args) {
        out += " " + key + "=" + JsonString(value);
      }
      out.push_back('\n');
    }
  }
  return out;
}

SlowSpanSampler& SlowSpanSampler::Shared() {
  // Leaked: spans end on pool workers that may outlive static teardown.
  static SlowSpanSampler* sampler = new SlowSpanSampler();
  return *sampler;
}

Span::Span(std::string name, std::initializer_list<LogField> fields)
    : name_(std::move(name)), start_us_(UptimeMicros()) {
  args_.reserve(fields.size());
  for (const LogField& field : fields) {
    args_.emplace_back(field.key, field.value);
  }
}

Span::~Span() { End(); }

void Span::End() {
  if (ended_) return;
  ended_ = true;
  end_us_ = UptimeMicros();
  const uint64_t dur_us = end_us_ - start_us_;
  MetricsRegistry::Shared()
      .GetHistogram("span." + name_)
      .Record(static_cast<double>(dur_us) / 1e6);
  TraceEvent event;
  event.name = name_;
  event.ts_us = start_us_;
  event.dur_us = dur_us;
  event.tid = CurrentThreadTid();
  event.args = std::move(args_);
  SlowSpanSampler::Shared().Offer(event);
  TraceRecorder& recorder = TraceRecorder::Shared();
  if (recorder.enabled()) {
    recorder.Record(std::move(event));
  }
}

double Span::Seconds() const {
  const uint64_t end = ended_ ? end_us_ : UptimeMicros();
  return static_cast<double>(end - start_us_) / 1e6;
}

Status ValidateChromeTrace(const std::string& json, size_t* num_events) {
  INVARNETX_RETURN_IF_ERROR(ValidateJson(json));
  // Schema: the viewer needs these keys on every event.
  for (const char* key : {"\"traceEvents\"", "\"ph\"", "\"ts\"", "\"pid\"",
                          "\"tid\"", "\"name\""}) {
    if (json.find(key) == std::string::npos &&
        json.find("\"traceEvents\":[]") == std::string::npos) {
      return Status::Corruption(std::string("trace JSON missing ") + key);
    }
  }
  return CountTraceEvents(json, num_events);
}

Status ValidateJson(const std::string& json) {
  return JsonValidator(json).Validate();
}

}  // namespace invarnetx::obs
