#include "obs/journal.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace invarnetx::obs {
namespace {

void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kAlarm: return "alarm";
    case EventKind::kRetrain: return "retrain";
    case EventKind::kEpochPublish: return "epoch_publish";
    case EventKind::kDiagnosis: return "diagnosis";
    case EventKind::kCacheEviction: return "cache_eviction";
    case EventKind::kRingOverflow: return "ring_overflow";
    case EventKind::kAlarmStorm: return "alarm_storm";
    case EventKind::kSlowTick: return "slow_tick";
    case EventKind::kLifecycle: return "lifecycle";
    case EventKind::kCausalFallback: return "causal_fallback";
    case EventKind::kBackpressure: return "backpressure";
  }
  return "unknown";
}

EventJournal::EventJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void EventJournal::Record(EventKind kind, std::string message,
                          std::vector<LogField> fields) {
  Event event;
  event.uptime_us = UptimeMicros();
  event.kind = kind;
  event.message = std::move(message);
  event.fields = std::move(fields);
  {
    std::lock_guard<std::mutex> lock(mu_);
    event.seq = next_seq_++;
    if (ring_.size() == capacity_) {
      ring_.pop_front();
      ++evicted_;
      MetricsRegistry::Shared().GetCounter("journal.evicted").Increment();
    }
    ring_.push_back(event);
  }
  MetricsRegistry::Shared().GetCounter("journal.events").Increment();
  // Mirror to the debug log so the journal and the log stream agree on
  // every state change without double bookkeeping at the call sites.
  if (LogEnabled(LogLevel::kDebug)) {
    Log(LogLevel::kDebug, event.message,
        {LogField("event", EventKindName(kind)), LogField("seq", event.seq)});
  }
}

std::vector<Event> EventJournal::Snapshot(size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t skip = 0;
  if (last_n != 0 && last_n < ring_.size()) skip = ring_.size() - last_n;
  return std::vector<Event>(ring_.begin() + static_cast<ptrdiff_t>(skip),
                            ring_.end());
}

size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t EventJournal::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

uint64_t EventJournal::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void EventJournal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  evicted_ = 0;
}

EventJournal& EventJournal::Shared() {
  // Leaked for the same reason as the metrics registry: hooks may fire
  // from detached pool workers during static destruction.
  static EventJournal* journal = new EventJournal();
  return *journal;
}

std::string RenderEventsText(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(e.uptime_us) / 1e6);
    out += "ts=";
    out += ts;
    out += " seq=" + std::to_string(e.seq);
    out += " kind=" + EventKindName(e.kind);
    out += " msg=";
    AppendQuoted(e.message, &out);
    for (const LogField& f : e.fields) {
      out.push_back(' ');
      out += f.key;
      out.push_back('=');
      if (f.quoted) {
        AppendQuoted(f.value, &out);
      } else {
        out += f.value;
      }
    }
    out.push_back('\n');
  }
  return out;
}

std::string RenderEventsJson(const std::vector<Event>& events) {
  std::string out = "[";
  bool first_event = true;
  for (const Event& e : events) {
    if (!first_event) out += ",";
    first_event = false;
    out += "\n  {\"seq\": " + std::to_string(e.seq);
    out += ", \"uptime_us\": " + std::to_string(e.uptime_us);
    out += ", \"kind\": ";
    AppendQuoted(EventKindName(e.kind), &out);
    out += ", \"msg\": ";
    AppendQuoted(e.message, &out);
    out += ", \"fields\": {";
    bool first_field = true;
    for (const LogField& f : e.fields) {
      if (!first_field) out += ", ";
      first_field = false;
      AppendQuoted(f.key, &out);
      out += ": ";
      if (f.quoted) {
        AppendQuoted(f.value, &out);
      } else {
        // Bare numeric/boolean tokens are already valid JSON scalars.
        out += f.value;
      }
    }
    out += "}}";
  }
  out += events.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace invarnetx::obs
