#ifndef INVARNETX_OBS_METRICS_H_
#define INVARNETX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

// Process-wide metrics for the diagnosis engine's own behaviour: counters
// (monotonic event tallies), gauges (instantaneous values), and fixed-bucket
// latency histograms (p50/p95/p99). Handles returned by the registry are
// pointer-stable for the registry's lifetime, so hot paths look a metric up
// once and then pay only relaxed atomics per update - cheap enough to leave
// on in production runs, which is what makes the Table 1 overhead numbers
// measurable instead of estimated.
//
// Metrics may carry low-cardinality labels (per-shard, per-workload - never
// per-monitor or per-request); each distinct (name, labels) pair is its own
// series with its own handle. The registry exports in three shapes: the
// original text table, JSON, and Prometheus/OpenMetrics text exposition for
// the embedded /metrics endpoint.
namespace invarnetx::obs {

// Sorted-by-key on registration, so {a=1,b=2} and {b=2,a=1} name the same
// series. Keep cardinality low: labels multiply series counts.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous double value with atomic set/add (CAS loop - portable even
// where std::atomic<double>::fetch_add is not lock-free).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed exponential-bucket histogram for non-negative values (seconds in
// this codebase). Buckets double from kMinBucket; values above the last
// bound land in the overflow bucket. Percentiles interpolate linearly
// inside the owning bucket, so they are exact to within one bucket width.
// All updates are relaxed atomics; readers may see a mid-update snapshot,
// which for monitoring is fine.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 44;  // 1us .. ~2.3 days, then overflow
  static constexpr double kMinBucket = 1e-6;

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  // q in [0, 1]; returns 0 when empty.
  double Percentile(double q) const;
  // Samples in bucket i (i == kNumBuckets is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Upper bound of bucket i (inclusive); the overflow bucket reports the
  // last finite bound.
  static double BucketUpperBound(size_t i);

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double stored as bits, CAS-added
};

// Name -> metric maps with idempotent registration: the first Get* creates,
// later calls return the same object, so components that race to register
// (several pipelines sharing the process-wide thread pool) cannot create
// duplicates. Names follow `<area>.<noun>` (see DESIGN.md). The labeled
// overloads register one series per distinct label set under the same
// family name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Counter& GetCounter(const std::string& name, const MetricLabels& labels);
  Gauge& GetGauge(const std::string& name);
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels);
  Histogram& GetHistogram(const std::string& name);
  Histogram& GetHistogram(const std::string& name, const MetricLabels& labels);

  bool HasGauge(const std::string& name) const;

  // Optional `# HELP` text for the OpenMetrics exposition, keyed by family
  // name (the unlabeled metric name). Idempotent; later calls win.
  void SetHelp(const std::string& name, const std::string& help);

  // Point-in-time copy for programmatic consumers (CLI stats, reports,
  // tests). Labeled series appear under their display key
  // `name{key="value",...}` with label keys sorted.
  struct HistogramStats {
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
  };
  Snapshot Snap() const;

  // Human-readable table and a JSON object {"counters":{...},"gauges":{...},
  // "histograms":{...}}; both sorted by name.
  std::string RenderText() const;
  std::string RenderJson() const;

  // Prometheus/OpenMetrics text exposition: `# HELP`/`# TYPE` lines per
  // family, one sample line per series (counters gain the `_total` suffix,
  // histograms expand to cumulative `_bucket{le=...}` + `_sum` + `_count`),
  // terminated by `# EOF`. Dots in names become underscores. Every call
  // increments this registry's `obs.export_total` counter. The exported
  // values are a point-in-time snapshot taken under a short lock - a scrape
  // never holds the registry lock while formatting, so it cannot stall the
  // serve ingest hot path.
  std::string RenderOpenMetrics();

  // Zeroes every value but keeps the handles valid (benches isolate
  // measurement phases with this).
  void ResetAll();

  // The process-wide registry all built-in instrumentation reports to.
  static MetricsRegistry& Shared();

  // Display key of a labeled series: `name{k="v",...}` with keys sorted and
  // values escaped; just `name` when labels are empty.
  static std::string SeriesKey(const std::string& name,
                               const MetricLabels& labels);

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string family;   // unlabeled metric name
    MetricLabels labels;  // sorted by key
  };
  template <typename T>
  static Entry<T>& GetEntry(std::map<std::string, Entry<T>>* entries,
                            const std::string& name,
                            const MetricLabels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

// Strict validation of a Prometheus/OpenMetrics text exposition as produced
// by RenderOpenMetrics: name/label syntax, `# TYPE` before samples, no
// duplicate series, cumulative non-decreasing histogram buckets with an
// le="+Inf" bucket matching `_count`, and a terminal `# EOF`. On success
// reports the number of sample lines. Shared by tools/openmetrics_check and
// the exposition tests.
Status ValidateOpenMetrics(const std::string& text, size_t* num_samples);

}  // namespace invarnetx::obs

#endif  // INVARNETX_OBS_METRICS_H_
