#ifndef INVARNETX_OBS_SPAN_H_
#define INVARNETX_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/log.h"

// Stage-level wall-time tracing. A Span times one pipeline stage (RAII:
// construction starts the clock, destruction or End() stops it), always
// feeds the `span.<name>` latency histogram in the shared MetricsRegistry,
// and - when the process-wide TraceRecorder is enabled - records a complete
// ("ph":"X") Chrome trace event viewable in chrome://tracing or Perfetto.
namespace invarnetx::obs {

// One completed trace event. Times are microseconds on the UptimeMicros()
// clock, so events line up with log timestamps.
struct TraceEvent {
  std::string name;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

// Process-wide event collector. Disabled by default so unexercised spans
// cost a relaxed atomic load; enabling is what `--trace-out` does. Bounded
// (kMaxEvents) - a runaway loop degrades to dropped events plus the
// `obs.trace_events_dropped` counter, never to unbounded memory.
class TraceRecorder {
 public:
  static constexpr size_t kMaxEvents = 1 << 20;

  void SetEnabled(bool enabled);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void Record(TraceEvent event);
  std::vector<TraceEvent> Events() const;
  size_t NumEvents() const;
  void Clear();

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string RenderChromeTrace() const;
  Status WriteChromeTrace(const std::string& path) const;

  static TraceRecorder& Shared();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// Small dense id for the calling thread (Chrome traces want integer tids;
// std::thread::id is opaque). Stable for the thread's lifetime.
int CurrentThreadTid();

// Tail sampler: keeps only the slowest-N completed spans per stage name, so
// a long-running serve process can always answer "what were the worst
// detect/diagnose calls lately?" without recording every span the way the
// TraceRecorder does. Always on (per-span cost is one mutex plus a bounded
// sorted insert, in line with the histogram update every span already
// pays); stage cardinality is bounded by the code's span names.
class SlowSpanSampler {
 public:
  static constexpr size_t kDefaultPerStage = 8;

  explicit SlowSpanSampler(size_t per_stage = kDefaultPerStage);
  SlowSpanSampler(const SlowSpanSampler&) = delete;
  SlowSpanSampler& operator=(const SlowSpanSampler&) = delete;

  // Considers one completed span; kept only if the stage has fewer than
  // per_stage samples or the span outlasts the stage's current fastest.
  void Offer(const TraceEvent& event);

  // All retained spans, grouped by stage name (sorted), slowest first
  // within a stage.
  std::vector<TraceEvent> Snapshot() const;

  // Total spans offered (kept or not) since the last Clear.
  uint64_t offered() const;
  size_t per_stage() const { return per_stage_; }
  void Clear();

  // Plain-text table for the /tracez endpoint.
  std::string RenderText() const;

  static SlowSpanSampler& Shared();

 private:
  const size_t per_stage_;
  mutable std::mutex mu_;
  // Per stage, sorted by descending duration; bounded at per_stage_.
  std::map<std::string, std::vector<TraceEvent>> by_stage_;
  uint64_t offered_ = 0;
};

// RAII stage timer. Annotations reuse LogField so call sites write
//   obs::Span span("mine_invariants", {{"context", ctx.name}});
// and the same fields appear in the trace event's args.
class Span {
 public:
  explicit Span(std::string name, std::initializer_list<LogField> fields = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Stops the clock early; later End() calls and the destructor are no-ops.
  void End();

  // Elapsed seconds so far (after End(): the final duration).
  double Seconds() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> args_;
  uint64_t start_us_ = 0;
  uint64_t end_us_ = 0;
  bool ended_ = false;
};

// Strict validation of a Chrome trace-event JSON document: full JSON syntax
// check plus the schema the viewer needs (top-level object, "traceEvents"
// array, each event an object with name/ph/ts/pid/tid). On success reports
// the event count. This is what the golden-file tests and the CI smoke step
// parse traces back with.
Status ValidateChromeTrace(const std::string& json, size_t* num_events);

// JSON syntax check alone (used for the metrics JSON export).
Status ValidateJson(const std::string& json);

}  // namespace invarnetx::obs

#endif  // INVARNETX_OBS_SPAN_H_
