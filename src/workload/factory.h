#ifndef INVARNETX_WORKLOAD_FACTORY_H_
#define INVARNETX_WORKLOAD_FACTORY_H_

#include <memory>

#include "cluster/engine.h"
#include "common/random.h"
#include "common/status.h"
#include "workload/spec.h"

namespace invarnetx::workload {

// Builds a workload model of the given type for the cluster, drawing
// run-level randomness (input skew, initial mix) from `rng`.
// `data_scale` multiplies the batch input size relative to the paper's
// 15 GB (MapReduce spawns proportionally more tasks over the same per-task
// footprint, so the instruction budget scales linearly); it does not apply
// to the interactive mix.
Result<std::unique_ptr<cluster::WorkloadModel>> MakeWorkload(
    WorkloadType type, const cluster::Cluster& cluster, Rng* rng,
    double data_scale = 1.0);

}  // namespace invarnetx::workload

#endif  // INVARNETX_WORKLOAD_FACTORY_H_
