#include "workload/spec.h"

namespace invarnetx::workload {
namespace {

// Testbed constants used to size instruction budgets (see NodeSpec):
// 8 cores * 2.1 GHz, 4 slaves, 10 s ticks.
constexpr double kIps1 = 8 * 2.1e9;   // instructions/s at CPI 1, all cores
constexpr double kTickSeconds = 10.0;
constexpr int kSlaves = 4;

// Instruction budget so a nominal (fault-free) run lasts `target_ticks`.
double BudgetForTicks(const BatchSpec& spec, double target_ticks) {
  auto rate = [](const PhaseProfile& p) {
    return kSlaves * kIps1 * kTickSeconds * p.cpu / p.cpi_base;
  };
  const double reduce_frac = 1.0 - spec.map_frac - spec.shuffle_frac;
  const double ticks_per_instr = spec.map_frac / rate(spec.map) +
                                 spec.shuffle_frac / rate(spec.shuffle) +
                                 reduce_frac / rate(spec.reduce);
  return target_ticks / ticks_per_instr;
}

BatchSpec WordCountSpec() {
  BatchSpec s;
  s.type = WorkloadType::kWordCount;
  s.map = {0.62, 0.40, 0.08, 0.05, 0.06, 2600, 0.50, 0.40, 0.95};
  s.shuffle = {0.30, 0.18, 0.30, 0.55, 0.55, 2000, 0.30, 0.50, 1.15};
  s.reduce = {0.50, 0.12, 0.45, 0.12, 0.10, 3000, 0.35, 0.40, 1.00};
  s.map_frac = 0.65;
  s.shuffle_frac = 0.10;
  s.total_instructions = BudgetForTicks(s, 45.0);
  return s;
}

BatchSpec SortSpec() {
  BatchSpec s;
  s.type = WorkloadType::kSort;
  s.map = {0.40, 0.58, 0.30, 0.10, 0.12, 3200, 0.45, 0.40, 1.35};
  s.shuffle = {0.30, 0.22, 0.48, 0.75, 0.75, 2800, 0.30, 0.50, 1.55};
  s.reduce = {0.35, 0.18, 0.62, 0.15, 0.10, 3000, 0.30, 0.40, 1.45};
  s.map_frac = 0.55;
  s.shuffle_frac = 0.18;
  s.total_instructions = BudgetForTicks(s, 55.0);
  return s;
}

BatchSpec GrepSpec() {
  BatchSpec s;
  s.type = WorkloadType::kGrep;
  s.map = {0.34, 0.66, 0.06, 0.04, 0.05, 1800, 0.55, 0.45, 1.20};
  s.shuffle = {0.22, 0.20, 0.15, 0.30, 0.30, 1500, 0.25, 0.40, 1.25};
  s.reduce = {0.28, 0.10, 0.25, 0.08, 0.06, 1600, 0.25, 0.35, 1.15};
  s.map_frac = 0.85;
  s.shuffle_frac = 0.05;
  s.total_instructions = BudgetForTicks(s, 35.0);
  return s;
}

BatchSpec BayesSpec() {
  BatchSpec s;
  s.type = WorkloadType::kBayes;
  s.map = {0.65, 0.35, 0.12, 0.08, 0.08, 5200, 0.40, 0.40, 0.90};
  s.shuffle = {0.45, 0.15, 0.25, 0.45, 0.45, 4800, 0.30, 0.45, 1.05};
  s.reduce = {0.60, 0.12, 0.30, 0.10, 0.08, 5000, 0.30, 0.40, 0.95};
  s.map_frac = 0.60;
  s.shuffle_frac = 0.12;
  s.total_instructions = BudgetForTicks(s, 50.0);
  return s;
}

BatchSpec PageRankSpec() {
  // Iterative link analysis: network-heavy synchronization every
  // superstep, moderate CPU, large in-memory rank vectors.
  BatchSpec s;
  s.type = WorkloadType::kPageRank;
  s.map = {0.52, 0.30, 0.10, 0.30, 0.30, 4200, 0.35, 0.50, 1.10};
  s.shuffle = {0.35, 0.12, 0.20, 0.65, 0.65, 3800, 0.25, 0.55, 1.30};
  s.reduce = {0.48, 0.10, 0.25, 0.35, 0.35, 4000, 0.30, 0.50, 1.15};
  s.map_frac = 0.55;
  s.shuffle_frac = 0.20;
  s.total_instructions = BudgetForTicks(s, 50.0);
  return s;
}

BatchSpec KmeansSpec() {
  // Iterative clustering: CPU-bound distance computations over cached
  // points, light I/O after the first scan, small sync traffic.
  BatchSpec s;
  s.type = WorkloadType::kKmeans;
  s.map = {0.66, 0.22, 0.05, 0.10, 0.10, 4600, 0.35, 0.40, 0.85};
  s.shuffle = {0.45, 0.08, 0.10, 0.35, 0.35, 4200, 0.25, 0.45, 0.95};
  s.reduce = {0.55, 0.06, 0.15, 0.12, 0.10, 4400, 0.25, 0.40, 0.90};
  s.map_frac = 0.70;
  s.shuffle_frac = 0.10;
  s.total_instructions = BudgetForTicks(s, 40.0);
  return s;
}

}  // namespace

std::string WorkloadName(WorkloadType type) {
  switch (type) {
    case WorkloadType::kWordCount: return "wordcount";
    case WorkloadType::kSort: return "sort";
    case WorkloadType::kGrep: return "grep";
    case WorkloadType::kBayes: return "bayes";
    case WorkloadType::kTpcDs: return "tpcds";
    case WorkloadType::kPageRank: return "pagerank";
    case WorkloadType::kKmeans: return "kmeans";
  }
  return "unknown";
}

Result<WorkloadType> WorkloadFromName(const std::string& name) {
  for (WorkloadType t : kAllWorkloads) {
    if (WorkloadName(t) == name) return t;
  }
  return Status::NotFound("unknown workload: " + name);
}

bool IsBatch(WorkloadType type) { return type != WorkloadType::kTpcDs; }

std::string AllWorkloadNames() {
  std::string names;
  for (WorkloadType t : kAllWorkloads) {
    if (!names.empty()) names += ", ";
    names += WorkloadName(t);
  }
  return names;
}

Result<BatchSpec> GetBatchSpec(WorkloadType type) {
  switch (type) {
    case WorkloadType::kWordCount: return WordCountSpec();
    case WorkloadType::kSort: return SortSpec();
    case WorkloadType::kGrep: return GrepSpec();
    case WorkloadType::kBayes: return BayesSpec();
    case WorkloadType::kTpcDs:
      return Status::InvalidArgument("tpcds is interactive, not batch");
    case WorkloadType::kPageRank: return PageRankSpec();
    case WorkloadType::kKmeans: return KmeansSpec();
  }
  return Status::InvalidArgument("unknown workload type");
}

}  // namespace invarnetx::workload
