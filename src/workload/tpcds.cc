#include "workload/tpcds.h"

#include <algorithm>
#include <cmath>

namespace invarnetx::workload {

const std::array<QueryTemplate, kNumTpcDsQueries>& TpcDsQueryTemplates() {
  static const std::array<QueryTemplate, kNumTpcDsQueries> kTemplates = {{
      // Footprints are per query instance; arrival rates are high and
      // footprints small so the law of large numbers keeps the aggregate
      // demand of the mix reasonably steady (but still noisier than a
      // batch job, as in the paper).
      // name          cpu    io_r   io_w   n_in   n_out  mem  churn  rpc   cpi   rate  mean
      {"q03_scan_agg", 0.045, 0.060, 0.007, 0.011, 0.011, 160, 0.026, 0.019, 1.05, 0.42, 3.0},
      {"q07_join", 0.053, 0.036, 0.013, 0.030, 0.030, 260, 0.022, 0.026, 1.15, 0.30, 4.0},
      {"q19_filter", 0.033, 0.072, 0.007, 0.007, 0.007, 130, 0.030, 0.017, 1.10, 0.36, 3.0},
      {"q27_group", 0.050, 0.030, 0.019, 0.019, 0.019, 230, 0.019, 0.022, 1.08, 0.30, 4.0},
      {"q34_sort_agg", 0.041, 0.042, 0.033, 0.017, 0.017, 200, 0.022, 0.019, 1.20, 0.27, 4.0},
      {"q42_report", 0.030, 0.048, 0.011, 0.013, 0.013, 150, 0.026, 0.017, 1.05, 0.39, 3.0},
      {"q53_window", 0.055, 0.024, 0.013, 0.017, 0.017, 300, 0.017, 0.022, 1.12, 0.24, 5.0},
      {"q55_topk", 0.036, 0.054, 0.007, 0.011, 0.011, 160, 0.026, 0.017, 1.07, 0.33, 3.0},
  }};
  return kTemplates;
}

int SamplePoisson(Rng* rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  int k = 0;
  double product = rng->Uniform();
  while (product > limit) {
    ++k;
    product *= rng->Uniform();
  }
  return k;
}

TpcDsModel::TpcDsModel(size_t num_nodes, Rng* rng) {
  active_.assign(num_nodes, {});
  node_skew_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    node_skew_.push_back(std::max(0.7, rng->Gaussian(1.0, 0.05)));
  }
  // Warm the mix to its steady state so observation windows do not all
  // start from an idle cluster.
  const auto& templates = TpcDsQueryTemplates();
  for (size_t n = 1; n < num_nodes; ++n) {
    for (int t = 0; t < kNumTpcDsQueries; ++t) {
      const double steady = templates[static_cast<size_t>(t)].arrival_rate *
                            templates[static_cast<size_t>(t)].mean_ticks;
      active_[n][static_cast<size_t>(t)] =
          SamplePoisson(rng, steady * node_skew_[n]);
    }
  }
}

int TpcDsModel::TotalActive() const {
  int total = 0;
  for (const auto& node : active_) {
    for (int c : node) total += c;
  }
  return total;
}

void TpcDsModel::Step(int /*tick*/, cluster::Cluster* cluster, Rng* rng) {
  const auto& templates = TpcDsQueryTemplates();
  load_wave_ = 0.88 * load_wave_ + rng->Gaussian(0.0, 0.055);
  const double wave = std::clamp(1.0 + load_wave_, 0.55, 1.6);
  double cluster_churn = 0.0;
  for (size_t i = 0; i < cluster->num_slaves(); ++i) {
    cluster::SimNode& node = cluster->slave(i);
    cluster::DriverState& d = node.drivers;
    const size_t node_index = i + 1;
    const double skew = node_skew_[node_index];

    // Birth-death evolution of the active query mix.
    for (int t = 0; t < kNumTpcDsQueries; ++t) {
      const QueryTemplate& q = templates[static_cast<size_t>(t)];
      int& count = active_[node_index][static_cast<size_t>(t)];
      count += SamplePoisson(rng, q.arrival_rate * skew * wave);
      int departures = 0;
      for (int inst = 0; inst < count; ++inst) {
        if (rng->Bernoulli(1.0 / q.mean_ticks)) ++departures;
      }
      count -= departures;
    }

    // Demand is the idle HiveServer baseline plus the active instances.
    double cpu = 0.06, io_r = 0.04, io_w = 0.02, n_in = 0.02, n_out = 0.02;
    double mem = 1500.0, churn = 0.05, rpc = 0.15;
    double cpi_weighted = 0.0, cpi_weight = 0.0;
    for (int t = 0; t < kNumTpcDsQueries; ++t) {
      const QueryTemplate& q = templates[static_cast<size_t>(t)];
      const int count = active_[node_index][static_cast<size_t>(t)];
      cpu += count * q.cpu;
      io_r += count * q.io_read;
      io_w += count * q.io_write;
      n_in += count * q.net_in;
      n_out += count * q.net_out;
      mem += count * q.mem_mb;
      churn += count * q.churn;
      rpc += count * q.rpc;
      cpi_weighted += count * q.cpu * q.cpi;
      cpi_weight += count * q.cpu;
    }
    const double envelope =
        std::max(0.6, 1.0 + d.demand_noise + rng->Gaussian(0.0, 0.01));
    d.cpu_task = cpu * envelope;
    d.io_read = io_r * envelope;
    d.io_write = io_w * envelope;
    d.net_in = n_in * envelope;
    d.net_out = n_out * envelope;
    d.mem_task_mb = mem;
    d.task_churn = churn * envelope;
    d.rpc_rate = rpc * envelope;
    d.cpi_base = cpi_weight > 0.0 ? cpi_weighted / cpi_weight : 1.10;
    cluster_churn += churn;
  }

  cluster::DriverState& m = cluster->master().drivers;
  m.cpu_task = std::max(0.01, 0.10 + 0.02 * cluster_churn +
                                  rng->Gaussian(0.0, 0.005));
  m.io_read = 0.02;
  m.io_write = 0.04;
  m.net_in = 0.06 + 0.01 * cluster_churn;
  m.net_out = 0.06 + 0.01 * cluster_churn;
  m.mem_task_mb = 2500.0;
  m.task_churn = 0.1;
  m.rpc_rate = 0.6 + 0.15 * cluster_churn;
  m.cpi_base = 1.0;
}

void TpcDsModel::OnProgress(size_t /*node_index*/, double /*instructions*/) {
  // Interactive queries have no cluster-wide instruction budget.
}

}  // namespace invarnetx::workload
