#ifndef INVARNETX_WORKLOAD_BATCH_H_
#define INVARNETX_WORKLOAD_BATCH_H_

#include <string>
#include <vector>

#include "cluster/engine.h"
#include "common/random.h"
#include "workload/spec.h"

namespace invarnetx::workload {

// Execution phase of a MapReduce batch job.
enum class BatchPhase { kMap, kShuffle, kReduce };

// One Hadoop batch job running exclusively on the cluster (FIFO mode, as
// the paper assumes). Progress is instruction-based: each slave owns a data
// shard (an instruction budget), the engine reports retired instructions,
// and the job moves through map -> shuffle -> reduce as fractions of the
// cluster budget complete. The job finishes only when EVERY slave finishes
// its shard - straggler semantics - so inflating one node's CPI stretches
// the whole job (T = I * CPI * C on the slowest node).
class BatchJobModel : public cluster::WorkloadModel {
 public:
  // Shards are sized from the cluster's node capabilities (Hadoop assigns
  // task slots by machine size), scaled by a per-run input skew drawn from
  // `rng` at construction.
  BatchJobModel(const BatchSpec& spec, const cluster::Cluster& cluster,
                Rng* rng);

  std::string name() const override { return WorkloadName(spec_.type); }
  void Step(int tick, cluster::Cluster* cluster, Rng* rng) override;
  void OnProgress(size_t node_index, double instructions) override;
  bool Finished() const override;

  BatchPhase phase() const;
  double fraction_done() const;
  // Whether the given node has finished its shard.
  bool NodeFinished(size_t node_index) const;
  const BatchSpec& spec() const { return spec_; }

 private:
  const PhaseProfile& CurrentProfile() const;
  // CurrentProfile with smooth ramps across phase boundaries.
  PhaseProfile BlendedProfile() const;
  // One round of speculative re-execution of straggler shards.
  void RunSpeculation();

  BatchSpec spec_;
  std::vector<double> node_skew_;   // per-node input-size skew, ~N(1, 0.04)
  std::vector<double> node_budget_; // per-node instruction shard
  std::vector<double> node_retired_;
};

}  // namespace invarnetx::workload

#endif  // INVARNETX_WORKLOAD_BATCH_H_
