#include "workload/factory.h"

#include "workload/batch.h"
#include "workload/tpcds.h"

namespace invarnetx::workload {

Result<std::unique_ptr<cluster::WorkloadModel>> MakeWorkload(
    WorkloadType type, const cluster::Cluster& cluster, Rng* rng,
    double data_scale) {
  if (data_scale <= 0.0) {
    return Status::InvalidArgument("MakeWorkload: data_scale must be > 0");
  }
  if (type == WorkloadType::kTpcDs) {
    return std::unique_ptr<cluster::WorkloadModel>(
        new TpcDsModel(cluster.size(), rng));
  }
  Result<BatchSpec> spec = GetBatchSpec(type);
  if (!spec.ok()) return spec.status();
  spec.value().total_instructions *= data_scale;
  return std::unique_ptr<cluster::WorkloadModel>(
      new BatchJobModel(spec.value(), cluster, rng));
}

}  // namespace invarnetx::workload
