#ifndef INVARNETX_WORKLOAD_SPEC_H_
#define INVARNETX_WORKLOAD_SPEC_H_

#include <string>

#include "common/status.h"

namespace invarnetx::workload {

// The workloads evaluated in the paper: four batch jobs plus the TPC-DS
// 8-query interactive mix, all from BigDataBench on 15 GB of input.
enum class WorkloadType {
  kWordCount,
  kSort,
  kGrep,
  kBayes,
  kTpcDs,
  // The paper defers "other workloads" to future work; these two further
  // BigDataBench members exercise iterative, network-heavy profiles.
  kPageRank,
  kKmeans,
};

// All workload types, in a stable order.
inline constexpr WorkloadType kAllWorkloads[] = {
    WorkloadType::kWordCount, WorkloadType::kSort,     WorkloadType::kGrep,
    WorkloadType::kBayes,     WorkloadType::kTpcDs,    WorkloadType::kPageRank,
    WorkloadType::kKmeans};

std::string WorkloadName(WorkloadType type);
Result<WorkloadType> WorkloadFromName(const std::string& name);
bool IsBatch(WorkloadType type);

// Comma-separated list of every workload name, for "unknown workload"
// diagnostics (CLI, scenario files).
std::string AllWorkloadNames();

// Per-slave demand levels during one execution phase (normalized so 1.0
// saturates the node resource; mem in MB).
struct PhaseProfile {
  double cpu = 0.0;
  double io_read = 0.0;
  double io_write = 0.0;
  double net_in = 0.0;
  double net_out = 0.0;
  double mem_mb = 0.0;
  double churn = 0.0;     // task spawn/teardown intensity
  double rpc = 0.0;       // heartbeat/RPC intensity
  double cpi_base = 1.0;  // workload-intrinsic CPI in this phase
};

// Static description of a batch workload: the map/shuffle/reduce demand
// profiles, phase split by retired-instruction fraction, and the total
// instruction budget (which, divided by the achieved CPI, yields the
// execution time - the paper's T = I * CPI * C identity).
struct BatchSpec {
  WorkloadType type = WorkloadType::kWordCount;
  PhaseProfile map;
  PhaseProfile shuffle;
  PhaseProfile reduce;
  double map_frac = 0.65;      // fraction of instructions in the map phase
  double shuffle_frac = 0.10;  // then shuffle; the rest is reduce
  double total_instructions = 0.0;  // cluster-wide budget
  // Hadoop-style speculative execution: when a node falls far behind the
  // cluster, half its remaining shard is re-executed on an already-finished
  // node. Off by default - the paper's testbed ran with the stock FIFO
  // configuration, and speculation partially masks single-node faults
  // (see bench/ablation_speculation).
  bool speculative_execution = false;
};

// Returns the calibrated spec for a batch workload (15 GB-input scale,
// sized so a fault-free run takes roughly 35-60 ticks of 10 s on the
// 4-slave testbed). kTpcDs is interactive and has no BatchSpec.
Result<BatchSpec> GetBatchSpec(WorkloadType type);

}  // namespace invarnetx::workload

#endif  // INVARNETX_WORKLOAD_SPEC_H_
