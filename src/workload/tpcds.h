#ifndef INVARNETX_WORKLOAD_TPCDS_H_
#define INVARNETX_WORKLOAD_TPCDS_H_

#include <array>
#include <string>
#include <vector>

#include "cluster/engine.h"
#include "common/random.h"
#include "workload/spec.h"

namespace invarnetx::workload {

inline constexpr int kNumTpcDsQueries = 8;

// Per-query resource footprint of one active instance of a TPC-DS query
// template on one node (the paper runs 8 queries in a mixed mode).
struct QueryTemplate {
  const char* name;
  double cpu;
  double io_read;
  double io_write;
  double net_in;
  double net_out;
  double mem_mb;
  double churn;
  double rpc;
  double cpi;
  double arrival_rate;  // expected arrivals per node per tick
  double mean_ticks;    // expected residency of one instance
};

// The 8 mixed query templates.
const std::array<QueryTemplate, kNumTpcDsQueries>& TpcDsQueryTemplates();

// The interactive TPC-DS workload: per node, instances of the 8 query
// templates arrive (Poisson) and depart (geometric residency); the node's
// demand is the sum of the footprints of its active instances. The mix
// never finishes - observation windows are bounded by max_ticks. A varying
// query mix makes its performance model and invariants noisier than a
// batch job's, reproducing the paper's batch-vs-interactive gap.
class TpcDsModel : public cluster::WorkloadModel {
 public:
  TpcDsModel(size_t num_nodes, Rng* rng);

  std::string name() const override {
    return WorkloadName(WorkloadType::kTpcDs);
  }
  void Step(int tick, cluster::Cluster* cluster, Rng* rng) override;
  void OnProgress(size_t node_index, double instructions) override;
  bool Finished() const override { return false; }

  // Total active query instances across the cluster.
  int TotalActive() const;

 private:
  std::vector<std::array<int, kNumTpcDsQueries>> active_;  // [node][template]
  std::vector<double> node_skew_;
  // Slow AR(1) load-intensity wave shared by all nodes: interactive traffic
  // breathes, and this common factor is what couples the activity metrics
  // strongly enough to form invariants.
  double load_wave_ = 0.0;
};

// Samples a Poisson variate (Knuth's method; lambda expected to be small).
int SamplePoisson(Rng* rng, double lambda);

}  // namespace invarnetx::workload

#endif  // INVARNETX_WORKLOAD_TPCDS_H_
