#ifndef INVARNETX_WORKLOAD_SEQUENCE_H_
#define INVARNETX_WORKLOAD_SEQUENCE_H_

#include <memory>
#include <vector>

#include "cluster/engine.h"
#include "common/random.h"
#include "workload/batch.h"
#include "workload/spec.h"

namespace invarnetx::workload {

// A FIFO queue of batch jobs, as the paper's Hadoop runs in FIFO mode: each
// job takes the cluster exclusively; the next starts when it finishes.
// This is what makes the per-job operation context meaningful - the
// monitoring side must switch performance models at every job boundary
// ("when a new job arrives ... InvarNet-X selects a performance model from
// the archived models instantly", Sec. 3.2).
class JobSequenceModel : public cluster::WorkloadModel {
 public:
  struct JobSpan {
    WorkloadType type = WorkloadType::kWordCount;
    int start_tick = 0;
    int end_tick = -1;  // exclusive; -1 while the job is still running
  };

  // `types` must be batch workloads. Per-job randomness comes from `rng`.
  JobSequenceModel(std::vector<WorkloadType> types,
                   const cluster::Cluster& cluster, Rng* rng);

  std::string name() const override { return "fifo-sequence"; }
  void Step(int tick, cluster::Cluster* cluster, Rng* rng) override;
  void OnProgress(size_t node_index, double instructions) override;
  bool Finished() const override;

  // Completed and in-flight job spans, in FIFO order.
  const std::vector<JobSpan>& spans() const { return spans_; }
  // Index of the running job, or -1 between jobs / after the last one.
  int current_job() const;

 private:
  void StartNextJob(int tick);

  std::vector<WorkloadType> types_;
  const cluster::Cluster* cluster_;
  size_t next_job_ = 0;
  std::unique_ptr<BatchJobModel> current_;
  std::vector<JobSpan> spans_;
  Rng job_rng_;
};

}  // namespace invarnetx::workload

#endif  // INVARNETX_WORKLOAD_SEQUENCE_H_
