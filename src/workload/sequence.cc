#include "workload/sequence.h"

namespace invarnetx::workload {

JobSequenceModel::JobSequenceModel(std::vector<WorkloadType> types,
                                   const cluster::Cluster& cluster, Rng* rng)
    : types_(std::move(types)), cluster_(&cluster), job_rng_(rng->Fork()) {}

int JobSequenceModel::current_job() const {
  if (current_ == nullptr) return -1;
  return static_cast<int>(next_job_) - 1;
}

void JobSequenceModel::StartNextJob(int tick) {
  Result<BatchSpec> spec = GetBatchSpec(types_[next_job_]);
  if (!spec.ok()) {
    // Interactive types cannot be queued; skip defensively (constructor
    // callers are expected to pass batch types only).
    ++next_job_;
    return;
  }
  current_ = std::make_unique<BatchJobModel>(spec.value(), *cluster_,
                                             &job_rng_);
  spans_.push_back(JobSpan{types_[next_job_], tick, -1});
  ++next_job_;
}

void JobSequenceModel::Step(int tick, cluster::Cluster* cluster, Rng* rng) {
  if (current_ != nullptr && current_->Finished()) {
    spans_.back().end_tick = tick;
    current_.reset();
  }
  while (current_ == nullptr && next_job_ < types_.size()) {
    StartNextJob(tick);
  }
  if (current_ == nullptr) {
    // Queue drained: daemons idle along.
    for (size_t i = 0; i < cluster->size(); ++i) {
      cluster::DriverState& d = cluster->node(i).drivers;
      d.cpu_task = 0.04;
      d.io_read = 0.02;
      d.io_write = 0.02;
      d.net_in = 0.02;
      d.net_out = 0.02;
      d.mem_task_mb = 600.0;
      d.task_churn = 0.05;
      d.rpc_rate = 0.2;
      d.cpi_base = 1.0;
    }
    return;
  }
  current_->Step(tick, cluster, rng);
}

void JobSequenceModel::OnProgress(size_t node_index, double instructions) {
  if (current_ != nullptr) current_->OnProgress(node_index, instructions);
}

bool JobSequenceModel::Finished() const {
  return current_ == nullptr && next_job_ >= types_.size();
}

}  // namespace invarnetx::workload
