#include "workload/batch.h"

#include <algorithm>

namespace invarnetx::workload {

BatchJobModel::BatchJobModel(const BatchSpec& spec,
                             const cluster::Cluster& cluster, Rng* rng)
    : spec_(spec) {
  const size_t num_nodes = cluster.size();
  node_skew_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    node_skew_.push_back(std::max(0.7, rng->Gaussian(1.0, 0.04)));
  }
  // Each slave's shard scales with its compute capability (Hadoop sizes
  // slot counts by machine) and its per-run input skew; node 0 (the
  // master) retires no task instructions.
  node_budget_.assign(num_nodes, 0.0);
  node_retired_.assign(num_nodes, 0.0);
  std::vector<double> weight(num_nodes, 0.0);
  double weight_sum = 0.0;
  for (size_t i = 1; i < num_nodes; ++i) {
    const cluster::NodeSpec& node_spec = cluster.node(i).spec;
    weight[i] = node_skew_[i] * node_spec.cores * node_spec.freq_ghz /
                node_spec.cpi_factor;
    weight_sum += weight[i];
  }
  for (size_t i = 1; i < num_nodes; ++i) {
    node_budget_[i] =
        spec.total_instructions * weight[i] / std::max(weight_sum, 1e-9);
  }
}

bool BatchJobModel::NodeFinished(size_t node_index) const {
  if (node_index == 0 || node_index >= node_budget_.size()) return true;
  return node_retired_[node_index] >= node_budget_[node_index];
}

BatchPhase BatchJobModel::phase() const {
  const double f = fraction_done();
  if (f < spec_.map_frac) return BatchPhase::kMap;
  if (f < spec_.map_frac + spec_.shuffle_frac) return BatchPhase::kShuffle;
  return BatchPhase::kReduce;
}

double BatchJobModel::fraction_done() const {
  double retired = 0.0;
  for (double r : node_retired_) retired += r;
  return std::min(1.0, retired / spec_.total_instructions);
}

const PhaseProfile& BatchJobModel::CurrentProfile() const {
  switch (phase()) {
    case BatchPhase::kMap: return spec_.map;
    case BatchPhase::kShuffle: return spec_.shuffle;
    case BatchPhase::kReduce: return spec_.reduce;
  }
  return spec_.map;
}

PhaseProfile BatchJobModel::BlendedProfile() const {
  // Tasks of adjacent phases overlap, so demand ramps between phase
  // profiles instead of stepping (this also keeps the normal CPI series
  // free of step discontinuities that would inflate residual thresholds).
  constexpr double kWidth = 0.12;  // transition half-width in progress units
  const double f = fraction_done();
  const double shuffle_start = spec_.map_frac;
  const double reduce_start = spec_.map_frac + spec_.shuffle_frac;
  auto mix = [](const PhaseProfile& a, const PhaseProfile& b, double w) {
    auto lerp = [w](double x, double y) { return x + (y - x) * w; };
    PhaseProfile out;
    out.cpu = lerp(a.cpu, b.cpu);
    out.io_read = lerp(a.io_read, b.io_read);
    out.io_write = lerp(a.io_write, b.io_write);
    out.net_in = lerp(a.net_in, b.net_in);
    out.net_out = lerp(a.net_out, b.net_out);
    out.mem_mb = lerp(a.mem_mb, b.mem_mb);
    out.churn = lerp(a.churn, b.churn);
    out.rpc = lerp(a.rpc, b.rpc);
    out.cpi_base = lerp(a.cpi_base, b.cpi_base);
    return out;
  };
  auto ramp = [](double x) { return std::clamp(x, 0.0, 1.0); };
  if (f < shuffle_start) {
    const double w = ramp((f - (shuffle_start - kWidth)) / kWidth);
    return mix(spec_.map, spec_.shuffle, w);
  }
  if (f < reduce_start) {
    const double w = ramp((f - (reduce_start - kWidth)) / kWidth);
    return mix(spec_.shuffle, spec_.reduce, w);
  }
  return spec_.reduce;
}

void BatchJobModel::Step(int /*tick*/, cluster::Cluster* cluster, Rng* rng) {
  if (spec_.speculative_execution) RunSpeculation();
  const PhaseProfile p = BlendedProfile();
  for (size_t i = 0; i < cluster->num_slaves(); ++i) {
    cluster::SimNode& node = cluster->slave(i);
    cluster::DriverState& d = node.drivers;
    // Tasks drain gradually as a node's shard completes: demand winds down
    // over the last ~6% of its shard instead of dropping off a cliff (an
    // abrupt drop would put a large spurious residual into every normal
    // CPI trace and inflate the calibrated anomaly thresholds).
    const size_t node_index = i + 1;
    double wind = 1.0;
    if (node_index < node_budget_.size() && node_budget_[node_index] > 0.0) {
      const double remaining =
          1.0 - node_retired_[node_index] / node_budget_[node_index];
      wind = std::clamp(remaining / 0.06, 0.0, 1.0);
    }
    const double idle_mix = 1.0 - wind;
    const double skew =
        node_index < node_skew_.size() ? node_skew_[node_index]
                                       : node_skew_.back();
    // One shared envelope per node per tick keeps metric couplings strong;
    // telemetry adds per-metric observation noise on top.
    const double envelope = std::max(
        0.5, skew * (1.0 + d.demand_noise + rng->Gaussian(0.0, 0.015)));
    d.cpu_task = p.cpu * envelope * wind + 0.04 * idle_mix;
    d.io_read = p.io_read * envelope * wind + 0.02 * idle_mix;
    d.io_write = p.io_write * envelope * wind + 0.02 * idle_mix;
    d.net_in = p.net_in * envelope * wind + 0.02 * idle_mix;
    d.net_out = p.net_out * envelope * wind + 0.02 * idle_mix;
    d.mem_task_mb =
        p.mem_mb * (1.0 + 0.5 * (envelope - 1.0)) * wind + 600.0 * idle_mix;
    d.task_churn = p.churn * envelope * wind + 0.05 * idle_mix;
    d.rpc_rate = p.rpc * envelope * wind + 0.2 * idle_mix;
    d.cpi_base = p.cpi_base * wind + 1.0 * idle_mix;
  }
  // The master runs JobTracker + NameNode: light CPU, RPC that tracks the
  // slaves' task churn.
  cluster::DriverState& m = cluster->master().drivers;
  m.cpu_task = 0.08 + 0.05 * p.churn + rng->Gaussian(0.0, 0.005);
  m.cpu_task = std::max(0.01, m.cpu_task);
  m.io_read = 0.02;
  m.io_write = 0.04;
  m.net_in = 0.05 + 0.05 * p.rpc;
  m.net_out = 0.05 + 0.05 * p.rpc;
  m.mem_task_mb = 2200.0;
  m.task_churn = 0.1;
  m.rpc_rate = 0.5 + 0.6 * p.churn;
  m.cpi_base = 1.0;
}

void BatchJobModel::OnProgress(size_t node_index, double instructions) {
  if (node_index == 0 || node_index >= node_retired_.size()) return;
  node_retired_[node_index] += instructions;
}

void BatchJobModel::RunSpeculation() {
  // Hadoop launches backup attempts for stragglers: when a node's shard
  // lags the cluster badly and another node sits finished, half of the
  // laggard's remaining work is re-executed there.
  double fraction_sum = 0.0;
  int counted = 0;
  for (size_t i = 1; i < node_budget_.size(); ++i) {
    if (node_budget_[i] <= 0.0) continue;
    fraction_sum += std::min(1.0, node_retired_[i] / node_budget_[i]);
    ++counted;
  }
  if (counted == 0) return;
  const double mean_fraction = fraction_sum / counted;
  for (size_t lagger = 1; lagger < node_budget_.size(); ++lagger) {
    if (node_budget_[lagger] <= 0.0 || NodeFinished(lagger)) continue;
    const double fraction = node_retired_[lagger] / node_budget_[lagger];
    if (fraction >= mean_fraction - 0.12) continue;
    const double remaining = node_budget_[lagger] - node_retired_[lagger];
    if (remaining < spec_.total_instructions * 0.02) continue;
    for (size_t helper = 1; helper < node_budget_.size(); ++helper) {
      if (helper == lagger || !NodeFinished(helper)) continue;
      const double moved = remaining * 0.5;
      node_budget_[lagger] -= moved;
      node_budget_[helper] += moved;  // the helper resumes work
      break;
    }
  }
}

bool BatchJobModel::Finished() const {
  for (size_t i = 1; i < node_budget_.size(); ++i) {
    if (!NodeFinished(i)) return false;
  }
  return !node_budget_.empty();
}

}  // namespace invarnetx::workload
