#include "serve/fleet.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace invarnetx::serve {

MonitorFleet::MonitorFleet(const core::InvarNetX* pipeline, FleetConfig config)
    : pipeline_(pipeline), config_(config) {
  if (config_.window_capacity == 0) config_.window_capacity = 1;
}

MonitorFleet::~MonitorFleet() {
  // Pool workers capture `this` (results_mu_/results_cv_); never let the
  // fleet die with diagnoses in flight.
  WaitForDiagnoses();
}

Status MonitorFleet::StartJob(const core::OperationContext& context) {
  auto it = monitors_.find(context);
  if (it == monitors_.end()) {
    core::OnlineMonitor::Options options;
    options.window_capacity = config_.window_capacity;
    Slot slot;
    slot.monitor =
        std::make_unique<core::OnlineMonitor>(pipeline_, options);
    it = monitors_.emplace(context, std::move(slot)).first;
  }
  INVARNETX_RETURN_IF_ERROR(it->second.monitor->StartJob(context));
  it->second.diagnosis_dispatched = false;
  PublishGauges();
  return Status::Ok();
}

Result<TickSummary> MonitorFleet::IngestTick(
    const std::vector<TickSample>& samples) {
  obs::Span ingest_span("serve_ingest_tick",
                        {{"samples", samples.size()}});
  // Resolve every sample to its monitor up front: errors surface before any
  // observation lands, so a rejected batch leaves the fleet untouched.
  std::vector<Slot*> targets(samples.size(), nullptr);
  std::set<const Slot*> seen;
  for (size_t i = 0; i < samples.size(); ++i) {
    auto it = monitors_.find(samples[i].context);
    if (it == monitors_.end() || !it->second.monitor->job_active()) {
      return Status::FailedPrecondition(
          "IngestTick: no active monitor for " +
          samples[i].context.ToString());
    }
    if (!seen.insert(&it->second).second) {
      return Status::InvalidArgument(
          "IngestTick: duplicate sample for " + samples[i].context.ToString());
    }
    targets[i] = &it->second;
  }

  // Detection fan-out. Each index touches only its own monitor (duplicates
  // were rejected above), so the fan-out is race-free and the per-monitor
  // stream stays serial - verdicts are bit-identical for any thread count.
  std::vector<core::OnlineMonitor::TickVerdict> verdicts(samples.size());
  INVARNETX_RETURN_IF_ERROR(ParallelFor(
      samples.size(), config_.threads, [&](size_t i) -> Status {
        Result<core::OnlineMonitor::TickVerdict> verdict =
            targets[i]->monitor->Observe(samples[i].cpi, samples[i].metrics);
        if (!verdict.ok()) return verdict.status();
        verdicts[i] = verdict.value();
        return Status::Ok();
      }));

  // Alarm handling runs serially in sample order, so diagnosis dispatch
  // order is deterministic too.
  TickSummary summary;
  summary.samples = static_cast<int>(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    Slot* slot = targets[i];
    if (!slot->monitor->alarm_active() || slot->diagnosis_dispatched) {
      continue;
    }
    ++summary.new_alarms;
    slot->diagnosis_dispatched = true;
    obs::MetricsRegistry::Shared().GetCounter("serve.alarms_raised")
        .Increment();
    if (config_.diagnose_on_alarm) DispatchDiagnosis(slot);
  }
  summary.alarms_active = static_cast<int>(alarms_active());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetCounter("serve.ticks_ingested").Increment();
  registry.GetCounter("serve.samples_ingested")
      .Increment(static_cast<uint64_t>(samples.size()));
  PublishGauges();
  ingest_span.End();
  registry.GetHistogram("serve.ingest_seconds").Record(ingest_span.Seconds());
  return summary;
}

void MonitorFleet::DispatchDiagnosis(Slot* slot) {
  // Snapshot everything the diagnosis needs now: later ticks keep mutating
  // the live window while the MIC matrix grinds on the copy, and a StartJob
  // re-arm can swap the monitor's model epoch underneath us.
  FleetDiagnosis pending;
  pending.context = slot->monitor->context();
  pending.epoch = slot->monitor->model_epoch();
  pending.first_alarm_tick = slot->monitor->first_alarm_tick();
  std::shared_ptr<const core::ContextModel> model = slot->monitor->model();
  telemetry::NodeTrace window = slot->monitor->WindowTrace();

  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    depth = ++pending_;
  }
  obs::MetricsRegistry::Shared().GetHistogram("serve.diagnosis_queue_depth")
      .Record(static_cast<double>(depth));

  auto task = [this, pending = std::move(pending), model = std::move(model),
               window = std::move(window)]() mutable {
    Result<core::DiagnosisReport> report =
        pipeline_->InferCauseForModel(*model, window);
    if (report.ok()) {
      pending.report = std::move(report.value());
      pending.report.anomaly_detected = true;
      pending.report.first_alarm_tick = pending.first_alarm_tick;
    } else {
      pending.status = report.status();
    }
    obs::MetricsRegistry::Shared().GetCounter("serve.diagnoses_completed")
        .Increment();
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      results_.push_back(std::move(pending));
      --pending_;
      // Notify under the lock: a WaitForDiagnoses caller may destroy the
      // fleet the moment it sees pending_ == 0, and it cannot leave wait()
      // until this mutex is released - keeping the cv alive for the
      // broadcast.
      results_cv_.notify_all();
    }
  };
  if (config_.threads == 1) {
    task();
  } else {
    ThreadPool::Shared().Submit(std::move(task));
  }
}

void MonitorFleet::WaitForDiagnoses() {
  std::unique_lock<std::mutex> lock(results_mu_);
  results_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::vector<FleetDiagnosis> MonitorFleet::TakeDiagnoses() {
  std::vector<FleetDiagnosis> out;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    out.swap(results_);
  }
  std::sort(out.begin(), out.end(),
            [](const FleetDiagnosis& a, const FleetDiagnosis& b) {
              if (!(a.context == b.context)) return a.context < b.context;
              return a.first_alarm_tick < b.first_alarm_tick;
            });
  return out;
}

size_t MonitorFleet::active_monitors() const {
  size_t active = 0;
  for (const auto& [context, slot] : monitors_) {
    if (slot.monitor->job_active()) ++active;
  }
  return active;
}

size_t MonitorFleet::alarms_active() const {
  size_t alarms = 0;
  for (const auto& [context, slot] : monitors_) {
    if (slot.monitor->alarm_active()) ++alarms;
  }
  return alarms;
}

size_t MonitorFleet::pending_diagnoses() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return pending_;
}

const core::OnlineMonitor* MonitorFleet::Find(
    const core::OperationContext& context) const {
  auto it = monitors_.find(context);
  return it == monitors_.end() ? nullptr : it->second.monitor.get();
}

void MonitorFleet::PublishGauges() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetGauge("serve.active_monitors")
      .Set(static_cast<double>(active_monitors()));
  registry.GetGauge("serve.alarms_active")
      .Set(static_cast<double>(alarms_active()));
}

}  // namespace invarnetx::serve
