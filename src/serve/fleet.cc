#include "serve/fleet.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

#include "common/parallel.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/statusz.h"

namespace invarnetx::serve {

namespace {

// One window-slab row: [cpi, metric 0 .. metric 25] per tick slot, the same
// layout core::RingWindow uses.
constexpr size_t kRowDoubles = static_cast<size_t>(telemetry::kNumMetrics) + 1;

// Stack-local completion latch for the per-tick drain fan-out. Notify runs
// under the lock: the waiter cannot leave Wait() (and pop the latch off its
// stack) until the signalling task has released the mutex.
struct DrainLatch {
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 0;

  void Done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
  }
};

}  // namespace

MonitorFleet::MonitorFleet(const core::InvarNetX* pipeline, FleetConfig config)
    : pipeline_(pipeline), config_(config) {
  if (config_.window_capacity == 0) config_.window_capacity = 1;
  if (config_.storm_window_ticks == 0) config_.storm_window_ticks = 1;
  if (config_.watchdog_window_ticks == 0) config_.watchdog_window_ticks = 1;
  consecutive_required_ = pipeline_->config().consecutive_required;
  effective_threads_ = EffectiveThreadCount(config_.threads);

  // Resolve the shard count once; it is fixed for the fleet's lifetime (a
  // monitor's shard is part of its handle assignment).
  int shards = config_.shards;
  if (shards < 1) shards = EffectiveThreadCount(0);
  shards = std::min(shards, kMaxThreads);
  config_.shards = shards;

  const size_t initial_ring =
      config_.ring_capacity == 0 ? 1 : config_.ring_capacity;
  const size_t per_shard_hint =
      config_.expected_monitors == 0
          ? 0
          : config_.expected_monitors / static_cast<size_t>(shards) + 1;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  shards_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>(initial_ring);
    const obs::MetricLabels labels = {{"shard", std::to_string(s)}};
    shard->samples_counter = &registry.GetCounter("serve.shard_samples", labels);
    shard->window_overflow_counter =
        &registry.GetCounter("serve.shard_overflow", labels);
    shard->ring_overflow_counter =
        &registry.GetCounter("serve.ring_overflow", labels);
    if (per_shard_hint > 0) {
      ShardHot& hot = shard->hot;
      hot.last_residual.reserve(per_shard_hint);
      hot.threshold.reserve(per_shard_hint);
      hot.debounce.reserve(per_shard_hint);
      hot.alarm.reserve(per_shard_hint);
      hot.first_alarm_tick.reserve(per_shard_hint);
      hot.window_total.reserve(per_shard_hint);
      hot.window_size.reserve(per_shard_hint);
      hot.window_head.reserve(per_shard_hint);
      hot.epoch.reserve(per_shard_hint);
      hot.predictor.reserve(per_shard_hint);
      hot.window_slab.reserve(per_shard_hint * config_.window_capacity *
                              kRowDoubles);
      shard->members.reserve(per_shard_hint);
    }
    shards_.push_back(std::move(shard));
  }
  if (config_.expected_monitors > 0) {
    slots_.reserve(config_.expected_monitors);
    shard_of_.reserve(config_.expected_monitors);
    local_of_.reserve(config_.expected_monitors);
    job_active_.reserve(config_.expected_monitors);
    seen_stamp_.reserve(config_.expected_monitors);
  }
  shard_count_scratch_.resize(static_cast<size_t>(shards), 0);
  shard_pushed_scratch_.resize(static_cast<size_t>(shards), 0);
  shard_window_overflow_scratch_.resize(static_cast<size_t>(shards), 0);

  if (effective_threads_ > 1) {
    ThreadPool::Shared().EnsureSize(effective_threads_);
  }
  status_cache_.slow_tick_budget_seconds = config_.slow_tick_budget_seconds;
  FleetStatusBoard::Shared().Register(this);
}

MonitorFleet::~MonitorFleet() {
  // Deregister first: once this returns, no /statusz scrape can reach us.
  FleetStatusBoard::Shared().Deregister(this);
  // Pool workers capture `this` (results_mu_/results_cv_); never let the
  // fleet die with diagnoses in flight.
  WaitForDiagnoses();
}

Result<MonitorHandle> MonitorFleet::StartJob(
    const core::OperationContext& context) {
  Result<std::shared_ptr<const core::ContextModel>> model =
      pipeline_->GetContext(context);
  if (!model.ok()) return model.status();

  auto [it, inserted] = index_.try_emplace(context, kInvalidMonitor);
  if (inserted) {
    // First job for this context: assign the next dense handle and its
    // shard, and grow that shard's SoA columns + window slab by one monitor.
    const MonitorHandle handle = static_cast<MonitorHandle>(slots_.size());
    const uint32_t shard_index =
        static_cast<uint32_t>(handle) % static_cast<uint32_t>(shards_.size());
    Shard& shard = *shards_[shard_index];
    const uint32_t local = static_cast<uint32_t>(shard.members.size());
    it->second = handle;

    ColdSlot slot;
    slot.context = context;
    slot.shard = static_cast<int>(shard_index);
    slot.local = local;
    slots_.push_back(std::move(slot));
    shard_of_.push_back(shard_index);
    local_of_.push_back(local);
    job_active_.push_back(0);
    seen_stamp_.push_back(0);

    ShardHot& hot = shard.hot;
    hot.last_residual.push_back(0.0);
    hot.threshold.push_back(0.0);
    hot.debounce.push_back(0);
    hot.alarm.push_back(0);
    hot.first_alarm_tick.push_back(-1);
    hot.window_total.push_back(0);
    hot.window_size.push_back(0);
    hot.window_head.push_back(0);
    hot.epoch.push_back(0);
    hot.predictor.emplace_back(ts::ArimaModel());  // re-pinned below
    hot.window_slab.resize(hot.window_slab.size() +
                           config_.window_capacity * kRowDoubles);
    shard.members.push_back(handle);

    // Auto ring capacity tracks the shard's population, so a well-formed
    // batch (each monitor at most once per tick) can never be rejected.
    // Safe between ticks: every ring is drained before IngestTick returns.
    if (config_.ring_capacity == 0 &&
        shard.ring.capacity() < shard.members.size()) {
      shard.ring.Reset(shard.members.size());
    }
  }

  const MonitorHandle handle = it->second;
  ColdSlot& cold = slots_[static_cast<size_t>(handle)];
  Shard& shard = *shards_[static_cast<size_t>(cold.shard)];
  ShardHot& hot = shard.hot;
  const uint32_t local = cold.local;

  // Pin the epoch snapshot and cache the scalar alarm threshold; the
  // per-sample path then compares against one double instead of re-deriving
  // the rule from the model.
  cold.model = std::move(model.value());
  cold.diagnosis_dispatched = false;
  cold.overflow_journaled = false;
  const core::ThresholdRule rule = pipeline_->config().threshold_rule;
  hot.threshold[local] = rule == core::ThresholdRule::kMaxMin
                             ? cold.model->perf.residual_max()
                             : cold.model->perf.Threshold(rule);
  hot.epoch[local] = cold.model->epoch;
  hot.predictor[local] = ts::ArimaPredictor(cold.model->perf.arima());
  hot.last_residual[local] = 0.0;
  hot.debounce[local] = 0;
  if (hot.alarm[local] != 0) --alarms_latched_;
  hot.alarm[local] = 0;
  hot.first_alarm_tick[local] = -1;
  hot.window_total[local] = 0;
  hot.window_size[local] = 0;
  hot.window_head[local] = 0;

  if (job_active_[static_cast<size_t>(handle)] == 0) {
    job_active_[static_cast<size_t>(handle)] = 1;
    ++active_jobs_;
  }
  // New job era: the next backpressure reject per shard is journal-worthy
  // again.
  for (auto& s : shards_) s->backpressure_journaled = false;

  PublishGauges();
  RefreshStatusCache();
  return handle;
}

void MonitorFleet::ObserveOne(Shard& shard, uint32_t local,
                              const TickSample& sample) {
  // Exactly AnomalyDetector::Observe + RingWindow::Push, run against the
  // shard's SoA columns with the threshold scalar cached at StartJob.
  ShardHot& hot = shard.hot;
  ts::ArimaPredictor& predictor = hot.predictor[local];
  const bool ready = predictor.Ready();
  const double raw = predictor.Observe(sample.cpi);
  const double residual = ready ? raw : 0.0;
  hot.last_residual[local] = residual;
  const bool flag = ready && residual > hot.threshold[local];
  const int32_t consecutive = flag ? hot.debounce[local] + 1 : 0;
  hot.debounce[local] = consecutive;

  const size_t capacity = config_.window_capacity;
  const uint32_t head = hot.window_head[local];
  double* row =
      hot.window_slab.data() +
      (static_cast<size_t>(local) * capacity + head) * kRowDoubles;
  row[0] = sample.cpi;
  std::memcpy(row + 1, sample.metrics.data(),
              sizeof(double) * static_cast<size_t>(telemetry::kNumMetrics));
  hot.window_head[local] = head + 1 == capacity ? 0 : head + 1;
  const int64_t total = ++hot.window_total[local];
  if (hot.window_size[local] < capacity) ++hot.window_size[local];

  if (consecutive >= consecutive_required_ && hot.alarm[local] == 0) {
    hot.alarm[local] = 1;
    // Absolute job ticks, so the report still names the right tick after
    // the window has evicted it.
    hot.first_alarm_tick[local] = static_cast<int32_t>(total) - 1;
  }
}

void MonitorFleet::DrainShard(Shard& shard, uint32_t expected,
                              const std::vector<TickSample>& samples) {
  RingEntry entry;
  uint32_t drained = 0;
  while (drained < expected) {
    if (shard.ring.TryPop(&entry)) {
      ObserveOne(shard, entry.local, samples[entry.index]);
      ++drained;
    } else {
      // The producer is still distributing this tick's batch; the entries
      // we are owed are already admitted and on their way.
      std::this_thread::yield();
    }
  }
}

Result<TickSummary> MonitorFleet::IngestTick(
    const std::vector<TickSample>& samples) {
  obs::Span ingest_span("serve_ingest_tick", {{"samples", samples.size()}});
  ++tick_stamp_;

  // Phase 1 - validate and resolve every sample up front: errors surface
  // before any observation lands, so a rejected batch leaves the fleet
  // untouched. Duplicate detection is allocation-free: dense tick-stamped
  // flags over handles, no per-tick set.
  handles_scratch_.resize(samples.size());
  const size_t num_shards = shards_.size();
  std::fill(shard_count_scratch_.begin(), shard_count_scratch_.end(), 0u);
  for (size_t i = 0; i < samples.size(); ++i) {
    MonitorHandle handle = samples[i].monitor;
    if (handle == kInvalidMonitor) {
      // Compatibility path for producers that never learned their handle.
      auto it = index_.find(samples[i].context);
      handle = it == index_.end() ? kInvalidMonitor : it->second;
    }
    if (handle < 0 || static_cast<size_t>(handle) >= slots_.size()) {
      return Status::FailedPrecondition("IngestTick: no active monitor for " +
                                        samples[i].context.ToString());
    }
    if (job_active_[static_cast<size_t>(handle)] == 0) {
      return Status::FailedPrecondition("IngestTick: no active monitor for " +
                                        slots_[static_cast<size_t>(handle)]
                                            .context.ToString());
    }
    if (seen_stamp_[static_cast<size_t>(handle)] == tick_stamp_) {
      return Status::InvalidArgument("IngestTick: duplicate sample for " +
                                     slots_[static_cast<size_t>(handle)]
                                         .context.ToString());
    }
    seen_stamp_[static_cast<size_t>(handle)] = tick_stamp_;
    handles_scratch_[i] = handle;
    ++shard_count_scratch_[shard_of_[static_cast<size_t>(handle)]];
  }

  // Phase 2 - deterministic admission: a shard accepts at most its ring
  // capacity this tick, decided by counts in batch order - never by queue
  // timing - so the reject set is identical for every thread count.
  int nonempty = 0;
  int first_nonempty = -1;
  for (size_t s = 0; s < num_shards; ++s) {
    if (shard_count_scratch_[s] == 0) continue;
    ++nonempty;
    if (first_nonempty < 0) first_nonempty = static_cast<int>(s);
  }
  const bool parallel = effective_threads_ > 1 && nonempty > 1;

  // Shard-affine consumers start before the push phase, so detection
  // pipelines with distribution. Pool tasks and this thread race to claim
  // each shard's drain (caller-participates): ingest completes even when
  // every pool worker is grinding a diagnosis.
  DrainLatch latch;
  if (parallel) {
    latch.remaining = nonempty - 1;
    for (size_t s = static_cast<size_t>(first_nonempty) + 1; s < num_shards;
         ++s) {
      if (shard_count_scratch_[s] == 0) continue;
      Shard* shard = shards_[s].get();
      shard->drain_claimed.store(0, std::memory_order_relaxed);
      const uint32_t expected = static_cast<uint32_t>(
          std::min<size_t>(shard_count_scratch_[s], shard->ring.capacity()));
      ThreadPool::Shared().Submit([this, shard, expected, &samples, &latch] {
        if (shard->drain_claimed.exchange(1, std::memory_order_acq_rel) == 0) {
          DrainShard(*shard, expected, samples);
        }
        latch.Done();
      });
    }
  }

  // Phase 3 - distribute in batch order. An admitted push cannot fail: at
  // most capacity entries are pushed per shard per tick and the consumer
  // only ever removes entries, so the ring never holds more than capacity.
  TickSummary summary;
  accepted_scratch_.resize(samples.size());
  std::fill(shard_pushed_scratch_.begin(), shard_pushed_scratch_.end(), 0u);
  for (size_t i = 0; i < samples.size(); ++i) {
    const MonitorHandle handle = handles_scratch_[i];
    const uint32_t s = shard_of_[static_cast<size_t>(handle)];
    Shard& shard = *shards_[s];
    if (shard_pushed_scratch_[s] < shard.ring.capacity()) {
      ++shard_pushed_scratch_[s];
      shard.ring.TryPush(RingEntry{local_of_[static_cast<size_t>(handle)],
                                   static_cast<uint32_t>(i)});
      accepted_scratch_[i] = 1;
    } else {
      accepted_scratch_[i] = 0;
      ++summary.rejected;
    }
  }

  // Phase 4 - drain. This thread always takes the first shard, then helps
  // with any shard whose pool task has not started yet.
  if (first_nonempty >= 0) {
    Shard& first = *shards_[static_cast<size_t>(first_nonempty)];
    DrainShard(first,
               static_cast<uint32_t>(std::min<size_t>(
                   shard_count_scratch_[static_cast<size_t>(first_nonempty)],
                   first.ring.capacity())),
               samples);
  }
  if (parallel) {
    for (size_t s = static_cast<size_t>(first_nonempty) + 1; s < num_shards;
         ++s) {
      if (shard_count_scratch_[s] == 0) continue;
      Shard* shard = shards_[s].get();
      if (shard->drain_claimed.exchange(1, std::memory_order_acq_rel) == 0) {
        DrainShard(*shard,
                   static_cast<uint32_t>(std::min<size_t>(
                       shard_count_scratch_[s], shard->ring.capacity())),
                   samples);
      }
    }
    latch.Wait();
  } else {
    for (size_t s = static_cast<size_t>(std::max(first_nonempty, 0)) + 1;
         s < num_shards; ++s) {
      if (shard_count_scratch_[s] == 0) continue;
      Shard& shard = *shards_[s];
      DrainShard(shard,
                 static_cast<uint32_t>(std::min<size_t>(
                     shard_count_scratch_[s], shard.ring.capacity())),
                 samples);
    }
  }

  // Phase 5 - accounting and alarm handling, serially in batch order, so
  // diagnosis dispatch order is deterministic for every shard and thread
  // count.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  std::fill(shard_window_overflow_scratch_.begin(),
            shard_window_overflow_scratch_.end(), 0u);
  for (size_t i = 0; i < samples.size(); ++i) {
    if (accepted_scratch_[i] == 0) continue;
    const MonitorHandle handle = handles_scratch_[i];
    ColdSlot& cold = slots_[static_cast<size_t>(handle)];
    Shard& shard = *shards_[static_cast<size_t>(cold.shard)];
    ShardHot& hot = shard.hot;
    const uint32_t local = cold.local;
    ++summary.samples;
    if (hot.window_total[local] >
        static_cast<int64_t>(config_.window_capacity)) {
      ++shard_window_overflow_scratch_[static_cast<size_t>(cold.shard)];
      ++window_overflows_;
      if (!cold.overflow_journaled) {
        cold.overflow_journaled = true;
        obs::EventJournal::Shared().Record(
            obs::EventKind::kRingOverflow, "window overwriting oldest ticks",
            {{"context", cold.context.ToString()},
             {"capacity", static_cast<uint64_t>(config_.window_capacity)}});
      }
    }
    if (hot.alarm[local] == 0 || cold.diagnosis_dispatched) continue;
    ++summary.new_alarms;
    cold.diagnosis_dispatched = true;
    ++alarms_raised_;
    ++alarms_latched_;
    registry.GetCounter("serve.alarms_raised").Increment();
    obs::EventJournal::Shared().Record(
        obs::EventKind::kAlarm, "debounced alarm latched",
        {{"context", cold.context.ToString()},
         {"tick", hot.first_alarm_tick[local]}});
    if (config_.diagnose_on_alarm) DispatchDiagnosis(handle);
  }
  summary.alarms_active = static_cast<int>(alarms_latched_);

  // Per-shard series: one batched increment per shard instead of one atomic
  // per sample.
  for (size_t s = 0; s < num_shards; ++s) {
    Shard& shard = *shards_[s];
    const uint32_t count = shard_count_scratch_[s];
    if (count == 0) continue;
    const uint32_t accepted = static_cast<uint32_t>(
        std::min<size_t>(count, shard.ring.capacity()));
    shard.samples += accepted;
    shard.samples_counter->Increment(accepted);
    if (shard_window_overflow_scratch_[s] > 0) {
      shard.window_overflow_counter->Increment(
          shard_window_overflow_scratch_[s]);
    }
    const uint32_t rejected = count - accepted;
    if (rejected > 0) {
      shard.ring_rejects += rejected;
      shard.ring_overflow_counter->Increment(rejected);
      samples_rejected_ += rejected;
      if (!shard.backpressure_journaled) {
        shard.backpressure_journaled = true;
        obs::EventJournal::Shared().Record(
            obs::EventKind::kBackpressure, "ingest ring full; samples rejected",
            {{"shard", static_cast<uint64_t>(s)},
             {"rejected", static_cast<uint64_t>(rejected)},
             {"ring_capacity", static_cast<uint64_t>(shard.ring.capacity())}});
      }
    }
  }

  registry.GetCounter("serve.ticks_ingested").Increment();
  registry.GetCounter("serve.samples_ingested")
      .Increment(static_cast<uint64_t>(summary.samples));
  ++ticks_ingested_;
  samples_ingested_ += static_cast<uint64_t>(summary.samples);
  PublishGauges();
  ingest_span.End();
  registry.GetHistogram("serve.ingest_seconds").Record(ingest_span.Seconds());
  RunWatchdogs(summary.new_alarms, ingest_span.Seconds());
  RefreshStatusCache();
  return summary;
}

telemetry::NodeTrace MonitorFleet::MaterializeWindow(
    const Shard& shard, uint32_t local, const std::string& ip) const {
  // Same layout and order as core::RingWindow::Materialize: oldest retained
  // tick first, slot = absolute tick modulo capacity.
  const ShardHot& hot = shard.hot;
  const size_t capacity = config_.window_capacity;
  const size_t size = hot.window_size[local];
  const int64_t start = hot.window_total[local] - static_cast<int64_t>(size);
  const double* base =
      hot.window_slab.data() + static_cast<size_t>(local) * capacity *
                                   kRowDoubles;
  telemetry::NodeTrace out;
  out.ip = ip;
  out.cpi.reserve(size);
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    out.metrics[static_cast<size_t>(m)].reserve(size);
  }
  for (size_t i = 0; i < size; ++i) {
    const size_t slot = static_cast<size_t>(
        (start + static_cast<int64_t>(i)) % static_cast<int64_t>(capacity));
    const double* row = base + slot * kRowDoubles;
    out.cpi.push_back(row[0]);
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      out.metrics[static_cast<size_t>(m)].push_back(row[m + 1]);
    }
  }
  return out;
}

void MonitorFleet::DispatchDiagnosis(MonitorHandle handle) {
  // Snapshot everything the diagnosis needs now: later ticks keep mutating
  // the live window while the MIC matrix grinds on the copy, and a StartJob
  // re-arm can swap the monitor's model epoch underneath us.
  ColdSlot& cold = slots_[static_cast<size_t>(handle)];
  const Shard& shard = *shards_[static_cast<size_t>(cold.shard)];
  FleetDiagnosis pending;
  pending.context = cold.context;
  pending.epoch = shard.hot.epoch[cold.local];
  pending.first_alarm_tick = shard.hot.first_alarm_tick[cold.local];
  std::shared_ptr<const core::ContextModel> model = cold.model;
  telemetry::NodeTrace window =
      MaterializeWindow(shard, cold.local, cold.context.node_ip);

  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    depth = ++pending_;
  }
  obs::MetricsRegistry::Shared().GetHistogram("serve.diagnosis_queue_depth")
      .Record(static_cast<double>(depth));
  obs::MetricsRegistry::Shared().GetGauge("serve.diagnosis_backlog")
      .Set(static_cast<double>(depth));

  auto task = [this, pending = std::move(pending), model = std::move(model),
               window = std::move(window)]() mutable {
    Result<core::DiagnosisReport> report =
        pipeline_->InferCauseForModel(*model, window);
    if (report.ok()) {
      pending.report = std::move(report.value());
      pending.report.anomaly_detected = true;
      pending.report.first_alarm_tick = pending.first_alarm_tick;
    } else {
      pending.status = report.status();
    }
    obs::MetricsRegistry::Shared().GetCounter("serve.diagnoses_completed")
        .Increment();
    diagnoses_completed_.fetch_add(1, std::memory_order_relaxed);
    obs::EventJournal::Shared().Record(
        obs::EventKind::kDiagnosis, "alarm-triggered diagnosis completed",
        {{"context", pending.context.ToString()},
         {"epoch", pending.epoch},
         {"ok", pending.status.ok()}});
    size_t backlog = 0;
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      results_.push_back(std::move(pending));
      backlog = --pending_;
      // Notify under the lock: a WaitForDiagnoses caller may destroy the
      // fleet the moment it sees pending_ == 0, and it cannot leave wait()
      // until this mutex is released - keeping the cv alive for the
      // broadcast.
      results_cv_.notify_all();
    }
    // Only the process-wide registry is touched past the notify: the fleet
    // may already be getting destroyed by the thread it just woke.
    obs::MetricsRegistry::Shared().GetGauge("serve.diagnosis_backlog")
        .Set(static_cast<double>(backlog));
  };
  if (config_.threads == 1) {
    task();
  } else {
    ThreadPool::Shared().Submit(std::move(task));
  }
}

void MonitorFleet::WaitForDiagnoses() {
  std::unique_lock<std::mutex> lock(results_mu_);
  results_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::vector<FleetDiagnosis> MonitorFleet::TakeDiagnoses() {
  std::vector<FleetDiagnosis> out;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    out.swap(results_);
  }
  std::sort(out.begin(), out.end(),
            [](const FleetDiagnosis& a, const FleetDiagnosis& b) {
              if (!(a.context == b.context)) return a.context < b.context;
              return a.first_alarm_tick < b.first_alarm_tick;
            });
  return out;
}

size_t MonitorFleet::pending_diagnoses() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return pending_;
}

MonitorHandle MonitorFleet::Resolve(
    const core::OperationContext& context) const {
  auto it = index_.find(context);
  return it == index_.end() ? kInvalidMonitor : it->second;
}

MonitorView MonitorFleet::ViewLocked(MonitorHandle handle) const {
  const ColdSlot& cold = slots_[static_cast<size_t>(handle)];
  const ShardHot& hot = shards_[static_cast<size_t>(cold.shard)]->hot;
  const uint32_t local = cold.local;
  MonitorView view;
  view.context = cold.context;
  view.handle = handle;
  view.shard = cold.shard;
  view.job_active = job_active_[static_cast<size_t>(handle)] != 0;
  view.alarm_active = hot.alarm[local] != 0;
  view.epoch = hot.epoch[local];
  view.first_alarm_tick = hot.first_alarm_tick[local];
  view.ticks_observed = hot.window_total[local];
  view.window_ticks = static_cast<int>(hot.window_size[local]);
  view.window_capacity = config_.window_capacity;
  view.window_start_tick =
      hot.window_total[local] - static_cast<int64_t>(hot.window_size[local]);
  view.last_residual = hot.last_residual[local];
  view.debounce = hot.debounce[local];
  return view;
}

std::optional<MonitorView> MonitorFleet::View(MonitorHandle handle) const {
  if (handle < 0 || static_cast<size_t>(handle) >= slots_.size()) {
    return std::nullopt;
  }
  return ViewLocked(handle);
}

std::optional<MonitorView> MonitorFleet::View(
    const core::OperationContext& context) const {
  return View(Resolve(context));
}

void MonitorFleet::PublishGauges() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetGauge("serve.active_monitors")
      .Set(static_cast<double>(active_jobs_));
  registry.GetGauge("serve.alarms_active")
      .Set(static_cast<double>(alarms_latched_));
}

void MonitorFleet::RunWatchdogs(int new_alarms, double ingest_seconds) {
  // Alarm-storm detector: new alarms over a sliding window of ticks, with
  // trip-at-T / clear-at-T/2 hysteresis so a storm journals twice (start
  // and end), not once per tick.
  if (config_.storm_alarm_threshold > 0) {
    storm_window_.push_back(new_alarms);
    storm_alarms_in_window_ += new_alarms;
    if (storm_window_.size() > config_.storm_window_ticks) {
      storm_alarms_in_window_ -= storm_window_.front();
      storm_window_.pop_front();
    }
    if (!storm_active_ &&
        storm_alarms_in_window_ >= config_.storm_alarm_threshold) {
      storm_active_ = true;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kAlarmStorm, "alarm storm started",
          {{"alarms_in_window", storm_alarms_in_window_},
           {"window_ticks", static_cast<uint64_t>(storm_window_.size())},
           {"threshold", config_.storm_alarm_threshold}});
    } else if (storm_active_ &&
               storm_alarms_in_window_ <= config_.storm_alarm_threshold / 2) {
      storm_active_ = false;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kAlarmStorm, "alarm storm cleared",
          {{"alarms_in_window", storm_alarms_in_window_}});
    }
  }

  // Slow-tick watchdog: p99 of recent batched-ingest latencies against the
  // configured budget, same trip/recover hysteresis.
  tick_latencies_.push_back(ingest_seconds);
  if (tick_latencies_.size() > config_.watchdog_window_ticks) {
    tick_latencies_.pop_front();
  }
  std::vector<double> sorted(tick_latencies_.begin(), tick_latencies_.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t rank =
      sorted.empty()
          ? 0
          : std::min(sorted.size() - 1,
                     static_cast<size_t>(0.99 *
                                         static_cast<double>(sorted.size())));
  ingest_p99_seconds_ = sorted.empty() ? 0.0 : sorted[rank];
  obs::MetricsRegistry::Shared().GetGauge("serve.ingest_p99_seconds")
      .Set(ingest_p99_seconds_);
  if (config_.slow_tick_budget_seconds > 0.0) {
    if (!slow_ticks_active_ &&
        ingest_p99_seconds_ > config_.slow_tick_budget_seconds) {
      slow_ticks_active_ = true;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kSlowTick, "ingest p99 above budget",
          {{"p99_seconds", ingest_p99_seconds_},
           {"budget_seconds", config_.slow_tick_budget_seconds}});
    } else if (slow_ticks_active_ &&
               ingest_p99_seconds_ <= config_.slow_tick_budget_seconds) {
      slow_ticks_active_ = false;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kSlowTick, "ingest p99 back under budget",
          {{"p99_seconds", ingest_p99_seconds_}});
    }
  }
}

void MonitorFleet::RefreshStatusCache() {
  FleetStatus status;
  status.active_monitors = active_jobs_;
  status.monitors_total = slots_.size();
  status.alarms_active = alarms_latched_;
  status.ticks_ingested = ticks_ingested_;
  status.samples_ingested = samples_ingested_;
  status.samples_rejected = samples_rejected_;
  status.alarms_raised = alarms_raised_;
  status.window_overflows = window_overflows_;
  status.storm_active = storm_active_;
  status.slow_ticks_active = slow_ticks_active_;
  status.ingest_p99_seconds = ingest_p99_seconds_;
  status.slow_tick_budget_seconds = config_.slow_tick_budget_seconds;
  status.shards.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardStatus row;
    row.shard = static_cast<int>(s);
    row.monitors = shard.members.size();
    row.ring_capacity = shard.ring.capacity();
    row.samples = shard.samples;
    row.ring_rejects = shard.ring_rejects;
    status.shards.push_back(row);
  }

  // Per-monitor rows are capped: full dump only when asked for (or the
  // fleet is small); otherwise at most status_top_k interesting rows
  // (alarm latched or window overflowed this job), found by a flat scan of
  // the per-shard alarm bytes that is skipped entirely in the quiet case.
  const bool full = config_.status_full_dump ||
                    slots_.size() <= config_.status_top_k;
  if (full) {
    status.monitors.reserve(slots_.size());
    for (size_t h = 0; h < slots_.size(); ++h) {
      MonitorStatus row;
      const MonitorView view = ViewLocked(static_cast<MonitorHandle>(h));
      row.context = view.context.ToString();
      row.shard = view.shard;
      row.job_active = view.job_active;
      row.alarm_active = view.alarm_active;
      row.epoch = view.epoch;
      row.first_alarm_tick = view.first_alarm_tick;
      row.ticks_observed = static_cast<int>(view.ticks_observed);
      row.window_ticks = view.window_ticks;
      status.monitors.push_back(std::move(row));
    }
  } else if (alarms_latched_ > 0 || window_overflows_ > 0) {
    for (size_t h = 0;
         h < slots_.size() && status.monitors.size() < config_.status_top_k;
         ++h) {
      const ColdSlot& cold = slots_[h];
      const ShardHot& hot = shards_[static_cast<size_t>(cold.shard)]->hot;
      if (hot.alarm[cold.local] == 0 && !cold.overflow_journaled) continue;
      MonitorStatus row;
      const MonitorView view = ViewLocked(static_cast<MonitorHandle>(h));
      row.context = view.context.ToString();
      row.shard = view.shard;
      row.job_active = view.job_active;
      row.alarm_active = view.alarm_active;
      row.epoch = view.epoch;
      row.first_alarm_tick = view.first_alarm_tick;
      row.ticks_observed = static_cast<int>(view.ticks_observed);
      row.window_ticks = view.window_ticks;
      status.monitors.push_back(std::move(row));
    }
  }
  status.monitors_listed_truncated = status.monitors.size() < slots_.size();

  std::lock_guard<std::mutex> lock(status_mu_);
  status_cache_ = std::move(status);
}

FleetStatus MonitorFleet::Snapshot() const {
  FleetStatus status;
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status = status_cache_;
  }
  // Counters pool workers advance are read live; everything else is the
  // ingestion thread's cache.
  status.pending_diagnoses = pending_diagnoses();
  status.diagnoses_completed =
      diagnoses_completed_.load(std::memory_order_relaxed);
  return status;
}

}  // namespace invarnetx::serve
