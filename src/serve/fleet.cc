#include "serve/fleet.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "common/parallel.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/statusz.h"

namespace invarnetx::serve {

MonitorFleet::MonitorFleet(const core::InvarNetX* pipeline, FleetConfig config)
    : pipeline_(pipeline), config_(config) {
  if (config_.window_capacity == 0) config_.window_capacity = 1;
  if (config_.status_shards < 1) config_.status_shards = 1;
  if (config_.storm_window_ticks == 0) config_.storm_window_ticks = 1;
  if (config_.watchdog_window_ticks == 0) config_.watchdog_window_ticks = 1;
  status_cache_.slow_tick_budget_seconds = config_.slow_tick_budget_seconds;
  FleetStatusBoard::Shared().Register(this);
}

MonitorFleet::~MonitorFleet() {
  // Deregister first: once this returns, no /statusz scrape can reach us.
  FleetStatusBoard::Shared().Deregister(this);
  // Pool workers capture `this` (results_mu_/results_cv_); never let the
  // fleet die with diagnoses in flight.
  WaitForDiagnoses();
}

Status MonitorFleet::StartJob(const core::OperationContext& context) {
  auto it = monitors_.find(context);
  if (it == monitors_.end()) {
    core::OnlineMonitor::Options options;
    options.window_capacity = config_.window_capacity;
    Slot slot;
    slot.monitor =
        std::make_unique<core::OnlineMonitor>(pipeline_, options);
    slot.shard = static_cast<int>(std::hash<std::string>{}(
                                      context.ToString()) %
                                  static_cast<size_t>(config_.status_shards));
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
    const obs::MetricLabels labels = {{"shard", std::to_string(slot.shard)}};
    slot.shard_samples = &registry.GetCounter("serve.shard_samples", labels);
    slot.shard_overflow = &registry.GetCounter("serve.shard_overflow", labels);
    it = monitors_.emplace(context, std::move(slot)).first;
  }
  INVARNETX_RETURN_IF_ERROR(it->second.monitor->StartJob(context));
  it->second.diagnosis_dispatched = false;
  it->second.overflow_journaled = false;
  PublishGauges();
  RefreshStatusCache();
  return Status::Ok();
}

Result<TickSummary> MonitorFleet::IngestTick(
    const std::vector<TickSample>& samples) {
  obs::Span ingest_span("serve_ingest_tick",
                        {{"samples", samples.size()}});
  // Resolve every sample to its monitor up front: errors surface before any
  // observation lands, so a rejected batch leaves the fleet untouched.
  std::vector<Slot*> targets(samples.size(), nullptr);
  std::set<const Slot*> seen;
  for (size_t i = 0; i < samples.size(); ++i) {
    auto it = monitors_.find(samples[i].context);
    if (it == monitors_.end() || !it->second.monitor->job_active()) {
      return Status::FailedPrecondition(
          "IngestTick: no active monitor for " +
          samples[i].context.ToString());
    }
    if (!seen.insert(&it->second).second) {
      return Status::InvalidArgument(
          "IngestTick: duplicate sample for " + samples[i].context.ToString());
    }
    targets[i] = &it->second;
  }

  // Detection fan-out. Each index touches only its own monitor (duplicates
  // were rejected above), so the fan-out is race-free and the per-monitor
  // stream stays serial - verdicts are bit-identical for any thread count.
  std::vector<core::OnlineMonitor::TickVerdict> verdicts(samples.size());
  INVARNETX_RETURN_IF_ERROR(ParallelFor(
      samples.size(), config_.threads, [&](size_t i) -> Status {
        Result<core::OnlineMonitor::TickVerdict> verdict =
            targets[i]->monitor->Observe(samples[i].cpi, samples[i].metrics);
        if (!verdict.ok()) return verdict.status();
        verdicts[i] = verdict.value();
        return Status::Ok();
      }));

  // Alarm handling runs serially in sample order, so diagnosis dispatch
  // order is deterministic too.
  TickSummary summary;
  summary.samples = static_cast<int>(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    Slot* slot = targets[i];
    // Per-shard backpressure accounting: one relaxed atomic per sample,
    // plus the overflow tally once a job outgrows its bounded window.
    slot->shard_samples->Increment();
    if (slot->monitor->ticks_observed() >
        static_cast<int>(config_.window_capacity)) {
      slot->shard_overflow->Increment();
      ++window_overflows_;
      if (!slot->overflow_journaled) {
        slot->overflow_journaled = true;
        obs::EventJournal::Shared().Record(
            obs::EventKind::kRingOverflow, "window overwriting oldest ticks",
            {{"context", samples[i].context.ToString()},
             {"capacity", static_cast<uint64_t>(config_.window_capacity)}});
      }
    }
    if (!slot->monitor->alarm_active() || slot->diagnosis_dispatched) {
      continue;
    }
    ++summary.new_alarms;
    slot->diagnosis_dispatched = true;
    ++alarms_raised_;
    obs::MetricsRegistry::Shared().GetCounter("serve.alarms_raised")
        .Increment();
    obs::EventJournal::Shared().Record(
        obs::EventKind::kAlarm, "debounced alarm latched",
        {{"context", samples[i].context.ToString()},
         {"tick", slot->monitor->first_alarm_tick()}});
    if (config_.diagnose_on_alarm) DispatchDiagnosis(slot);
  }
  summary.alarms_active = static_cast<int>(alarms_active());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetCounter("serve.ticks_ingested").Increment();
  registry.GetCounter("serve.samples_ingested")
      .Increment(static_cast<uint64_t>(samples.size()));
  ++ticks_ingested_;
  samples_ingested_ += samples.size();
  PublishGauges();
  ingest_span.End();
  registry.GetHistogram("serve.ingest_seconds").Record(ingest_span.Seconds());
  RunWatchdogs(summary.new_alarms, ingest_span.Seconds());
  RefreshStatusCache();
  return summary;
}

void MonitorFleet::DispatchDiagnosis(Slot* slot) {
  // Snapshot everything the diagnosis needs now: later ticks keep mutating
  // the live window while the MIC matrix grinds on the copy, and a StartJob
  // re-arm can swap the monitor's model epoch underneath us.
  FleetDiagnosis pending;
  pending.context = slot->monitor->context();
  pending.epoch = slot->monitor->model_epoch();
  pending.first_alarm_tick = slot->monitor->first_alarm_tick();
  std::shared_ptr<const core::ContextModel> model = slot->monitor->model();
  telemetry::NodeTrace window = slot->monitor->WindowTrace();

  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    depth = ++pending_;
  }
  obs::MetricsRegistry::Shared().GetHistogram("serve.diagnosis_queue_depth")
      .Record(static_cast<double>(depth));
  obs::MetricsRegistry::Shared().GetGauge("serve.diagnosis_backlog")
      .Set(static_cast<double>(depth));

  auto task = [this, pending = std::move(pending), model = std::move(model),
               window = std::move(window)]() mutable {
    Result<core::DiagnosisReport> report =
        pipeline_->InferCauseForModel(*model, window);
    if (report.ok()) {
      pending.report = std::move(report.value());
      pending.report.anomaly_detected = true;
      pending.report.first_alarm_tick = pending.first_alarm_tick;
    } else {
      pending.status = report.status();
    }
    obs::MetricsRegistry::Shared().GetCounter("serve.diagnoses_completed")
        .Increment();
    diagnoses_completed_.fetch_add(1, std::memory_order_relaxed);
    obs::EventJournal::Shared().Record(
        obs::EventKind::kDiagnosis, "alarm-triggered diagnosis completed",
        {{"context", pending.context.ToString()},
         {"epoch", pending.epoch},
         {"ok", pending.status.ok()}});
    size_t backlog = 0;
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      results_.push_back(std::move(pending));
      backlog = --pending_;
      // Notify under the lock: a WaitForDiagnoses caller may destroy the
      // fleet the moment it sees pending_ == 0, and it cannot leave wait()
      // until this mutex is released - keeping the cv alive for the
      // broadcast.
      results_cv_.notify_all();
    }
    // Only the process-wide registry is touched past the notify: the fleet
    // may already be getting destroyed by the thread it just woke.
    obs::MetricsRegistry::Shared().GetGauge("serve.diagnosis_backlog")
        .Set(static_cast<double>(backlog));
  };
  if (config_.threads == 1) {
    task();
  } else {
    ThreadPool::Shared().Submit(std::move(task));
  }
}

void MonitorFleet::WaitForDiagnoses() {
  std::unique_lock<std::mutex> lock(results_mu_);
  results_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::vector<FleetDiagnosis> MonitorFleet::TakeDiagnoses() {
  std::vector<FleetDiagnosis> out;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    out.swap(results_);
  }
  std::sort(out.begin(), out.end(),
            [](const FleetDiagnosis& a, const FleetDiagnosis& b) {
              if (!(a.context == b.context)) return a.context < b.context;
              return a.first_alarm_tick < b.first_alarm_tick;
            });
  return out;
}

size_t MonitorFleet::active_monitors() const {
  size_t active = 0;
  for (const auto& [context, slot] : monitors_) {
    if (slot.monitor->job_active()) ++active;
  }
  return active;
}

size_t MonitorFleet::alarms_active() const {
  size_t alarms = 0;
  for (const auto& [context, slot] : monitors_) {
    if (slot.monitor->alarm_active()) ++alarms;
  }
  return alarms;
}

size_t MonitorFleet::pending_diagnoses() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return pending_;
}

const core::OnlineMonitor* MonitorFleet::Find(
    const core::OperationContext& context) const {
  auto it = monitors_.find(context);
  return it == monitors_.end() ? nullptr : it->second.monitor.get();
}

void MonitorFleet::PublishGauges() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  registry.GetGauge("serve.active_monitors")
      .Set(static_cast<double>(active_monitors()));
  registry.GetGauge("serve.alarms_active")
      .Set(static_cast<double>(alarms_active()));
}

void MonitorFleet::RunWatchdogs(int new_alarms, double ingest_seconds) {
  // Alarm-storm detector: new alarms over a sliding window of ticks, with
  // trip-at-T / clear-at-T/2 hysteresis so a storm journals twice (start
  // and end), not once per tick.
  if (config_.storm_alarm_threshold > 0) {
    storm_window_.push_back(new_alarms);
    storm_alarms_in_window_ += new_alarms;
    if (storm_window_.size() > config_.storm_window_ticks) {
      storm_alarms_in_window_ -= storm_window_.front();
      storm_window_.pop_front();
    }
    if (!storm_active_ &&
        storm_alarms_in_window_ >= config_.storm_alarm_threshold) {
      storm_active_ = true;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kAlarmStorm, "alarm storm started",
          {{"alarms_in_window", storm_alarms_in_window_},
           {"window_ticks", static_cast<uint64_t>(storm_window_.size())},
           {"threshold", config_.storm_alarm_threshold}});
    } else if (storm_active_ &&
               storm_alarms_in_window_ <= config_.storm_alarm_threshold / 2) {
      storm_active_ = false;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kAlarmStorm, "alarm storm cleared",
          {{"alarms_in_window", storm_alarms_in_window_}});
    }
  }

  // Slow-tick watchdog: p99 of recent batched-ingest latencies against the
  // configured budget, same trip/recover hysteresis.
  tick_latencies_.push_back(ingest_seconds);
  if (tick_latencies_.size() > config_.watchdog_window_ticks) {
    tick_latencies_.pop_front();
  }
  std::vector<double> sorted(tick_latencies_.begin(), tick_latencies_.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t rank =
      sorted.empty()
          ? 0
          : std::min(sorted.size() - 1,
                     static_cast<size_t>(0.99 *
                                         static_cast<double>(sorted.size())));
  ingest_p99_seconds_ = sorted.empty() ? 0.0 : sorted[rank];
  obs::MetricsRegistry::Shared().GetGauge("serve.ingest_p99_seconds")
      .Set(ingest_p99_seconds_);
  if (config_.slow_tick_budget_seconds > 0.0) {
    if (!slow_ticks_active_ &&
        ingest_p99_seconds_ > config_.slow_tick_budget_seconds) {
      slow_ticks_active_ = true;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kSlowTick, "ingest p99 above budget",
          {{"p99_seconds", ingest_p99_seconds_},
           {"budget_seconds", config_.slow_tick_budget_seconds}});
    } else if (slow_ticks_active_ &&
               ingest_p99_seconds_ <= config_.slow_tick_budget_seconds) {
      slow_ticks_active_ = false;
      obs::EventJournal::Shared().Record(
          obs::EventKind::kSlowTick, "ingest p99 back under budget",
          {{"p99_seconds", ingest_p99_seconds_}});
    }
  }
}

void MonitorFleet::RefreshStatusCache() {
  FleetStatus status;
  status.active_monitors = active_monitors();
  status.alarms_active = alarms_active();
  status.ticks_ingested = ticks_ingested_;
  status.samples_ingested = samples_ingested_;
  status.alarms_raised = alarms_raised_;
  status.window_overflows = window_overflows_;
  status.storm_active = storm_active_;
  status.slow_ticks_active = slow_ticks_active_;
  status.ingest_p99_seconds = ingest_p99_seconds_;
  status.slow_tick_budget_seconds = config_.slow_tick_budget_seconds;
  status.monitors.reserve(monitors_.size());
  for (const auto& [context, slot] : monitors_) {
    MonitorStatus row;
    row.context = context.ToString();
    row.shard = slot.shard;
    row.job_active = slot.monitor->job_active();
    row.alarm_active = slot.monitor->alarm_active();
    row.epoch = slot.monitor->model_epoch();
    row.first_alarm_tick = slot.monitor->first_alarm_tick();
    row.ticks_observed = slot.monitor->ticks_observed();
    row.window_ticks = slot.monitor->window_ticks();
    status.monitors.push_back(std::move(row));
  }
  std::lock_guard<std::mutex> lock(status_mu_);
  status_cache_ = std::move(status);
}

FleetStatus MonitorFleet::Snapshot() const {
  FleetStatus status;
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status = status_cache_;
  }
  // Counters pool workers advance are read live; everything else is the
  // ingestion thread's cache.
  status.pending_diagnoses = pending_diagnoses();
  status.diagnoses_completed =
      diagnoses_completed_.load(std::memory_order_relaxed);
  return status;
}

}  // namespace invarnetx::serve
