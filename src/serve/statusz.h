#ifndef INVARNETX_SERVE_STATUSZ_H_
#define INVARNETX_SERVE_STATUSZ_H_

#include <mutex>
#include <string>
#include <vector>

#include "obs/http.h"
#include "serve/fleet.h"

// Glue between the serve layer and the embedded HTTP endpoints: a
// process-wide board of live fleets, plus the handler set that turns the
// board, the metrics registry, the event journal, and the slow-span sampler
// into /metrics, /healthz, /statusz, and /tracez.
namespace invarnetx::serve {

// Registry of live MonitorFleets so scrape handlers can find them without
// the serving code threading pointers through every layer. Fleets register
// on construction and must deregister before destruction (both handled by
// MonitorFleet itself). Thread-safe; Snapshots() calls each fleet's
// Snapshot() under the board lock, which Deregister also takes - so a
// scrape can never race a fleet's destruction.
class FleetStatusBoard {
 public:
  void Register(const MonitorFleet* fleet);
  void Deregister(const MonitorFleet* fleet);
  size_t size() const;
  std::vector<FleetStatus> Snapshots() const;

  static FleetStatusBoard& Shared();

 private:
  mutable std::mutex mu_;
  std::vector<const MonitorFleet*> fleets_;
};

// Renders one fleet status as the /statusz text block (exposed for tests).
std::string RenderFleetStatus(const FleetStatus& status);

// Registers the four observability handlers on `server`:
//   /metrics  OpenMetrics exposition of the shared registry
//   /healthz  liveness + readiness one-pager (ok, uptime, fleet counts)
//   /statusz  fleet snapshots + metrics table + journal tail
//   /tracez   slowest spans per stage from the shared SlowSpanSampler
// Call before HttpServer::Start().
void InstallObsEndpoints(obs::HttpServer* server);

}  // namespace invarnetx::serve

#endif  // INVARNETX_SERVE_STATUSZ_H_
