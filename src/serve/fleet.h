#ifndef INVARNETX_SERVE_FLEET_H_
#define INVARNETX_SERVE_FLEET_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/monitor.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "telemetry/metrics.h"

namespace invarnetx::serve {

// Execution knobs of a MonitorFleet - runtime concerns only: fleet verdicts
// and drained diagnoses are bit-identical for every `threads` value.
struct FleetConfig {
  // Observation retention per monitor, in ticks (RingWindow capacity). The
  // fleet's steady-state memory is monitors x window_capacity ticks.
  size_t window_capacity = 256;
  // Workers for the per-tick ingest fan-out (<= 0: one per hardware
  // thread; 1: serial). Asynchronous diagnoses additionally use the shared
  // ThreadPool unless this is 1, in which case they run inline.
  int threads = 0;
  // When true (the default), a monitor's first debounced alarm of a job
  // triggers one asynchronous diagnosis on a snapshot of its window, so
  // detection never blocks on the MIC matrix.
  bool diagnose_on_alarm = true;

  // --- Observability knobs (no effect on verdicts or diagnoses) ---

  // Shards for the labeled ingest/overflow counters: monitors hash into
  // `shard ∈ [0, status_shards)` so per-shard hotspots show up in /metrics
  // without per-monitor series cardinality.
  int status_shards = 8;
  // Alarm-storm detector: trips when new alarms across the last
  // storm_window_ticks ingest ticks reach storm_alarm_threshold; clears
  // (with hysteresis) when they fall to half the threshold. Both events are
  // journaled. A zero threshold disables the detector.
  size_t storm_window_ticks = 16;
  int storm_alarm_threshold = 8;
  // Slow-tick watchdog: journals when the p99 of the last
  // watchdog_window_ticks ingest latencies exceeds the budget, and again
  // when it recovers. A non-positive budget disables the watchdog.
  double slow_tick_budget_seconds = 0.25;
  size_t watchdog_window_ticks = 64;
};

// One monitor's observations for one cluster tick.
struct TickSample {
  core::OperationContext context;  // names the (operation-context x node) monitor
  double cpi = 0.0;
  std::array<double, telemetry::kNumMetrics> metrics{};
};

// What one batched ingest tick did to the fleet.
struct TickSummary {
  int samples = 0;
  int new_alarms = 0;     // monitors whose debounced alarm first fired now
  int alarms_active = 0;  // latched alarms across the fleet after this tick
};

// One monitor's row in a fleet status snapshot.
struct MonitorStatus {
  std::string context;  // OperationContext::ToString()
  int shard = 0;
  bool job_active = false;
  bool alarm_active = false;
  uint64_t epoch = 0;
  int first_alarm_tick = -1;
  int ticks_observed = 0;  // absolute, including window-evicted ticks
  int window_ticks = 0;    // currently retained
};

// Point-in-time fleet state for /statusz. Produced by
// MonitorFleet::Snapshot(), which is safe to call from any thread (it reads
// a cache the ingestion thread maintains - HTTP scrapes never touch the
// monitor map itself).
struct FleetStatus {
  size_t active_monitors = 0;
  size_t alarms_active = 0;
  size_t pending_diagnoses = 0;
  uint64_t ticks_ingested = 0;
  uint64_t samples_ingested = 0;
  uint64_t alarms_raised = 0;
  uint64_t diagnoses_completed = 0;
  uint64_t window_overflows = 0;  // samples that overwrote unread history
  bool storm_active = false;
  bool slow_ticks_active = false;     // watchdog currently tripped
  double ingest_p99_seconds = 0.0;    // over the watchdog window
  double slow_tick_budget_seconds = 0.0;
  std::vector<MonitorStatus> monitors;
};

// A completed alarm-triggered diagnosis.
struct FleetDiagnosis {
  core::OperationContext context;
  uint64_t epoch = 0;         // model epoch the diagnosis ran against
  int first_alarm_tick = -1;  // absolute job tick (eviction-stable)
  Status status;              // cause inference itself can fail
  core::DiagnosisReport report;  // meaningful when status.ok()
};

// Many concurrent (operation-context x node) monitors behind one ingestion
// API - the paper's "monitor per node" (Sec. 3.2) scaled to a cluster. Each
// tick the caller hands the fleet one sample per active monitor; detection
// fans out over the shared ThreadPool with deterministic per-monitor
// ordering (each monitor's stream is serial; distinct monitors never share
// state), observations live in bounded ring windows, and the first alarm of
// a job enqueues an asynchronous diagnosis over a window snapshot so the
// ingest path never waits on the association matrix.
//
// Threading contract: StartJob / IngestTick / TakeDiagnoses are driven from
// one ingestion thread (the fleet parallelizes internally); completed
// diagnoses are handed back in deterministic (context, alarm tick) order.
// Retraining the pipeline while the fleet is live is safe: every monitor
// pins its model epoch at StartJob.
//
// Self-observability (obs::MetricsRegistry::Shared()):
//   gauge     serve.active_monitors       monitors with an active job
//   gauge     serve.alarms_active         latched alarms across the fleet
//   gauge     serve.diagnosis_backlog     diagnoses in flight right now
//   gauge     serve.ingest_p99_seconds    p99 over the watchdog window
//   histogram serve.ingest_seconds        per-tick batched ingest latency
//   histogram serve.diagnosis_queue_depth pending diagnoses at enqueue time
//   counter   serve.ticks_ingested / serve.samples_ingested
//   counter   serve.alarms_raised / serve.diagnoses_completed
//   counter   serve.shard_samples{shard=S} / serve.shard_overflow{shard=S}
// plus journal events (obs::EventJournal::Shared()): alarm, diagnosis,
// ring_overflow (first overflow per job), alarm_storm, slow_tick.
class MonitorFleet {
 public:
  explicit MonitorFleet(const core::InvarNetX* pipeline,
                        FleetConfig config = {});
  ~MonitorFleet();

  MonitorFleet(const MonitorFleet&) = delete;
  MonitorFleet& operator=(const MonitorFleet&) = delete;

  // Arms (or re-arms, mid-job) the monitor for this context, creating it on
  // first use. Fails if the context has not been trained. Re-arming clears
  // the monitor's window and alarm latch; an in-flight diagnosis of the
  // previous job keeps running on its snapshot and is still delivered.
  Status StartJob(const core::OperationContext& context);

  // Batched per-tick cluster ingestion: one sample per monitor, every
  // sample's monitor must have an active job, and a monitor may appear at
  // most once per tick. Detection runs fanned out across workers; verdicts
  // and alarm latching are identical for every thread count.
  Result<TickSummary> IngestTick(const std::vector<TickSample>& samples);

  // Blocks until every enqueued asynchronous diagnosis completed.
  void WaitForDiagnoses();

  // Drains completed diagnoses, sorted by (context, first alarm tick) so
  // replay output is deterministic. Call WaitForDiagnoses first when the
  // full set is wanted.
  std::vector<FleetDiagnosis> TakeDiagnoses();

  size_t active_monitors() const;
  size_t alarms_active() const;
  size_t pending_diagnoses() const;
  // The monitor serving `context`, or nullptr (introspection/tests).
  const core::OnlineMonitor* Find(const core::OperationContext& context) const;
  const FleetConfig& config() const { return config_; }

  // Thread-safe point-in-time status for /statusz: reads the cache the
  // ingestion thread refreshes at every StartJob / IngestTick, so a scrape
  // never races the monitor map. Live counters (pending diagnoses) are
  // folded in at read time.
  FleetStatus Snapshot() const;

 private:
  struct Slot {
    std::unique_ptr<core::OnlineMonitor> monitor;
    // One asynchronous diagnosis per job: set when the alarm's diagnosis
    // was enqueued, cleared by StartJob.
    bool diagnosis_dispatched = false;
    int shard = 0;
    // Looked up once at slot creation so the ingest hot path pays relaxed
    // atomics, not registry map lookups.
    obs::Counter* shard_samples = nullptr;
    obs::Counter* shard_overflow = nullptr;
    // First window overflow of a job is journaled; later ones only count.
    bool overflow_journaled = false;
  };

  // Snapshots the monitor's window + pinned model and enqueues the cause
  // inference (inline when config_.threads == 1).
  void DispatchDiagnosis(Slot* slot);
  void PublishGauges();
  // Refreshes the cached /statusz snapshot; ingestion thread only.
  void RefreshStatusCache();
  // Feeds the alarm-storm detector and slow-tick watchdog with one tick's
  // outcome; journals trips and recoveries. Ingestion thread only.
  void RunWatchdogs(int new_alarms, double ingest_seconds);

  const core::InvarNetX* pipeline_;
  FleetConfig config_;
  std::map<core::OperationContext, Slot> monitors_;

  // Completed-diagnosis hand-off between pool workers and the ingestion
  // thread.
  mutable std::mutex results_mu_;
  std::condition_variable results_cv_;
  std::vector<FleetDiagnosis> results_;
  size_t pending_ = 0;

  // Lifetime tallies mirrored into FleetStatus (the shared registry's
  // counters are process-wide; these are this fleet's own).
  uint64_t ticks_ingested_ = 0;
  uint64_t samples_ingested_ = 0;
  uint64_t alarms_raised_ = 0;
  uint64_t window_overflows_ = 0;
  std::atomic<uint64_t> diagnoses_completed_{0};  // pool workers bump this

  // Alarm-storm detector + slow-tick watchdog state; ingestion thread only.
  std::deque<int> storm_window_;
  int storm_alarms_in_window_ = 0;
  bool storm_active_ = false;
  std::deque<double> tick_latencies_;
  bool slow_ticks_active_ = false;
  double ingest_p99_seconds_ = 0.0;

  // Cached status the HTTP plane reads; guarded because scrape threads call
  // Snapshot() while the ingestion thread refreshes it.
  mutable std::mutex status_mu_;
  FleetStatus status_cache_;
};

}  // namespace invarnetx::serve

#endif  // INVARNETX_SERVE_FLEET_H_
