#ifndef INVARNETX_SERVE_FLEET_H_
#define INVARNETX_SERVE_FLEET_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/spsc_ring.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "telemetry/metrics.h"
#include "timeseries/arima.h"

namespace invarnetx::serve {

// Dense index of one monitor within its fleet, assigned at the first
// StartJob for its operation context and stable for the fleet's lifetime.
// The ingest hot path resolves handles with two array loads; the
// string-keyed context map is only consulted at StartJob time (or for
// samples that arrive without a handle).
using MonitorHandle = int32_t;
inline constexpr MonitorHandle kInvalidMonitor = -1;

// Execution knobs of a MonitorFleet - runtime concerns only: fleet verdicts
// and drained diagnoses are bit-identical for every `threads` and `shards`
// value (as long as no ingest ring overflows; overflow itself is
// deterministic for a fixed shard count and ring capacity).
struct FleetConfig {
  // Observation retention per monitor, in ticks. The fleet's steady-state
  // memory is monitors x window_capacity ticks (one contiguous slab per
  // shard).
  size_t window_capacity = 256;
  // Workers for the per-tick shard fan-out (<= 0: one per hardware thread;
  // 1: fully serial - no pool, deterministic single-thread execution).
  // Asynchronous diagnoses additionally use the shared ThreadPool unless
  // this is 1, in which case they run inline.
  int threads = 0;
  // Monitor shards. Each shard owns a bounded SPSC ingest ring (producer =
  // the ingestion thread, consumer = one shard-affine pool worker per
  // tick) and the structure-of-arrays hot state of its monitors. Monitors
  // are assigned shard = handle % shards at StartJob. <= 0: one shard per
  // hardware thread.
  int shards = 0;
  // Per-shard ingest ring capacity = the backpressure limit: a shard
  // accepts at most this many samples per tick; the rest are rejected
  // (counted in serve.ring_overflow{shard=S} and TickSummary::rejected,
  // journaled once per shard per job era) instead of blocking the
  // ingestion thread. 0 (the default) = auto: each ring grows with its
  // shard's monitor count, so a well-formed batch is never rejected.
  size_t ring_capacity = 0;
  // When true (the default), a monitor's first debounced alarm of a job
  // triggers one asynchronous diagnosis on a snapshot of its window, so
  // detection never blocks on the MIC matrix.
  bool diagnose_on_alarm = true;

  // --- Observability knobs (no effect on verdicts or diagnoses) ---

  // /statusz snapshot cap: at most this many per-monitor rows, picked from
  // the interesting monitors (alarm latched, window overflowed, or
  // backpressure-rejected this job). Fleets with <= status_top_k monitors
  // list everything. The cap keeps RefreshStatusCache O(K) at fleet scale;
  // status_full_dump = true restores the full O(monitors) dump.
  size_t status_top_k = 32;
  bool status_full_dump = false;
  // Alarm-storm detector: trips when new alarms across the last
  // storm_window_ticks ingest ticks reach storm_alarm_threshold; clears
  // (with hysteresis) when they fall to half the threshold. Both events are
  // journaled. A zero threshold disables the detector.
  size_t storm_window_ticks = 16;
  int storm_alarm_threshold = 8;
  // Slow-tick watchdog: journals when the p99 of the last
  // watchdog_window_ticks ingest latencies exceeds the budget, and again
  // when it recovers. A non-positive budget disables the watchdog.
  double slow_tick_budget_seconds = 0.25;
  size_t watchdog_window_ticks = 64;
  // Pre-sizes the per-shard state (SoA vectors + window slabs) for this
  // many monitors, so arming a large fleet never re-copies a half-built
  // slab. 0 = grow on demand.
  size_t expected_monitors = 0;
};

// One monitor's observations for one cluster tick. `monitor` is the dense
// handle StartJob returned; producers that stamp it skip the string-keyed
// context lookup entirely. kInvalidMonitor falls back to resolving
// `context` (one map lookup - fine for small fleets and tests).
struct TickSample {
  core::OperationContext context;  // names the (operation-context x node) monitor
  MonitorHandle monitor = kInvalidMonitor;
  double cpi = 0.0;
  std::array<double, telemetry::kNumMetrics> metrics{};
};

// What one batched ingest tick did to the fleet.
struct TickSummary {
  int samples = 0;        // accepted (observed) samples
  int rejected = 0;       // backpressure: dropped by a full ingest ring
  int new_alarms = 0;     // monitors whose debounced alarm first fired now
  int alarms_active = 0;  // latched alarms across the fleet after this tick
};

// One monitor's row in a fleet status snapshot.
struct MonitorStatus {
  std::string context;  // OperationContext::ToString()
  int shard = 0;
  bool job_active = false;
  bool alarm_active = false;
  uint64_t epoch = 0;
  int first_alarm_tick = -1;
  int ticks_observed = 0;  // absolute, including window-evicted ticks
  int window_ticks = 0;    // currently retained
};

// One shard's row in a fleet status snapshot.
struct ShardStatus {
  int shard = 0;
  size_t monitors = 0;
  size_t ring_capacity = 0;
  uint64_t samples = 0;       // accepted samples routed through this shard
  uint64_t ring_rejects = 0;  // backpressure drops at this shard's ring
};

// Point-in-time fleet state for /statusz. Produced by
// MonitorFleet::Snapshot(), which is safe to call from any thread (it reads
// a cache the ingestion thread maintains - HTTP scrapes never touch the
// monitor state itself).
struct FleetStatus {
  size_t active_monitors = 0;
  size_t monitors_total = 0;
  size_t alarms_active = 0;
  size_t pending_diagnoses = 0;
  uint64_t ticks_ingested = 0;
  uint64_t samples_ingested = 0;
  uint64_t samples_rejected = 0;  // total backpressure drops
  uint64_t alarms_raised = 0;
  uint64_t diagnoses_completed = 0;
  uint64_t window_overflows = 0;  // samples that overwrote unread history
  bool storm_active = false;
  bool slow_ticks_active = false;     // watchdog currently tripped
  double ingest_p99_seconds = 0.0;    // over the watchdog window
  double slow_tick_budget_seconds = 0.0;
  std::vector<ShardStatus> shards;
  // Capped at status_top_k interesting rows unless status_full_dump (or the
  // fleet is small); monitors_listed_truncated says rows were left out.
  std::vector<MonitorStatus> monitors;
  bool monitors_listed_truncated = false;
};

// Introspection view of one monitor (tests, replay rendering). Reads the
// live hot state; call from the ingestion thread like StartJob/IngestTick.
struct MonitorView {
  core::OperationContext context;
  MonitorHandle handle = kInvalidMonitor;
  int shard = 0;
  bool job_active = false;
  bool alarm_active = false;
  uint64_t epoch = 0;           // model epoch pinned at StartJob
  int first_alarm_tick = -1;    // absolute job tick; -1 if none
  int64_t ticks_observed = 0;   // absolute, including window-evicted ticks
  int window_ticks = 0;         // currently retained
  size_t window_capacity = 0;   // fixed allocation, in ticks
  int64_t window_start_tick = 0;  // absolute tick of the oldest retained
  double last_residual = 0.0;
  int debounce = 0;             // consecutive threshold exceedances
};

// A completed alarm-triggered diagnosis.
struct FleetDiagnosis {
  core::OperationContext context;
  uint64_t epoch = 0;         // model epoch the diagnosis ran against
  int first_alarm_tick = -1;  // absolute job tick (eviction-stable)
  Status status;              // cause inference itself can fail
  core::DiagnosisReport report;  // meaningful when status.ok()
};

// Many concurrent (operation-context x node) monitors behind one ingestion
// API - the paper's "monitor per node" (Sec. 3.2) scaled to a fleet. The
// engine is sharded for scale:
//
//   - StartJob assigns each monitor a dense MonitorHandle and a shard
//     (handle % shards). The hot detection state - latest residual, cached
//     alarm threshold, debounce counter, alarm latch, window cursors,
//     pinned epoch - lives in structure-of-arrays vectors packed per shard,
//     and every shard's observation windows share one contiguous slab;
//     cold state (context string, model snapshot, dispatch flags) is
//     out-of-line so the per-sample path never touches it.
//   - IngestTick validates the batch up front (allocation-free: dense
//     tick-stamped flags over handles), then distributes entries into each
//     shard's bounded SPSC ring. One shard-affine consumer per shard
//     (shared ThreadPool; the ingestion thread takes the first shard and
//     drains it after distribution) pops its ring in FIFO order and runs
//     detection, so every monitor's stream stays serial and verdicts are
//     bit-identical for every shard and thread count.
//   - Backpressure is explicit and deterministic: a shard accepts at most
//     ring_capacity samples per tick (admission is decided by per-tick
//     counts in batch order, never by queue timing); the rest are rejected
//     and counted, and the ingestion thread never blocks on a full ring.
//
// Threading contract: StartJob / IngestTick / TakeDiagnoses / View are
// driven from one ingestion thread (the fleet parallelizes internally);
// completed diagnoses are handed back in deterministic (context, alarm
// tick) order. Retraining the pipeline while the fleet is live is safe:
// every monitor pins its model epoch at StartJob.
//
// Self-observability (obs::MetricsRegistry::Shared()):
//   gauge     serve.active_monitors       monitors with an active job
//   gauge     serve.alarms_active         latched alarms across the fleet
//   gauge     serve.diagnosis_backlog     diagnoses in flight right now
//   gauge     serve.ingest_p99_seconds    p99 over the watchdog window
//   histogram serve.ingest_seconds        per-tick batched ingest latency
//   histogram serve.diagnosis_queue_depth pending diagnoses at enqueue time
//   counter   serve.ticks_ingested / serve.samples_ingested
//   counter   serve.alarms_raised / serve.diagnoses_completed
//   counter   serve.shard_samples{shard=S}   accepted samples per shard
//   counter   serve.shard_overflow{shard=S}  window overwrites per shard
//   counter   serve.ring_overflow{shard=S}   backpressure drops per shard
// plus journal events (obs::EventJournal::Shared()): alarm, diagnosis,
// ring_overflow (first window overwrite per monitor per job),
// backpressure (first ring reject per shard per job era), alarm_storm,
// slow_tick.
class MonitorFleet {
 public:
  explicit MonitorFleet(const core::InvarNetX* pipeline,
                        FleetConfig config = {});
  ~MonitorFleet();

  MonitorFleet(const MonitorFleet&) = delete;
  MonitorFleet& operator=(const MonitorFleet&) = delete;

  // Arms (or re-arms, mid-job) the monitor for this context, creating it
  // on first use, and returns its dense handle - stamp it into TickSamples
  // to keep the ingest path free of string-keyed lookups. Fails if the
  // context has not been trained. Re-arming clears the monitor's window
  // and alarm latch; an in-flight diagnosis of the previous job keeps
  // running on its snapshot and is still delivered.
  Result<MonitorHandle> StartJob(const core::OperationContext& context);

  // Batched per-tick cluster ingestion: one sample per monitor, every
  // sample's monitor must have an active job, and a monitor may appear at
  // most once per tick. Detection fans out one consumer per shard; a shard
  // whose ring is at capacity rejects the overflow instead of blocking.
  Result<TickSummary> IngestTick(const std::vector<TickSample>& samples);

  // Blocks until every enqueued asynchronous diagnosis completed.
  void WaitForDiagnoses();

  // Drains completed diagnoses, sorted by (context, first alarm tick) so
  // replay output is deterministic. Call WaitForDiagnoses first when the
  // full set is wanted.
  std::vector<FleetDiagnosis> TakeDiagnoses();

  size_t active_monitors() const { return active_jobs_; }
  size_t alarms_active() const { return alarms_latched_; }
  size_t monitor_count() const { return slots_.size(); }
  size_t pending_diagnoses() const;
  int shard_count() const { return static_cast<int>(shards_.size()); }

  // The handle serving `context`, or kInvalidMonitor.
  MonitorHandle Resolve(const core::OperationContext& context) const;
  // Introspection of one monitor's live state (ingestion thread only).
  std::optional<MonitorView> View(MonitorHandle handle) const;
  std::optional<MonitorView> View(const core::OperationContext& context) const;
  const FleetConfig& config() const { return config_; }

  // Thread-safe point-in-time status for /statusz: reads the cache the
  // ingestion thread refreshes at every StartJob / IngestTick, so a scrape
  // never races the monitor state. Live counters (pending diagnoses) are
  // folded in at read time.
  FleetStatus Snapshot() const;

 private:
  // One ring entry: which monitor (shard-local index, so the consumer
  // never touches the cold slot array) and which batch row carries its
  // sample this tick.
  struct RingEntry {
    uint32_t local = 0;
    uint32_t index = 0;
  };

  // Structure-of-arrays hot detection state of one shard, indexed by the
  // shard-local monitor index. Everything the per-sample path reads or
  // writes lives here, packed contiguously; scanning a shard's alarms or
  // residuals walks flat arrays.
  struct ShardHot {
    std::vector<double> last_residual;
    std::vector<double> threshold;        // cached from the pinned model
    std::vector<int32_t> debounce;        // consecutive exceedances
    std::vector<uint8_t> alarm;           // latch
    std::vector<int32_t> first_alarm_tick;
    std::vector<int64_t> window_total;    // absolute ticks pushed
    std::vector<uint32_t> window_size;    // retained (<= capacity)
    std::vector<uint32_t> window_head;    // next slab write slot
    std::vector<uint64_t> epoch;          // pinned at StartJob
    std::vector<ts::ArimaPredictor> predictor;
    // All windows of the shard: local * capacity * (1 + kNumMetrics)
    // doubles, row-major [cpi, metric 0..25] per tick slot.
    std::vector<double> window_slab;

    size_t size() const { return alarm.size(); }
  };

  struct Shard {
    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<RingEntry> ring;
    ShardHot hot;
    std::vector<MonitorHandle> members;  // local index -> handle
    // Bound once at fleet construction; the hot path pays relaxed atomics,
    // not registry map lookups.
    obs::Counter* samples_counter = nullptr;
    obs::Counter* window_overflow_counter = nullptr;
    obs::Counter* ring_overflow_counter = nullptr;
    uint64_t samples = 0;       // fleet-local tallies for /statusz
    uint64_t ring_rejects = 0;
    // First backpressure reject per job era (any StartJob resets) is
    // journaled; later ones only count.
    bool backpressure_journaled = false;
    // Per-tick drain ownership: pool tasks and the ingestion thread race to
    // claim a shard's drain (exchange), so ingest keeps its
    // caller-participates liveness even when every pool worker is busy
    // grinding a diagnosis. Exactly one winner per shard per tick keeps the
    // ring single-consumer.
    std::atomic<uint8_t> drain_claimed{0};
  };

  // Cold per-monitor state, touched at StartJob / alarm / diagnosis time
  // only - never on the per-sample path.
  struct ColdSlot {
    core::OperationContext context;
    std::shared_ptr<const core::ContextModel> model;
    int shard = 0;
    uint32_t local = 0;
    // One asynchronous diagnosis per job: set when the alarm's diagnosis
    // was enqueued, cleared by StartJob.
    bool diagnosis_dispatched = false;
    // First window overflow of a job is journaled; later ones only count.
    bool overflow_journaled = false;
  };

  // The per-sample detection kernel: ARIMA one-step residual, cached
  // threshold compare, debounce, alarm latch, window-slab push. Exactly
  // the OnlineMonitor::Observe math, run against the shard's SoA state.
  void ObserveOne(Shard& shard, uint32_t local, const TickSample& sample);
  // Pops `expected` entries off the shard's ring (spinning on empty - the
  // producer is still distributing) and observes each.
  void DrainShard(Shard& shard, uint32_t expected,
                  const std::vector<TickSample>& samples);
  // Copies a monitor's retained window, oldest first, into a NodeTrace.
  telemetry::NodeTrace MaterializeWindow(const Shard& shard, uint32_t local,
                                         const std::string& ip) const;
  MonitorView ViewLocked(MonitorHandle handle) const;

  // Snapshots the monitor's window + pinned model and enqueues the cause
  // inference (inline when config_.threads == 1).
  void DispatchDiagnosis(MonitorHandle handle);
  void PublishGauges();
  // Refreshes the cached /statusz snapshot; ingestion thread only. O(1)
  // counters plus at most status_top_k formatted rows (O(monitors) only
  // with status_full_dump).
  void RefreshStatusCache();
  // Feeds the alarm-storm detector and slow-tick watchdog with one tick's
  // outcome; journals trips and recoveries. Ingestion thread only.
  void RunWatchdogs(int new_alarms, double ingest_seconds);

  const core::InvarNetX* pipeline_;
  FleetConfig config_;
  int consecutive_required_ = 3;
  int effective_threads_ = 1;  // EffectiveThreadCount(config_.threads)

  // Monitor index: string-keyed map for StartJob/Resolve, dense arrays for
  // the hot path.
  std::map<core::OperationContext, MonitorHandle> index_;
  std::vector<ColdSlot> slots_;            // handle -> cold state
  std::vector<uint32_t> shard_of_;         // handle -> shard
  std::vector<uint32_t> local_of_;         // handle -> shard-local index
  std::vector<uint8_t> job_active_;        // handle -> armed?
  std::vector<std::unique_ptr<Shard>> shards_;

  // Per-tick scratch, reused so steady-state ingest is allocation-free.
  uint64_t tick_stamp_ = 0;
  std::vector<uint64_t> seen_stamp_;       // handle -> last tick seen
  std::vector<MonitorHandle> handles_scratch_;
  std::vector<uint8_t> accepted_scratch_;
  std::vector<uint32_t> shard_count_scratch_;
  std::vector<uint32_t> shard_pushed_scratch_;
  std::vector<uint32_t> shard_window_overflow_scratch_;

  // Completed-diagnosis hand-off between pool workers and the ingestion
  // thread.
  mutable std::mutex results_mu_;
  std::condition_variable results_cv_;
  std::vector<FleetDiagnosis> results_;
  size_t pending_ = 0;

  // Lifetime tallies mirrored into FleetStatus (the shared registry's
  // counters are process-wide; these are this fleet's own). Maintained
  // incrementally - no O(monitors) scans on the ingest path.
  size_t active_jobs_ = 0;
  size_t alarms_latched_ = 0;
  uint64_t ticks_ingested_ = 0;
  uint64_t samples_ingested_ = 0;
  uint64_t samples_rejected_ = 0;
  uint64_t alarms_raised_ = 0;
  uint64_t window_overflows_ = 0;
  std::atomic<uint64_t> diagnoses_completed_{0};  // pool workers bump this

  // Alarm-storm detector + slow-tick watchdog state; ingestion thread only.
  std::deque<int> storm_window_;
  int storm_alarms_in_window_ = 0;
  bool storm_active_ = false;
  std::deque<double> tick_latencies_;
  bool slow_ticks_active_ = false;
  double ingest_p99_seconds_ = 0.0;

  // Cached status the HTTP plane reads; guarded because scrape threads call
  // Snapshot() while the ingestion thread refreshes it.
  mutable std::mutex status_mu_;
  FleetStatus status_cache_;
};

}  // namespace invarnetx::serve

#endif  // INVARNETX_SERVE_FLEET_H_
