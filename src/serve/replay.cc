#include "serve/replay.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "campaign/runner.h"
#include "common/parallel.h"
#include "faults/fault.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/fleet.h"

namespace invarnetx::serve {
namespace {

std::string FormatScore(double score) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", score);
  return buf;
}

// One monitor armed for a replayed job: which node of the trace it watches
// and the dense handle StartJob assigned (stamped into every TickSample so
// the ingest path skips the context map).
struct ArmedMonitor {
  size_t node_index = 0;
  core::OperationContext context;
  MonitorHandle handle = kInvalidMonitor;
};

// One sample per armed node at tick `t` of the trace.
std::vector<TickSample> SamplesAt(const telemetry::RunTrace& trace,
                                  const std::vector<ArmedMonitor>& armed,
                                  size_t t) {
  std::vector<TickSample> samples;
  samples.reserve(armed.size());
  for (const ArmedMonitor& m : armed) {
    const telemetry::NodeTrace& node = trace.nodes[m.node_index];
    TickSample sample;
    sample.context = m.context;
    sample.monitor = m.handle;
    sample.cpi = node.cpi[t];
    for (int metric = 0; metric < telemetry::kNumMetrics; ++metric) {
      sample.metrics[static_cast<size_t>(metric)] =
          node.metrics[static_cast<size_t>(metric)][t];
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

// The verdict lines for one job, as ArmedContext rows for RenderVerdicts.
std::vector<ArmedContext> ToArmedContexts(
    const std::vector<ArmedMonitor>& armed) {
  std::vector<ArmedContext> contexts;
  contexts.reserve(armed.size());
  for (const ArmedMonitor& m : armed) {
    contexts.push_back(ArmedContext{m.context, m.handle});
  }
  return contexts;
}

}  // namespace

void RenderVerdicts(const MonitorFleet& fleet,
                    const std::vector<ArmedContext>& armed,
                    const std::vector<FleetDiagnosis>& diagnoses,
                    std::ostream* out) {
  for (const ArmedContext& m : armed) {
    const core::OperationContext& context = m.context;
    const std::optional<MonitorView> view = fleet.View(m.handle);
    if (!view.has_value() || !view->alarm_active) {
      *out << context.node_ip << ": healthy\n";
      continue;
    }
    *out << context.node_ip << ": ALARM tick " << view->first_alarm_tick;
    const FleetDiagnosis* diagnosis = nullptr;
    for (const FleetDiagnosis& d : diagnoses) {
      if (d.context == context) {
        diagnosis = &d;
        break;
      }
    }
    if (diagnosis == nullptr) {
      *out << " (diagnosis pending)\n";
      continue;
    }
    if (!diagnosis->status.ok()) {
      *out << " (diagnosis failed: " << diagnosis->status.ToString() << ")\n";
      continue;
    }
    *out << ", " << diagnosis->report.num_violations << " violations";
    if (!diagnosis->report.causes.empty()) {
      *out << " -> " << diagnosis->report.causes[0].problem << " "
           << FormatScore(diagnosis->report.causes[0].score);
      if (!diagnosis->report.known_problem) *out << " (below threshold)";
    } else {
      *out << " -> unknown problem";
    }
    // Unseen fault: the causal fallback ranked suspect metrics over the
    // broken invariant graph. Deterministic, so safe to render.
    if (diagnosis->report.used_causal_fallback &&
        !diagnosis->report.suspects.empty()) {
      *out << "; suspects:";
      const size_t shown = std::min<size_t>(diagnosis->report.suspects.size(),
                                            3);
      for (size_t i = 0; i < shown; ++i) {
        *out << (i == 0 ? " " : ", ")
             << telemetry::MetricName(diagnosis->report.suspects[i].metric)
             << " " << FormatScore(diagnosis->report.suspects[i].score);
      }
    }
    *out << " [epoch " << diagnosis->epoch << "]\n";
  }
}

Result<ScenarioFleetPlan> PrepareScenarioFleet(
    const campaign::Scenario& scenario, const ReplayOptions& options) {
  ScenarioFleetPlan plan;

  // 1. Fault-free runs on the campaign's normal seed stream.
  plan.normal.resize(static_cast<size_t>(scenario.normal_runs));
  INVARNETX_RETURN_IF_ERROR(ParallelFor(
      plan.normal.size(), options.threads, [&](size_t i) -> Status {
        Result<telemetry::RunTrace> trace =
            campaign::SimulateScenarioNormalRun(scenario,
                                                static_cast<int>(i));
        if (!trace.ok()) return trace.status();
        plan.normal[i] = std::move(trace.value());
        return Status::Ok();
      }));

  // 2. Train every slave's operation context - a fleet watches the whole
  // cluster, not just the campaign's victim.
  core::InvarNetXConfig pipeline_config;
  pipeline_config.num_threads = options.threads;
  plan.pipeline = std::make_unique<core::InvarNetX>(pipeline_config);
  for (int node = 1; node <= scenario.slaves; ++node) {
    const core::OperationContext context{
        scenario.workload, "10.0.0." + std::to_string(node + 1)};
    INVARNETX_RETURN_IF_ERROR(plan.pipeline->TrainContext(
        context, plan.normal, static_cast<size_t>(node)));
    plan.contexts.push_back(context);
    plan.node_indices.push_back(static_cast<size_t>(node));
  }

  // 3. Teach the victim context the scenario's signature catalog, on the
  // campaign's signature seed streams.
  const core::OperationContext victim =
      campaign::ScenarioVictimContext(scenario);
  for (size_t fi = 0; fi < scenario.signature_faults.size(); ++fi) {
    for (int rep = 0; rep < scenario.signature_runs; ++rep) {
      Result<telemetry::RunTrace> run =
          campaign::SimulateScenarioSignatureRun(scenario, fi, rep);
      if (!run.ok()) return run.status();
      INVARNETX_RETURN_IF_ERROR(plan.pipeline->AddSignature(
          victim, faults::FaultName(scenario.signature_faults[fi]),
          run.value(), campaign::ScenarioVictimNode(scenario)));
    }
  }

  plan.runs = scenario.test_runs;
  if (options.max_runs > 0) plan.runs = std::min(plan.runs, options.max_runs);
  std::ostringstream header;
  header << "replay " << scenario.name << ": " << plan.contexts.size()
         << " monitors, " << plan.runs << " run(s), window "
         << options.window_capacity << " ticks, fault "
         << faults::FaultName(scenario.fault) << "\n";
  plan.header = header.str();
  return plan;
}

FleetConfig MakeScenarioFleetConfig(const ReplayOptions& options,
                                    size_t expected_monitors) {
  FleetConfig fleet_config;
  fleet_config.window_capacity = options.window_capacity;
  fleet_config.threads = options.threads;
  fleet_config.shards = options.shards;
  fleet_config.ring_capacity = options.ring_capacity;
  fleet_config.expected_monitors = expected_monitors;
  return fleet_config;
}

Result<std::string> ReplayScenario(const campaign::Scenario& scenario,
                                   const ReplayOptions& options) {
  Result<ScenarioFleetPlan> prepared = PrepareScenarioFleet(scenario, options);
  if (!prepared.ok()) return prepared.status();
  ScenarioFleetPlan& plan = prepared.value();
  core::InvarNetX& pipeline = *plan.pipeline;
  const std::vector<telemetry::RunTrace>& normal = plan.normal;

  std::vector<ArmedMonitor> armed;
  for (size_t i = 0; i < plan.contexts.size(); ++i) {
    armed.push_back(ArmedMonitor{plan.node_indices[i], plan.contexts[i],
                                 kInvalidMonitor});
  }

  // 4. Stream each test run through the fleet, one job per run.
  MonitorFleet fleet(&pipeline,
                     MakeScenarioFleetConfig(options, armed.size()));

  const int runs = plan.runs;
  std::ostringstream out;
  out << plan.header;

  int total_alarms = 0;
  for (int rep = 0; rep < runs; ++rep) {
    Result<telemetry::RunTrace> trace =
        campaign::SimulateScenarioTestRun(scenario, rep);
    if (!trace.ok()) return trace.status();
    for (ArmedMonitor& m : armed) {
      Result<MonitorHandle> handle = fleet.StartJob(m.context);
      if (!handle.ok()) return handle.status();
      m.handle = handle.value();
    }
    const size_t ticks = trace.value().nodes[1].cpi.size();
    for (size_t t = 0; t < ticks; ++t) {
      Result<TickSummary> summary =
          fleet.IngestTick(SamplesAt(trace.value(), armed, t));
      if (!summary.ok()) return summary.status();
    }
    fleet.WaitForDiagnoses();
    const std::vector<FleetDiagnosis> diagnoses = fleet.TakeDiagnoses();
    out << "== run " << rep << " ==\n";
    RenderVerdicts(fleet, ToArmedContexts(armed), diagnoses, &out);
    total_alarms += static_cast<int>(fleet.alarms_active());
    if (options.retrain_each_run) {
      // Incremental retrain between runs: every context re-mines from the
      // same fault-free streams, so the published epoch advances while the
      // dirty-pair rule reuses the entire previous matrix. The rescored /
      // reused split is digest-driven and therefore deterministic across
      // thread counts, so it is safe to render.
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
      obs::Counter& rescored_counter =
          registry.GetCounter("pipeline.pairs_rescored");
      obs::Counter& reused_counter =
          registry.GetCounter("pipeline.pairs_reused");
      const uint64_t rescored_before = rescored_counter.value();
      const uint64_t reused_before = reused_counter.value();
      for (const ArmedMonitor& m : armed) {
        INVARNETX_RETURN_IF_ERROR(
            pipeline.TrainContext(m.context, normal, m.node_index));
      }
      out << "retrain: " << armed.size() << " context(s), pairs rescored "
          << (rescored_counter.value() - rescored_before) << ", reused "
          << (reused_counter.value() - reused_before) << "\n";
    }
  }
  out << "summary: " << total_alarms << " alarm(s) over " << runs
      << " run(s) x " << armed.size() << " monitor(s)\n";
  return out.str();
}

Result<std::string> ReplayTrace(const core::InvarNetX& pipeline,
                                const telemetry::RunTrace& trace,
                                const ReplayOptions& options) {
  if (trace.nodes.empty() || trace.ticks <= 0) {
    return Status::InvalidArgument("ReplayTrace: empty trace");
  }
  // A plain trace is one job spanning the whole observation; FIFO-sequence
  // traces carry their own span list and re-arm monitors per job.
  std::vector<telemetry::JobSpanInfo> spans = trace.job_spans;
  if (spans.empty()) {
    spans.push_back(
        telemetry::JobSpanInfo{trace.workload, 0, trace.ticks});
  }

  FleetConfig fleet_config;
  fleet_config.window_capacity = options.window_capacity;
  fleet_config.threads = options.threads;
  fleet_config.shards = options.shards;
  fleet_config.ring_capacity = options.ring_capacity;
  MonitorFleet fleet(&pipeline, fleet_config);

  std::ostringstream out;
  for (size_t j = 0; j < spans.size(); ++j) {
    telemetry::JobSpanInfo span = spans[j];
    if (span.end_tick < 0) span.end_tick = trace.ticks;
    if (span.end_tick <= span.start_tick) continue;

    // Arm a monitor for every node whose operation context is archived.
    std::vector<ArmedMonitor> armed;
    for (size_t n = 0; n < trace.nodes.size(); ++n) {
      const core::OperationContext context{span.type, trace.nodes[n].ip};
      if (!pipeline.HasContext(context)) continue;
      Result<MonitorHandle> handle = fleet.StartJob(context);
      if (!handle.ok()) return handle.status();
      armed.push_back(ArmedMonitor{n, context, handle.value()});
    }
    out << "== job " << j << " (" << workload::WorkloadName(span.type)
        << ", ticks " << span.start_tick << ".." << span.end_tick << ", "
        << armed.size() << " monitor(s)) ==\n";
    if (armed.empty()) {
      out << "(no trained contexts for this job)\n";
      continue;
    }
    for (int t = span.start_tick; t < span.end_tick; ++t) {
      Result<TickSummary> summary = fleet.IngestTick(
          SamplesAt(trace, armed, static_cast<size_t>(t)));
      if (!summary.ok()) return summary.status();
    }
    fleet.WaitForDiagnoses();
    const std::vector<FleetDiagnosis> diagnoses = fleet.TakeDiagnoses();
    RenderVerdicts(fleet, ToArmedContexts(armed), diagnoses, &out);
  }
  return out.str();
}

}  // namespace invarnetx::serve
