#include "serve/statusz.h"

#include <algorithm>
#include <cstdio>

#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace invarnetx::serve {
namespace {

// Journal tail shown on /statusz; the full ring is available via
// `invarnetx events`.
constexpr size_t kStatuszJournalTail = 64;

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

void FleetStatusBoard::Register(const MonitorFleet* fleet) {
  std::lock_guard<std::mutex> lock(mu_);
  fleets_.push_back(fleet);
}

void FleetStatusBoard::Deregister(const MonitorFleet* fleet) {
  std::lock_guard<std::mutex> lock(mu_);
  fleets_.erase(std::remove(fleets_.begin(), fleets_.end(), fleet),
                fleets_.end());
}

size_t FleetStatusBoard::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fleets_.size();
}

std::vector<FleetStatus> FleetStatusBoard::Snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FleetStatus> out;
  out.reserve(fleets_.size());
  for (const MonitorFleet* fleet : fleets_) {
    out.push_back(fleet->Snapshot());
  }
  return out;
}

FleetStatusBoard& FleetStatusBoard::Shared() {
  // Leaked like the registries it mirrors: fleets may deregister from
  // threads that outlive static teardown ordering.
  static FleetStatusBoard* board = new FleetStatusBoard();
  return *board;
}

std::string RenderFleetStatus(const FleetStatus& status) {
  std::string out;
  out += "  active_monitors=" + std::to_string(status.active_monitors);
  out += " monitors_total=" + std::to_string(status.monitors_total);
  out += " alarms_active=" + std::to_string(status.alarms_active);
  out += " pending_diagnoses=" + std::to_string(status.pending_diagnoses);
  out += "\n  ticks_ingested=" + std::to_string(status.ticks_ingested);
  out += " samples_ingested=" + std::to_string(status.samples_ingested);
  out += " samples_rejected=" + std::to_string(status.samples_rejected);
  out += " alarms_raised=" + std::to_string(status.alarms_raised);
  out += " diagnoses_completed=" + std::to_string(status.diagnoses_completed);
  out += " window_overflows=" + std::to_string(status.window_overflows);
  out += "\n  storm_active=";
  out += status.storm_active ? "true" : "false";
  out += " slow_ticks_active=";
  out += status.slow_ticks_active ? "true" : "false";
  out += " ingest_p99_s=" + FormatSeconds(status.ingest_p99_seconds);
  out += " budget_s=" + FormatSeconds(status.slow_tick_budget_seconds);
  out += "\n";
  for (const ShardStatus& shard : status.shards) {
    out += "  shard " + std::to_string(shard.shard);
    out += " monitors=" + std::to_string(shard.monitors);
    out += " ring_capacity=" + std::to_string(shard.ring_capacity);
    out += " samples=" + std::to_string(shard.samples);
    out += " ring_rejects=" + std::to_string(shard.ring_rejects);
    out += "\n";
  }
  out += "  monitors shown " + std::to_string(status.monitors.size()) +
         " of " + std::to_string(status.monitors_total);
  if (status.monitors_listed_truncated) out += " (interesting rows only)";
  out += "\n";
  for (const MonitorStatus& monitor : status.monitors) {
    out += "  monitor " + monitor.context;
    out += " shard=" + std::to_string(monitor.shard);
    out += " job_active=";
    out += monitor.job_active ? "true" : "false";
    out += " alarm=";
    out += monitor.alarm_active ? "true" : "false";
    out += " epoch=" + std::to_string(monitor.epoch);
    out += " first_alarm_tick=" + std::to_string(monitor.first_alarm_tick);
    out += " ticks=" + std::to_string(monitor.ticks_observed);
    out += " window=" + std::to_string(monitor.window_ticks);
    out += "\n";
  }
  return out;
}

void InstallObsEndpoints(obs::HttpServer* server) {
  server->Handle("/metrics", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    // The OpenMetrics media type; Prometheus accepts it, and plain-text
    // readers see text anyway.
    response.content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    response.body = obs::MetricsRegistry::Shared().RenderOpenMetrics();
    return response;
  });

  server->Handle("/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    const std::vector<FleetStatus> fleets =
        FleetStatusBoard::Shared().Snapshots();
    size_t storms = 0;
    for (const FleetStatus& fleet : fleets) {
      if (fleet.storm_active) ++storms;
    }
    response.body = "ok\n";
    response.body += "uptime_s=" + FormatSeconds(
        static_cast<double>(obs::UptimeMicros()) / 1e6) + "\n";
    response.body += "fleets=" + std::to_string(fleets.size()) + "\n";
    response.body += "storms_active=" + std::to_string(storms) + "\n";
    return response;
  });

  server->Handle("/statusz", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    std::string& body = response.body;
    body = "invarnetx statusz\n";
    body += "uptime_s=" + FormatSeconds(
        static_cast<double>(obs::UptimeMicros()) / 1e6) + "\n";

    const std::vector<FleetStatus> fleets =
        FleetStatusBoard::Shared().Snapshots();
    body += "\n== fleets (" + std::to_string(fleets.size()) + ") ==\n";
    for (size_t i = 0; i < fleets.size(); ++i) {
      body += "fleet " + std::to_string(i) + "\n";
      body += RenderFleetStatus(fleets[i]);
    }

    body += "\n== metrics ==\n";
    body += obs::MetricsRegistry::Shared().RenderText();

    obs::EventJournal& journal = obs::EventJournal::Shared();
    body += "\n== events (last " + std::to_string(kStatuszJournalTail) +
            " of " + std::to_string(journal.next_seq()) + " recorded, " +
            std::to_string(journal.evicted()) + " evicted) ==\n";
    body += obs::RenderEventsText(journal.Snapshot(kStatuszJournalTail));
    return response;
  });

  server->Handle("/tracez", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = obs::SlowSpanSampler::Shared().RenderText();
    return response;
  });
}

}  // namespace invarnetx::serve
