#ifndef INVARNETX_SERVE_REPLAY_H_
#define INVARNETX_SERVE_REPLAY_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "campaign/scenario.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "serve/fleet.h"
#include "telemetry/trace.h"

namespace invarnetx::serve {

// Knobs of a fleet replay. Like CampaignOptions, these are runtime concerns
// only: the rendered report is byte-identical for every `threads` and
// `shards` value (CI diffs the output across both).
struct ReplayOptions {
  int threads = 0;
  size_t window_capacity = 256;
  // Monitor shards of the underlying fleet (FleetConfig::shards); 0 = one
  // per hardware thread.
  int shards = 0;
  // Per-shard ingest ring capacity (FleetConfig::ring_capacity); 0 = auto,
  // sized so replay batches are never rejected.
  size_t ring_capacity = 0;
  // Caps the scenario test runs replayed (0 = all).
  int max_runs = 0;
  // Retrain every armed operation context from the scenario's fault-free
  // runs after each replayed test run - the serving-time shape of the
  // incremental maintenance path: each retrain publishes a fresh epoch
  // whose mining reuses the previous epoch's records (same training data,
  // so every pair digest matches and no pair is rescored). The report
  // gains a per-run retrain line with the rescored/reused split; verdicts
  // are unchanged (retrained models are identical, and in-flight monitors
  // pin their epoch regardless).
  bool retrain_each_run = false;
};

// One context armed in a fleet: the operation context and the dense handle
// its StartJob returned. The verdict renderer walks these in order, so the
// caller's arming order is the report's node order.
struct ArmedContext {
  core::OperationContext context;
  MonitorHandle handle = kInvalidMonitor;
};

// Renders every armed context's verdict after one finished job, in `armed`
// order - the exact per-node report lines of --replay, shared with the
// socket ingest front end so socket-fed verdicts diff clean against a
// local replay of the same samples.
void RenderVerdicts(const MonitorFleet& fleet,
                    const std::vector<ArmedContext>& armed,
                    const std::vector<FleetDiagnosis>& diagnoses,
                    std::ostream* out);

// Scenario serving state shared by --replay and the socket ingest mode: the
// pipeline trained from the scenario's fault-free runs plus the victim's
// signature catalog, the slave operation contexts in node order, and the
// report header line. Building this is steps 1-3 of ReplayScenario; what
// differs between the two modes is only where the test-run samples come
// from (simulated locally vs. streamed over a socket).
struct ScenarioFleetPlan {
  std::unique_ptr<core::InvarNetX> pipeline;
  // Slave contexts in node order; contexts[i] watches trace node
  // node_indices[i]. This order is the canonical HELLO / arming order.
  std::vector<core::OperationContext> contexts;
  std::vector<size_t> node_indices;
  // The fault-free training runs (kept for retrain_each_run).
  std::vector<telemetry::RunTrace> normal;
  int runs = 0;  // test runs to stream, after the max_runs cap
  std::string header;
};

Result<ScenarioFleetPlan> PrepareScenarioFleet(
    const campaign::Scenario& scenario, const ReplayOptions& options);

// The FleetConfig both modes build from the same options, so their fleets
// shard and backpressure identically.
FleetConfig MakeScenarioFleetConfig(const ReplayOptions& options,
                                    size_t expected_monitors);

// Replays a fault-injection scenario through a MonitorFleet: simulates the
// scenario's fault-free runs, trains every slave's operation context,
// teaches the victim context the scenario's signature catalog, then streams
// each test run tick by tick through one monitor per slave - batched
// ingestion, alarm-triggered asynchronous diagnosis - and renders the
// per-run, per-node verdicts. The test runs replay the exact seed streams
// the offline campaign diagnoses, so fleet and campaign see the same data.
Result<std::string> ReplayScenario(const campaign::Scenario& scenario,
                                   const ReplayOptions& options);

// Replays one recorded trace against an already-trained pipeline. FIFO
// job-sequence traces re-arm every monitor at each job boundary (the
// paper's "selects a performance model from the archived models instantly");
// nodes whose operation context is untrained are skipped.
Result<std::string> ReplayTrace(const core::InvarNetX& pipeline,
                                const telemetry::RunTrace& trace,
                                const ReplayOptions& options);

}  // namespace invarnetx::serve

#endif  // INVARNETX_SERVE_REPLAY_H_
