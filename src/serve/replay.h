#ifndef INVARNETX_SERVE_REPLAY_H_
#define INVARNETX_SERVE_REPLAY_H_

#include <string>

#include "campaign/scenario.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "telemetry/trace.h"

namespace invarnetx::serve {

// Knobs of a fleet replay. Like CampaignOptions, these are runtime concerns
// only: the rendered report is byte-identical for every `threads` and
// `shards` value (CI diffs the output across both).
struct ReplayOptions {
  int threads = 0;
  size_t window_capacity = 256;
  // Monitor shards of the underlying fleet (FleetConfig::shards); 0 = one
  // per hardware thread.
  int shards = 0;
  // Per-shard ingest ring capacity (FleetConfig::ring_capacity); 0 = auto,
  // sized so replay batches are never rejected.
  size_t ring_capacity = 0;
  // Caps the scenario test runs replayed (0 = all).
  int max_runs = 0;
  // Retrain every armed operation context from the scenario's fault-free
  // runs after each replayed test run - the serving-time shape of the
  // incremental maintenance path: each retrain publishes a fresh epoch
  // whose mining reuses the previous epoch's records (same training data,
  // so every pair digest matches and no pair is rescored). The report
  // gains a per-run retrain line with the rescored/reused split; verdicts
  // are unchanged (retrained models are identical, and in-flight monitors
  // pin their epoch regardless).
  bool retrain_each_run = false;
};

// Replays a fault-injection scenario through a MonitorFleet: simulates the
// scenario's fault-free runs, trains every slave's operation context,
// teaches the victim context the scenario's signature catalog, then streams
// each test run tick by tick through one monitor per slave - batched
// ingestion, alarm-triggered asynchronous diagnosis - and renders the
// per-run, per-node verdicts. The test runs replay the exact seed streams
// the offline campaign diagnoses, so fleet and campaign see the same data.
Result<std::string> ReplayScenario(const campaign::Scenario& scenario,
                                   const ReplayOptions& options);

// Replays one recorded trace against an already-trained pipeline. FIFO
// job-sequence traces re-arm every monitor at each job boundary (the
// paper's "selects a performance model from the archived models instantly");
// nodes whose operation context is untrained are skipped.
Result<std::string> ReplayTrace(const core::InvarNetX& pipeline,
                                const telemetry::RunTrace& trace,
                                const ReplayOptions& options);

}  // namespace invarnetx::serve

#endif  // INVARNETX_SERVE_REPLAY_H_
