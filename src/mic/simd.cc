#include "mic/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define INVARNETX_SIMD_X86 1
#include <immintrin.h>
#else
#define INVARNETX_SIMD_X86 0
#endif

namespace invarnetx::mic {
namespace {

// Matches OptimizeXAxis's kNegInf: the DP's "no valid partition" sentinel.
// Real scores are bounded by n*ln(n) in magnitude, orders of magnitude
// smaller, so the sentinel never ties a genuine candidate.
constexpr double kNegInf = -1e300;

double DpRowMaxScalar(const double* dp, const double* col, int s_begin,
                      int s_end) {
  double v = kNegInf;
  for (int s = s_begin; s < s_end; ++s) {
    const double cand = dp[s] + col[s];
    if (cand > v) v = cand;
  }
  return v;
}

#if INVARNETX_SIMD_X86

[[gnu::target("avx2")]] double DpRowMaxAvx2(const double* dp, const double* col,
                                            int s_begin, int s_end) {
  int s = s_begin;
  __m256d acc = _mm256_set1_pd(kNegInf);
  for (; s + 4 <= s_end; s += 4) {
    const __m256d cand = _mm256_add_pd(_mm256_loadu_pd(dp + s),
                                       _mm256_loadu_pd(col + s));
    acc = _mm256_max_pd(acc, cand);
  }
  // Horizontal max of the 4 lanes. maxpd's equal-operand tie-break differs
  // from the scalar loop's, but candidates that compare equal here have
  // identical bit patterns (no -0.0/+0.0 mixes reach the DP, see SimdLevel),
  // so the reduction order cannot change the returned bits.
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  __m128d m = _mm_max_pd(lo, hi);
  m = _mm_max_sd(m, _mm_unpackhi_pd(m, m));
  double v = _mm_cvtsd_f64(m);
  for (; s < s_end; ++s) {
    const double cand = dp[s] + col[s];
    if (cand > v) v = cand;
  }
  return v;
}

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool CpuHasAvx2() { return false; }

#endif  // INVARNETX_SIMD_X86

SimdLevel ClampToCpu(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !CpuHasAvx2()) return SimdLevel::kScalar;
  return level;
}

std::atomic<SimdLevel>& ActiveLevelSlot() {
  static std::atomic<SimdLevel> active{DetectSimdLevel()};
  return active;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

SimdLevel DetectSimdLevel() {
  static const SimdLevel detected = [] {
    const char* env = std::getenv("INVARNETX_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return SimdLevel::kScalar;
    }
    // Default (and explicit "avx2"): the best tier the CPU supports. An
    // unrecognized value falls through here rather than failing - the env
    // knob must never turn a working binary into a crashing one.
    return ClampToCpu(SimdLevel::kAvx2);
  }();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

void SetSimdLevel(SimdLevel level) {
  ActiveLevelSlot().store(ClampToCpu(level), std::memory_order_relaxed);
}

double DpRowMax(const double* dp, const double* col, int s_begin, int s_end) {
#if INVARNETX_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return DpRowMaxAvx2(dp, col, s_begin, s_end);
  }
#endif
  return DpRowMaxScalar(dp, col, s_begin, s_end);
}

}  // namespace invarnetx::mic
