#ifndef INVARNETX_MIC_MIC_H_
#define INVARNETX_MIC_MIC_H_

#include <vector>

#include "common/status.h"

namespace invarnetx::mic {

// Options for the MINE approximation of the Maximal Information Coefficient
// (Reshef et al., "Detecting novel associations in large data sets",
// Science 2011). B(n) = max(floor(n^alpha), 4) bounds the grid resolution
// (x * y <= B); `clump_factor` (c in the paper) caps the candidate column
// edges at c * x superclumps.
struct MicOptions {
  double alpha = 0.6;
  int clump_factor = 15;
};

// Result of a MIC computation: the score, the grid that achieved it, and
// the companion MINE statistics derived from the characteristic matrix
// (Reshef et al. 2011, Table 2):
//   MEV (maximum edge value)     - strength of the best functional fit,
//                                  max M(x,y) over grids with x=2 or y=2;
//   MCN (minimum cell number)    - complexity, log2(x*y) of the smallest
//                                  grid achieving (1-eps) * MIC;
//   MAS (maximum asymmetry score)- non-monotonicity, max |M(x,y)-M(y,x)|.
struct MicResult {
  double mic = 0.0;
  int best_x = 0;  // columns of the maximizing grid
  int best_y = 0;  // rows of the maximizing grid
  double mev = 0.0;
  double mcn = 0.0;
  double mas = 0.0;
};

// Computes MIC(x, y) in [0, 1]. Requires x.size() == y.size() >= 4.
// Deterministic: no randomness is involved.
//
// Implementation: for every grid shape (nx, ny) with nx * ny <= B(n), the
// y-axis is equipartitioned into ny rows and the x-axis partition into at
// most nx columns is optimized by dynamic programming over clump edges
// (ApproxMaxMI); the characteristic matrix entry is the normalized maximum
// over both axis orientations, and MIC is the matrix maximum.
Result<MicResult> Mic(const std::vector<double>& x,
                      const std::vector<double>& y,
                      const MicOptions& options = MicOptions());

// Convenience wrapper returning only the score.
Result<double> MicScore(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const MicOptions& options = MicOptions());

namespace internal {

// Equipartitions the values into at most `rows` groups of near-equal size,
// keeping ties together. Returns a row id per input index (0-based), and the
// number of non-empty rows actually used.
struct YPartition {
  std::vector<int> row_of_point;  // indexed by original point index
  int num_rows = 0;
};
YPartition EquipartitionY(const std::vector<double>& y, int rows);

// Clump edges for the x-axis given a row assignment: maximal runs of
// x-ordered points that share a Q row form one clump; points with equal x
// always share a clump. Returns cumulative point counts (size k+1, first 0,
// last n) and, aligned with x order, the row of each point.
struct ClumpPartition {
  std::vector<int> boundaries;      // cumulative counts, boundaries[0] == 0
  std::vector<int> row_in_x_order;  // Q row of the t-th point in x order
};
ClumpPartition BuildClumps(const std::vector<double>& x,
                           const std::vector<int>& row_of_point);

// Coarsens a clump partition to at most `max_clumps` superclumps of
// near-equal point mass (clump edges are preserved).
std::vector<int> BuildSuperclumps(const std::vector<int>& boundaries,
                                  int max_clumps);

// For each column budget l in [1, max_cols], the maximum over partitions of
// the clumps into exactly l columns of sum over columns of
// sum_q n_pq * log(n_pq / n_p)   (natural log; n_p = column size).
// Index 0 of the returned vector corresponds to l = 1.
std::vector<double> OptimizeXAxis(const std::vector<int>& boundaries,
                                  const std::vector<int>& row_in_x_order,
                                  int num_rows, int max_cols);

// Entropy (natural log) of the row distribution.
double RowEntropy(const std::vector<int>& row_of_point, int num_rows);

}  // namespace internal

}  // namespace invarnetx::mic

#endif  // INVARNETX_MIC_MIC_H_
