#ifndef INVARNETX_MIC_MIC_H_
#define INVARNETX_MIC_MIC_H_

#include <vector>

#include "common/status.h"

namespace invarnetx::mic {

// Options for the MINE approximation of the Maximal Information Coefficient
// (Reshef et al., "Detecting novel associations in large data sets",
// Science 2011). B(n) = max(floor(n^alpha), 4) bounds the grid resolution
// (x * y <= B); `clump_factor` (c in the paper) caps the candidate column
// edges at c * x superclumps.
struct MicOptions {
  double alpha = 0.6;
  int clump_factor = 15;
};

// Result of a MIC computation: the score, the grid that achieved it, and
// the companion MINE statistics derived from the characteristic matrix
// (Reshef et al. 2011, Table 2):
//   MEV (maximum edge value)     - strength of the best functional fit,
//                                  max M(x,y) over grids with x=2 or y=2;
//   MCN (minimum cell number)    - complexity, log2(x*y) of the smallest
//                                  grid achieving (1-eps) * MIC;
//   MAS (maximum asymmetry score)- non-monotonicity, max |M(x,y)-M(y,x)|.
struct MicResult {
  double mic = 0.0;
  int best_x = 0;  // columns of the maximizing grid
  int best_y = 0;  // rows of the maximizing grid
  double mev = 0.0;
  double mcn = 0.0;
  double mas = 0.0;
};

namespace internal {

// Equipartitions the values into at most `rows` groups of near-equal size,
// keeping ties together. Returns a row id per input index (0-based), and the
// number of non-empty rows actually used.
struct YPartition {
  std::vector<int> row_of_point;  // indexed by original point index
  int num_rows = 0;
};

// Clump edges for the x-axis given a row assignment: maximal runs of
// x-ordered points that share a Q row form one clump; points with equal x
// always share a clump. Returns cumulative point counts (size k+1, first 0,
// last n) and, aligned with x order, the row of each point.
struct ClumpPartition {
  std::vector<int> boundaries;      // cumulative counts, boundaries[0] == 0
  std::vector<int> row_in_x_order;  // Q row of the t-th point in x order
};

}  // namespace internal

// Reusable scratch memory for the MIC kernel. Every buffer the grid search
// needs - axis sort orders, the y-partition, clump edges, the flat DP
// tables, and the dense characteristic matrix - lives here and is resized
// (never shrunk) per call, so a warm workspace makes Mic() perform zero
// heap allocations in steady state. Buffers grow to the high-water mark of
// the series lengths seen; for B = grid_bound(n) the dense characteristic
// matrix costs (B/2 + 1)^2 doubles (~43 KB at n = 4096), the column-score
// table (c * B/2 + 1)^2 doubles.
//
// A workspace is NOT thread-safe: use one instance per thread. The mining
// fan-out keeps one per pool worker via ThreadLocalInstance<MicWorkspace>()
// (see common/parallel.h); pool workers are long-lived, so the buffers
// amortize across every subsequent association matrix.
struct MicWorkspace {
  // Per-axis stable sort orders, computed once per Mic() call and shared by
  // every grid row count in both orientations.
  std::vector<int> order_x;
  std::vector<int> order_y;
  internal::YPartition q;            // y-axis equipartition of the
                                     // current orientation
  internal::ClumpPartition clumps;   // x-axis clumps of the current
                                     // orientation
  std::vector<int> superclumps;      // coarsened clump boundaries
  std::vector<int> row_counts;       // RowEntropy histogram scratch
  std::vector<int> cum;              // (k+1) x num_rows row-major cumulative
                                     // per-row counts
  std::vector<double> col_score;     // (k+1)^2 memoized column scores,
                                     // t-major: [t * (k+1) + s] = score of
                                     // clump interval (s, t], so the DP's
                                     // per-t reduction over s is contiguous
                                     // (the layout mic/simd.h lanes read)
  std::vector<double> dp;            // DP tables of OptimizeXAxis
  std::vector<double> next;
  std::vector<double> best;
  std::vector<double> char_matrix;   // dense char_dim x char_dim grid of
                                     // characteristic-matrix entries,
                                     // -1.0 == no entry
  int char_dim = 0;
};

// Computes MIC(x, y) in [0, 1]. Requires x.size() == y.size() >= 4.
// Deterministic: no randomness is involved.
//
// Implementation: for every grid shape (nx, ny) with nx * ny <= B(n), the
// y-axis is equipartitioned into ny rows and the x-axis partition into at
// most nx columns is optimized by dynamic programming over clump edges
// (ApproxMaxMI); the characteristic matrix entry is the normalized maximum
// over both axis orientations, and MIC is the matrix maximum.
//
// `workspace` provides the kernel's scratch memory; a warm workspace makes
// the call allocation-free. Results are bit-identical for any workspace
// state (cold, warm, or warmed by different inputs) and to MicReference().
Result<MicResult> Mic(const std::vector<double>& x,
                      const std::vector<double>& y, const MicOptions& options,
                      MicWorkspace* workspace);

// Convenience overload with a private, call-local workspace.
Result<MicResult> Mic(const std::vector<double>& x,
                      const std::vector<double>& y,
                      const MicOptions& options = MicOptions());

// Convenience wrappers returning only the score.
Result<double> MicScore(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const MicOptions& options, MicWorkspace* workspace);
Result<double> MicScore(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const MicOptions& options = MicOptions());

// Reference implementation: the original allocating kernel (per-call sorts,
// map-backed characteristic matrix, vector-of-vector DP tables). Kept as
// the exactness oracle - tests assert the workspace kernel above returns
// bit-identical MicResults - and as readable documentation of the
// algorithm. Not for production use: several times slower than Mic().
Result<MicResult> MicReference(const std::vector<double>& x,
                               const std::vector<double>& y,
                               const MicOptions& options = MicOptions());

namespace internal {

// Fills `order` with the indices of `v` sorted ascending by value, ties by
// index - the exact permutation std::stable_sort produces from an iota
// order, computed with std::sort (no temporary-buffer allocation).
void StableOrder(const std::vector<double>& v, std::vector<int>* order);

// Workspace forms of the kernel stages. Each writes its result into an
// out-parameter whose capacity is reused across calls; `order` is the
// StableOrder permutation of the partitioned axis, hoisted out so the
// per-row-count loop in the grid scan never re-sorts.
void EquipartitionY(const std::vector<double>& y,
                    const std::vector<int>& order, int rows, YPartition* out);
void BuildClumps(const std::vector<double>& x, const std::vector<int>& order,
                 const std::vector<int>& row_of_point, ClumpPartition* out);
void BuildSuperclumps(const std::vector<int>& boundaries, int max_clumps,
                      std::vector<int>* out);
void OptimizeXAxis(const std::vector<int>& boundaries,
                   const std::vector<int>& row_in_x_order, int num_rows,
                   int max_cols, MicWorkspace* workspace,
                   std::vector<double>* best);
double RowEntropy(const std::vector<int>& row_of_point, int num_rows,
                  std::vector<int>* counts_scratch);

// Allocating convenience forms (sort internally / return by value), used by
// unit tests and MicReference; results are identical to the workspace forms.
YPartition EquipartitionY(const std::vector<double>& y, int rows);
ClumpPartition BuildClumps(const std::vector<double>& x,
                           const std::vector<int>& row_of_point);
std::vector<int> BuildSuperclumps(const std::vector<int>& boundaries,
                                  int max_clumps);
std::vector<double> OptimizeXAxis(const std::vector<int>& boundaries,
                                  const std::vector<int>& row_in_x_order,
                                  int num_rows, int max_cols);
double RowEntropy(const std::vector<int>& row_of_point, int num_rows);

}  // namespace internal

}  // namespace invarnetx::mic

#endif  // INVARNETX_MIC_MIC_H_
