#include "mic/mic.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <numeric>
#include <utility>

#include "mic/simd.h"

namespace invarnetx::mic {
namespace internal {

void StableOrder(const std::vector<double>& v, std::vector<int>* order) {
  order->resize(v.size());
  std::iota(order->begin(), order->end(), 0);
  // Sorting by (value, index) with std::sort yields exactly the permutation
  // std::stable_sort yields under a value-only comparator, without the
  // temporary merge buffer stable_sort heap-allocates per call.
  std::sort(order->begin(), order->end(), [&v](int a, int b) {
    if (v[a] != v[b]) return v[a] < v[b];
    return a < b;
  });
}

void EquipartitionY(const std::vector<double>& y, const std::vector<int>& order,
                    int rows, YPartition* out) {
  const int n = static_cast<int>(y.size());
  out->row_of_point.assign(y.size(), 0);
  out->num_rows = 0;
  if (n == 0 || rows < 1) return;

  int row = 0;
  int in_row = 0;
  int i = 0;
  while (i < n) {
    int j = 1;
    while (i + j < n && y[order[i + j]] == y[order[i]]) ++j;
    // Target size of the current row, counting its points among the ones
    // still to distribute over the remaining rows.
    double desired = static_cast<double>(n - i + in_row) /
                     static_cast<double>(rows - row);
    // Close the current row first when absorbing this tie-run would deviate
    // from the target size more than stopping short does.
    if (in_row > 0 && row < rows - 1 &&
        std::fabs(in_row + j - desired) > std::fabs(in_row - desired)) {
      ++row;
      in_row = 0;
      desired = static_cast<double>(n - i) / static_cast<double>(rows - row);
    }
    for (int t = 0; t < j; ++t) out->row_of_point[order[i + t]] = row;
    in_row += j;
    i += j;
    if (row < rows - 1 && in_row >= desired) {
      ++row;
      in_row = 0;
    }
  }
  // Count non-empty rows: row ids are assigned densely from 0.
  int max_row = 0;
  for (int r : out->row_of_point) max_row = std::max(max_row, r);
  out->num_rows = max_row + 1;
}

void BuildClumps(const std::vector<double>& x, const std::vector<int>& order,
                 const std::vector<int>& row_of_point, ClumpPartition* out) {
  const int n = static_cast<int>(x.size());
  out->boundaries.clear();
  out->boundaries.push_back(0);
  out->row_in_x_order.resize(x.size());
  if (n == 0) return;

  for (int t = 0; t < n; ++t) out->row_in_x_order[t] = row_of_point[order[t]];

  // Atomic groups share an x value; a group is "uniform" when all its points
  // lie in one Q row (uniform groups with the same row chain into one clump).
  int i = 0;
  int clump_row = -2;  // -2: no open clump; -1: open heterogeneous clump
  int count_in_clump = 0;
  while (i < n) {
    int j = 1;
    while (i + j < n && x[order[i + j]] == x[order[i]]) ++j;
    int group_row = out->row_in_x_order[i];
    for (int t = 1; t < j; ++t) {
      if (out->row_in_x_order[i + t] != group_row) {
        group_row = -1;
        break;
      }
    }
    const bool mergeable = clump_row >= 0 && group_row == clump_row;
    if (count_in_clump > 0 && !mergeable) {
      out->boundaries.push_back(out->boundaries.back() + count_in_clump);
      count_in_clump = 0;
    }
    count_in_clump += j;
    clump_row = group_row;
    if (group_row == -1) {
      // A heterogeneous group can never merge with its successor.
      out->boundaries.push_back(out->boundaries.back() + count_in_clump);
      count_in_clump = 0;
      clump_row = -2;
    }
    i += j;
  }
  if (count_in_clump > 0) {
    out->boundaries.push_back(out->boundaries.back() + count_in_clump);
  }
}

void BuildSuperclumps(const std::vector<int>& boundaries, int max_clumps,
                      std::vector<int>* out) {
  const int k = static_cast<int>(boundaries.size()) - 1;
  if (k <= max_clumps || max_clumps < 1) {
    out->assign(boundaries.begin(), boundaries.end());
    return;
  }
  const int n = boundaries.back();
  out->clear();
  out->push_back(0);
  int used = 0;      // superclumps closed so far
  int assigned = 0;  // points assigned so far
  for (int t = 1; t <= k; ++t) {
    const int size_if_closed = boundaries[t] - assigned;
    const double desired = static_cast<double>(n - assigned) /
                           static_cast<double>(max_clumps - used);
    const bool last_chance = (k - t) < (max_clumps - used);
    if (!last_chance && size_if_closed < desired && t < k) continue;
    out->push_back(boundaries[t]);
    assigned = boundaries[t];
    ++used;
    if (used == max_clumps) break;
  }
  if (out->back() != n) {
    if (used >= max_clumps) {
      // The cap is already reached but points remain (the break above fired
      // before the last boundary): merge the leftovers into the final
      // superclump instead of emitting a max_clumps+1-th one, which would
      // violate the cap OptimizeXAxis sizes its DP tables for.
      out->back() = n;
    } else {
      out->push_back(n);
    }
  }
}

double RowEntropy(const std::vector<int>& row_of_point, int num_rows,
                  std::vector<int>* counts_scratch) {
  if (row_of_point.empty()) return 0.0;
  counts_scratch->assign(static_cast<size_t>(num_rows), 0);
  for (int r : row_of_point) ++(*counts_scratch)[static_cast<size_t>(r)];
  const double n = static_cast<double>(row_of_point.size());
  double h = 0.0;
  for (int c : *counts_scratch) {
    if (c == 0) continue;
    const double p = c / n;
    h -= p * std::log(p);
  }
  return h;
}

void OptimizeXAxis(const std::vector<int>& boundaries,
                   const std::vector<int>& row_in_x_order, int num_rows,
                   int max_cols, MicWorkspace* workspace,
                   std::vector<double>* best) {
  const int k = static_cast<int>(boundaries.size()) - 1;
  best->assign(static_cast<size_t>(std::max(max_cols, 1)), 0.0);
  if (k < 1 || max_cols < 1) return;
  const int rows = num_rows;

  // cum[t * rows + q] = points in the first t clumps that lie in row q:
  // the vector-of-vector table of the reference kernel flattened into one
  // contiguous row-major buffer (one cache-friendly block, no per-row
  // allocations).
  workspace->cum.assign(static_cast<size_t>(k + 1) * rows, 0);
  int* cum = workspace->cum.data();
  for (int t = 1; t <= k; ++t) {
    int* cur = cum + static_cast<size_t>(t) * rows;
    const int* prev = cum + static_cast<size_t>(t - 1) * rows;
    std::copy(prev, prev + rows, cur);
    for (int p = boundaries[t - 1]; p < boundaries[t]; ++p) {
      ++cur[row_in_x_order[p]];
    }
  }

  // Column score for clumps (s, t]: sum_q n_pq ln(n_pq / n_p). The total
  // objective over a partition is -n * H(Q|P), which is additive over
  // columns, enabling the interval-partition DP below. The score of a given
  // (s, t] is independent of the column budget l, so it is memoized once
  // here instead of being recomputed (with its ln calls) for every l - the
  // dominant saving of the flat-table kernel.
  //
  // The table is t-major - col_score[t * stride + s] - so the DP's inner
  // reduction over s streams one contiguous row per t; that layout is what
  // lets DpRowMax run in vector lanes. The ln-bearing build itself must
  // stay scalar: vector math libraries do not promise the correctly-rounded
  // std::log these bits were defined by.
  const size_t stride = static_cast<size_t>(k) + 1;
  workspace->col_score.resize(stride * stride);
  for (int t = 1; t <= k; ++t) {
    const int* cum_t = cum + static_cast<size_t>(t) * rows;
    double* score_row = workspace->col_score.data() + t * stride;
    for (int s = 0; s < t; ++s) {
      const int np = boundaries[t] - boundaries[s];
      const int* cum_s = cum + static_cast<size_t>(s) * rows;
      double acc = 0.0;
      if (np != 0) {
        for (int q = 0; q < rows; ++q) {
          const int npq = cum_t[q] - cum_s[q];
          if (npq > 0) acc += npq * std::log(static_cast<double>(npq) / np);
        }
      }
      score_row[s] = acc;
    }
  }
  const double* col_score = workspace->col_score.data();

  const int cols = std::min(max_cols, k);
  constexpr double kNegInf = -1e300;
  // dp[t] = best objective partitioning the first t clumps into l columns.
  workspace->dp.assign(static_cast<size_t>(k) + 1, kNegInf);
  for (int t = 1; t <= k; ++t) {
    workspace->dp[t] = col_score[t * stride];  // s = 0 row
  }
  (*best)[0] = workspace->dp[static_cast<size_t>(k)];
  workspace->next.assign(static_cast<size_t>(k) + 1, kNegInf);
  for (int l = 2; l <= cols; ++l) {
    std::fill(workspace->next.begin(), workspace->next.end(), kNegInf);
    const double* dp = workspace->dp.data();
    for (int t = l; t <= k; ++t) {
      workspace->next[static_cast<size_t>(t)] =
          DpRowMax(dp, col_score + static_cast<size_t>(t) * stride, l - 1, t);
    }
    workspace->dp.swap(workspace->next);
    (*best)[static_cast<size_t>(l - 1)] = workspace->dp[static_cast<size_t>(k)];
  }
  // More columns than clumps cannot help; extend with the exactly-k value.
  for (int l = cols + 1; l <= max_cols; ++l) {
    (*best)[static_cast<size_t>(l - 1)] = (*best)[static_cast<size_t>(cols - 1)];
  }
  // Refinement never decreases I(P;Q); make the vector cumulative-max so
  // entry l-1 is "best with at most l columns".
  for (size_t l = 1; l < best->size(); ++l) {
    (*best)[l] = std::max((*best)[l], (*best)[l - 1]);
  }
}

// ------------------------------------------- allocating convenience forms --

YPartition EquipartitionY(const std::vector<double>& y, int rows) {
  std::vector<int> order;
  StableOrder(y, &order);
  YPartition out;
  EquipartitionY(y, order, rows, &out);
  return out;
}

ClumpPartition BuildClumps(const std::vector<double>& x,
                           const std::vector<int>& row_of_point) {
  std::vector<int> order;
  StableOrder(x, &order);
  ClumpPartition out;
  BuildClumps(x, order, row_of_point, &out);
  return out;
}

std::vector<int> BuildSuperclumps(const std::vector<int>& boundaries,
                                  int max_clumps) {
  std::vector<int> out;
  BuildSuperclumps(boundaries, max_clumps, &out);
  return out;
}

double RowEntropy(const std::vector<int>& row_of_point, int num_rows) {
  std::vector<int> counts;
  return RowEntropy(row_of_point, num_rows, &counts);
}

std::vector<double> OptimizeXAxis(const std::vector<int>& boundaries,
                                  const std::vector<int>& row_in_x_order,
                                  int num_rows, int max_cols) {
  MicWorkspace workspace;
  std::vector<double> best;
  OptimizeXAxis(boundaries, row_in_x_order, num_rows, max_cols, &workspace,
                &best);
  return best;
}

}  // namespace internal

namespace {

Status ValidateInputs(const std::vector<double>& x,
                      const std::vector<double>& y,
                      const MicOptions& options) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("Mic: series length mismatch");
  }
  if (x.size() < 4) {
    return Status::InvalidArgument("Mic: need at least 4 points");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("Mic: alpha must be in (0, 1]");
  }
  if (options.clump_factor < 1) {
    return Status::InvalidArgument("Mic: clump_factor must be >= 1");
  }
  return Status::Ok();
}

int GridBound(size_t n, double alpha) {
  return std::max(
      static_cast<int>(std::pow(static_cast<double>(n), alpha)), 4);
}

// Accumulates characteristic-matrix entries for one axis orientation into
// the workspace's dense matrix: `axis_x` is partitioned into columns,
// `axis_y` equipartitioned into rows. `order_x`/`order_y` are the
// StableOrder permutations of the two axes, computed once per Mic() call -
// every row count ny reuses them, where the reference kernel re-sorted both
// axes inside this loop. `swapped` indicates the orientation relative to
// the caller's (x, y).
void ScanOrientation(const std::vector<double>& axis_x,
                     const std::vector<double>& axis_y,
                     const std::vector<int>& order_x,
                     const std::vector<int>& order_y, int grid_bound,
                     int clump_factor, bool swapped, MicWorkspace* ws) {
  const double n = static_cast<double>(axis_x.size());
  const int dim = ws->char_dim;
  for (int ny = 2; ny * 2 <= grid_bound; ++ny) {
    const int max_nx = grid_bound / ny;
    if (max_nx < 2) break;
    internal::EquipartitionY(axis_y, order_y, ny, &ws->q);
    if (ws->q.num_rows < 2) continue;
    const double h_q =
        internal::RowEntropy(ws->q.row_of_point, ws->q.num_rows,
                             &ws->row_counts);
    internal::BuildClumps(axis_x, order_x, ws->q.row_of_point, &ws->clumps);
    internal::BuildSuperclumps(ws->clumps.boundaries, clump_factor * max_nx,
                               &ws->superclumps);
    internal::OptimizeXAxis(ws->superclumps, ws->clumps.row_in_x_order,
                            ws->q.num_rows, max_nx, ws, &ws->best);
    for (int nx = 2; nx <= max_nx; ++nx) {
      const double mi = h_q + ws->best[static_cast<size_t>(nx - 1)] / n;
      const double norm = std::log(static_cast<double>(std::min(nx, ny)));
      double entry = norm > 0.0 ? mi / norm : 0.0;
      entry = std::clamp(entry, 0.0, 1.0);
      const size_t cell = swapped
                              ? static_cast<size_t>(ny) * dim + nx
                              : static_cast<size_t>(nx) * dim + ny;
      if (entry > ws->char_matrix[cell]) ws->char_matrix[cell] = entry;
    }
  }
}

// Derives MIC / MEV / MCN / MAS from the dense characteristic matrix.
// Iteration runs nx-major / ny-minor, the same lexicographic (nx, ny) order
// the reference kernel's std::map produced, so max/min tie-breaks (best
// grid, MCN) are bit-identical. Cells < 0 hold no entry (entries are
// clamped to [0, 1]).
MicResult Summarize(const double* matrix, int dim) {
  MicResult result;
  for (int nx = 2; nx < dim; ++nx) {
    for (int ny = 2; ny < dim; ++ny) {
      const double value = matrix[static_cast<size_t>(nx) * dim + ny];
      if (value < 0.0) continue;
      if (value > result.mic) {
        result.mic = value;
        result.best_x = nx;
        result.best_y = ny;
      }
      if (nx == 2 || ny == 2) {
        result.mev = std::max(result.mev, value);
      }
    }
  }
  double min_cells = 0.0;
  bool found = false;
  for (int nx = 2; nx < dim; ++nx) {
    for (int ny = 2; ny < dim; ++ny) {
      const double value = matrix[static_cast<size_t>(nx) * dim + ny];
      if (value < 0.0) continue;
      if (value >= result.mic - 1e-9) {
        const double cells = std::log2(static_cast<double>(nx) * ny);
        if (!found || cells < min_cells) {
          min_cells = cells;
          found = true;
        }
      }
      // The transposed grid is one direct index away in the dense layout
      // (the reference kernel paid a std::map::find per entry here).
      const double mirror = matrix[static_cast<size_t>(ny) * dim + nx];
      if (mirror >= 0.0) {
        result.mas = std::max(result.mas, std::fabs(value - mirror));
      }
    }
  }
  result.mcn = found ? min_cells : 0.0;
  return result;
}

}  // namespace

Result<MicResult> Mic(const std::vector<double>& x,
                      const std::vector<double>& y, const MicOptions& options,
                      MicWorkspace* workspace) {
  INVARNETX_RETURN_IF_ERROR(ValidateInputs(x, y, options));
  const int grid_bound = GridBound(x.size(), options.alpha);
  // Both grid dimensions are >= 2, so neither exceeds grid_bound / 2.
  const int dim = grid_bound / 2 + 1;
  workspace->char_dim = dim;
  workspace->char_matrix.assign(static_cast<size_t>(dim) * dim, -1.0);
  // One stable sort per axis per call; both orientations and every grid row
  // count share the two orders.
  internal::StableOrder(x, &workspace->order_x);
  internal::StableOrder(y, &workspace->order_y);
  ScanOrientation(x, y, workspace->order_x, workspace->order_y, grid_bound,
                  options.clump_factor, /*swapped=*/false, workspace);
  ScanOrientation(y, x, workspace->order_y, workspace->order_x, grid_bound,
                  options.clump_factor, /*swapped=*/true, workspace);
  return Summarize(workspace->char_matrix.data(), dim);
}

Result<MicResult> Mic(const std::vector<double>& x,
                      const std::vector<double>& y,
                      const MicOptions& options) {
  MicWorkspace workspace;
  return Mic(x, y, options, &workspace);
}

Result<double> MicScore(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const MicOptions& options, MicWorkspace* workspace) {
  Result<MicResult> r = Mic(x, y, options, workspace);
  if (!r.ok()) return r.status();
  return r.value().mic;
}

Result<double> MicScore(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const MicOptions& options) {
  MicWorkspace workspace;
  return MicScore(x, y, options, &workspace);
}

// ----------------------------------------------- reference implementation --

namespace {

// Characteristic matrix of the reference kernel, keyed by (columns over the
// caller's x, rows over the caller's y). Each entry is the larger of the
// two one-sided ApproxMaxMI approximations, as in the reference MINE
// implementation.
using CharMap = std::map<std::pair<int, int>, double>;

// The seed kernel's DP verbatim: vector-of-vector cumulative table and a
// column score recomputed (with its ln calls) for every column budget l.
// The workspace kernel memoizes the (l-independent) column scores in a flat
// table instead; keeping the naive form here makes the reference a genuine
// pre-optimization oracle for both values and cost.
std::vector<double> ReferenceOptimizeXAxis(
    const std::vector<int>& boundaries, const std::vector<int>& row_in_x_order,
    int num_rows, int max_cols) {
  const int k = static_cast<int>(boundaries.size()) - 1;
  std::vector<double> best(static_cast<size_t>(std::max(max_cols, 1)), 0.0);
  if (k < 1 || max_cols < 1) return best;

  // cum[t][q] = points in the first t clumps that lie in row q.
  std::vector<std::vector<int>> cum(
      static_cast<size_t>(k) + 1,
      std::vector<int>(static_cast<size_t>(num_rows), 0));
  for (int t = 1; t <= k; ++t) {
    cum[static_cast<size_t>(t)] = cum[static_cast<size_t>(t - 1)];
    for (int p = boundaries[t - 1]; p < boundaries[t]; ++p) {
      ++cum[static_cast<size_t>(t)][static_cast<size_t>(row_in_x_order[p])];
    }
  }

  auto column_score = [&](int s, int t) {
    const int np = boundaries[t] - boundaries[s];
    if (np == 0) return 0.0;
    double acc = 0.0;
    for (int q = 0; q < num_rows; ++q) {
      const int npq = cum[static_cast<size_t>(t)][static_cast<size_t>(q)] -
                      cum[static_cast<size_t>(s)][static_cast<size_t>(q)];
      if (npq > 0) acc += npq * std::log(static_cast<double>(npq) / np);
    }
    return acc;
  };

  const int cols = std::min(max_cols, k);
  constexpr double kNegInf = -1e300;
  std::vector<double> dp(static_cast<size_t>(k) + 1, kNegInf);
  for (int t = 1; t <= k; ++t) dp[static_cast<size_t>(t)] = column_score(0, t);
  best[0] = dp[static_cast<size_t>(k)];
  std::vector<double> next(static_cast<size_t>(k) + 1, kNegInf);
  for (int l = 2; l <= cols; ++l) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (int t = l; t <= k; ++t) {
      double v = kNegInf;
      for (int s = l - 1; s < t; ++s) {
        const double cand = dp[static_cast<size_t>(s)] + column_score(s, t);
        if (cand > v) v = cand;
      }
      next[static_cast<size_t>(t)] = v;
    }
    dp.swap(next);
    best[static_cast<size_t>(l - 1)] = dp[static_cast<size_t>(k)];
  }
  for (int l = cols + 1; l <= max_cols; ++l) {
    best[static_cast<size_t>(l - 1)] = best[static_cast<size_t>(cols - 1)];
  }
  for (size_t l = 1; l < best.size(); ++l) {
    best[l] = std::max(best[l], best[l - 1]);
  }
  return best;
}

void ReferenceScanOrientation(const std::vector<double>& axis_x,
                              const std::vector<double>& axis_y,
                              int grid_bound, int clump_factor, bool swapped,
                              CharMap* matrix) {
  const double n = static_cast<double>(axis_x.size());
  for (int ny = 2; ny * 2 <= grid_bound; ++ny) {
    const int max_nx = grid_bound / ny;
    if (max_nx < 2) break;
    internal::YPartition q = internal::EquipartitionY(axis_y, ny);
    if (q.num_rows < 2) continue;
    const double h_q = internal::RowEntropy(q.row_of_point, q.num_rows);
    internal::ClumpPartition clumps =
        internal::BuildClumps(axis_x, q.row_of_point);
    const std::vector<int> super = internal::BuildSuperclumps(
        clumps.boundaries, clump_factor * max_nx);
    const std::vector<double> best = ReferenceOptimizeXAxis(
        super, clumps.row_in_x_order, q.num_rows, max_nx);
    for (int nx = 2; nx <= max_nx; ++nx) {
      const double mi = h_q + best[static_cast<size_t>(nx - 1)] / n;
      const double norm = std::log(static_cast<double>(std::min(nx, ny)));
      double entry = norm > 0.0 ? mi / norm : 0.0;
      entry = std::clamp(entry, 0.0, 1.0);
      const std::pair<int, int> key =
          swapped ? std::make_pair(ny, nx) : std::make_pair(nx, ny);
      auto [it, inserted] = matrix->emplace(key, entry);
      if (!inserted) it->second = std::max(it->second, entry);
    }
  }
}

MicResult ReferenceSummarize(const CharMap& matrix) {
  MicResult result;
  for (const auto& [key, value] : matrix) {
    if (value > result.mic) {
      result.mic = value;
      result.best_x = key.first;
      result.best_y = key.second;
    }
    if (key.first == 2 || key.second == 2) {
      result.mev = std::max(result.mev, value);
    }
  }
  double min_cells = 0.0;
  bool found = false;
  for (const auto& [key, value] : matrix) {
    if (value >= result.mic - 1e-9) {
      const double cells =
          std::log2(static_cast<double>(key.first) * key.second);
      if (!found || cells < min_cells) {
        min_cells = cells;
        found = true;
      }
    }
    auto mirror = matrix.find({key.second, key.first});
    if (mirror != matrix.end()) {
      result.mas = std::max(result.mas, std::fabs(value - mirror->second));
    }
  }
  result.mcn = found ? min_cells : 0.0;
  return result;
}

}  // namespace

Result<MicResult> MicReference(const std::vector<double>& x,
                               const std::vector<double>& y,
                               const MicOptions& options) {
  INVARNETX_RETURN_IF_ERROR(ValidateInputs(x, y, options));
  const int grid_bound = GridBound(x.size(), options.alpha);
  CharMap matrix;
  ReferenceScanOrientation(x, y, grid_bound, options.clump_factor,
                           /*swapped=*/false, &matrix);
  ReferenceScanOrientation(y, x, grid_bound, options.clump_factor,
                           /*swapped=*/true, &matrix);
  return ReferenceSummarize(matrix);
}

}  // namespace invarnetx::mic
