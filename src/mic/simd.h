#ifndef INVARNETX_MIC_SIMD_H_
#define INVARNETX_MIC_SIMD_H_

namespace invarnetx::mic {

// Vector instruction tier the MIC kernel's hot loops run at. Every tier
// produces bit-identical results: the only vectorized reduction is an
// add-then-max over doubles, which is order-independent because the kernel's
// candidate values are never NaN and never -0.0 (column scores are sums of
// npq*ln(npq/np) terms - each +0.0 or strictly negative - and IEEE addition
// of such values cannot produce a negative zero), so equal candidates have
// identical bit patterns and any max order picks the same bits. Loops whose
// result depends on evaluation order (the ln-bearing column-score build)
// stay scalar at every tier.
enum class SimdLevel {
  kScalar,  // portable fallback, also the NEON baseline layout
  kAvx2,    // 4-wide double lanes (x86-64 with AVX2)
};

const char* SimdLevelName(SimdLevel level);

// Best tier this CPU supports, intersected with the INVARNETX_SIMD
// environment variable ("scalar" forces the fallback, "avx2" requests AVX2
// but still falls back when the CPU lacks it). Computed once per process.
SimdLevel DetectSimdLevel();

// The tier the kernel currently dispatches to; initialized to
// DetectSimdLevel() on first use.
SimdLevel ActiveSimdLevel();

// Test hook: force a tier (clamped to what the CPU supports). Not
// thread-safe against concurrent Mic() calls - tests set it up front.
void SetSimdLevel(SimdLevel level);

// max over s in [s_begin, s_end) of dp[s] + col[s]; returns the kernel's
// -1e300 sentinel for an empty range. `col` is one t-major row of the
// memoized column-score table, so both operands stream contiguously - the
// layout vector lanes (AVX2 today, NEON tomorrow) need. Dispatches on
// ActiveSimdLevel(); every tier is bit-identical (see SimdLevel).
double DpRowMax(const double* dp, const double* col, int s_begin, int s_end);

}  // namespace invarnetx::mic

#endif  // INVARNETX_MIC_SIMD_H_
