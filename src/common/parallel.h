#ifndef INVARNETX_COMMON_PARALLEL_H_
#define INVARNETX_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace invarnetx {

// Resolves a worker-count request: a positive value is taken literally
// (capped at kMaxThreads); zero or negative means "one worker per hardware
// thread" (at least 1).
int EffectiveThreadCount(int requested);

// Upper bound on workers a single ParallelFor may use; a backstop against
// pathological configuration values, far above any real core count here.
inline constexpr int kMaxThreads = 256;

// A small reusable pool of worker threads fed from one FIFO task queue.
// Most callers never touch it directly and go through ParallelFor below;
// it is exposed for components that want a private pool (e.g. benchmarks
// comparing worker counts without interference).
//
// The pool grows on demand (EnsureSize) and never shrinks; idle workers
// block on a condition variable and cost nothing. Tasks must not block on
// other tasks' completion - ParallelFor's caller-participates design keeps
// that property for the fan-outs in this codebase.
//
// Self-observability (all in obs::MetricsRegistry::Shared(), shared-pool
// instances only so private bench pools do not pollute the process view):
//   counter   threadpool.tasks_executed    tasks run to completion
//   histogram threadpool.queue_wait        Submit -> dequeue latency (s)
//   histogram threadpool.task_seconds      task execution wall time (s)
//   gauge     threadpool.workers           current worker count
//   gauge     threadpool.busy_seconds.w<N> per-worker cumulative busy time
// The workers gauge is registered once per process even when several
// pipelines grow the shared pool concurrently (registration by name is
// idempotent), so exports never show duplicates.
class ThreadPool {
 public:
  // Starts `num_threads` workers (<= 0: one per hardware thread).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  // Enqueues one task for any idle worker.
  void Submit(std::function<void()> task);

  // Grows the worker set to at least `num_threads` (capped at kMaxThreads).
  void EnsureSize(int num_threads);

  // The process-wide pool shared by every ParallelFor call. Sized to the
  // hardware concurrency at first use; grows when a caller explicitly asks
  // for more workers. Intentionally leaked so worker threads never race
  // static destruction at exit.
  static ThreadPool& Shared();

 private:
  // Tag for the metrics-reporting shared instance.
  struct SharedTag {};
  ThreadPool(int num_threads, SharedTag);

  struct PendingTask {
    std::function<void()> fn;
    uint64_t enqueue_us = 0;
  };

  void WorkerLoop(int worker_index);
  void PublishSizeGauge(int size);

  const bool report_metrics_ = false;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingTask> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

// Runs fn(i) for every i in [0, n), fanned out over `num_threads` workers
// of the shared pool (<= 0: hardware concurrency; 1: a plain serial loop in
// the caller, never touching the pool).
//
// Guarantees:
//  - The caller participates in the work, so completion never depends on
//    pool availability: nested ParallelFor calls cannot deadlock, and the
//    loop finishes even if every pool worker is busy elsewhere.
//  - Every index is executed exactly once, regardless of failures (no
//    early abort - index sets are small and per-index work is bounded).
//  - Deterministic error propagation: the Status of the lowest failing
//    index is returned, independent of worker scheduling. This matches the
//    serial loop's first-error-wins behaviour.
//
// fn must be safe to call concurrently for distinct indices and must only
// write state owned by its index (e.g. one slot of a preallocated vector);
// that discipline is what makes parallel output bit-identical to serial.
Status ParallelFor(size_t n, int num_threads,
                   const std::function<Status(size_t)>& fn);

// Per-thread scratch-state plumbing for ParallelFor bodies.
//
// Returns a reference to a lazily default-constructed instance of T owned
// by the calling thread. Because pool workers are long-lived (the shared
// pool never shrinks; see ThreadPool), an instance obtained inside a
// ParallelFor body survives the loop and is handed back to the same worker
// on every later fan-out - which is what lets reusable workspaces (e.g.
// mic::MicWorkspace in the invariant-mining fan-out) reach allocation-free
// steady state across association matrices instead of re-growing per task.
//
// The caller participating in ParallelFor gets its own instance, distinct
// from every worker's. T must be default-constructible; instances are
// destroyed at thread exit.
template <typename T>
T& ThreadLocalInstance() {
  thread_local T instance;
  return instance;
}

}  // namespace invarnetx

#endif  // INVARNETX_COMMON_PARALLEL_H_
