#ifndef INVARNETX_COMMON_MATRIX_H_
#define INVARNETX_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace invarnetx {

// Dense row-major matrix of doubles. Small and dependency-free; sized for
// the regression problems in this library (tens of columns), not for BLAS
// workloads.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Matrix Transposed() const;

  // this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  // this * v for a column vector v of length cols().
  std::vector<double> MultiplyVec(const std::vector<double>& v) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Solves A x = b in-place via Gaussian elimination with partial pivoting.
// A must be square with A.rows() == b.size(). Fails with kNumericalError
// when A is (numerically) singular.
Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b);

// Ordinary least squares: finds beta minimizing ||X beta - y||^2 by solving
// the normal equations (X'X + ridge*I) beta = X'y. A tiny ridge term
// (default 1e-9 relative to the diagonal) keeps near-collinear designs
// solvable, which regression on simulated metrics routinely produces.
Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge = 1e-9);

}  // namespace invarnetx

#endif  // INVARNETX_COMMON_MATRIX_H_
