#ifndef INVARNETX_COMMON_TABLE_H_
#define INVARNETX_COMMON_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace invarnetx {

// Fixed-width text table for bench/report output, plus CSV export. Cells are
// strings; use Cell() helpers to format numbers consistently.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Renders an aligned, pipe-separated table with a header rule.
  std::string Render() const;

  // Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string RenderCsv() const;

  // Writes RenderCsv() to the given path.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals = 3);

// Formats a ratio in [0,1] as a percentage string like "91.2%".
std::string FormatPercent(double ratio, int decimals = 1);

}  // namespace invarnetx

#endif  // INVARNETX_COMMON_TABLE_H_
