#include "common/matrix.h"

#include <cmath>
#include <cstdlib>

namespace invarnetx {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  Matrix out(rows_, other.cols());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols(); ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVec(const std::vector<double>& v) const {
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: shape mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude entry in this column.
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::NumericalError("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = col; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("LeastSquares: X rows != y length");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument("LeastSquares: underdetermined system");
  }
  const Matrix xt = x.Transposed();
  Matrix xtx = xt.Multiply(x);
  // Scale the ridge by the mean diagonal so regularization strength is
  // invariant to the overall scale of the regressors.
  double diag_mean = 0.0;
  for (size_t i = 0; i < xtx.rows(); ++i) diag_mean += xtx(i, i);
  diag_mean = xtx.rows() > 0 ? diag_mean / static_cast<double>(xtx.rows()) : 0;
  const double lambda = ridge * (diag_mean > 0 ? diag_mean : 1.0);
  for (size_t i = 0; i < xtx.rows(); ++i) xtx(i, i) += lambda;
  return SolveLinearSystem(std::move(xtx), xt.MultiplyVec(y));
}

}  // namespace invarnetx
