#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"

namespace invarnetx {
namespace {

// Stable handles into the shared registry; bound once so the per-task cost
// is a couple of relaxed atomic updates, not a map lookup.
struct PoolMetrics {
  obs::Counter& tasks_executed;
  obs::Histogram& queue_wait;
  obs::Histogram& task_seconds;

  static PoolMetrics& Get() {
    static PoolMetrics* metrics = new PoolMetrics{
        obs::MetricsRegistry::Shared().GetCounter("threadpool.tasks_executed"),
        obs::MetricsRegistry::Shared().GetHistogram("threadpool.queue_wait"),
        obs::MetricsRegistry::Shared().GetHistogram("threadpool.task_seconds"),
    };
    return *metrics;
  }
};

// Shared state of one ParallelFor invocation. Workers pull indices from the
// atomic counter; the caller blocks until every pulled index has finished.
// Held by shared_ptr so runner tasks that drain after the caller returned
// (they find the counter exhausted and exit immediately) touch live memory.
struct ForJob {
  size_t n = 0;
  const std::function<Status(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;            // guarded by mu
  size_t error_index = SIZE_MAX;   // guarded by mu; lowest failing index
  Status error;                    // guarded by mu
};

// Drains the job's index counter from the calling thread. Runs in the
// caller and in every pool worker that picks up a runner task; whichever
// thread grabs an index executes it, so the split adapts to load.
void DrainJob(const std::shared_ptr<ForJob>& job) {
  for (;;) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    Status status = (*job->fn)(i);
    std::lock_guard<std::mutex> lock(job->mu);
    if (!status.ok() && i < job->error_index) {
      job->error_index = i;
      job->error = std::move(status);
    }
    if (++job->completed == job->n) job->done_cv.notify_all();
  }
}

}  // namespace

int EffectiveThreadCount(int requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, kMaxThreads));
}

ThreadPool::ThreadPool(int num_threads) {
  EnsureSize(EffectiveThreadCount(num_threads));
}

ThreadPool::ThreadPool(int num_threads, SharedTag) : report_metrics_(true) {
  EnsureSize(EffectiveThreadCount(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(PendingTask{std::move(task), obs::UptimeMicros()});
  }
  cv_.notify_one();
}

void ThreadPool::PublishSizeGauge(int size) {
  // GetGauge is idempotent by name: pipelines racing to grow the shared
  // pool all update the one `threadpool.workers` gauge instead of
  // registering duplicates.
  obs::MetricsRegistry::Shared()
      .GetGauge("threadpool.workers")
      .Set(static_cast<double>(size));
}

void ThreadPool::EnsureSize(int num_threads) {
  const int target = std::min(num_threads, kMaxThreads);
  int new_size = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { WorkerLoop(index); });
    }
    new_size = static_cast<int>(workers_.size());
  }
  if (report_metrics_) PublishSizeGauge(new_size);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(0, SharedTag{});
  return *pool;
}

void ThreadPool::WorkerLoop(int worker_index) {
  obs::Gauge* busy = nullptr;
  if (report_metrics_) {
    busy = &obs::MetricsRegistry::Shared().GetGauge(
        "threadpool.busy_seconds.w" + std::to_string(worker_index));
  }
  for (;;) {
    PendingTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    if (report_metrics_) {
      PoolMetrics& metrics = PoolMetrics::Get();
      const uint64_t start_us = obs::UptimeMicros();
      metrics.queue_wait.Record(
          static_cast<double>(start_us - task.enqueue_us) / 1e6);
      task.fn();
      const double seconds =
          static_cast<double>(obs::UptimeMicros() - start_us) / 1e6;
      metrics.task_seconds.Record(seconds);
      metrics.tasks_executed.Increment();
      busy->Add(seconds);
    } else {
      task.fn();
    }
  }
}

Status ParallelFor(size_t n, int num_threads,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::Ok();
  const int workers = EffectiveThreadCount(num_threads);
  if (workers == 1 || n == 1) {
    // Serial reference path: identical visitation order and error policy.
    Status first_error = Status::Ok();
    for (size_t i = 0; i < n; ++i) {
      Status status = fn(i);
      if (!status.ok() && first_error.ok()) first_error = std::move(status);
    }
    return first_error;
  }

  auto job = std::make_shared<ForJob>();
  job->n = n;
  job->fn = &fn;

  // One runner per extra worker; the caller is the final worker. A runner
  // that fires after the job drained simply sees an exhausted counter.
  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureSize(workers - 1);
  const size_t extra = std::min<size_t>(static_cast<size_t>(workers) - 1, n);
  for (size_t t = 0; t < extra; ++t) {
    pool.Submit([job] { DrainJob(job); });
  }
  DrainJob(job);

  std::unique_lock<std::mutex> lock(job->mu);
  job->done_cv.wait(lock, [&job] { return job->completed == job->n; });
  if (job->error_index != SIZE_MAX) return job->error;
  return Status::Ok();
}

}  // namespace invarnetx
