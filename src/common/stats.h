#ifndef INVARNETX_COMMON_STATS_H_
#define INVARNETX_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace invarnetx {

// Descriptive statistics over std::vector<double> series. All functions are
// pure; functions that require non-empty (or same-length) inputs return a
// Result when the requirement could plausibly fail at runtime.

double Mean(const std::vector<double>& v);

// Population variance (divide by n). Returns 0 for series shorter than 2.
double Variance(const std::vector<double>& v);

// Sample standard deviation (divide by n-1). Returns 0 for n < 2.
double SampleStdDev(const std::vector<double>& v);

double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

// Linear-interpolated percentile, p in [0, 100]. Copies & sorts internally.
Result<double> Percentile(const std::vector<double>& v, double p);

// Pearson linear correlation coefficient. Returns 0 when either series has
// zero variance (the association is undefined; 0 is the conservative value
// for an invariant-mining context).
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

// Spearman rank correlation (Pearson over average ranks, tie-aware).
Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y);

// Least-squares polynomial fit of the given degree; returns coefficients
// lowest-order first: y ~ c[0] + c[1] x + ... + c[degree] x^degree.
Result<std::vector<double>> PolyFit(const std::vector<double>& x,
                                    const std::vector<double>& y, int degree);

// Evaluates a PolyFit coefficient vector at x.
double PolyEval(const std::vector<double>& coeffs, double x);

// Divides every element by the minimum of the series (the normalization the
// paper applies in Fig. 4). Requires min > 0.
Result<std::vector<double>> NormalizeToMin(const std::vector<double>& v);

// Min-max scales into [0, 1]; constant series map to all-zeros.
std::vector<double> MinMaxScale(const std::vector<double>& v);

// Average ranks (1-based) with ties sharing the mean rank.
std::vector<double> AverageRanks(const std::vector<double>& v);

// Wilson score interval for a binomial proportion (successes of trials) at
// ~95% confidence (z = 1.96). Returns {lo, hi}; trials must be > 0.
struct ProportionInterval {
  double lo = 0.0;
  double hi = 1.0;
};
Result<ProportionInterval> WilsonInterval(int successes, int trials,
                                          double z = 1.96);

}  // namespace invarnetx

#endif  // INVARNETX_COMMON_STATS_H_
