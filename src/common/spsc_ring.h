#ifndef INVARNETX_COMMON_SPSC_RING_H_
#define INVARNETX_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace invarnetx {

// Bounded wait-free single-producer/single-consumer ring.
//
// The serving layer's per-shard ingest queue: the ingestion thread pushes,
// one shard-affine worker pops, and neither ever blocks. A full ring makes
// TryPush return false (and bumps the producer-side reject tally) instead
// of waiting - backpressure is the caller's policy decision, not a stall
// inside the queue.
//
// Memory model: the producer publishes a slot with a release store of
// head_; the consumer acquires it before reading, and releases tail_ after
// the copy so the producer may overwrite the slot. head_/tail_ are
// monotonic uint64 positions (they never wrap in practice) masked into a
// power-of-two slot array; each side keeps a cached copy of the other
// side's index so the steady-state fast path touches only its own cache
// line.
//
// Thread contract: exactly one producer thread may call TryPush/rejects,
// and exactly one consumer thread may call TryPop, at a time. Reset and
// the constructor require both sides quiescent. SizeApprox/Empty are safe
// anywhere but only approximate while the queue is in motion.
template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing entries are published across threads by memcpy "
                "semantics; non-trivial types need their own synchronization");

 public:
  // `capacity` is the number of entries TryPush may hold un-popped; it is
  // the backpressure limit, not the allocation size (slots round up to a
  // power of two). capacity >= 1.
  explicit SpscRing(size_t capacity) { Reset(capacity); }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Reallocates for a new capacity and drops any retained entries. Only
  // valid while no concurrent TryPush/TryPop runs (the serve layer calls
  // it between ticks, when every ring is drained).
  void Reset(size_t capacity) {
    capacity_ = capacity < 1 ? 1 : capacity;
    size_t slots = 1;
    while (slots < capacity_) slots <<= 1;
    mask_ = slots - 1;
    slots_.assign(slots, T{});
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    cached_head_ = 0;
    cached_tail_ = 0;
    rejects_ = 0;
  }

  // Producer side. False (and a reject tally bump) when the ring holds
  // capacity() un-popped entries.
  bool TryPush(const T& value) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= capacity_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= capacity_) {
        ++rejects_;
        return false;
      }
    }
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) return false;
    }
    *out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return capacity_; }

  // Entries currently retained; exact only while both sides are quiescent.
  size_t SizeApprox() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(head - tail);
  }
  bool Empty() const { return SizeApprox() == 0; }

  // Failed TryPush calls since construction/Reset. Producer-side state:
  // read it from the producer thread (or quiescent), like TryPush itself.
  uint64_t rejects() const { return rejects_; }

 private:
  // Producer-owned line: write cursor plus the consumer index cache.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  uint64_t rejects_ = 0;
  // Consumer-owned line.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;

  alignas(64) size_t capacity_ = 1;
  size_t mask_ = 0;
  std::vector<T> slots_;
};

}  // namespace invarnetx

#endif  // INVARNETX_COMMON_SPSC_RING_H_
