#ifndef INVARNETX_COMMON_RANDOM_H_
#define INVARNETX_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace invarnetx {

// Deterministic pseudo-random generator (xoshiro256** seeded via splitmix64).
// Every stochastic component in the library takes an explicit Rng (or seed)
// so simulations and benches are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  // Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  // Standard normal via Box-Muller (cached pair).
  double Gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u1 = 0.0;
    do {
      u1 = Uniform();
    } while (u1 <= 1e-300);
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  // Derives an independent child generator; used to give each node /
  // fault / run its own stream without cross-coupling.
  Rng Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {0, 0, 0, 0};
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace invarnetx

#endif  // INVARNETX_COMMON_RANDOM_H_
