#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/matrix.h"

namespace invarnetx {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double SampleStdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double Min(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

Result<double> Percentile(const std::vector<double>& v, double p) {
  if (v.empty()) return Status::InvalidArgument("Percentile: empty series");
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("Percentile: p outside [0,100]");
  }
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("PearsonCorrelation: length mismatch");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("PearsonCorrelation: need >= 2 points");
  }
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&v](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("SpearmanCorrelation: length mismatch");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("SpearmanCorrelation: need >= 2 points");
  }
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

Result<std::vector<double>> PolyFit(const std::vector<double>& x,
                                    const std::vector<double>& y, int degree) {
  if (degree < 0) return Status::InvalidArgument("PolyFit: negative degree");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("PolyFit: length mismatch");
  }
  const size_t terms = static_cast<size_t>(degree) + 1;
  if (x.size() < terms) {
    return Status::InvalidArgument("PolyFit: not enough points for degree");
  }
  Matrix design(x.size(), terms);
  for (size_t r = 0; r < x.size(); ++r) {
    double pow_x = 1.0;
    for (size_t c = 0; c < terms; ++c) {
      design(r, c) = pow_x;
      pow_x *= x[r];
    }
  }
  return LeastSquares(design, y);
}

double PolyEval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

Result<std::vector<double>> NormalizeToMin(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("NormalizeToMin: empty");
  const double lo = Min(v);
  if (lo <= 0.0) {
    return Status::InvalidArgument("NormalizeToMin: min must be positive");
  }
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] / lo;
  return out;
}

Result<ProportionInterval> WilsonInterval(int successes, int trials,
                                          double z) {
  if (trials <= 0) return Status::InvalidArgument("WilsonInterval: trials<=0");
  if (successes < 0 || successes > trials) {
    return Status::InvalidArgument("WilsonInterval: successes out of range");
  }
  const double n = trials;
  const double p = successes / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ProportionInterval out;
  out.lo = std::max(0.0, center - margin);
  out.hi = std::min(1.0, center + margin);
  return out;
}

std::vector<double> MinMaxScale(const std::vector<double>& v) {
  if (v.empty()) return {};
  const double lo = Min(v);
  const double hi = Max(v);
  std::vector<double> out(v.size(), 0.0);
  if (hi - lo <= 0.0) return out;
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - lo) / (hi - lo);
  return out;
}

}  // namespace invarnetx
