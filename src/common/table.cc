#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace invarnetx {
namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::RenderCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  file << RenderCsv();
  if (!file.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatPercent(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace invarnetx
