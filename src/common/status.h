#ifndef INVARNETX_COMMON_STATUS_H_
#define INVARNETX_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace invarnetx {

// Status codes for operations that can fail. Follows the RocksDB-style
// "no exceptions across API boundaries" idiom: fallible operations return
// Status (or Result<T> below) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kCorruption,
  kNumericalError,
  kUnimplemented,
};

// Lightweight status object: a code plus a human-readable message.
// The default-constructed Status is OK and carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status, like absl::StatusOr.
// Check ok() before calling value().
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // at function boundaries, matching the absl::StatusOr ergonomics.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const T& value() const& { return std::get<T>(storage_); }
  T& value() & { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the error status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }

 private:
  std::variant<Status, T> storage_;
};

// Propagates a non-OK status out of the current function.
#define INVARNETX_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::invarnetx::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace invarnetx

#endif  // INVARNETX_COMMON_STATUS_H_
