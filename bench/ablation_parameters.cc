// Ablation of the design parameters DESIGN.md calls out (not a paper
// figure): the invariant stability threshold tau, the violation threshold
// epsilon, the anomaly-debounce length, and the similarity metric. Each is
// swept around the paper's default (tau = eps = 0.2, 3-consecutive,
// Jaccard) on a reduced WordCount campaign, everything else held fixed.
//
// INVARNETX_REPS (default 8) and INVARNETX_SEED override the campaign size.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace {

using invarnetx::core::EvalConfig;
using invarnetx::core::EvalResult;
using invarnetx::core::RunEvaluation;

EvalConfig BaseConfig() {
  EvalConfig config;
  config.workload = invarnetx::workload::WorkloadType::kWordCount;
  config.seed = static_cast<uint64_t>(
      invarnetx::bench::EnvInt("INVARNETX_SEED", 42));
  config.test_runs_per_fault = invarnetx::bench::EnvInt("INVARNETX_REPS", 8);
  return config;
}

void Row(invarnetx::TextTable* table, const std::string& knob,
         const std::string& value, const EvalConfig& config) {
  const EvalResult result =
      invarnetx::bench::ValueOrDie(RunEvaluation(config), knob.c_str());
  table->AddRow({knob, value, invarnetx::FormatPercent(result.avg_precision),
                 invarnetx::FormatPercent(result.avg_recall)});
  std::printf("  %-12s %-12s precision %s recall %s\n", knob.c_str(),
              value.c_str(),
              invarnetx::FormatPercent(result.avg_precision).c_str(),
              invarnetx::FormatPercent(result.avg_recall).c_str());
}

}  // namespace

int main() {
  namespace core = invarnetx::core;
  const EvalConfig base = BaseConfig();
  std::printf("== Ablation: pipeline parameters (WordCount, %d runs/fault, "
              "seed=%llu) ==\n\n",
              base.test_runs_per_fault,
              static_cast<unsigned long long>(base.seed));
  invarnetx::TextTable table({"knob", "value", "precision", "recall"});

  Row(&table, "default", "paper", base);

  for (double tau : {0.1, 0.3}) {
    EvalConfig config = base;
    config.pipeline.tau = tau;
    Row(&table, "tau", invarnetx::FormatDouble(tau, 1), config);
  }
  for (double eps : {0.1, 0.3}) {
    EvalConfig config = base;
    config.pipeline.epsilon = eps;
    Row(&table, "epsilon", invarnetx::FormatDouble(eps, 1), config);
  }
  for (int consecutive : {1, 5}) {
    EvalConfig config = base;
    config.pipeline.consecutive_required = consecutive;
    Row(&table, "debounce", std::to_string(consecutive), config);
  }
  const core::SimilarityMetric metrics[] = {
      core::SimilarityMetric::kCosine, core::SimilarityMetric::kDice,
      core::SimilarityMetric::kHamming, core::SimilarityMetric::kIdfJaccard};
  for (core::SimilarityMetric metric : metrics) {
    EvalConfig config = base;
    config.pipeline.similarity = metric;
    Row(&table, "similarity", core::SimilarityMetricName(metric), config);
  }
  for (double beta : {1.0, 1.5}) {
    EvalConfig config = base;
    config.pipeline.beta = beta;
    Row(&table, "beta", invarnetx::FormatDouble(beta, 1), config);
  }
  {
    EvalConfig config = base;
    config.pipeline.engine = core::AssociationEngineType::kEnsemble;
    Row(&table, "engine", "ensemble", config);
  }
  // Protocol sensitivity: how much do the paper's training-set sizes
  // (10 normal runs, 2 signature runs per fault) matter?
  for (int normal : {5, 20}) {
    EvalConfig config = base;
    config.normal_runs = normal;
    Row(&table, "normal_runs", std::to_string(normal), config);
  }
  for (int sig : {1, 4}) {
    EvalConfig config = base;
    config.signature_train_runs = sig;
    Row(&table, "sig_runs", std::to_string(sig), config);
  }

  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "reading: epsilon is the sharpest knob (0.3 starves the tuples);\n"
      "debounce=5 misses short bursts; the similarity metrics rank nearly\n"
      "identically. tau=0.3 and extra signature runs both *improve*\n"
      "accuracy here (looser stability admits more invariants; more\n"
      "signatures cover the faults' run-to-run variation), and MORE normal\n"
      "runs can hurt - each added run tightens Algorithm 1's max-min filter\n"
      "and prunes invariants. The ensemble engine (the authors' ref [11]\n"
      "lineage) is the single biggest win. Paper defaults are kept\n"
      "throughout the headline benches.\n");
  invarnetx::bench::CheckOk(table.WriteCsv("ablation_parameters.csv"),
                            "WriteCsv(ablation)");
  std::printf("wrote ablation_parameters.csv\n");
  return 0;
}
