// Observability overhead gate: MonitorFleet ingestion throughput with a
// live Prometheus-style scraper hitting the embedded HTTP endpoint versus a
// quiet run with the endpoint idle. The scrape path is short-lock by design
// (the registry copies its index under the mutex and formats after), so the
// ingest hot path should not notice the scraper; this bench measures that
// claim and fails (exit 1) when the overhead exceeds the budget, keeping the
// "cheap enough to leave on" story honest in CI.
//
// Overrides: INVARNETX_MONITORS (default 64), INVARNETX_TICKS (default 600),
// INVARNETX_REPS (best-of repetitions, default 3), INVARNETX_SCRAPE_MS
// (scrape period, default 250), INVARNETX_MAX_OVERHEAD_PCT (gate, default
// 3), INVARNETX_BENCH_JSON (output path, default ./BENCH_obs.json).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "obs/http.h"
#include "serve/fleet.h"
#include "serve/statusz.h"

namespace invarnetx::bench {
namespace {

using workload::WorkloadType;

core::OperationContext MonitorContext(int i) {
  return core::OperationContext{WorkloadType::kWordCount,
                                "10.1." + std::to_string(i / 250) + "." +
                                    std::to_string(i % 250 + 1)};
}

// One GET over a fresh loopback connection, response drained and discarded.
bool Scrape(uint16_t port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = std::string("GET ") + path +
                              " HTTP/1.1\r\nHost: x\r\n"
                              "Connection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  char buffer[8192];
  while (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
  }
  ::close(fd);
  return true;
}

// Streams `ticks` cluster ticks into a fresh fleet and returns the total
// ingest wall time in seconds.
double StreamFleet(const core::InvarNetX& pipeline, int monitors, int ticks,
                   const telemetry::NodeTrace& source) {
  serve::MonitorFleet fleet(&pipeline);
  for (int i = 0; i < monitors; ++i) {
    CheckOk(fleet.StartJob(MonitorContext(i)).status(), "StartJob");
  }
  const int source_ticks = static_cast<int>(source.cpi.size());
  std::vector<serve::TickSample> batch(static_cast<size_t>(monitors));
  for (int i = 0; i < monitors; ++i) {
    batch[static_cast<size_t>(i)].context = MonitorContext(i);
  }
  double total = 0.0;
  for (int t = 0; t < ticks; ++t) {
    const int src = t % source_ticks;
    for (int i = 0; i < monitors; ++i) {
      serve::TickSample& sample = batch[static_cast<size_t>(i)];
      sample.cpi = source.cpi[static_cast<size_t>(src)];
      for (int m = 0; m < telemetry::kNumMetrics; ++m) {
        sample.metrics[static_cast<size_t>(m)] =
            source.metrics[static_cast<size_t>(m)][static_cast<size_t>(src)];
      }
    }
    const auto start = std::chrono::steady_clock::now();
    Result<serve::TickSummary> summary = fleet.IngestTick(batch);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    CheckOk(summary.status(), "IngestTick");
    total += elapsed.count();
  }
  fleet.WaitForDiagnoses();
  return total;
}

int Main() {
  const int monitors = EnvInt("INVARNETX_MONITORS", 64);
  const int ticks = EnvInt("INVARNETX_TICKS", 600);
  const int reps = EnvInt("INVARNETX_REPS", 3);
  const int scrape_ms = EnvInt("INVARNETX_SCRAPE_MS", 250);
  const int max_overhead_pct = EnvInt("INVARNETX_MAX_OVERHEAD_PCT", 3);

  core::InvarNetXConfig config;
  config.use_operation_context = false;
  config.num_threads = 0;
  core::InvarNetX pipeline(config);
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 4, 42);
  CheckOk(normal.status(), "SimulateNormalRuns");
  CheckOk(pipeline.TrainContext(MonitorContext(0), normal.value(), 1),
          "TrainContext");
  const telemetry::NodeTrace& source = normal.value()[0].nodes[1];

  // The endpoint is up for both phases; only the scraper thread differs, so
  // the comparison isolates scrape traffic, not server setup.
  obs::HttpServer server;
  serve::InstallObsEndpoints(&server);
  CheckOk(server.Start(), "HttpServer::Start");

  // Best-of-N total ingest time per phase: the minimum is the least
  // noise-contaminated estimate of the true cost on a shared CI box.
  double quiet_best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double total = StreamFleet(pipeline, monitors, ticks, source);
    if (r == 0 || total < quiet_best) quiet_best = total;
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load()) {
      if (Scrape(server.port(), "/metrics")) scrapes.fetch_add(1);
      if (Scrape(server.port(), "/statusz")) scrapes.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(scrape_ms));
    }
  });
  double scraped_best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double total = StreamFleet(pipeline, monitors, ticks, source);
    if (r == 0 || total < scraped_best) scraped_best = total;
  }
  done.store(true);
  scraper.join();
  server.Stop();

  const double quiet_tps = static_cast<double>(ticks) / quiet_best;
  const double scraped_tps = static_cast<double>(ticks) / scraped_best;
  const double overhead_pct =
      (scraped_best / quiet_best - 1.0) * 100.0;

  TextTable table({"phase", "ticks/s", "total ingest"});
  table.AddRow({"quiet", FormatDouble(quiet_tps, 1),
                FormatDouble(quiet_best * 1e3, 1) + " ms"});
  table.AddRow({"scraped", FormatDouble(scraped_tps, 1),
                FormatDouble(scraped_best * 1e3, 1) + " ms"});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "%d monitors, %d ticks, best of %d, scrape every %d ms "
      "(%llu scrapes), overhead %.2f%% (budget %d%%)\n",
      monitors, ticks, reps, scrape_ms,
      static_cast<unsigned long long>(scrapes.load()), overhead_pct,
      max_overhead_pct);

  const char* json_path = std::getenv("INVARNETX_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    json_path = "BENCH_obs.json";
  }
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"obs_scrape\",\n"
                 "  \"monitors\": %d,\n"
                 "  \"ticks\": %d,\n"
                 "  \"scrape_period_ms\": %d,\n"
                 "  \"scrapes\": %llu,\n"
                 "  \"quiet_ticks_per_sec\": %.3f,\n"
                 "  \"scraped_ticks_per_sec\": %.3f,\n"
                 "  \"overhead_pct\": %.3f,\n"
                 "  \"max_overhead_pct\": %d\n"
                 "}\n",
                 monitors, ticks, scrape_ms,
                 static_cast<unsigned long long>(scrapes.load()), quiet_tps,
                 scraped_tps, overhead_pct, max_overhead_pct);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", json_path);
  }

  if (overhead_pct > static_cast<double>(max_overhead_pct)) {
    std::fprintf(stderr,
                 "FAIL: ingest-under-scrape overhead %.2f%% exceeds the "
                 "%d%% budget\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace invarnetx::bench

int main() { return invarnetx::bench::Main(); }
