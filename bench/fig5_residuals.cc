// Reproduces Fig. 5: the ARIMA one-step CPI prediction residuals before and
// after a CPU-hog injection, for (a) WordCount and (b) TPC-DS. The trained
// model fits normal CPI tightly, so residuals stay near zero until the hog
// starts and remain elevated while it lasts.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/anomaly.h"
#include "core/evaluate.h"

namespace {

void RunCase(invarnetx::workload::WorkloadType type, uint64_t seed,
             invarnetx::TextTable* out) {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;

  core::EvalConfig config;
  config.workload = type;
  config.seed = seed;
  const auto normal = bench::ValueOrDie(
      core::SimulateNormalRuns(type, config.normal_runs, seed,
                               config.interactive_train_ticks),
      "SimulateNormalRuns");
  std::vector<std::vector<double>> cpi_traces;
  for (const auto& run : normal) cpi_traces.push_back(run.nodes[1].cpi);
  const core::PerformanceModel model = bench::ValueOrDie(
      core::PerformanceModel::Train(cpi_traces), "PerformanceModel::Train");

  const auto faulty = bench::ValueOrDie(
      core::SimulateFaultRun(type, invarnetx::faults::FaultType::kCpuHog,
                             seed + 500),
      "SimulateFaultRun(cpu-hog)");
  const auto window =
      invarnetx::telemetry::DefaultFaultWindow(
          invarnetx::faults::FaultType::kCpuHog);

  core::AnomalyDetector detector(model, core::ThresholdRule::kBetaMax);
  const core::AnomalyScan scan = detector.Scan(faulty.nodes[1].cpi);

  const std::string name = invarnetx::workload::WorkloadName(type);
  std::printf("workload %s: ARIMA %s, beta-max threshold %.4f\n",
              name.c_str(), model.arima().order().ToString().c_str(),
              model.Threshold(core::ThresholdRule::kBetaMax));
  double before = 0.0, during = 0.0;
  int n_before = 0, n_during = 0;
  for (size_t t = 0; t < scan.residuals.size(); ++t) {
    const bool active = window.Active(static_cast<int>(t));
    if (active) {
      during += scan.residuals[t];
      ++n_during;
    } else if (static_cast<int>(t) < window.start_tick) {
      before += scan.residuals[t];
      ++n_before;
    }
    out->AddRow({name, std::to_string(t),
                 invarnetx::FormatDouble(faulty.nodes[1].cpi[t], 4),
                 invarnetx::FormatDouble(scan.residuals[t], 4),
                 active ? "1" : "0"});
  }
  std::printf("  mean residual before hog: %.4f; during hog: %.4f "
              "(%.1fx)\n\n",
              before / n_before, during / n_during,
              (during / n_during) / (before / n_before));
}

}  // namespace

int main() {
  const uint64_t seed = static_cast<uint64_t>(
      invarnetx::bench::EnvInt("INVARNETX_SEED", 42));
  std::printf("== Fig. 5: CPI prediction residuals before/after CPU-hog "
              "(seed=%llu) ==\n\n",
              static_cast<unsigned long long>(seed));
  invarnetx::TextTable table(
      {"workload", "tick", "cpi", "abs_residual", "hog_active"});
  RunCase(invarnetx::workload::WorkloadType::kWordCount, seed, &table);
  RunCase(invarnetx::workload::WorkloadType::kTpcDs, seed, &table);
  invarnetx::bench::CheckOk(table.WriteCsv("fig5_residuals.csv"),
                            "WriteCsv(fig5)");
  std::printf("wrote fig5_residuals.csv (%zu rows)\n", table.num_rows());
  return 0;
}
