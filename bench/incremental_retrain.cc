// Incremental retrain performance: cold TrainContextFromExamples vs an
// incremental retrain whose slices carry the previous epoch's mining
// records (the dirty-pair path), for both the unchanged case (every pair
// reused) and a one-metric perturbation (exactly 25 of 325 pairs per
// affected slice rescored). Byte-identity of the incremental matrix to a
// cold recompute is asserted at the core API level before any number is
// reported, and the whole pipeline retrain additionally runs once under
// the verify_incremental oracle. Emits BENCH_incremental.json so CI can
// gate the reuse counts and the retrain latency ratio.
//
// Overrides: INVARNETX_TICKS (series length, default 256), INVARNETX_RUNS
// (training examples, default 4), INVARNETX_THREADS, and
// INVARNETX_BENCH_JSON (output path, default ./BENCH_incremental.json).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/association.h"
#include "core/pipeline.h"
#include "mic/simd.h"
#include "obs/metrics.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::bench {
namespace {

// One single-node training run with coupled metrics and a stationary CPI
// (the perf model needs >= 2 such runs; the miner sees genuine structure).
telemetry::RunTrace SyntheticRun(int ticks, uint64_t seed) {
  Rng rng(seed);
  telemetry::RunTrace run;
  run.ticks = ticks;
  telemetry::NodeTrace node;
  node.ip = "10.0.0.1";
  const double phase = rng.Uniform(0.0, 6.28318);
  for (int t = 0; t < ticks; ++t) {
    node.cpi.push_back(1.0 + 0.05 * rng.Gaussian());
  }
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    std::vector<double>& series = node.metrics[static_cast<size_t>(m)];
    series.reserve(static_cast<size_t>(ticks));
    const double coupling = rng.Uniform(0.2, 1.0);
    double level = rng.Uniform(10.0, 100.0);
    for (int t = 0; t < ticks; ++t) {
      const double shared = std::sin(0.05 * t + phase);
      level += 0.1 * rng.Gaussian();
      series.push_back(level + 5.0 * coupling * shared + 0.5 * rng.Gaussian());
    }
  }
  run.nodes.push_back(std::move(node));
  return run;
}

std::vector<core::InvarNetX::TrainExample> Examples(
    const std::vector<telemetry::RunTrace>& runs) {
  std::vector<core::InvarNetX::TrainExample> examples;
  for (const telemetry::RunTrace& run : runs) {
    examples.push_back(core::InvarNetX::TrainExample{&run, 0});
  }
  return examples;
}

double Seconds(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

int Main() {
  const int ticks = EnvInt("INVARNETX_TICKS", 256);
  const int num_runs = EnvInt("INVARNETX_RUNS", 4);
  const int threads = EnvInt("INVARNETX_THREADS", 0);
  if (num_runs < 2) {
    std::fprintf(stderr, "FATAL: INVARNETX_RUNS must be >= 2\n");
    return 1;
  }

  std::vector<telemetry::RunTrace> runs;
  for (int i = 0; i < num_runs; ++i) {
    runs.push_back(
        SyntheticRun(ticks, 0x16CE0000ULL + static_cast<uint64_t>(i)));
  }

  // Core-level byte-identity check before any timing: a one-metric
  // perturbation against a prior record must rescore exactly the 25 pairs
  // involving that metric and reproduce the cold matrix byte for byte.
  const std::unique_ptr<core::AssociationEngine> engine =
      core::AssociationEngine::Make(core::AssociationEngineType::kMic);
  core::AssociationOptions assoc;
  assoc.num_threads = threads;
  assoc.use_cache = false;
  telemetry::NodeTrace probe = runs[0].nodes[0];
  core::MatrixMiningRecord record;
  CheckOk(core::ComputeAssociationMatrix(probe, *engine, assoc, nullptr,
                                         &record, nullptr)
              .status(),
          "probe matrix");
  for (double& v : probe.metrics[3]) v += 1.0;
  core::IncrementalMatrixStats stats;
  Result<core::AssociationMatrix> incremental = core::ComputeAssociationMatrix(
      probe, *engine, assoc, &record, nullptr, &stats);
  CheckOk(incremental.status(), "incremental matrix");
  Result<core::AssociationMatrix> cold_probe =
      core::ComputeAssociationMatrix(probe, *engine, assoc);
  CheckOk(cold_probe.status(), "cold probe matrix");
  const bool byte_identical =
      std::memcmp(incremental.value().data(), cold_probe.value().data(),
                  incremental.value().size() * sizeof(double)) == 0;
  if (!byte_identical || stats.rescored != telemetry::kNumMetrics - 1) {
    std::fprintf(stderr,
                 "FATAL: incremental matrix %s cold recompute "
                 "(rescored %d, want %d)\n",
                 byte_identical ? "matches" : "DIFFERS FROM", stats.rescored,
                 telemetry::kNumMetrics - 1);
    return 1;
  }
  std::printf(
      "bit-identity: one-metric perturbation rescored %d/%d pairs, "
      "matrix == cold recompute\n\n",
      stats.rescored, telemetry::kNumMetricPairs);

  core::InvarNetXConfig config;
  config.num_threads = threads;
  config.use_association_cache = false;  // isolate the dirty-pair path
  core::InvarNetX pipeline(config);
  const core::OperationContext context{workload::WorkloadType::kWordCount,
                                       "10.0.0.1"};
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  obs::Counter& rescored_counter =
      registry.GetCounter("pipeline.pairs_rescored");
  obs::Counter& reused_counter = registry.GetCounter("pipeline.pairs_reused");

  // Cold training: no prior exists yet.
  auto start = std::chrono::steady_clock::now();
  CheckOk(pipeline.TrainContextFromExamples(context, Examples(runs)),
          "cold train");
  const double cold_seconds = Seconds(start);

  // Incremental retrain on unchanged data: every slice digest matches, so
  // no pair goes through an engine.
  uint64_t rescored_before = rescored_counter.value();
  uint64_t reused_before = reused_counter.value();
  start = std::chrono::steady_clock::now();
  CheckOk(pipeline.TrainContextFromExamples(context, Examples(runs)),
          "incremental retrain (unchanged)");
  const double incremental_seconds = Seconds(start);
  const uint64_t rescored_unchanged = rescored_counter.value() - rescored_before;
  const uint64_t reused_unchanged = reused_counter.value() - reused_before;

  // Perturb one metric of one example: per affected slice, the 25 pairs
  // involving that metric are dirty and everything else is reused.
  for (double& v : runs[0].nodes[0].metrics[7]) v *= 1.01;
  rescored_before = rescored_counter.value();
  reused_before = reused_counter.value();
  start = std::chrono::steady_clock::now();
  CheckOk(pipeline.TrainContextFromExamples(context, Examples(runs)),
          "incremental retrain (one metric dirty)");
  const double perturbed_seconds = Seconds(start);
  const uint64_t rescored_perturbed = rescored_counter.value() - rescored_before;
  const uint64_t reused_perturbed = reused_counter.value() - reused_before;

  // One more retrain under the runtime oracle: the pipeline recomputes every
  // slice cold and fails on any byte difference.
  core::InvarNetXConfig verify_config = config;
  verify_config.verify_incremental = true;
  core::InvarNetX verified(verify_config);
  CheckOk(verified.TrainContextFromExamples(context, Examples(runs)),
          "oracle train");
  CheckOk(verified.TrainContextFromExamples(context, Examples(runs)),
          "oracle retrain");

  const int slices = num_runs;  // whole-run window: one slice per example
  TextTable table({"phase", "seconds", "pairs rescored", "pairs reused"});
  table.AddRow({"cold train", FormatDouble(cold_seconds, 4),
                std::to_string(slices * telemetry::kNumMetricPairs), "0"});
  table.AddRow({"retrain unchanged", FormatDouble(incremental_seconds, 4),
                std::to_string(rescored_unchanged),
                std::to_string(reused_unchanged)});
  table.AddRow({"retrain 1 metric", FormatDouble(perturbed_seconds, 4),
                std::to_string(rescored_perturbed),
                std::to_string(reused_perturbed)});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "%d examples x %d ticks, %d pairs/slice, simd %s, oracle retrain ok\n",
      num_runs, ticks, telemetry::kNumMetricPairs,
      mic::SimdLevelName(mic::ActiveSimdLevel()));

  const char* json_path = std::getenv("INVARNETX_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    json_path = "BENCH_incremental.json";
  }
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"incremental_retrain\",\n"
                 "  \"ticks\": %d,\n"
                 "  \"examples\": %d,\n"
                 "  \"slices\": %d,\n"
                 "  \"pairs_per_slice\": %d,\n"
                 "  \"cold_seconds\": %.6f,\n"
                 "  \"incremental_seconds\": %.6f,\n"
                 "  \"perturbed_seconds\": %.6f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"pairs_rescored_unchanged\": %llu,\n"
                 "  \"pairs_reused_unchanged\": %llu,\n"
                 "  \"pairs_rescored_perturbed\": %llu,\n"
                 "  \"pairs_reused_perturbed\": %llu,\n"
                 "  \"byte_identical\": %s,\n"
                 "  \"simd\": \"%s\"\n"
                 "}\n",
                 ticks, num_runs, slices, telemetry::kNumMetricPairs,
                 cold_seconds, incremental_seconds, perturbed_seconds,
                 incremental_seconds > 0.0 ? cold_seconds / incremental_seconds
                                           : 0.0,
                 static_cast<unsigned long long>(rescored_unchanged),
                 static_cast<unsigned long long>(reused_unchanged),
                 static_cast<unsigned long long>(rescored_perturbed),
                 static_cast<unsigned long long>(reused_perturbed),
                 byte_identical ? "true" : "false",
                 mic::SimdLevelName(mic::ActiveSimdLevel()));
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace invarnetx::bench

int main() { return invarnetx::bench::Main(); }
