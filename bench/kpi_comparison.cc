// Reproduces the Sec. 3.1 argument behind Fig. 2 quantitatively (the paper's
// earlier system [11] used resource utilization as the KPI and was fooled by
// system noise): an ARIMA detector trained on cpu_user% false-alarms under a
// harmless CPU-utilization disturbance, while the same detector trained on
// CPI stays quiet - and both catch a real CPU hog.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/anomaly.h"
#include "core/evaluate.h"

namespace {

using invarnetx::bench::ValueOrDie;

// Detector over an arbitrary per-tick KPI series.
invarnetx::core::PerformanceModel TrainOn(
    const std::vector<std::vector<double>>& traces) {
  return ValueOrDie(invarnetx::core::PerformanceModel::Train(traces),
                    "PerformanceModel::Train");
}

}  // namespace

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;
  namespace faults = invarnetx::faults;
  namespace telemetry = invarnetx::telemetry;
  using invarnetx::workload::WorkloadType;

  const uint64_t seed =
      static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  const int reps = bench::EnvInt("INVARNETX_REPS", 12);
  std::printf("== KPI comparison: CPI vs cpu_user%% as the detection KPI "
              "(WordCount, %d runs/case, seed=%llu) ==\n\n",
              reps, static_cast<unsigned long long>(seed));

  const auto normal = ValueOrDie(
      core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed),
      "SimulateNormalRuns");
  std::vector<std::vector<double>> cpi_traces, cpu_traces;
  for (const auto& run : normal) {
    cpi_traces.push_back(run.nodes[1].cpi);
    cpu_traces.push_back(run.nodes[1].metrics[telemetry::kCpuUserPct]);
  }
  const core::PerformanceModel cpi_model = TrainOn(cpi_traces);
  const core::PerformanceModel cpu_model = TrainOn(cpu_traces);

  // Three scenarios per KPI: clean runs, utilization-noise runs (the Fig. 2
  // disturbance), and real CPU hogs.
  struct Scenario {
    const char* name;
    bool disturb;   // inject the harmless CPU-utilization noise
    bool real_hog;  // inject an actual cpu-hog fault
  };
  const Scenario scenarios[] = {{"clean", false, false},
                                {"cpu-util-noise", true, false},
                                {"real cpu-hog", false, true}};

  invarnetx::TextTable table(
      {"scenario", "alarms(CPI KPI)", "alarms(cpu_user KPI)"});
  for (const Scenario& scenario : scenarios) {
    int cpi_alarms = 0, cpu_alarms = 0;
    for (int rep = 0; rep < reps; ++rep) {
      telemetry::RunConfig config;
      config.workload = WorkloadType::kWordCount;
      config.seed = seed + 300 + static_cast<uint64_t>(rep);
      if (scenario.disturb) {
        invarnetx::faults::FaultWindow window;
        window.start_tick = 10;
        window.duration_ticks = 30;
        window.target_node = 1;
        config.fault = telemetry::FaultRequest{
            faults::FaultType::kCpuUtilNoise, window};
      } else if (scenario.real_hog) {
        config.fault = telemetry::FaultRequest{
            faults::FaultType::kCpuHog,
            telemetry::DefaultFaultWindow(faults::FaultType::kCpuHog)};
      }
      const auto run =
          ValueOrDie(telemetry::SimulateRun(config), "SimulateRun");
      core::AnomalyDetector on_cpi(cpi_model, core::ThresholdRule::kBetaMax);
      core::AnomalyDetector on_cpu(cpu_model, core::ThresholdRule::kBetaMax);
      if (on_cpi.Scan(run.nodes[1].cpi).triggered()) ++cpi_alarms;
      if (on_cpu.Scan(run.nodes[1].metrics[telemetry::kCpuUserPct])
              .triggered()) {
        ++cpu_alarms;
      }
    }
    table.AddRow({scenario.name,
                  std::to_string(cpi_alarms) + "/" + std::to_string(reps),
                  std::to_string(cpu_alarms) + "/" + std::to_string(reps)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper shape (Sec. 3.1): the utilization KPI false-alarms on harmless\n"
      "CPU noise; the CPI KPI stays quiet there yet still catches the real\n"
      "hog - which is why InvarNet-X monitors CPI.\n");
  bench::CheckOk(table.WriteCsv("kpi_comparison.csv"), "WriteCsv");
  std::printf("wrote kpi_comparison.csv\n");
  return 0;
}
