// Reproduces the paper's Sec. 5 critique of correlation-based peer-similarity
// diagnosis (PeerWatch and kin): "when the bug is triggered by a certain
// job, all the nodes behave abnormally in a similar way but the correlations
// are not deviated. In this case, the correlation-based method will ignore
// this fault."
//
// Two scenario families, each diagnosed by a PeerWatch-style locator and by
// InvarNet-X:
//   - node-local faults (cpu-hog, mem-hog, suspend on one slave): peers
//     decorrelate from the victim, so BOTH methods catch them;
//   - cluster-wide faults (misconf - every slave degrades identically):
//     peers stay correlated, PeerWatch stays silent, InvarNet-X still
//     detects and diagnoses because its invariants are per-node couplings
//     between metrics, not cross-node similarities.

#include <cstdio>

#include "bench/bench_util.h"
#include "peerwatch/peerwatch.h"

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;
  namespace faults = invarnetx::faults;
  using invarnetx::workload::WorkloadType;

  const uint64_t seed =
      static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  const int reps = bench::EnvInt("INVARNETX_REPS", 10);
  std::printf("== PeerWatch critique: node-local vs cluster-wide faults "
              "(WordCount, %d runs/fault, seed=%llu) ==\n\n",
              reps, static_cast<unsigned long long>(seed));

  // Shared training data.
  const auto normal = bench::ValueOrDie(
      core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed),
      "SimulateNormalRuns");

  invarnetx::peerwatch::PeerWatch peerwatch;
  bench::CheckOk(peerwatch.Train(normal), "PeerWatch::Train");
  std::printf("PeerWatch tracks %d cross-node correlations\n",
              peerwatch.NumTrackedCorrelations());

  core::EvalConfig config;
  config.workload = WorkloadType::kWordCount;
  config.seed = seed;
  core::InvarNetX invarnet(config.pipeline);
  bench::CheckOk(core::TrainPipeline(&invarnet, config, normal),
                 "TrainPipeline");
  const core::OperationContext context = core::VictimContext(config);
  // Signatures so InvarNet-X can also NAME the cluster-wide fault.
  for (uint64_t rep = 0; rep < 2; ++rep) {
    auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                      faults::FaultType::kMisconfig,
                                      seed + 600 + rep);
    bench::CheckOk(invarnet.AddSignature(context, "misconf", run.value(), 1),
                   "AddSignature");
  }

  invarnetx::TextTable table({"fault", "scope", "PeerWatch flags culprit",
                              "InvarNet-X detects"});
  const struct {
    faults::FaultType fault;
    const char* scope;
  } scenarios[] = {
      {faults::FaultType::kCpuHog, "node-local"},
      {faults::FaultType::kMemHog, "node-local"},
      {faults::FaultType::kSuspend, "node-local"},
      {faults::FaultType::kMisconfig, "cluster-wide"},
  };
  for (const auto& scenario : scenarios) {
    int peer_hits = 0, invar_hits = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto run = bench::ValueOrDie(
          core::SimulateFaultRun(WorkloadType::kWordCount, scenario.fault,
                                 seed + 700 + static_cast<uint64_t>(rep)),
          "SimulateFaultRun");
      const auto scan =
          bench::ValueOrDie(peerwatch.Detect(run), "PeerWatch::Detect");
      if (scan.AnyFlagged() &&
          scan.nodes[static_cast<size_t>(scan.culprit)].node_index == 1) {
        ++peer_hits;
      }
      const auto report = bench::ValueOrDie(
          invarnet.Diagnose(context, run, 1), "Diagnose");
      if (report.anomaly_detected) ++invar_hits;
    }
    table.AddRow({faults::FaultName(scenario.fault), scenario.scope,
                  std::to_string(peer_hits) + "/" + std::to_string(reps),
                  std::to_string(invar_hits) + "/" + std::to_string(reps)});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "paper shape (Sec. 5): peer-similarity catches node-local faults but\n"
      "is blind to faults that degrade every node identically; InvarNet-X's\n"
      "per-node metric invariants catch both.\n");
  bench::CheckOk(table.WriteCsv("peerwatch_critique.csv"), "WriteCsv");
  std::printf("wrote peerwatch_critique.csv\n");
  return 0;
}
