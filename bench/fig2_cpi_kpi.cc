// Reproduces Fig. 2: the CPI and execution time of WordCount before and
// after a CPU-utilization disturbance (an additional ~30% CPU load that fits
// in the node's headroom, lasting 300 s starting at sample 45 of the shown
// window). The paper's point: the disturbance moves CPU utilization but
// neither CPI nor the execution time - so CPI is robust against system
// noise, unlike the resource-utilization KPI of their earlier work.
//
// Output: per-tick series (CPI, cpu_user%) for a disturbed and an
// undisturbed run, plus both execution times.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "telemetry/runner.h"

int main() {
  namespace bench = invarnetx::bench;
  namespace telemetry = invarnetx::telemetry;

  const uint64_t seed =
      static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));

  telemetry::RunConfig normal_config;
  normal_config.workload = invarnetx::workload::WorkloadType::kWordCount;
  normal_config.seed = seed;

  telemetry::RunConfig disturbed_config = normal_config;
  invarnetx::faults::FaultWindow window;
  window.start_tick = 15;       // mid-run, as in the paper's plot
  window.duration_ticks = 30;   // 300 s
  window.target_node = 1;
  disturbed_config.fault = telemetry::FaultRequest{
      invarnetx::faults::FaultType::kCpuUtilNoise, window};

  const telemetry::RunTrace normal = bench::ValueOrDie(
      telemetry::SimulateRun(normal_config), "SimulateRun(normal)");
  const telemetry::RunTrace disturbed = bench::ValueOrDie(
      telemetry::SimulateRun(disturbed_config), "SimulateRun(disturbed)");

  std::printf("== Fig. 2: CPI robustness to a CPU-utilization disturbance "
              "(WordCount, seed=%llu) ==\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("execution time without disturbance: %.0f s (%d ticks)\n",
              normal.duration_seconds, normal.ticks);
  std::printf("execution time with disturbance:    %.0f s (%d ticks)\n",
              disturbed.duration_seconds, disturbed.ticks);

  invarnetx::TextTable table({"tick", "cpi_normal", "cpi_disturbed",
                              "cpu_user_normal", "cpu_user_disturbed",
                              "disturbance_active"});
  const int ticks = std::min(normal.ticks, disturbed.ticks);
  const auto& n_cpu = normal.nodes[1].metrics[telemetry::kCpuUserPct];
  const auto& d_cpu = disturbed.nodes[1].metrics[telemetry::kCpuUserPct];
  for (int t = 0; t < ticks; ++t) {
    table.AddRow({std::to_string(t),
                  invarnetx::FormatDouble(normal.nodes[1].cpi[t], 3),
                  invarnetx::FormatDouble(disturbed.nodes[1].cpi[t], 3),
                  invarnetx::FormatDouble(n_cpu[t], 1),
                  invarnetx::FormatDouble(d_cpu[t], 1),
                  window.Active(t) ? "1" : "0"});
  }
  std::printf("\n%s\n", table.Render().c_str());

  // Summary: compare the two runs over the same window ticks, so execution
  // phases (whose intrinsic CPI differs) do not confound the comparison.
  double cpi_n = 0, cpi_d = 0, cpu_n = 0, cpu_d = 0;
  int n_in = 0;
  for (int t = 0; t < ticks; ++t) {
    if (!window.Active(t)) continue;
    cpi_n += normal.nodes[1].cpi[t];
    cpi_d += disturbed.nodes[1].cpi[t];
    cpu_n += n_cpu[t];
    cpu_d += d_cpu[t];
    ++n_in;
  }
  std::printf("window ticks, normal run:    mean CPI %.3f, cpu_user %.1f%%\n",
              cpi_n / n_in, cpu_n / n_in);
  std::printf("window ticks, disturbed run: mean CPI %.3f, cpu_user %.1f%%\n",
              cpi_d / n_in, cpu_d / n_in);
  std::printf("\npaper shape: cpu_user jumps inside the window while CPI and "
              "the execution time stay flat.\n");
  bench::CheckOk(table.WriteCsv("fig2_cpi_kpi.csv"), "WriteCsv(fig2)");
  std::printf("wrote fig2_cpi_kpi.csv\n");
  return 0;
}
