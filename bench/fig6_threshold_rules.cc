// Reproduces Fig. 6: per-tick anomaly decisions of the three threshold rules
// ("max-min", "95-percentile", "beta-max") against ground truth, under
// WordCount and TPC-DS with a CPU-hog injection. The paper finds the
// 95-percentile rule worst (it fires on normal ticks), while max-min and
// beta-max behave similarly - and beta-max is kept because it is cheaper
// (no min computation).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/anomaly.h"
#include "core/evaluate.h"

namespace {

struct RuleStats {
  int true_alarms = 0;    // debounced alarm ticks inside the fault window
  int false_alarms = 0;   // debounced alarm ticks outside it
  int raw_false = 0;      // un-debounced threshold exceedances outside it
  int window_ticks = 0;
  int normal_ticks = 0;
};

void RunCase(invarnetx::workload::WorkloadType type, uint64_t seed,
             invarnetx::TextTable* series_out, invarnetx::TextTable* summary) {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;

  core::EvalConfig config;
  config.workload = type;
  const auto normal = bench::ValueOrDie(
      core::SimulateNormalRuns(type, config.normal_runs, seed,
                               config.interactive_train_ticks),
      "SimulateNormalRuns");
  std::vector<std::vector<double>> cpi_traces;
  for (const auto& run : normal) cpi_traces.push_back(run.nodes[1].cpi);
  const core::PerformanceModel model = bench::ValueOrDie(
      core::PerformanceModel::Train(cpi_traces), "Train");

  const auto faulty = bench::ValueOrDie(
      core::SimulateFaultRun(type, invarnetx::faults::FaultType::kCpuHog,
                             seed + 500),
      "SimulateFaultRun");
  // A held-out normal run to measure false alarms on clean data.
  const auto clean = bench::ValueOrDie(
      core::SimulateNormalRuns(type, 1, seed + 900), "held-out normal");
  const auto window = invarnetx::telemetry::DefaultFaultWindow(
      invarnetx::faults::FaultType::kCpuHog);

  const core::ThresholdRule rules[] = {core::ThresholdRule::kMaxMin,
                                       core::ThresholdRule::k95Percentile,
                                       core::ThresholdRule::kBetaMax};
  const std::string name = invarnetx::workload::WorkloadName(type);
  for (core::ThresholdRule rule : rules) {
    core::AnomalyDetector detector(model, rule);
    const core::AnomalyScan fault_scan = detector.Scan(faulty.nodes[1].cpi);
    const core::AnomalyScan clean_scan =
        detector.Scan(clean[0].nodes[1].cpi);

    RuleStats stats;
    for (size_t t = 0; t < fault_scan.alarms.size(); ++t) {
      const bool truth = window.Active(static_cast<int>(t));
      truth ? ++stats.window_ticks : ++stats.normal_ticks;
      if (fault_scan.alarms[t]) {
        truth ? ++stats.true_alarms : ++stats.false_alarms;
      }
      if (!truth && fault_scan.raw_flags[t]) ++stats.raw_false;
      series_out->AddRow(
          {name, core::ThresholdRuleName(rule), std::to_string(t),
           fault_scan.alarms[t] ? "1" : "0", truth ? "1" : "0"});
    }
    for (size_t t = 0; t < clean_scan.alarms.size(); ++t) {
      ++stats.normal_ticks;
      if (clean_scan.alarms[t]) ++stats.false_alarms;
      if (clean_scan.raw_flags[t]) ++stats.raw_false;
    }
    summary->AddRow(
        {name, core::ThresholdRuleName(rule),
         invarnetx::FormatDouble(model.Threshold(rule), 4),
         invarnetx::FormatPercent(
             static_cast<double>(stats.true_alarms) / stats.window_ticks),
         invarnetx::FormatPercent(
             static_cast<double>(stats.false_alarms) / stats.normal_ticks),
         invarnetx::FormatPercent(
             static_cast<double>(stats.raw_false) / stats.normal_ticks)});
  }
}

}  // namespace

int main() {
  const uint64_t seed = static_cast<uint64_t>(
      invarnetx::bench::EnvInt("INVARNETX_SEED", 42));
  std::printf("== Fig. 6: threshold rules under CPU-hog (seed=%llu) ==\n\n",
              static_cast<unsigned long long>(seed));
  invarnetx::TextTable series(
      {"workload", "rule", "tick", "alarm", "fault_active"});
  invarnetx::TextTable summary({"workload", "rule", "threshold",
                                "alarm_rate_in_window", "false_alarm_rate",
                                "raw_exceedance_rate"});
  RunCase(invarnetx::workload::WorkloadType::kWordCount, seed, &series,
          &summary);
  RunCase(invarnetx::workload::WorkloadType::kTpcDs, seed, &series, &summary);
  std::printf("%s\n", summary.Render().c_str());
  std::printf(
      "paper shape: the 95-percentile rule has the worst detection quality\n"
      "(its raw exceedance rate on normal data is ~5%% by construction;\n"
      "the 3-consecutive debounce hides most but not all of it), while\n"
      "max-min and beta-max behave alike - and beta-max avoids the extra\n"
      "min computation.\n");
  invarnetx::bench::CheckOk(series.WriteCsv("fig6_threshold_rules.csv"),
                            "WriteCsv(fig6)");
  std::printf("wrote fig6_threshold_rules.csv (%zu rows)\n",
              series.num_rows());
  return 0;
}
