// Reproduces Fig. 8: per-fault diagnosis precision and recall of InvarNet-X
// under the WordCount workload (batch type; no Overload fault - under FIFO a
// batch job owns the cluster). The paper reports an average precision of
// 91.2% and recall of 87.3%, with Lock-R recall low (non-deterministic
// violations) and Net-drop/Net-delay partially confused. Batch signatures
// are higher-quality than TPC-DS ones (Fig. 7) because a single job keeps a
// stable performance model and invariants.
//
// Campaign size follows Sec. 4.1 (each fault 40x: 2 signature-training runs
// + 38 diagnosed runs); override with INVARNETX_REPS / INVARNETX_SEED.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;

  core::EvalConfig config;
  config.workload = invarnetx::workload::WorkloadType::kWordCount;
  config.seed = static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  config.test_runs_per_fault = bench::EnvInt("INVARNETX_REPS", 38);

  std::printf(
      "== Fig. 8: diagnosis under WordCount (seed=%llu, %d test runs/fault, "
      "%d normal runs, %d signature runs) ==\n\n",
      static_cast<unsigned long long>(config.seed),
      config.test_runs_per_fault, config.normal_runs,
      config.signature_train_runs);

  const core::EvalResult result = bench::ValueOrDie(
      core::RunEvaluation(config), "RunEvaluation(wordcount)");

  invarnetx::TextTable table = bench::OutcomeTable(result);
  std::printf("%s\n", table.Render().c_str());
  std::printf("average precision: %s   (paper: 91.2%%)\n",
              invarnetx::FormatPercent(result.avg_precision).c_str());
  std::printf("average recall:    %s   (paper: 87.3%%)\n\n",
              invarnetx::FormatPercent(result.avg_recall).c_str());
  bench::PrintConfusion(result);
  bench::CheckOk(table.WriteCsv("fig8_diagnosis_wordcount.csv"),
                 "WriteCsv(fig8)");
  std::printf("\nwrote fig8_diagnosis_wordcount.csv\n");
  return 0;
}
