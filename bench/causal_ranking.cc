// Causal-ranking engine cost: how fast the invariant-graph suspect ranking
// runs (rankings/s over realistic broken graphs) and what the end-to-end
// causal fallback adds to a diagnosis (p50/p99 of the pipeline-measured
// fallback time: graph build + power iteration). The graphs come from real
// diagnoses - a trained wordcount context with an EMPTY signature database,
// so every faulty run takes the unknown-problem path and the fallback fires
// exactly as it would in production.
//
// Overrides: INVARNETX_REPS (faulty runs per fault, default 4),
// INVARNETX_SEED (default 42), INVARNETX_RANK_REPS (ranking microbench
// repetitions per graph, default 400), and INVARNETX_BENCH_JSON (output
// path, default ./BENCH_causal.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "causal/graph.h"
#include "causal/ranking.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "faults/fault.h"
#include "telemetry/trace.h"

namespace invarnetx::bench {
namespace {

using workload::WorkloadType;

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = std::min(
      samples.size() - 1,
      static_cast<size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

int Main() {
  const int reps = EnvInt("INVARNETX_REPS", 4);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("INVARNETX_SEED", 42));
  const int rank_reps = EnvInt("INVARNETX_RANK_REPS", 400);

  // A trained context with no signatures: every diagnosed fault is unknown,
  // so InferCause always reaches the causal fallback.
  core::InvarNetXConfig config;
  config.num_threads = 0;
  core::InvarNetX pipeline(config);
  const core::OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 5, seed);
  CheckOk(normal.status(), "SimulateNormalRuns");
  CheckOk(pipeline.TrainContext(context, normal.value(), 1), "TrainContext");
  auto model = pipeline.GetContext(context);
  CheckOk(model.status(), "GetContext");

  const std::vector<faults::FaultType> faults = {
      faults::FaultType::kCpuHog,  faults::FaultType::kMemHog,
      faults::FaultType::kDiskHog, faults::FaultType::kNetDrop,
      faults::FaultType::kNetDelay};

  // Fallback latency as the pipeline itself measures it, plus the broken
  // graphs for the ranking microbench.
  std::vector<double> fallback_seconds;
  std::vector<causal::InvariantGraph> graphs;
  int diagnoses = 0;
  for (const faults::FaultType fault : faults) {
    for (int rep = 0; rep < reps; ++rep) {
      auto run = core::SimulateFaultRun(WorkloadType::kWordCount, fault,
                                        seed + 1000 + static_cast<uint64_t>(
                                                          rep));
      CheckOk(run.status(), "SimulateFaultRun");
      auto report = pipeline.InferCause(context, run.value(), 1);
      CheckOk(report.status(), "InferCause");
      ++diagnoses;
      if (!report.value().used_causal_fallback) continue;
      fallback_seconds.push_back(report.value().cost.causal_seconds);
      auto graph = causal::BuildInvariantGraph(
          model.value()->invariants.present, model.value()->invariants.values,
          report.value().violations, report.value().deviations);
      CheckOk(graph.status(), "BuildInvariantGraph");
      graphs.push_back(std::move(graph).value());
    }
  }
  if (graphs.empty()) {
    std::fprintf(stderr, "no diagnosis reached the causal fallback\n");
    return 1;
  }

  // Pure ranking throughput over the collected graphs.
  const causal::RankingOptions options;
  std::vector<double> rank_seconds;
  rank_seconds.reserve(graphs.size() * static_cast<size_t>(rank_reps));
  size_t sink = 0;
  double total_rank_seconds = 0.0;
  for (const causal::InvariantGraph& graph : graphs) {
    for (int i = 0; i < rank_reps; ++i) {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<causal::RankedSuspect> ranking =
          causal::RankSuspects(graph, options);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      sink += ranking.size();
      rank_seconds.push_back(elapsed.count());
      total_rank_seconds += elapsed.count();
    }
  }
  const double rankings = static_cast<double>(rank_seconds.size());
  const double rankings_per_sec =
      total_rank_seconds > 0.0 ? rankings / total_rank_seconds : 0.0;

  double mean_broken = 0.0;
  for (const causal::InvariantGraph& graph : graphs) {
    mean_broken += static_cast<double>(graph.num_broken());
  }
  mean_broken /= static_cast<double>(graphs.size());

  TextTable table({"measure", "value"});
  table.AddRow({"diagnoses (all unknown)", FormatDouble(diagnoses, 0)});
  table.AddRow({"fallbacks fired", FormatDouble(
                    static_cast<double>(fallback_seconds.size()), 0)});
  table.AddRow({"mean broken edges", FormatDouble(mean_broken, 1)});
  table.AddRow({"rankings/s", FormatDouble(rankings_per_sec, 0)});
  table.AddRow({"ranking p50",
                FormatDouble(Percentile(rank_seconds, 0.50) * 1e6, 1) +
                    " us"});
  table.AddRow({"ranking p99",
                FormatDouble(Percentile(rank_seconds, 0.99) * 1e6, 1) +
                    " us"});
  table.AddRow({"fallback p50",
                FormatDouble(Percentile(fallback_seconds, 0.50) * 1e6, 1) +
                    " us"});
  table.AddRow({"fallback p99",
                FormatDouble(Percentile(fallback_seconds, 0.99) * 1e6, 1) +
                    " us"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("(ranking sink %zu suspects; fallback time = graph build + %d "
              "power iterations, as measured inside InferCause)\n",
              sink, options.iterations);

  const char* json_path = std::getenv("INVARNETX_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    json_path = "BENCH_causal.json";
  }
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"causal_ranking\",\n"
                 "  \"diagnoses\": %d,\n"
                 "  \"fallbacks\": %zu,\n"
                 "  \"mean_broken_edges\": %.3f,\n"
                 "  \"rankings_per_sec\": %.3f,\n"
                 "  \"ranking_p50_sec\": %.9f,\n"
                 "  \"ranking_p99_sec\": %.9f,\n"
                 "  \"fallback_p50_sec\": %.9f,\n"
                 "  \"fallback_p99_sec\": %.9f\n"
                 "}\n",
                 diagnoses, fallback_seconds.size(), mean_broken,
                 rankings_per_sec, Percentile(rank_seconds, 0.50),
                 Percentile(rank_seconds, 0.99),
                 Percentile(fallback_seconds, 0.50),
                 Percentile(fallback_seconds, 0.99));
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace invarnetx::bench

int main() { return invarnetx::bench::Main(); }
