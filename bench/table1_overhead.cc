// Reproduces Table 1: the CPU overhead (wall-clock seconds) of InvarNet-X's
// components per workload - performance model building (Perf-M), invariant
// construction with MIC (Invar-C) and with ARX (Invar-C ARX), signature
// building (Sig-B), performance anomaly detection (Perf-D) and cause
// inference with both engines (Cause-I, Cause-I ARX).
//
// Absolute numbers depend on the machine and on the simulated trace lengths;
// the shape to reproduce is the ordering: Invar-C(ARX) roughly an order of
// magnitude slower than Invar-C(MIC), Cause-I(ARX) several times slower than
// Cause-I(MIC), and Perf-D/Cause-I fast enough for online use (< 2 s).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;
  namespace workload = invarnetx::workload;

  const uint64_t seed =
      static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  std::printf("== Table 1: component overhead in seconds (seed=%llu) ==\n\n",
              static_cast<unsigned long long>(seed));

  invarnetx::TextTable table({"workload", "Perf-M", "Invar-C",
                              "Invar-C(ARX)", "Sig-B", "Perf-D(ms)",
                              "Cause-I", "Cause-I(ARX)"});

  const workload::WorkloadType types[] = {
      workload::WorkloadType::kWordCount, workload::WorkloadType::kSort,
      workload::WorkloadType::kGrep, workload::WorkloadType::kTpcDs};
  for (workload::WorkloadType type : types) {
    core::EvalConfig config;
    config.workload = type;
    config.seed = seed;
    const auto normal = bench::ValueOrDie(
        core::SimulateNormalRuns(type, config.normal_runs, seed,
                                 config.interactive_train_ticks),
        "SimulateNormalRuns");
    const auto faulty = bench::ValueOrDie(
        core::SimulateFaultRun(type, invarnetx::faults::FaultType::kCpuHog,
                               seed + 500),
        "SimulateFaultRun");
    const core::OperationContext context = core::VictimContext(config);

    // Perf-M: ARIMA model building + threshold calibration.
    std::vector<std::vector<double>> cpi_traces;
    for (const auto& run : normal) cpi_traces.push_back(run.nodes[1].cpi);
    auto t0 = std::chrono::steady_clock::now();
    const core::PerformanceModel perf = bench::ValueOrDie(
        core::PerformanceModel::Train(cpi_traces), "Perf-M");
    const double perf_m = Seconds(t0);

    // Invar-C with each engine (the full pipeline-training path, which
    // includes the pairwise association matrices of all N runs).
    core::InvarNetX mic_pipeline(config.pipeline);
    t0 = std::chrono::steady_clock::now();
    bench::CheckOk(core::TrainPipeline(&mic_pipeline, config, normal),
                   "Invar-C(MIC)");
    const double invar_mic = Seconds(t0);

    core::EvalConfig arx_config = config;
    arx_config.pipeline.engine = core::AssociationEngineType::kArx;
    core::InvarNetX arx_pipeline(arx_config.pipeline);
    t0 = std::chrono::steady_clock::now();
    bench::CheckOk(core::TrainPipeline(&arx_pipeline, arx_config, normal),
                   "Invar-C(ARX)");
    const double invar_arx = Seconds(t0);

    // Sig-B: building one problem signature from one abnormal run.
    t0 = std::chrono::steady_clock::now();
    bench::CheckOk(
        mic_pipeline.AddSignature(context, "cpu-hog", faulty, 1), "Sig-B");
    const double sig_b = Seconds(t0);
    bench::CheckOk(arx_pipeline.AddSignature(context, "cpu-hog", faulty, 1),
                   "Sig-B(arx)");

    // Perf-D: streaming anomaly detection over one run.
    t0 = std::chrono::steady_clock::now();
    core::AnomalyDetector detector(perf, core::ThresholdRule::kBetaMax);
    detector.Scan(faulty.nodes[1].cpi);
    const double perf_d = Seconds(t0);

    // Cause-I: violation tuple + signature query.
    t0 = std::chrono::steady_clock::now();
    bench::ValueOrDie(mic_pipeline.InferCause(context, faulty, 1),
                      "Cause-I(MIC)");
    const double cause_mic = Seconds(t0);
    t0 = std::chrono::steady_clock::now();
    bench::ValueOrDie(arx_pipeline.InferCause(context, faulty, 1),
                      "Cause-I(ARX)");
    const double cause_arx = Seconds(t0);

    table.AddRow({workload::WorkloadName(type),
                  invarnetx::FormatDouble(perf_m, 3),
                  invarnetx::FormatDouble(invar_mic, 3),
                  invarnetx::FormatDouble(invar_arx, 3),
                  invarnetx::FormatDouble(sig_b, 3),
                  invarnetx::FormatDouble(perf_d * 1e3, 3),
                  invarnetx::FormatDouble(cause_mic, 3),
                  invarnetx::FormatDouble(cause_arx, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper shape: Invar-C(ARX) >> Invar-C(MIC); Cause-I(ARX) >\n"
              "Cause-I(MIC); Perf-D and Cause-I fast enough for online use.\n");
  invarnetx::bench::CheckOk(table.WriteCsv("table1_overhead.csv"),
                            "WriteCsv(table1)");
  std::printf("wrote table1_overhead.csv\n");

  // The paper budgets < 3% CPU overhead for the online diagnosis agent; the
  // self-observability layer must not eat that budget on its own. Time the
  // same Diagnose batch quiet (logs off, recorder off) and fully
  // instrumented (debug logs into a discard sink, trace recording on) and
  // assert the delta stays under 3%. The association cache is disabled so
  // every call does the full pairwise matrix - the realistic cold-path cost
  // the instrumentation rides on.
  std::printf("\n== self-observability overhead (paper budget: <3%%) ==\n");
  namespace obs = invarnetx::obs;
  {
    core::EvalConfig config;
    config.workload = workload::WorkloadType::kWordCount;
    config.seed = seed;
    config.pipeline.use_association_cache = false;
    const auto normal = bench::ValueOrDie(
        core::SimulateNormalRuns(config.workload, config.normal_runs, seed,
                                 config.interactive_train_ticks),
        "SimulateNormalRuns");
    const auto faulty = bench::ValueOrDie(
        core::SimulateFaultRun(config.workload,
                               invarnetx::faults::FaultType::kCpuHog,
                               seed + 500),
        "SimulateFaultRun");
    core::InvarNetX pipeline(config.pipeline);
    bench::CheckOk(core::TrainPipeline(&pipeline, config, normal),
                   "overhead train");
    const core::OperationContext context = core::VictimContext(config);

    const int reps = bench::EnvInt("INVARNETX_OVERHEAD_REPS", 20);
    auto run_batch = [&]() {
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) {
        bench::ValueOrDie(pipeline.Diagnose(context, faulty, 1),
                          "overhead Diagnose");
      }
      return Seconds(t0);
    };

    // Best-of-three per mode, interleaved, so frequency drift and one-off
    // stalls hit both modes alike.
    double quiet = 1e300;
    double instrumented = 1e300;
    for (int round = 0; round < 3; ++round) {
      obs::SetLogLevel(obs::LogLevel::kOff);
      obs::TraceRecorder::Shared().SetEnabled(false);
      quiet = std::min(quiet, run_batch());

      obs::SetLogSink([](obs::LogLevel, const std::string&) {});
      obs::SetLogLevel(obs::LogLevel::kDebug);
      obs::TraceRecorder::Shared().Clear();
      obs::TraceRecorder::Shared().SetEnabled(true);
      instrumented = std::min(instrumented, run_batch());
    }
    obs::TraceRecorder::Shared().SetEnabled(false);
    obs::TraceRecorder::Shared().Clear();
    obs::SetLogLevel(obs::LogLevel::kInfo);
    obs::SetLogSink(nullptr);

    const double overhead = (instrumented - quiet) / quiet * 100.0;
    std::printf("quiet: %.3fs  instrumented: %.3fs  (%d diagnoses each)\n",
                quiet, instrumented, reps);
    std::printf("observability overhead: %.2f%%\n", overhead);

    std::printf("\nstage latency percentiles (from the metrics registry):\n");
    std::istringstream lines(obs::MetricsRegistry::Shared().RenderText());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind("histogram span.", 0) == 0) {
        std::printf("  %s\n", line.c_str());
      }
    }

    if (overhead > 3.0) {
      std::fprintf(stderr,
                   "FAIL: observability overhead %.2f%% exceeds the paper's "
                   "3%% budget\n",
                   overhead);
      return 1;
    }
    std::printf("PASS: observability overhead %.2f%% is within the paper's "
                "3%% budget\n",
                overhead);
  }
  return 0;
}
