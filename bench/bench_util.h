#ifndef INVARNETX_BENCH_BENCH_UTIL_H_
#define INVARNETX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/status.h"

namespace invarnetx::bench {

// Aborts the bench with a readable message on error.
inline void CheckOk(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

template <typename T>
const T& ValueOrDie(const Result<T>& result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result.value();
}

// Environment overrides used by every campaign bench so CI can trade
// fidelity for speed: INVARNETX_REPS (test runs per fault) and
// INVARNETX_SEED.
inline int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::atoi(raw);
}

}  // namespace invarnetx::bench

#include "common/stats.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "faults/fault.h"

namespace invarnetx::bench {

// Renders the per-fault precision/recall table of a campaign result, with
// 95% Wilson intervals on the recall (per-fault run counts are small, so
// the interval width is worth seeing).
inline TextTable OutcomeTable(const core::EvalResult& result) {
  TextTable table({"fault", "precision", "recall", "recall 95% CI", "tp",
                   "fp", "fn", "undetected", "unknown"});
  for (const core::FaultOutcome& o : result.per_fault) {
    std::string ci = "-";
    const int trials = o.true_positives + o.false_negatives;
    if (trials > 0) {
      Result<ProportionInterval> interval =
          WilsonInterval(o.true_positives, trials);
      if (interval.ok()) {
        ci = "[" + FormatPercent(interval.value().lo, 0) + ", " +
             FormatPercent(interval.value().hi, 0) + "]";
      }
    }
    table.AddRow({faults::FaultName(o.fault), FormatPercent(o.precision()),
                  FormatPercent(o.recall()), ci,
                  std::to_string(o.true_positives),
                  std::to_string(o.false_positives),
                  std::to_string(o.false_negatives),
                  std::to_string(o.undetected), std::to_string(o.unknown)});
  }
  return table;
}

// Prints the off-diagonal confusion entries.
inline void PrintConfusion(const core::EvalResult& result) {
  std::printf("confusion (truth -> predicted, count):\n");
  for (const auto& [truth, row] : result.confusion) {
    for (const auto& [predicted, count] : row) {
      if (truth != predicted) {
        std::printf("  %-10s -> %-10s %d\n", truth.c_str(), predicted.c_str(),
                    count);
      }
    }
  }
}

}  // namespace invarnetx::bench

#endif  // INVARNETX_BENCH_BENCH_UTIL_H_
