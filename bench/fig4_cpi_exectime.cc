// Reproduces Fig. 4: CPI tracks execution time across repeated runs.
// Following Sec. 3.1: each of WordCount and Sort is repeated 25 times;
// during the runs faults (network jam, CPU hog, disk hog) are injected so
// execution times vary; for each run the 95th percentile of the CPI samples
// is the run statistic; both CPI and execution time are normalized to the
// group minimum. The paper reports correlation coefficients of 0.97
// (WordCount) and 0.95 (Sort) and a monotone 2nd-order polynomial fit.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/evaluate.h"

namespace {

using invarnetx::bench::ValueOrDie;

void RunGroup(invarnetx::workload::WorkloadType type, uint64_t seed,
              invarnetx::TextTable* out) {
  namespace telemetry = invarnetx::telemetry;
  namespace faults = invarnetx::faults;

  const faults::FaultType injected[] = {
      faults::FaultType::kNetDelay,  // "network jam"
      faults::FaultType::kCpuHog,
      faults::FaultType::kDiskHog,
  };
  std::vector<double> exec_times, cpi_p95, cpi_mean;
  for (int rep = 0; rep < 25; ++rep) {
    telemetry::RunConfig config;
    config.workload = type;
    config.seed = seed + static_cast<uint64_t>(rep);
    // Roughly a third of the runs stay fault-free; the rest cycle through
    // the three fault types so execution times spread out.
    if (rep % 4 != 0) {
      const faults::FaultType fault = injected[rep % 3];
      config.fault =
          telemetry::FaultRequest{fault, telemetry::DefaultFaultWindow(fault)};
    }
    const telemetry::RunTrace trace =
        ValueOrDie(telemetry::SimulateRun(config), "SimulateRun(fig4)");
    exec_times.push_back(trace.duration_seconds);
    // The run statistic: CPI on the faulted node (perf samples CPI per
    // process per node, and the injected disturbances all land on slave 1
    // or reach it through the shared switch). Under MapReduce's straggler
    // semantics that node's slowdown bounds the job. The paper uses the
    // 95th percentile and notes "other statistics like average are also
    // applicable"; the mean couples tighter to T = I * CPI * C because the
    // execution time integrates the slowdown while a peak statistic
    // saturates, so the mean is used for the headline correlation and the
    // p95 is reported alongside in the CSV.
    cpi_mean.push_back(invarnetx::Mean(trace.nodes[1].cpi));
    cpi_p95.push_back(ValueOrDie(
        invarnetx::Percentile(trace.nodes[1].cpi, 95.0), "Percentile"));
  }

  const std::vector<double> norm_time =
      ValueOrDie(invarnetx::NormalizeToMin(exec_times), "NormalizeToMin");
  const std::vector<double> norm_cpi =
      ValueOrDie(invarnetx::NormalizeToMin(cpi_mean), "NormalizeToMin");
  const std::vector<double> norm_p95 =
      ValueOrDie(invarnetx::NormalizeToMin(cpi_p95), "NormalizeToMin");
  const double corr = ValueOrDie(
      invarnetx::PearsonCorrelation(norm_cpi, norm_time), "Pearson");
  const double corr_p95 = ValueOrDie(
      invarnetx::PearsonCorrelation(norm_p95, norm_time), "Pearson");
  const std::vector<double> poly =
      ValueOrDie(invarnetx::PolyFit(norm_cpi, norm_time, 2), "PolyFit");

  const std::string name = invarnetx::workload::WorkloadName(type);
  std::printf("workload %s: corr(CPI_mean, exec_time) = %.3f, "
              "corr(CPI_p95, exec_time) = %.3f  (paper: %s)\n",
              name.c_str(), corr, corr_p95,
              type == invarnetx::workload::WorkloadType::kWordCount ? "0.97"
                                                                    : "0.95");
  std::printf("  2nd-order fit: time ~ %.3f + %.3f cpi + %.3f cpi^2\n",
              poly[0], poly[1], poly[2]);
  // Monotonicity of the fit over the observed CPI range.
  const double lo = invarnetx::Min(norm_cpi);
  const double hi = invarnetx::Max(norm_cpi);
  bool monotone = true;
  double prev = invarnetx::PolyEval(poly, lo);
  for (int i = 1; i <= 20; ++i) {
    const double x = lo + (hi - lo) * i / 20.0;
    const double y = invarnetx::PolyEval(poly, x);
    if (y < prev - 1e-9) monotone = false;
    prev = y;
  }
  std::printf("  fit monotone increasing over [%.2f, %.2f]: %s\n\n", lo, hi,
              monotone ? "yes" : "NO");

  for (size_t i = 0; i < norm_cpi.size(); ++i) {
    out->AddRow({name, std::to_string(i),
                 invarnetx::FormatDouble(norm_cpi[i], 4),
                 invarnetx::FormatDouble(norm_p95[i], 4),
                 invarnetx::FormatDouble(norm_time[i], 4)});
  }
}

}  // namespace

int main() {
  const uint64_t seed = static_cast<uint64_t>(
      invarnetx::bench::EnvInt("INVARNETX_SEED", 42));
  std::printf("== Fig. 4: CPI vs execution time over 25 runs with injected "
              "faults (seed=%llu) ==\n\n",
              static_cast<unsigned long long>(seed));
  invarnetx::TextTable table({"workload", "run", "cpi_mean_norm",
                              "cpi_p95_norm", "exec_time_norm"});
  RunGroup(invarnetx::workload::WorkloadType::kWordCount, seed, &table);
  RunGroup(invarnetx::workload::WorkloadType::kSort, seed + 1000, &table);
  invarnetx::bench::CheckOk(table.WriteCsv("fig4_cpi_exectime.csv"),
                            "WriteCsv(fig4)");
  std::printf("wrote fig4_cpi_exectime.csv (%zu rows)\n", table.num_rows());
  return 0;
}
