// Reproduces Fig. 9 (precision) and Fig. 10 (recall): InvarNet-X vs the ARX
// pairwise-invariant baseline (Jiang et al.) vs InvarNet-X without operation
// context, all under WordCount. Expected shape per the paper:
//   - InvarNet-X precision is several points above ARX (ARX's rigorous
//     linear invariants break easily under *any* problem, so its signatures
//     are less distinguishable), while recall shows no significant gap;
//   - the no-operation-context variant is far worse on both metrics
//     (one pooled model cannot fit heterogeneous nodes).

#include <cstdio>

#include "bench/bench_util.h"

namespace {

invarnetx::core::EvalResult RunVariant(const invarnetx::core::EvalConfig& base,
                                       const char* label) {
  std::printf("running variant: %s ...\n", label);
  return invarnetx::bench::ValueOrDie(invarnetx::core::RunEvaluation(base),
                                      label);
}

}  // namespace

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;

  core::EvalConfig config;
  config.workload = invarnetx::workload::WorkloadType::kWordCount;
  config.seed = static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  config.test_runs_per_fault = bench::EnvInt("INVARNETX_REPS", 38);

  std::printf(
      "== Fig. 9 / Fig. 10: InvarNet-X vs ARX vs no-operation-context "
      "(WordCount, seed=%llu, %d test runs/fault) ==\n\n",
      static_cast<unsigned long long>(config.seed),
      config.test_runs_per_fault);

  const core::EvalResult invarnet = RunVariant(config, "InvarNet-X");

  core::EvalConfig arx_config = config;
  arx_config.pipeline.engine = core::AssociationEngineType::kArx;
  const core::EvalResult arx = RunVariant(arx_config, "ARX");

  core::EvalConfig nocontext_config = config;
  nocontext_config.pipeline.use_operation_context = false;
  const core::EvalResult nocontext =
      RunVariant(nocontext_config, "InvarNet-X (no operation context)");

  std::printf("\nFig. 9 - diagnosis precision per fault:\n");
  invarnetx::TextTable precision(
      {"fault", "InvarNet-X", "ARX", "no-context"});
  invarnetx::TextTable recall({"fault", "InvarNet-X", "ARX", "no-context"});
  for (size_t i = 0; i < invarnet.per_fault.size(); ++i) {
    const std::string name =
        invarnetx::faults::FaultName(invarnet.per_fault[i].fault);
    precision.AddRow(
        {name, invarnetx::FormatPercent(invarnet.per_fault[i].precision()),
         invarnetx::FormatPercent(arx.per_fault[i].precision()),
         invarnetx::FormatPercent(nocontext.per_fault[i].precision())});
    recall.AddRow(
        {name, invarnetx::FormatPercent(invarnet.per_fault[i].recall()),
         invarnetx::FormatPercent(arx.per_fault[i].recall()),
         invarnetx::FormatPercent(nocontext.per_fault[i].recall())});
  }
  precision.AddRow({"AVERAGE", invarnetx::FormatPercent(invarnet.avg_precision),
                    invarnetx::FormatPercent(arx.avg_precision),
                    invarnetx::FormatPercent(nocontext.avg_precision)});
  recall.AddRow({"AVERAGE", invarnetx::FormatPercent(invarnet.avg_recall),
                 invarnetx::FormatPercent(arx.avg_recall),
                 invarnetx::FormatPercent(nocontext.avg_recall)});
  std::printf("%s\n", precision.Render().c_str());
  std::printf("Fig. 10 - diagnosis recall per fault:\n%s\n",
              recall.Render().c_str());
  std::printf(
      "paper shape: InvarNet-X precision ~9%% above ARX; recall comparable;\n"
      "no-operation-context far below both on precision and recall.\n");
  bench::CheckOk(precision.WriteCsv("fig9_precision_comparison.csv"),
                 "WriteCsv(fig9)");
  bench::CheckOk(recall.WriteCsv("fig10_recall_comparison.csv"),
                 "WriteCsv(fig10)");
  std::printf("wrote fig9_precision_comparison.csv, "
              "fig10_recall_comparison.csv\n");
  return 0;
}
