// Invariant-mining throughput: pair scores per second for the serial loop,
// the parallel fan-out at several worker counts, and a warm-cache rerun.
// Also asserts the tentpole guarantee that the parallel matrix is
// bit-identical to the serial one before reporting any numbers, and emits a
// machine-readable BENCH_mic.json (pairs/sec single- and multi-thread) so
// CI can track the MIC kernel's perf trajectory across PRs.
//
// Overrides: INVARNETX_TICKS (series length, default 256), INVARNETX_REPS
// (matrices per timed measurement, default 3), INVARNETX_NODES, and
// INVARNETX_BENCH_JSON (output path, default ./BENCH_mic.json).

#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table.h"
#include "core/assoc_cache.h"
#include "core/association.h"
#include "mic/simd.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::bench {
namespace {

telemetry::NodeTrace SyntheticNode(int ticks, uint64_t seed) {
  Rng rng(seed);
  telemetry::NodeTrace node;
  node.ip = "10.0.0.1";
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    std::vector<double>& series = node.metrics[m];
    series.reserve(ticks);
    // A shared sinusoidal load signal plus per-metric noise, so pairs have
    // genuine structure and MIC's grid search does representative work.
    const double phase = rng.Uniform(0.0, 6.28318);
    const double coupling = rng.Uniform(0.2, 1.0);
    double level = rng.Uniform(10.0, 100.0);
    for (int t = 0; t < ticks; ++t) {
      const double shared = std::sin(0.05 * t + phase);
      level += 0.1 * rng.Gaussian();
      series.push_back(level + 5.0 * coupling * shared + 0.5 * rng.Gaussian());
    }
  }
  return node;
}

double MatricesPerSecond(const std::vector<telemetry::NodeTrace>& nodes,
                         const core::AssociationEngine& engine,
                         const core::AssociationOptions& options, int reps,
                         double* out_seconds) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const telemetry::NodeTrace& node : nodes) {
      Result<core::AssociationMatrix> matrix =
          core::ComputeAssociationMatrix(node, engine, options);
      CheckOk(matrix.status(), "ComputeAssociationMatrix");
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  *out_seconds = elapsed.count();
  return static_cast<double>(reps) * static_cast<double>(nodes.size()) /
         elapsed.count();
}

int Main() {
  const int ticks = EnvInt("INVARNETX_TICKS", 256);
  const int reps = EnvInt("INVARNETX_REPS", 3);
  const int num_nodes = EnvInt("INVARNETX_NODES", 4);

  std::vector<telemetry::NodeTrace> nodes;
  for (int i = 0; i < num_nodes; ++i) {
    nodes.push_back(SyntheticNode(ticks, 0x5EED0000ULL + i));
  }
  std::unique_ptr<core::AssociationEngine> engine =
      core::AssociationEngine::Make(core::AssociationEngineType::kMic);

  // Bit-identity check: serial vs 8-way parallel on every node.
  core::AssociationOptions serial{.num_threads = 1, .use_cache = false};
  core::AssociationOptions par8{.num_threads = 8, .use_cache = false};
  for (const telemetry::NodeTrace& node : nodes) {
    Result<core::AssociationMatrix> a =
        core::ComputeAssociationMatrix(node, *engine, serial);
    Result<core::AssociationMatrix> b =
        core::ComputeAssociationMatrix(node, *engine, par8);
    CheckOk(a.status(), "serial matrix");
    CheckOk(b.status(), "parallel matrix");
    if (std::memcmp(a.value().data(), b.value().data(),
                    a.value().size() * sizeof(double)) != 0) {
      std::fprintf(stderr, "FATAL: parallel matrix differs from serial\n");
      return 1;
    }
  }
  std::printf("bit-identity: serial == 8-thread parallel on %d nodes\n\n",
              num_nodes);

  TextTable table({"configuration", "threads", "cache", "matrices/s",
                   "pairs/s", "speedup"});
  double base_rate = 0.0;
  double single_thread_pairs = 0.0;
  double multi_thread_pairs = 0.0;
  int multi_thread_workers = 0;
  double warm_cache_pairs = 0.0;
  struct Config {
    const char* label;
    int threads;
    bool cache;
  };
  const Config configs[] = {
      {"serial", 1, false},       {"parallel", 2, false},
      {"parallel", 4, false},     {"parallel", 8, false},
      {"warm cache", 1, true},
  };
  for (const Config& config : configs) {
    core::AssociationScoreCache& cache = core::AssociationScoreCache::Shared();
    if (config.cache) {
      // Warm pass populates all keys, then the timed pass runs hot.
      cache.Clear();
      core::AssociationOptions warm{.num_threads = 1, .use_cache = true};
      double ignored = 0.0;
      MatricesPerSecond(nodes, *engine, warm, 1, &ignored);
    } else {
      cache.Clear();
    }
    core::AssociationOptions options{.num_threads = config.threads,
                                     .use_cache = config.cache};
    double seconds = 0.0;
    const double rate =
        MatricesPerSecond(nodes, *engine, options, reps, &seconds);
    if (base_rate == 0.0) base_rate = rate;
    const double pairs_rate = rate * telemetry::kNumMetricPairs;
    if (config.cache) {
      warm_cache_pairs = pairs_rate;
    } else if (config.threads == 1) {
      single_thread_pairs = pairs_rate;
    } else if (pairs_rate > multi_thread_pairs) {
      multi_thread_pairs = pairs_rate;
      multi_thread_workers = config.threads;
    }
    table.AddRow({config.label, std::to_string(config.threads),
                  config.cache ? "warm" : "off", FormatDouble(rate, 2),
                  FormatDouble(pairs_rate, 0),
                  FormatDouble(rate / base_rate, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());

  core::AssociationScoreCache& cache = core::AssociationScoreCache::Shared();
  std::printf("cache: %zu entries, %zu hits, %zu misses\n", cache.size(),
              cache.hits(), cache.misses());
  std::printf("cache: %llu flushes, %llu entries evicted, %.1f%% hit rate\n",
              static_cast<unsigned long long>(cache.flushes()),
              static_cast<unsigned long long>(cache.evicted()),
              100.0 * cache.HitRate());
  std::printf("series length %d ticks, %d reps, %d nodes, engine %s, simd %s\n",
              ticks, reps, num_nodes, engine->name().c_str(),
              mic::SimdLevelName(mic::ActiveSimdLevel()));

  // Machine-readable perf record for the CI trajectory gate.
  const char* json_path = std::getenv("INVARNETX_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    json_path = "BENCH_mic.json";
  }
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"assoc_throughput\",\n"
                 "  \"engine\": \"%s\",\n"
                 "  \"ticks\": %d,\n"
                 "  \"reps\": %d,\n"
                 "  \"nodes\": %d,\n"
                 "  \"pairs_per_matrix\": %d,\n"
                 "  \"single_thread_pairs_per_sec\": %.3f,\n"
                 "  \"multi_thread_pairs_per_sec\": %.3f,\n"
                 "  \"multi_thread_workers\": %d,\n"
                 "  \"warm_cache_pairs_per_sec\": %.3f,\n"
                 "  \"cache_hit_rate\": %.6f,\n"
                 "  \"simd\": \"%s\"\n"
                 "}\n",
                 engine->name().c_str(), ticks, reps, num_nodes,
                 telemetry::kNumMetricPairs, single_thread_pairs,
                 multi_thread_pairs, multi_thread_workers, warm_cache_pairs,
                 cache.HitRate(),
                 mic::SimdLevelName(mic::ActiveSimdLevel()));
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace invarnetx::bench

int main() { return invarnetx::bench::Main(); }
