// MonitorFleet ingestion throughput: ticks/s and per-tick ingest latency
// (p50/p99) for a fleet of M concurrent monitors at several worker counts,
// on the clean steady-state path (no alarms, so the numbers measure pure
// detection fan-out + ring-buffer retention). Trains one global model (the
// no-operation-context collapse) so fleet size is decoupled from training
// cost, and emits a machine-readable BENCH_serve.json for the CI perf
// trajectory.
//
// Overrides: INVARNETX_MONITORS (fleet size, default 64), INVARNETX_TICKS
// (ticks streamed, default 400), INVARNETX_WINDOW (ring capacity, default
// 256), and INVARNETX_BENCH_JSON (output path, default ./BENCH_serve.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "serve/fleet.h"

namespace invarnetx::bench {
namespace {

using workload::WorkloadType;

core::OperationContext MonitorContext(int i) {
  return core::OperationContext{WorkloadType::kWordCount,
                                "10.1." + std::to_string(i / 250) + "." +
                                    std::to_string(i % 250 + 1)};
}

struct FleetRates {
  double ticks_per_sec = 0.0;
  double samples_per_sec = 0.0;
  double p50_ingest_sec = 0.0;
  double p99_ingest_sec = 0.0;
};

FleetRates StreamFleet(const core::InvarNetX& pipeline, int monitors,
                       int ticks, size_t window, int threads,
                       const telemetry::NodeTrace& source) {
  serve::FleetConfig config;
  config.window_capacity = window;
  config.threads = threads;
  config.expected_monitors = static_cast<size_t>(monitors);
  serve::MonitorFleet fleet(&pipeline, config);
  std::vector<serve::MonitorHandle> handles(static_cast<size_t>(monitors));
  for (int i = 0; i < monitors; ++i) {
    Result<serve::MonitorHandle> handle = fleet.StartJob(MonitorContext(i));
    CheckOk(handle.status(), "StartJob");
    handles[static_cast<size_t>(i)] = handle.value();
  }

  const int source_ticks = static_cast<int>(source.cpi.size());
  std::vector<serve::TickSample> batch(static_cast<size_t>(monitors));
  for (int i = 0; i < monitors; ++i) {
    batch[static_cast<size_t>(i)].context = MonitorContext(i);
    batch[static_cast<size_t>(i)].monitor = handles[static_cast<size_t>(i)];
  }
  std::vector<double> ingest_seconds;
  ingest_seconds.reserve(static_cast<size_t>(ticks));
  double total = 0.0;
  for (int t = 0; t < ticks; ++t) {
    const int src = t % source_ticks;
    for (int i = 0; i < monitors; ++i) {
      serve::TickSample& sample = batch[static_cast<size_t>(i)];
      sample.cpi = source.cpi[static_cast<size_t>(src)];
      for (int m = 0; m < telemetry::kNumMetrics; ++m) {
        sample.metrics[static_cast<size_t>(m)] =
            source.metrics[static_cast<size_t>(m)][static_cast<size_t>(src)];
      }
    }
    const auto start = std::chrono::steady_clock::now();
    Result<serve::TickSummary> summary = fleet.IngestTick(batch);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    CheckOk(summary.status(), "IngestTick");
    ingest_seconds.push_back(elapsed.count());
    total += elapsed.count();
  }
  fleet.WaitForDiagnoses();

  std::sort(ingest_seconds.begin(), ingest_seconds.end());
  auto percentile = [&](double p) {
    const size_t idx = std::min(
        ingest_seconds.size() - 1,
        static_cast<size_t>(p * static_cast<double>(ingest_seconds.size())));
    return ingest_seconds[idx];
  };
  FleetRates rates;
  rates.ticks_per_sec = static_cast<double>(ticks) / total;
  rates.samples_per_sec = rates.ticks_per_sec * monitors;
  rates.p50_ingest_sec = percentile(0.50);
  rates.p99_ingest_sec = percentile(0.99);
  return rates;
}

int Main() {
  const int monitors = EnvInt("INVARNETX_MONITORS", 64);
  const int ticks = EnvInt("INVARNETX_TICKS", 400);
  const size_t window =
      static_cast<size_t>(EnvInt("INVARNETX_WINDOW", 256));

  // One global model for every monitor: fleet size is a serving-layer knob,
  // not a training-cost multiplier.
  core::InvarNetXConfig config;
  config.use_operation_context = false;
  config.num_threads = 0;
  core::InvarNetX pipeline(config);
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 4, 42);
  CheckOk(normal.status(), "SimulateNormalRuns");
  CheckOk(pipeline.TrainContext(MonitorContext(0), normal.value(), 1),
          "TrainContext");
  const telemetry::NodeTrace& source = normal.value()[0].nodes[1];

  TextTable table({"threads", "ticks/s", "samples/s", "p50 ingest", "p99 "
                   "ingest"});
  FleetRates serial;
  FleetRates parallel;
  for (int threads : {1, 0}) {
    const FleetRates rates =
        StreamFleet(pipeline, monitors, ticks, window, threads, source);
    if (threads == 1) {
      serial = rates;
    } else {
      parallel = rates;
    }
    table.AddRow({threads == 1 ? "1 (serial)" : "0 (hardware)",
                  FormatDouble(rates.ticks_per_sec, 1),
                  FormatDouble(rates.samples_per_sec, 0),
                  FormatDouble(rates.p50_ingest_sec * 1e6, 1) + " us",
                  FormatDouble(rates.p99_ingest_sec * 1e6, 1) + " us"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%d monitors, %d ticks, window %zu ticks\n", monitors, ticks,
              window);

  const char* json_path = std::getenv("INVARNETX_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    json_path = "BENCH_serve.json";
  }
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"serve_throughput\",\n"
                 "  \"monitors\": %d,\n"
                 "  \"ticks\": %d,\n"
                 "  \"window_ticks\": %zu,\n"
                 "  \"serial_ticks_per_sec\": %.3f,\n"
                 "  \"serial_p99_ingest_sec\": %.9f,\n"
                 "  \"ticks_per_sec\": %.3f,\n"
                 "  \"samples_per_sec\": %.3f,\n"
                 "  \"p50_ingest_sec\": %.9f,\n"
                 "  \"p99_ingest_sec\": %.9f\n"
                 "}\n",
                 monitors, ticks, window, serial.ticks_per_sec,
                 serial.p99_ingest_sec, parallel.ticks_per_sec,
                 parallel.samples_per_sec, parallel.p50_ingest_sec,
                 parallel.p99_ingest_sec);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace invarnetx::bench

int main() { return invarnetx::bench::Main(); }
