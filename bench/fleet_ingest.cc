// Fleet-scale sharded ingest throughput: drives a synthetic 100k-monitor
// (1M with INVARNETX_MONITORS=1000000) fleet through MonitorFleet's sharded
// SPSC-ring ingest path and reports ticks/s, samples/s, and per-tick ingest
// latency (p50/p99) for the serial and sharded-parallel configurations,
// plus a deterministic backpressure sub-run with a fixed small ring that
// measures the overflow (reject) rate. Trains one global model (the
// no-operation-context collapse) so fleet size is decoupled from training
// cost, and emits a machine-readable BENCH_fleet.json that CI validates and
// gates against bench/serve_baseline.json.
//
// Overrides: INVARNETX_MONITORS (fleet size, default 100000),
// INVARNETX_TICKS (ticks streamed, default 30), INVARNETX_WINDOW (window
// capacity in ticks, default 16 - at 1M monitors the window slab is
// monitors x window x 27 doubles, so keep it small at scale),
// INVARNETX_SHARDS (0 = one per hardware thread), and INVARNETX_BENCH_JSON
// (output path, default ./BENCH_fleet.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "serve/fleet.h"
#include "workload/spec.h"

namespace invarnetx::bench {
namespace {

using workload::WorkloadType;

core::OperationContext MonitorContext(int i) {
  return core::OperationContext{
      WorkloadType::kWordCount, "10." + std::to_string(i / 62500) + "." +
                                    std::to_string(i / 250 % 250) + "." +
                                    std::to_string(i % 250 + 1)};
}

struct FleetRates {
  double ticks_per_sec = 0.0;
  double samples_per_sec = 0.0;
  double p50_ingest_sec = 0.0;
  double p99_ingest_sec = 0.0;
  uint64_t rejected = 0;
  double overflow_rate = 0.0;  // rejected / offered
};

// Streams `ticks` batches of one sample per monitor and measures the ingest
// path. ring_capacity 0 = auto (nothing rejected); a fixed capacity gives
// the deterministic backpressure run.
FleetRates StreamFleet(const core::InvarNetX& pipeline, int monitors,
                       int ticks, size_t window, int threads, int shards,
                       size_t ring_capacity,
                       const telemetry::NodeTrace& source) {
  serve::FleetConfig config;
  config.window_capacity = window;
  config.threads = threads;
  config.shards = shards;
  config.ring_capacity = ring_capacity;
  config.expected_monitors = static_cast<size_t>(monitors);
  serve::MonitorFleet fleet(&pipeline, config);

  std::vector<serve::TickSample> batch(static_cast<size_t>(monitors));
  for (int i = 0; i < monitors; ++i) {
    Result<serve::MonitorHandle> handle = fleet.StartJob(MonitorContext(i));
    CheckOk(handle.status(), "StartJob");
    serve::TickSample& sample = batch[static_cast<size_t>(i)];
    sample.context = MonitorContext(i);
    sample.monitor = handle.value();
  }

  const int source_ticks = static_cast<int>(source.cpi.size());
  std::vector<double> ingest_seconds;
  ingest_seconds.reserve(static_cast<size_t>(ticks));
  double total = 0.0;
  uint64_t rejected = 0;
  for (int t = 0; t < ticks; ++t) {
    const size_t src = static_cast<size_t>(t % source_ticks);
    const double cpi = source.cpi[src];
    std::array<double, telemetry::kNumMetrics> metrics;
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      metrics[static_cast<size_t>(m)] =
          source.metrics[static_cast<size_t>(m)][src];
    }
    for (int i = 0; i < monitors; ++i) {
      batch[static_cast<size_t>(i)].cpi = cpi;
      batch[static_cast<size_t>(i)].metrics = metrics;
    }
    const auto start = std::chrono::steady_clock::now();
    Result<serve::TickSummary> summary = fleet.IngestTick(batch);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    CheckOk(summary.status(), "IngestTick");
    rejected += static_cast<uint64_t>(summary.value().rejected);
    ingest_seconds.push_back(elapsed.count());
    total += elapsed.count();
  }
  fleet.WaitForDiagnoses();

  std::sort(ingest_seconds.begin(), ingest_seconds.end());
  auto percentile = [&](double p) {
    const size_t idx = std::min(
        ingest_seconds.size() - 1,
        static_cast<size_t>(p * static_cast<double>(ingest_seconds.size())));
    return ingest_seconds[idx];
  };
  FleetRates rates;
  rates.ticks_per_sec = static_cast<double>(ticks) / total;
  rates.samples_per_sec = rates.ticks_per_sec * monitors;
  rates.p50_ingest_sec = percentile(0.50);
  rates.p99_ingest_sec = percentile(0.99);
  rates.rejected = rejected;
  rates.overflow_rate = static_cast<double>(rejected) /
                        (static_cast<double>(monitors) *
                         static_cast<double>(ticks));
  return rates;
}

// Same tick stream, but pushed through the loopback TCP front end: an
// IngestServer wraps the fleet, and an IngestClient negotiates handles with
// HELLO and streams binary TICK frames. Measures the end-to-end socket rate
// (encode + write + read + decode + IngestTick) so CI can gate the wire
// path against the in-process sharded rate.
FleetRates StreamFleetOverLoopback(const core::InvarNetX& pipeline,
                                   int monitors, int ticks, size_t window,
                                   int shards,
                                   const telemetry::NodeTrace& source) {
  serve::FleetConfig config;
  config.window_capacity = window;
  config.threads = 0;
  config.shards = shards;
  config.expected_monitors = static_cast<size_t>(monitors);
  serve::MonitorFleet fleet(&pipeline, config);

  // A 100k-monitor TICK frame is ~22 MB, so the frame ceiling scales with
  // the fleet instead of using the 8 MiB default.
  const size_t frame_cap =
      static_cast<size_t>(monitors) * net::kBinarySampleBytes + 4096;
  std::ostringstream verdicts;  // never rendered: the bench skips ENDJOB
  net::IngestServerOptions server_options;
  server_options.max_frame_bytes = frame_cap;
  net::IngestServer server(&fleet, &verdicts, server_options);
  CheckOk(server.Start(), "IngestServer::Start");

  net::IngestClientOptions client_options;
  client_options.port = server.port();
  client_options.max_frame_bytes = frame_cap;
  net::IngestClient client(client_options);
  CheckOk(client.Connect(), "IngestClient::Connect");

  const std::string workload_name =
      workload::WorkloadName(WorkloadType::kWordCount);
  std::vector<net::HelloEntry> entries(static_cast<size_t>(monitors));
  for (int i = 0; i < monitors; ++i) {
    entries[static_cast<size_t>(i)] = {workload_name,
                                       MonitorContext(i).node_ip};
  }
  Result<std::vector<serve::MonitorHandle>> handles = client.Hello(entries);
  CheckOk(handles.status(), "IngestClient::Hello");

  std::vector<serve::TickSample> batch(static_cast<size_t>(monitors));
  for (int i = 0; i < monitors; ++i) {
    batch[static_cast<size_t>(i)].monitor =
        handles.value()[static_cast<size_t>(i)];
  }

  const int source_ticks = static_cast<int>(source.cpi.size());
  std::vector<double> tick_seconds;
  tick_seconds.reserve(static_cast<size_t>(ticks));
  double total = 0.0;
  uint64_t rejected = 0;
  for (int t = 0; t < ticks; ++t) {
    const size_t src = static_cast<size_t>(t % source_ticks);
    const double cpi = source.cpi[src];
    std::array<double, telemetry::kNumMetrics> metrics;
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      metrics[static_cast<size_t>(m)] =
          source.metrics[static_cast<size_t>(m)][src];
    }
    for (int i = 0; i < monitors; ++i) {
      batch[static_cast<size_t>(i)].cpi = cpi;
      batch[static_cast<size_t>(i)].metrics = metrics;
    }
    const auto start = std::chrono::steady_clock::now();
    Result<net::TickOutcome> outcome = client.Tick(batch);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    CheckOk(outcome.status(), "IngestClient::Tick");
    rejected += outcome.value().rejected;
    tick_seconds.push_back(elapsed.count());
    total += elapsed.count();
  }
  CheckOk(client.Bye(), "IngestClient::Bye");
  client.Close();
  server.Stop();
  fleet.WaitForDiagnoses();

  std::sort(tick_seconds.begin(), tick_seconds.end());
  auto percentile = [&](double p) {
    const size_t idx = std::min(
        tick_seconds.size() - 1,
        static_cast<size_t>(p * static_cast<double>(tick_seconds.size())));
    return tick_seconds[idx];
  };
  FleetRates rates;
  rates.ticks_per_sec = static_cast<double>(ticks) / total;
  rates.samples_per_sec = rates.ticks_per_sec * monitors;
  rates.p50_ingest_sec = percentile(0.50);
  rates.p99_ingest_sec = percentile(0.99);
  rates.rejected = rejected;
  rates.overflow_rate = static_cast<double>(rejected) /
                        (static_cast<double>(monitors) *
                         static_cast<double>(ticks));
  return rates;
}

int Main() {
  const int monitors = EnvInt("INVARNETX_MONITORS", 100000);
  const int ticks = EnvInt("INVARNETX_TICKS", 30);
  const size_t window = static_cast<size_t>(EnvInt("INVARNETX_WINDOW", 16));
  const int shards = EnvInt("INVARNETX_SHARDS", 0);

  // One global model for every monitor: fleet size is a serving-layer knob,
  // not a training-cost multiplier.
  core::InvarNetXConfig config;
  config.use_operation_context = false;
  config.num_threads = 0;
  core::InvarNetX pipeline(config);
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 4, 42);
  CheckOk(normal.status(), "SimulateNormalRuns");
  CheckOk(pipeline.TrainContext(MonitorContext(0), normal.value(), 1),
          "TrainContext");
  const telemetry::NodeTrace& source = normal.value()[0].nodes[1];

  TextTable table(
      {"config", "ticks/s", "samples/s", "p50 ingest", "p99 ingest"});
  const FleetRates serial = StreamFleet(pipeline, monitors, ticks, window,
                                        /*threads=*/1, shards,
                                        /*ring_capacity=*/0, source);
  table.AddRow({"serial (threads 1)", FormatDouble(serial.ticks_per_sec, 2),
                FormatDouble(serial.samples_per_sec, 0),
                FormatDouble(serial.p50_ingest_sec * 1e3, 2) + " ms",
                FormatDouble(serial.p99_ingest_sec * 1e3, 2) + " ms"});
  const FleetRates sharded = StreamFleet(pipeline, monitors, ticks, window,
                                         /*threads=*/0, shards,
                                         /*ring_capacity=*/0, source);
  table.AddRow({"sharded (threads 0)", FormatDouble(sharded.ticks_per_sec, 2),
                FormatDouble(sharded.samples_per_sec, 0),
                FormatDouble(sharded.p50_ingest_sec * 1e3, 2) + " ms",
                FormatDouble(sharded.p99_ingest_sec * 1e3, 2) + " ms"});
  const FleetRates socket = StreamFleetOverLoopback(pipeline, monitors, ticks,
                                                    window, shards, source);
  table.AddRow({"loopback socket", FormatDouble(socket.ticks_per_sec, 2),
                FormatDouble(socket.samples_per_sec, 0),
                FormatDouble(socket.p50_ingest_sec * 1e3, 2) + " ms",
                FormatDouble(socket.p99_ingest_sec * 1e3, 2) + " ms"});
  std::printf("%s\n", table.Render().c_str());
  const double socket_ratio =
      socket.samples_per_sec / sharded.samples_per_sec;
  std::printf("loopback socket carries %.0f%% of the in-process sharded "
              "rate (binary frames, %d samples/tick)\n",
              socket_ratio * 100.0, monitors);
  std::printf("%d monitors, %d ticks, window %zu ticks, shards %d (0 = one "
              "per hardware thread)\n",
              monitors, ticks, window, shards);

  // Backpressure sub-run: a small fleet against a deliberately undersized
  // fixed ring. Admission is count-based, so the reject tally is exact and
  // reproducible - this is the overflow-rate measurement, not a race.
  const int bp_monitors = std::min(monitors, 4096);
  const size_t bp_ring = 64;
  const FleetRates backpressure =
      StreamFleet(pipeline, bp_monitors, std::min(ticks, 10), window,
                  /*threads=*/0, /*shards=*/8, bp_ring, source);
  std::printf("backpressure: %d monitors over 8 shards, ring %zu -> "
              "%llu rejected (overflow rate %.4f)\n",
              bp_monitors, bp_ring,
              static_cast<unsigned long long>(backpressure.rejected),
              backpressure.overflow_rate);

  const char* json_path = std::getenv("INVARNETX_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    json_path = "BENCH_fleet.json";
  }
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fleet_ingest\",\n"
                 "  \"monitors\": %d,\n"
                 "  \"ticks\": %d,\n"
                 "  \"window_ticks\": %zu,\n"
                 "  \"shards\": %d,\n"
                 "  \"serial_ticks_per_sec\": %.3f,\n"
                 "  \"serial_samples_per_sec\": %.3f,\n"
                 "  \"ticks_per_sec\": %.3f,\n"
                 "  \"samples_per_sec\": %.3f,\n"
                 "  \"p50_ingest_sec\": %.9f,\n"
                 "  \"p99_ingest_sec\": %.9f,\n"
                 "  \"socket_ticks_per_sec\": %.3f,\n"
                 "  \"socket_samples_per_sec\": %.3f,\n"
                 "  \"socket_p50_tick_sec\": %.9f,\n"
                 "  \"socket_p99_tick_sec\": %.9f,\n"
                 "  \"socket_to_sharded_ratio\": %.4f,\n"
                 "  \"backpressure_rejected\": %llu,\n"
                 "  \"overflow_rate\": %.6f\n"
                 "}\n",
                 monitors, ticks, window, shards, serial.ticks_per_sec,
                 serial.samples_per_sec, sharded.ticks_per_sec,
                 sharded.samples_per_sec, sharded.p50_ingest_sec,
                 sharded.p99_ingest_sec, socket.ticks_per_sec,
                 socket.samples_per_sec, socket.p50_ingest_sec,
                 socket.p99_ingest_sec, socket_ratio,
                 static_cast<unsigned long long>(backpressure.rejected),
                 backpressure.overflow_rate);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace invarnetx::bench

int main() { return invarnetx::bench::Main(); }
