// Detection latency (not a paper figure): ticks from fault onset to the
// debounced alarm, per fault type, under WordCount. The paper requires
// detection to run online (Perf-D < 2 s per tick in Table 1); this bench
// quantifies how quickly the alarm actually fires. Gradual faults (thread
// leak) are expected to trail abrupt ones (suspend, cpu-hog); the floor is
// the 3-consecutive debounce itself (>= 2 ticks after the first exceedance).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/anomaly.h"

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;
  namespace faults = invarnetx::faults;
  using invarnetx::workload::WorkloadType;

  const uint64_t seed =
      static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  const int reps = bench::EnvInt("INVARNETX_REPS", 12);
  std::printf("== Detection latency per fault (WordCount, %d runs/fault, "
              "seed=%llu) ==\n\n",
              reps, static_cast<unsigned long long>(seed));

  const auto normal = bench::ValueOrDie(
      core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed),
      "SimulateNormalRuns");
  std::vector<std::vector<double>> cpi_traces;
  for (const auto& run : normal) cpi_traces.push_back(run.nodes[1].cpi);
  const core::PerformanceModel model = bench::ValueOrDie(
      core::PerformanceModel::Train(cpi_traces), "Train");

  invarnetx::TextTable table({"fault", "detected", "median_latency_ticks",
                              "p90_latency_ticks", "min", "max"});
  for (faults::FaultType fault : faults::AllFaults()) {
    if (!faults::AppliesTo(fault, WorkloadType::kWordCount)) continue;
    std::vector<double> latencies;
    int detected = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto run = bench::ValueOrDie(
          core::SimulateFaultRun(WorkloadType::kWordCount, fault,
                                 seed + 5000 + static_cast<uint64_t>(rep)),
          "SimulateFaultRun");
      core::AnomalyDetector detector(model, core::ThresholdRule::kBetaMax);
      const core::AnomalyScan scan = detector.Scan(run.nodes[1].cpi);
      if (!scan.triggered()) continue;
      ++detected;
      latencies.push_back(scan.first_alarm_tick -
                          run.fault->window.start_tick);
    }
    if (latencies.empty()) {
      table.AddRow({faults::FaultName(fault), "0/" + std::to_string(reps),
                    "-", "-", "-", "-"});
      continue;
    }
    table.AddRow(
        {faults::FaultName(fault),
         std::to_string(detected) + "/" + std::to_string(reps),
         invarnetx::FormatDouble(
             bench::ValueOrDie(invarnetx::Percentile(latencies, 50.0), "p50"),
             1),
         invarnetx::FormatDouble(
             bench::ValueOrDie(invarnetx::Percentile(latencies, 90.0), "p90"),
             1),
         invarnetx::FormatDouble(invarnetx::Min(latencies), 0),
         invarnetx::FormatDouble(invarnetx::Max(latencies), 0)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("one tick = 10 s; the 3-consecutive debounce makes 2 ticks the\n"
              "floor. Gradual faults (h-9703 thread leak) detect late by\n"
              "design; abrupt ones detect within ~30 s.\n");
  bench::CheckOk(table.WriteCsv("detection_latency.csv"), "WriteCsv");
  std::printf("wrote detection_latency.csv\n");
  return 0;
}
