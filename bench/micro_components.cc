// Microbenchmarks (google-benchmark) of the computational kernels: MIC
// scoring vs series length, ARX association vs length, ARIMA fitting and
// one-step prediction, the pairwise association matrix, and signature-
// database queries vs database size. Not a paper table; these quantify the
// costs behind Table 1 and back the paper's scalability claim (local,
// per-context modeling keeps each unit of work small).

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <benchmark/benchmark.h>

#include "arx/arx.h"
#include "common/random.h"
#include "core/association.h"
#include "core/invariants.h"
#include "core/sigdb.h"
#include "mic/mic.h"
#include "mic/simd.h"
#include "telemetry/trace.h"
#include "timeseries/arima.h"

// Allocation counting: this binary replaces the global allocation functions
// with counting delegates to malloc/free so the MIC benchmarks can report
// allocations per call alongside latency (the zero-allocation claim of the
// workspace kernel is a perf property worth tracking, not just a test).
namespace {
std::atomic<uint64_t> g_heap_allocations{0};

uint64_t HeapAllocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : 1) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using invarnetx::Rng;

// Attaches "allocs_per_call" from a counter snapshot taken around the
// benchmark loop.
void ReportAllocsPerCall(benchmark::State& state, uint64_t allocs_before) {
  const uint64_t total = HeapAllocations() - allocs_before;
  state.counters["allocs_per_call"] =
      state.iterations() > 0
          ? static_cast<double>(total) / static_cast<double>(state.iterations())
          : 0.0;
}

std::vector<double> NoisyLine(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(0.02 * i + rng.Gaussian(0.0, 0.3));
  }
  return out;
}

// Cold path: a call-local workspace, so every call grows its buffers from
// scratch (upper bound on per-call allocation cost).
void BM_MicScore(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> x = NoisyLine(n, 1);
  const std::vector<double> y = NoisyLine(n, 2);
  const uint64_t allocs_before = HeapAllocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::mic::MicScore(x, y));
  }
  ReportAllocsPerCall(state, allocs_before);
}
BENCHMARK(BM_MicScore)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

// Steady-state path of the mining fan-out: one warm reusable workspace.
// allocs_per_call must read 0 - the kernel's zero-allocation guarantee.
void BM_MicScoreWorkspace(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> x = NoisyLine(n, 1);
  const std::vector<double> y = NoisyLine(n, 2);
  invarnetx::mic::MicWorkspace workspace;
  benchmark::DoNotOptimize(
      invarnetx::mic::MicScore(x, y, invarnetx::mic::MicOptions(),
                               &workspace));  // warm the buffers
  const uint64_t allocs_before = HeapAllocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::mic::MicScore(
        x, y, invarnetx::mic::MicOptions(), &workspace));
  }
  ReportAllocsPerCall(state, allocs_before);
}
BENCHMARK(BM_MicScoreWorkspace)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

// Forced-scalar counterpart of BM_MicScoreWorkspace: the same warm
// workspace with SIMD dispatch pinned to the portable tier, so the table
// quantifies what the vector DP lanes buy (the two rows return bit-identical
// scores - only the latency differs).
void BM_MicScoreWorkspaceScalar(benchmark::State& state) {
  const invarnetx::mic::SimdLevel saved = invarnetx::mic::ActiveSimdLevel();
  invarnetx::mic::SetSimdLevel(invarnetx::mic::SimdLevel::kScalar);
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> x = NoisyLine(n, 1);
  const std::vector<double> y = NoisyLine(n, 2);
  invarnetx::mic::MicWorkspace workspace;
  benchmark::DoNotOptimize(
      invarnetx::mic::MicScore(x, y, invarnetx::mic::MicOptions(),
                               &workspace));  // warm the buffers
  const uint64_t allocs_before = HeapAllocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::mic::MicScore(
        x, y, invarnetx::mic::MicOptions(), &workspace));
  }
  ReportAllocsPerCall(state, allocs_before);
  invarnetx::mic::SetSimdLevel(saved);
}
BENCHMARK(BM_MicScoreWorkspaceScalar)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

// Pre-workspace kernel (per-call sorts, map-backed characteristic matrix,
// nested DP tables), kept as the exactness oracle: the before/after of the
// zero-allocation rewrite in one table.
void BM_MicReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> x = NoisyLine(n, 1);
  const std::vector<double> y = NoisyLine(n, 2);
  const uint64_t allocs_before = HeapAllocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::mic::MicReference(x, y));
  }
  ReportAllocsPerCall(state, allocs_before);
}
BENCHMARK(BM_MicReference)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

void BM_ArxAssociation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> x = NoisyLine(n, 1);
  const std::vector<double> y = NoisyLine(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::arx::ArxAssociationScore(x, y));
  }
}
BENCHMARK(BM_ArxAssociation)->Arg(60)->Arg(120)->Arg(240);

void BM_ArimaFitAuto(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<double> series;
  double v = 1.0;
  for (int i = 0; i < n; ++i) {
    v = 0.3 + 0.7 * v + rng.Gaussian(0.0, 0.05);
    series.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::ts::FitArimaAuto(series));
  }
}
BENCHMARK(BM_ArimaFitAuto)->Arg(120)->Arg(480);

void BM_ArimaPredictOneStep(benchmark::State& state) {
  auto model = invarnetx::ts::ArimaModel::FromParameters(
      invarnetx::ts::ArimaOrder{2, 1, 1}, {0.4, 0.2}, {0.3}, 0.01, 1.0);
  invarnetx::ts::ArimaPredictor predictor(model.value());
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Observe(rng.Gaussian(1.0, 0.05)));
  }
}
BENCHMARK(BM_ArimaPredictOneStep);

void BM_SignatureQuery(benchmark::State& state) {
  const int db_size = static_cast<int>(state.range(0));
  constexpr int kBits = 250;
  Rng rng(5);
  invarnetx::core::SignatureDatabase db;
  for (int s = 0; s < db_size; ++s) {
    invarnetx::core::Signature sig;
    sig.problem = "problem-" + std::to_string(s % 15);
    for (int b = 0; b < kBits; ++b) {
      sig.bits.push_back(rng.Bernoulli(0.2) ? 1 : 0);
    }
    (void)db.Add(std::move(sig));
  }
  std::vector<uint8_t> tuple;
  for (int b = 0; b < kBits; ++b) tuple.push_back(rng.Bernoulli(0.2) ? 1 : 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.Query(tuple, invarnetx::core::SimilarityMetric::kJaccard));
  }
}
BENCHMARK(BM_SignatureQuery)->Arg(30)->Arg(300)->Arg(3000);

void BM_AssociationMatrix(benchmark::State& state) {
  // Full 325-pair MIC matrix of one node trace - the Invar-C unit of work.
  const int ticks = static_cast<int>(state.range(0));
  Rng rng(6);
  invarnetx::telemetry::NodeTrace node;
  for (int t = 0; t < ticks; ++t) {
    const double driver = rng.Gaussian(0.0, 1.0);
    node.cpi.push_back(1.0 + 0.05 * driver);
    for (int m = 0; m < invarnetx::telemetry::kNumMetrics; ++m) {
      node.metrics[static_cast<size_t>(m)].push_back(
          10.0 + (m + 1) * driver + rng.Gaussian(0.0, 0.2));
    }
  }
  const auto engine = invarnetx::core::AssociationEngine::Make(
      invarnetx::core::AssociationEngineType::kMic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        invarnetx::core::ComputeAssociationMatrix(node, *engine));
  }
}
BENCHMARK(BM_AssociationMatrix)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_ViolationTuple(benchmark::State& state) {
  Rng rng(7);
  invarnetx::core::InvariantSet set;
  invarnetx::core::AssociationMatrix abnormal;
  for (int i = 0; i < invarnetx::telemetry::kNumMetricPairs; ++i) {
    set.present.push_back(rng.Bernoulli(0.7));
    set.values.push_back(rng.Uniform());
    abnormal.push_back(rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        invarnetx::core::ComputeViolationTuple(set, abnormal));
  }
}
BENCHMARK(BM_ViolationTuple);

void BM_BuildInvariants(benchmark::State& state) {
  const int runs = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<invarnetx::core::AssociationMatrix> matrices;
  for (int r = 0; r < runs; ++r) {
    invarnetx::core::AssociationMatrix m;
    for (int i = 0; i < invarnetx::telemetry::kNumMetricPairs; ++i) {
      m.push_back(rng.Uniform());
    }
    matrices.push_back(std::move(m));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::core::BuildInvariants(matrices));
  }
}
BENCHMARK(BM_BuildInvariants)->Arg(10)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
