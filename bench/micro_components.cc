// Microbenchmarks (google-benchmark) of the computational kernels: MIC
// scoring vs series length, ARX association vs length, ARIMA fitting and
// one-step prediction, the pairwise association matrix, and signature-
// database queries vs database size. Not a paper table; these quantify the
// costs behind Table 1 and back the paper's scalability claim (local,
// per-context modeling keeps each unit of work small).

#include <vector>

#include <benchmark/benchmark.h>

#include "arx/arx.h"
#include "common/random.h"
#include "core/association.h"
#include "core/invariants.h"
#include "core/sigdb.h"
#include "mic/mic.h"
#include "telemetry/trace.h"
#include "timeseries/arima.h"

namespace {

using invarnetx::Rng;

std::vector<double> NoisyLine(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(0.02 * i + rng.Gaussian(0.0, 0.3));
  }
  return out;
}

void BM_MicScore(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> x = NoisyLine(n, 1);
  const std::vector<double> y = NoisyLine(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::mic::MicScore(x, y));
  }
}
BENCHMARK(BM_MicScore)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

void BM_ArxAssociation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> x = NoisyLine(n, 1);
  const std::vector<double> y = NoisyLine(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::arx::ArxAssociationScore(x, y));
  }
}
BENCHMARK(BM_ArxAssociation)->Arg(60)->Arg(120)->Arg(240);

void BM_ArimaFitAuto(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<double> series;
  double v = 1.0;
  for (int i = 0; i < n; ++i) {
    v = 0.3 + 0.7 * v + rng.Gaussian(0.0, 0.05);
    series.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::ts::FitArimaAuto(series));
  }
}
BENCHMARK(BM_ArimaFitAuto)->Arg(120)->Arg(480);

void BM_ArimaPredictOneStep(benchmark::State& state) {
  auto model = invarnetx::ts::ArimaModel::FromParameters(
      invarnetx::ts::ArimaOrder{2, 1, 1}, {0.4, 0.2}, {0.3}, 0.01, 1.0);
  invarnetx::ts::ArimaPredictor predictor(model.value());
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Observe(rng.Gaussian(1.0, 0.05)));
  }
}
BENCHMARK(BM_ArimaPredictOneStep);

void BM_SignatureQuery(benchmark::State& state) {
  const int db_size = static_cast<int>(state.range(0));
  constexpr int kBits = 250;
  Rng rng(5);
  invarnetx::core::SignatureDatabase db;
  for (int s = 0; s < db_size; ++s) {
    invarnetx::core::Signature sig;
    sig.problem = "problem-" + std::to_string(s % 15);
    for (int b = 0; b < kBits; ++b) {
      sig.bits.push_back(rng.Bernoulli(0.2) ? 1 : 0);
    }
    (void)db.Add(std::move(sig));
  }
  std::vector<uint8_t> tuple;
  for (int b = 0; b < kBits; ++b) tuple.push_back(rng.Bernoulli(0.2) ? 1 : 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.Query(tuple, invarnetx::core::SimilarityMetric::kJaccard));
  }
}
BENCHMARK(BM_SignatureQuery)->Arg(30)->Arg(300)->Arg(3000);

void BM_AssociationMatrix(benchmark::State& state) {
  // Full 325-pair MIC matrix of one node trace - the Invar-C unit of work.
  const int ticks = static_cast<int>(state.range(0));
  Rng rng(6);
  invarnetx::telemetry::NodeTrace node;
  for (int t = 0; t < ticks; ++t) {
    const double driver = rng.Gaussian(0.0, 1.0);
    node.cpi.push_back(1.0 + 0.05 * driver);
    for (int m = 0; m < invarnetx::telemetry::kNumMetrics; ++m) {
      node.metrics[static_cast<size_t>(m)].push_back(
          10.0 + (m + 1) * driver + rng.Gaussian(0.0, 0.2));
    }
  }
  const auto engine = invarnetx::core::AssociationEngine::Make(
      invarnetx::core::AssociationEngineType::kMic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        invarnetx::core::ComputeAssociationMatrix(node, *engine));
  }
}
BENCHMARK(BM_AssociationMatrix)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_ViolationTuple(benchmark::State& state) {
  Rng rng(7);
  invarnetx::core::InvariantSet set;
  invarnetx::core::AssociationMatrix abnormal;
  for (int i = 0; i < invarnetx::telemetry::kNumMetricPairs; ++i) {
    set.present.push_back(rng.Bernoulli(0.7));
    set.values.push_back(rng.Uniform());
    abnormal.push_back(rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        invarnetx::core::ComputeViolationTuple(set, abnormal));
  }
}
BENCHMARK(BM_ViolationTuple);

void BM_BuildInvariants(benchmark::State& state) {
  const int runs = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<invarnetx::core::AssociationMatrix> matrices;
  for (int r = 0; r < runs; ++r) {
    invarnetx::core::AssociationMatrix m;
    for (int i = 0; i < invarnetx::telemetry::kNumMetricPairs; ++i) {
      m.push_back(rng.Uniform());
    }
    matrices.push_back(std::move(m));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(invarnetx::core::BuildInvariants(matrices));
  }
}
BENCHMARK(BM_BuildInvariants)->Arg(10)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
