// Ablation (not a paper figure): what Hadoop's speculative execution would
// do to the paper's premises. Speculation re-runs straggler shards on
// healthy nodes, which masks a single-node fault's impact on the job -
// execution times shrink under faults and the CPI <-> time coupling of
// Fig. 4 weakens, because the faulted node's CPI no longer bounds the job.
// The paper's evaluation ran the stock configuration; this bench quantifies
// how much the identity depends on that.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "telemetry/collector.h"
#include "telemetry/runner.h"
#include "workload/batch.h"

namespace {

using invarnetx::bench::ValueOrDie;

// Simulates one WordCount run with speculation switched on/off; the runner
// API always uses stock specs, so this drives the engine directly.
invarnetx::telemetry::RunTrace Simulate(bool speculation, uint64_t seed,
                                        bool with_fault) {
  namespace cluster = invarnetx::cluster;
  namespace workload = invarnetx::workload;
  namespace telemetry = invarnetx::telemetry;
  namespace faults = invarnetx::faults;

  invarnetx::Rng rng(seed);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  workload::BatchSpec spec = ValueOrDie(
      workload::GetBatchSpec(workload::WorkloadType::kWordCount), "spec");
  spec.speculative_execution = speculation;
  workload::BatchJobModel job(spec, testbed, &rng);

  std::vector<std::unique_ptr<cluster::FaultInjector>> owned;
  std::vector<cluster::FaultInjector*> injectors;
  telemetry::RunTrace trace;
  trace.workload = workload::WorkloadType::kWordCount;
  if (with_fault) {
    const auto window =
        telemetry::DefaultFaultWindow(faults::FaultType::kCpuHog);
    owned.push_back(
        faults::MakeFault(faults::FaultType::kCpuHog, window, &rng));
    injectors.push_back(owned.back().get());
    trace.fault = telemetry::FaultGroundTruth{faults::FaultType::kCpuHog,
                                              window};
  }
  telemetry::Collector collector(&trace, &rng);
  cluster::SimulationEngine engine;
  const cluster::EngineResult result =
      engine.Run(&testbed, &job, injectors, &collector, &rng);
  trace.duration_seconds = result.duration_seconds;
  trace.finished = result.workload_finished;
  return trace;
}

}  // namespace

int main() {
  const uint64_t seed = static_cast<uint64_t>(
      invarnetx::bench::EnvInt("INVARNETX_SEED", 42));
  const int reps = invarnetx::bench::EnvInt("INVARNETX_REPS", 12);
  std::printf("== Ablation: speculative execution vs the CPI<->time "
              "coupling (WordCount + cpu-hog, %d runs, seed=%llu) ==\n\n",
              reps, static_cast<unsigned long long>(seed));

  invarnetx::TextTable table({"speculation", "mean_faulty_time_s",
                              "mean_normal_time_s", "slowdown",
                              "corr(victim CPI, time)"});
  for (bool speculation : {false, true}) {
    std::vector<double> faulty_times, cpis, times;
    double normal_time = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto normal =
          Simulate(speculation, seed + static_cast<uint64_t>(rep), false);
      normal_time += normal.duration_seconds;
      const auto faulty =
          Simulate(speculation, seed + static_cast<uint64_t>(rep), true);
      faulty_times.push_back(faulty.duration_seconds);
      cpis.push_back(invarnetx::Mean(faulty.nodes[1].cpi));
      times.push_back(faulty.duration_seconds);
      // Mix in the normal points so the correlation spans both regimes.
      cpis.push_back(invarnetx::Mean(normal.nodes[1].cpi));
      times.push_back(normal.duration_seconds);
    }
    normal_time /= reps;
    const double corr = ValueOrDie(
        invarnetx::PearsonCorrelation(cpis, times), "Pearson");
    table.AddRow({speculation ? "on" : "off (paper)",
                  invarnetx::FormatDouble(invarnetx::Mean(faulty_times), 0),
                  invarnetx::FormatDouble(normal_time, 0),
                  invarnetx::FormatDouble(
                      invarnetx::Mean(faulty_times) / normal_time, 2),
                  invarnetx::FormatDouble(corr, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reading: with speculation on, healthy nodes absorb the faulted\n"
      "node's work, the job slows less, and the victim-CPI <-> time\n"
      "correlation weakens - the Fig. 4 identity assumes stock FIFO\n"
      "without backup tasks, as the paper's testbed ran.\n");
  invarnetx::bench::CheckOk(table.WriteCsv("ablation_speculation.csv"),
                            "WriteCsv");
  std::printf("wrote ablation_speculation.csv\n");
  return 0;
}
