// Runs the WordCount fault campaign through a Bodik et al.-style
// fingerprint classifier (the paper's reference [3]) side by side with
// InvarNet-X. Fingerprints summarize how often each metric sat in its
// hot/cold quantile region - coarse, cheap, and surprisingly competitive on
// level-shift faults, but with no per-association evidence to offer when a
// signature is missing and no sub-run detection granularity.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "fingerprint/fingerprint.h"

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;
  namespace faults = invarnetx::faults;
  using invarnetx::workload::WorkloadType;

  const uint64_t seed =
      static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  const int reps = bench::EnvInt("INVARNETX_REPS", 12);
  std::printf("== Fingerprint baseline vs InvarNet-X (WordCount, %d "
              "runs/fault, seed=%llu) ==\n\n",
              reps, static_cast<unsigned long long>(seed));

  const auto normal = bench::ValueOrDie(
      core::SimulateNormalRuns(WorkloadType::kWordCount, 10, seed),
      "SimulateNormalRuns");

  // Train both systems on the same data; teach both the same 2 labeled
  // runs per fault (the campaign protocol).
  invarnetx::fingerprint::FingerprintIndex fingerprints;
  bench::CheckOk(fingerprints.Train(normal, 1), "Fingerprint::Train");
  core::EvalConfig config;
  config.workload = WorkloadType::kWordCount;
  config.seed = seed;
  core::InvarNetX invarnet(config.pipeline);
  bench::CheckOk(core::TrainPipeline(&invarnet, config, normal),
                 "TrainPipeline");
  const core::OperationContext context = core::VictimContext(config);

  std::vector<faults::FaultType> fault_list;
  for (faults::FaultType fault : faults::AllFaults()) {
    if (faults::AppliesTo(fault, WorkloadType::kWordCount)) {
      fault_list.push_back(fault);
    }
  }
  for (size_t fi = 0; fi < fault_list.size(); ++fi) {
    for (uint64_t rep = 0; rep < 2; ++rep) {
      const auto run = bench::ValueOrDie(
          core::SimulateFaultRun(WorkloadType::kWordCount, fault_list[fi],
                                 seed + 0x20000 + fi * 1000 + rep),
          "signature run");
      bench::CheckOk(invarnet.AddSignature(
                         context, faults::FaultName(fault_list[fi]), run, 1),
                     "AddSignature");
      bench::CheckOk(fingerprints.AddLabeled(
                         faults::FaultName(fault_list[fi]), run, 1),
                     "AddLabeled");
    }
  }

  // Campaign: tally per-fault TP/FP for both systems.
  std::map<std::string, std::array<int, 4>> tally;  // {tp_f, fp_f, tp_i, fp_i}
  for (const faults::FaultType fault : fault_list) {
    tally[faults::FaultName(fault)] = {0, 0, 0, 0};
  }
  for (size_t fi = 0; fi < fault_list.size(); ++fi) {
    const std::string truth = faults::FaultName(fault_list[fi]);
    for (int rep = 0; rep < reps; ++rep) {
      const auto run = bench::ValueOrDie(
          core::SimulateFaultRun(WorkloadType::kWordCount, fault_list[fi],
                                 seed + 0x40000 + fi * 1000 +
                                     static_cast<uint64_t>(rep)),
          "test run");
      // Fingerprints.
      const bool anomalous =
          bench::ValueOrDie(fingerprints.IsAnomalous(run, 1), "IsAnomalous");
      if (anomalous) {
        const auto matches =
            bench::ValueOrDie(fingerprints.Classify(run, 1), "Classify");
        if (!matches.empty()) {
          if (matches[0].problem == truth) ++tally[truth][0];
          else ++tally[matches[0].problem][1];
        }
      }
      // InvarNet-X.
      const auto report =
          bench::ValueOrDie(invarnet.Diagnose(context, run, 1), "Diagnose");
      if (report.anomaly_detected && report.known_problem) {
        if (report.causes[0].problem == truth) ++tally[truth][2];
        else ++tally[report.causes[0].problem][3];
      }
    }
  }

  invarnetx::TextTable table({"fault", "fingerprint prec", "fingerprint rec",
                              "invarnet prec", "invarnet rec"});
  double fp_prec = 0, fp_rec = 0, iv_prec = 0, iv_rec = 0;
  for (const faults::FaultType fault : fault_list) {
    const auto& t = tally[faults::FaultName(fault)];
    auto ratio = [](int a, int b) {
      return b > 0 ? static_cast<double>(a) / b : 0.0;
    };
    const double fprec = ratio(t[0], t[0] + t[1]);
    const double frec = ratio(t[0], reps);
    const double iprec = ratio(t[2], t[2] + t[3]);
    const double irec = ratio(t[2], reps);
    fp_prec += fprec;
    fp_rec += frec;
    iv_prec += iprec;
    iv_rec += irec;
    table.AddRow({faults::FaultName(fault), invarnetx::FormatPercent(fprec),
                  invarnetx::FormatPercent(frec),
                  invarnetx::FormatPercent(iprec),
                  invarnetx::FormatPercent(irec)});
  }
  const double n = static_cast<double>(fault_list.size());
  table.AddRow({"AVERAGE", invarnetx::FormatPercent(fp_prec / n),
                invarnetx::FormatPercent(fp_rec / n),
                invarnetx::FormatPercent(iv_prec / n),
                invarnetx::FormatPercent(iv_rec / n)});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reading: quantile fingerprints are a strong coarse baseline for\n"
      "level-shift faults, but they summarize levels, not couplings - no\n"
      "violated-association hints for unknown problems, no alarm tick, and\n"
      "node-level granularity only (the paper's Sec. 5 framing).\n");
  bench::CheckOk(table.WriteCsv("fingerprint_baseline.csv"), "WriteCsv");
  std::printf("wrote fingerprint_baseline.csv\n");
  return 0;
}
