// Reproduces Fig. 7: per-fault diagnosis precision and recall of InvarNet-X
// under the TPC-DS interactive mix (all 15 faults, including Overload, which
// only exists for interactive workloads). Expected shape per the paper:
// Overload and Suspend near-perfect (they violate many invariants and stand
// out), Lock-R recall low, Net-drop <-> Net-delay partially confused, and
// averages (~88.1% precision / 86% recall) slightly below the WordCount
// campaign because the mixed query stream makes model and invariants noisier.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  namespace core = invarnetx::core;
  namespace bench = invarnetx::bench;

  core::EvalConfig config;
  config.workload = invarnetx::workload::WorkloadType::kTpcDs;
  config.seed = static_cast<uint64_t>(bench::EnvInt("INVARNETX_SEED", 42));
  config.test_runs_per_fault = bench::EnvInt("INVARNETX_REPS", 38);

  std::printf(
      "== Fig. 7: diagnosis under TPC-DS (seed=%llu, %d test runs/fault, "
      "%d normal runs, %d signature runs) ==\n\n",
      static_cast<unsigned long long>(config.seed),
      config.test_runs_per_fault, config.normal_runs,
      config.signature_train_runs);

  const core::EvalResult result =
      bench::ValueOrDie(core::RunEvaluation(config), "RunEvaluation(tpcds)");

  invarnetx::TextTable table = bench::OutcomeTable(result);
  std::printf("%s\n", table.Render().c_str());
  std::printf("average precision: %s   (paper: 88.1%%)\n",
              invarnetx::FormatPercent(result.avg_precision).c_str());
  std::printf("average recall:    %s   (paper: 86.0%%)\n\n",
              invarnetx::FormatPercent(result.avg_recall).c_str());
  bench::PrintConfusion(result);
  bench::CheckOk(table.WriteCsv("fig7_diagnosis_tpcds.csv"),
                 "WriteCsv(fig7)");
  std::printf("\nwrote fig7_diagnosis_tpcds.csv\n");
  return 0;
}
