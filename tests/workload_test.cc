#include <gtest/gtest.h>

#include "cluster/engine.h"
#include "workload/batch.h"
#include "workload/factory.h"
#include "workload/spec.h"
#include "workload/tpcds.h"

namespace invarnetx::workload {
namespace {

// ------------------------------------------------------------------- spec --

TEST(SpecTest, NamesRoundTrip) {
  for (WorkloadType type : kAllWorkloads) {
    Result<WorkloadType> parsed = WorkloadFromName(WorkloadName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), type);
  }
  EXPECT_FALSE(WorkloadFromName("bogus").ok());
}

TEST(SpecTest, BatchVsInteractive) {
  EXPECT_TRUE(IsBatch(WorkloadType::kWordCount));
  EXPECT_TRUE(IsBatch(WorkloadType::kSort));
  EXPECT_TRUE(IsBatch(WorkloadType::kGrep));
  EXPECT_TRUE(IsBatch(WorkloadType::kBayes));
  EXPECT_FALSE(IsBatch(WorkloadType::kTpcDs));
}

TEST(SpecTest, BatchSpecsAreWellFormed) {
  for (WorkloadType type : kAllWorkloads) {
    if (!IsBatch(type)) continue;
    Result<BatchSpec> spec = GetBatchSpec(type);
    ASSERT_TRUE(spec.ok()) << WorkloadName(type);
    EXPECT_GT(spec.value().total_instructions, 0.0);
    EXPECT_GT(spec.value().map_frac, 0.0);
    EXPECT_GT(spec.value().shuffle_frac, 0.0);
    EXPECT_LT(spec.value().map_frac + spec.value().shuffle_frac, 1.0);
    // Keep CPU headroom so utilization noise cannot oversubscribe cores.
    EXPECT_LE(spec.value().map.cpu, 0.7);
    EXPECT_GT(spec.value().map.cpi_base, 0.0);
  }
  EXPECT_FALSE(GetBatchSpec(WorkloadType::kTpcDs).ok());
}

TEST(SpecTest, WorkloadsHaveDistinctResourceShapes) {
  const BatchSpec wc = GetBatchSpec(WorkloadType::kWordCount).value();
  const BatchSpec sort = GetBatchSpec(WorkloadType::kSort).value();
  const BatchSpec grep = GetBatchSpec(WorkloadType::kGrep).value();
  const BatchSpec bayes = GetBatchSpec(WorkloadType::kBayes).value();
  EXPECT_GT(wc.map.cpu, sort.map.cpu);       // wordcount is CPU-bound
  EXPECT_GT(sort.map.io_read, wc.map.io_read);  // sort is IO-bound
  EXPECT_GT(grep.map_frac, wc.map_frac);     // grep is map-dominant
  EXPECT_GT(bayes.map.mem_mb, wc.map.mem_mb);   // bayes is memory-hungry
}

// ------------------------------------------------------------------ batch --

TEST(BatchJobTest, PhaseProgression) {
  Rng rng(1);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  BatchJobModel job(GetBatchSpec(WorkloadType::kWordCount).value(), testbed,
                    &rng);
  EXPECT_EQ(job.phase(), BatchPhase::kMap);
  EXPECT_DOUBLE_EQ(job.fraction_done(), 0.0);
  EXPECT_FALSE(job.Finished());
  const double total = job.spec().total_instructions;
  // Push 70% of the budget through slave 1.
  job.OnProgress(1, total * 0.70);
  EXPECT_EQ(job.phase(), BatchPhase::kShuffle);
  job.OnProgress(2, total * 0.10);
  EXPECT_EQ(job.phase(), BatchPhase::kReduce);
}

TEST(BatchJobTest, MasterProgressIgnored) {
  Rng rng(2);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  BatchJobModel job(GetBatchSpec(WorkloadType::kGrep).value(), testbed, &rng);
  job.OnProgress(0, 1e18);
  EXPECT_DOUBLE_EQ(job.fraction_done(), 0.0);
}

TEST(BatchJobTest, StragglerSemantics) {
  // The job is unfinished until EVERY slave finishes its shard.
  Rng rng(3);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  BatchJobModel job(GetBatchSpec(WorkloadType::kWordCount).value(), testbed,
                    &rng);
  const double total = job.spec().total_instructions;
  for (size_t node = 1; node <= 3; ++node) {
    job.OnProgress(node, total);  // way beyond their shards
  }
  EXPECT_FALSE(job.Finished());
  EXPECT_FALSE(job.NodeFinished(4));
  job.OnProgress(4, total);
  EXPECT_TRUE(job.Finished());
  EXPECT_TRUE(job.NodeFinished(4));
}

TEST(BatchJobTest, StepWritesDemands) {
  Rng rng(4);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  BatchJobModel job(GetBatchSpec(WorkloadType::kWordCount).value(), testbed,
                    &rng);
  job.Step(0, &testbed, &rng);
  for (size_t i = 0; i < testbed.num_slaves(); ++i) {
    EXPECT_GT(testbed.slave(i).drivers.cpu_task, 0.3);
    EXPECT_GT(testbed.slave(i).drivers.io_read, 0.1);
    EXPECT_GT(testbed.slave(i).drivers.mem_task_mb, 1000.0);
    EXPECT_GT(testbed.slave(i).drivers.cpi_base, 0.5);
  }
  EXPECT_GT(testbed.master().drivers.rpc_rate, 0.3);
  EXPECT_LT(testbed.master().drivers.cpu_task, 0.3);
}

TEST(BatchJobTest, FinishedSlaveGoesIdle) {
  Rng rng(5);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  BatchJobModel job(GetBatchSpec(WorkloadType::kWordCount).value(), testbed,
                    &rng);
  job.OnProgress(1, job.spec().total_instructions);  // slave 1 done
  job.Step(0, &testbed, &rng);
  EXPECT_LT(testbed.slave(0).drivers.cpu_task, 0.1);
  EXPECT_GT(testbed.slave(1).drivers.cpu_task, 0.3);  // others still busy
}

TEST(BatchJobTest, ShardsScaleWithCapability) {
  // The 12-core slave must receive a larger shard than the 4-core one:
  // drive only those two nodes and check completion order under equal
  // per-tick progress reporting.
  Rng rng(6);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  BatchJobModel job(GetBatchSpec(WorkloadType::kWordCount).value(), testbed,
                    &rng);
  // Equal progress to the 4-core node (index 2) and 12-core node (index 3).
  const double step = job.spec().total_instructions * 0.05;
  int small_done_at = -1, big_done_at = -1;
  for (int i = 0; i < 40; ++i) {
    job.OnProgress(2, step);
    job.OnProgress(3, step);
    if (small_done_at < 0 && job.NodeFinished(2)) small_done_at = i;
    if (big_done_at < 0 && job.NodeFinished(3)) big_done_at = i;
  }
  ASSERT_GE(small_done_at, 0);
  ASSERT_GE(big_done_at, 0);
  EXPECT_LT(small_done_at, big_done_at);
}

TEST(BatchJobTest, SpeculationReassignsStragglerWork) {
  Rng rng(7);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  BatchSpec spec = GetBatchSpec(WorkloadType::kWordCount).value();
  spec.speculative_execution = true;
  BatchJobModel job(spec, testbed, &rng);
  const double total = spec.total_instructions;
  // Nodes 2-4 finish their shards with just enough work (small increments,
  // so retired ~= budget); node 1 is stuck at ~2%.
  for (size_t node = 2; node <= 4; ++node) {
    while (!job.NodeFinished(node)) job.OnProgress(node, total * 0.005);
  }
  job.OnProgress(1, total * 0.02);
  ASSERT_FALSE(job.Finished());
  // One Step triggers speculation: node 1's remaining work halves and a
  // finished node takes the other half, becoming unfinished again.
  job.Step(0, &testbed, &rng);
  job.OnProgress(1, total);  // more than enough for the reduced shard
  EXPECT_TRUE(job.NodeFinished(1));
  bool helper_reopened = false;
  for (size_t node = 2; node <= 4; ++node) {
    helper_reopened |= !job.NodeFinished(node);
  }
  EXPECT_TRUE(helper_reopened);
  EXPECT_FALSE(job.Finished());
  for (size_t node = 2; node <= 4; ++node) job.OnProgress(node, total);
  EXPECT_TRUE(job.Finished());
}

TEST(BatchJobTest, NoSpeculationByDefault) {
  Rng rng(8);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  const BatchSpec spec = GetBatchSpec(WorkloadType::kWordCount).value();
  EXPECT_FALSE(spec.speculative_execution);
  BatchJobModel job(spec, testbed, &rng);
  const double total = spec.total_instructions;
  for (size_t node = 2; node <= 4; ++node) job.OnProgress(node, total);
  job.OnProgress(1, total * 0.02);
  job.Step(0, &testbed, &rng);
  // Without speculation the straggler keeps its whole shard.
  job.OnProgress(1, total * 0.05);
  EXPECT_FALSE(job.NodeFinished(1));
}

// ------------------------------------------------------------------ tpcds --

TEST(TpcDsTest, TemplatesAreSane) {
  const auto& templates = TpcDsQueryTemplates();
  for (const QueryTemplate& q : templates) {
    EXPECT_GT(q.cpu, 0.0);
    EXPECT_GT(q.arrival_rate, 0.0);
    EXPECT_GE(q.mean_ticks, 1.0);
    EXPECT_GT(q.cpi, 0.5);
    EXPECT_LT(q.cpi, 2.0);
  }
}

TEST(TpcDsTest, WarmStartHasActiveQueries) {
  Rng rng(7);
  TpcDsModel mix(5, &rng);
  EXPECT_GT(mix.TotalActive(), 0);
}

TEST(TpcDsTest, NeverFinishes) {
  Rng rng(8);
  TpcDsModel mix(5, &rng);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  for (int t = 0; t < 50; ++t) {
    mix.Step(t, &testbed, &rng);
    EXPECT_FALSE(mix.Finished());
  }
}

TEST(TpcDsTest, MixStaysBounded) {
  Rng rng(9);
  TpcDsModel mix(5, &rng);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  for (int t = 0; t < 200; ++t) {
    mix.Step(t, &testbed, &rng);
    // Birth-death equilibrium: the mix must neither die out for long nor
    // grow without bound.
    EXPECT_LT(mix.TotalActive(), 200);
    EXPECT_LT(testbed.slave(0).drivers.cpu_task, 1.6);
  }
  EXPECT_GT(mix.TotalActive(), 0);
}

TEST(PoissonTest, MeanMatchesLambda) {
  Rng rng(10);
  const double lambda = 1.7;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += SamplePoisson(&rng, lambda);
  EXPECT_NEAR(sum / n, lambda, 0.05);
  EXPECT_EQ(SamplePoisson(&rng, 0.0), 0);
  EXPECT_EQ(SamplePoisson(&rng, -1.0), 0);
}

// ---------------------------------------------------------------- factory --

TEST(FactoryTest, BuildsEveryWorkload) {
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  for (WorkloadType type : kAllWorkloads) {
    Rng rng(11);
    Result<std::unique_ptr<cluster::WorkloadModel>> model =
        MakeWorkload(type, testbed, &rng);
    ASSERT_TRUE(model.ok()) << WorkloadName(type);
    EXPECT_EQ(model.value()->name(), WorkloadName(type));
  }
}

}  // namespace
}  // namespace invarnetx::workload
